//! Scheduling-as-a-service for DeFiNES.
//!
//! This crate turns the repo's analytical scheduler into a long-lived
//! daemon: a `std::net` TCP server that accepts line-delimited JSON
//! schedule requests, coalesces whatever arrives concurrently into one
//! flattened [`defines_core::run_batch`] engine run, and answers from a
//! warm [`defines_mapping::MappingCache`] that can be persisted to disk
//! ([`defines_mapping::CacheStore`]) and reloaded across restarts.
//!
//! The signature invariant of the repo carries through the wire: a daemon
//! response is **bit-identical** to a standalone `best_schedule` run of the
//! same request — cold, warm, or after a restart from the persisted cache.
//! See [`protocol`] for the wire format and [`server`] for the daemon
//! lifecycle; the `serve` and `defines-request` binaries in `defines-cli`
//! are thin shells over these modules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod protocol;
pub mod server;

pub use protocol::{
    parse_fuse_policy, parse_modes, parse_target, render_error, render_outcome, ScheduleRequest,
};
pub use server::{send_line, Resolver, ServeError, Server, ServerConfig};
