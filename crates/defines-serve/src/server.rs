//! The scheduling daemon: a `std::net` TCP server that coalesces concurrent
//! schedule requests into flattened engine batches over one warm, optionally
//! disk-backed [`MappingCache`].
//!
//! # Lifecycle
//!
//! [`Server::bind`] opens the listener and (when configured) the persistent
//! [`CacheStore`], preloading every persisted mapping entry.
//! [`Server::run`] then starts:
//!
//! * a small pool of **connection workers** (`std::net` + threads, no async
//!   runtime) — each connection carries one request line and gets one
//!   response line,
//! * one **scheduler thread** — it drains everything queued since the
//!   previous batch into a single [`run_batch`] call (the matrix runner's
//!   one-engine-many-cells shape), publishes the rendered responses, and
//!   syncs the cache store.
//!
//! Identical requests coalesce at two levels: a response memo answers exact
//! repeats without touching the engine, and requests equal to one already
//! queued or in flight wait for that computation instead of enqueueing a
//! twin. Distinct requests arriving together share one engine spin-up and
//! one warm cache.
//!
//! # Determinism
//!
//! A daemon answer is bit-identical to a standalone run of the same request:
//! [`run_batch`] forces each item's inner search sequential and scrubs
//! run-relative stats, responses contain no timestamps, and the shared cache
//! only ever returns what the search would recompute. Cold, warm (memo),
//! and restarted-from-disk answers are therefore the same bytes — the
//! invariant the cross-process harness pins down.
//!
//! # Crash safety
//!
//! The store is synced after every batch (append-only, flushed per line), so
//! a kill between batches loses nothing and a kill mid-append loses at most
//! one entry (healed as a torn tail on the next open). Compaction is
//! atomic-rename. The response memo is process-local and simply refills.

use crate::protocol::{render_error, render_outcome, ScheduleRequest};
use defines_core::{run_batch, BatchConfig, BatchItem};
use defines_engine::EngineConfig;
use defines_mapping::{Budget, CacheStore, MappingCache};
use defines_telemetry::Counter;
use serde::Value;
use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Schedule requests received (commands excluded).
static SERVE_REQUESTS: Counter = Counter::new("serve.requests");
/// Requests that joined an already queued or in-flight identical
/// computation instead of enqueueing their own.
static SERVE_BATCHED: Counter = Counter::new("serve.batched");
/// Requests answered from the response memo without touching the engine.
static SERVE_MEMO_HITS: Counter = Counter::new("serve.memo_hits");
/// Mapping-cache entries preloaded from the persistent store at startup.
static SERVE_CACHE_LOADS: Counter = Counter::new("serve.cache_loads");
/// Mapping-cache entries evicted by the store's size bound.
static SERVE_EVICTIONS: Counter = Counter::new("serve.evictions");

/// Resolves workload / accelerator specs to concrete objects. Injected by
/// the binary (the CLI resolver knows builtin names *and* file paths) so
/// this crate stays independent of the CLI.
pub trait Resolver: Send + Sync {
    /// Resolves a workload spec.
    fn workload(&self, spec: &str) -> Result<defines_workload::Network, String>;
    /// Resolves an accelerator spec.
    fn accelerator(&self, spec: &str) -> Result<defines_arch::Accelerator, String>;
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Connection-handler threads.
    pub workers: usize,
    /// Outer engine threads per batch (0 = the engine's parallel default).
    pub engine_threads: usize,
    /// Worker threads for each item's temporal-mapping searches.
    pub search_threads: usize,
    /// Use the fast mapper preset.
    pub fast_mapper: bool,
    /// The mapper's deterministic search budget.
    pub budget: Budget,
    /// Persistent cache file; `None` serves from memory only.
    pub cache_file: Option<PathBuf>,
    /// LRU bound on persisted cache entries (0 = unbounded).
    pub max_entries: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            engine_threads: 0,
            search_threads: 1,
            fast_mapper: false,
            budget: Budget::default(),
            cache_file: None,
            max_entries: 0,
        }
    }
}

/// Errors starting or running the daemon.
#[derive(Debug)]
pub struct ServeError(String);

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ServeError {}

/// Per-daemon accounting (process-global telemetry counters would mix
/// multiple in-process servers, e.g. under `cargo test`). The identity
/// `requests == memo_hits + batched + computed` always holds.
#[derive(Debug, Default)]
struct ServeCounters {
    requests: AtomicU64,
    batched: AtomicU64,
    memo_hits: AtomicU64,
    computed: AtomicU64,
    cache_loads: AtomicU64,
    evictions: AtomicU64,
}

impl ServeCounters {
    fn incr(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// The coalescing hub shared by connection workers and the scheduler.
#[derive(Default)]
struct Hub {
    state: Mutex<HubState>,
    /// Wakes the scheduler when requests are queued (or shutdown starts).
    kick: Condvar,
    /// Wakes waiting connections when responses are published.
    ready: Condvar,
}

#[derive(Default)]
struct HubState {
    /// Distinct requests awaiting the next batch, in arrival order.
    queue: Vec<(String, ScheduleRequest)>,
    /// Canonical keys the scheduler is currently computing.
    inflight: Vec<String>,
    /// Response memo: canonical key → rendered response line. Grows for the
    /// process lifetime (responses are small; the expensive state is the
    /// mapping cache, which is what the store bounds).
    responses: HashMap<String, String>,
    shutdown: bool,
}

impl Hub {
    /// Locks the hub state, recovering from poisoning: every critical
    /// section is a handful of map/queue operations that cannot be observed
    /// half-done, so the flag carries no information and recovery keeps the
    /// daemon alive after a worker panic.
    fn lock(&self) -> MutexGuard<'_, HubState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

struct ServerInner {
    config: ServerConfig,
    resolver: Box<dyn Resolver>,
    hub: Hub,
    cache: MappingCache,
    store: Mutex<Option<CacheStore>>,
    counters: ServeCounters,
    local_addr: SocketAddr,
}

/// A bound daemon, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    inner: Arc<ServerInner>,
}

impl Server {
    /// Binds the listener, opens the persistent store (when configured) and
    /// preloads the cache. Also enables telemetry metrics: a daemon's
    /// counters are part of its contract (`stats` command).
    pub fn bind(config: ServerConfig, resolver: Box<dyn Resolver>) -> Result<Server, ServeError> {
        defines_telemetry::set_metrics(true);
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError(format!("cannot bind '{}': {e}", config.addr)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| ServeError(format!("cannot read local address: {e}")))?;
        let cache = MappingCache::new();
        let counters = ServeCounters::default();
        let store = match &config.cache_file {
            Some(path) => {
                let store = CacheStore::open(path, cache.clone(), config.max_entries)
                    .map_err(|e| ServeError(e.to_string()))?;
                let loaded = store.stats().loaded;
                counters.cache_loads.store(loaded, Ordering::Relaxed);
                SERVE_CACHE_LOADS.add(loaded);
                Some(store)
            }
            None => None,
        };
        Ok(Server {
            listener,
            inner: Arc::new(ServerInner {
                config,
                resolver,
                hub: Hub::default(),
                cache,
                store: Mutex::new(store),
                counters,
                local_addr,
            }),
        })
    }

    /// The bound address (read the port from here when binding to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// Serves until a `shutdown` command arrives, then syncs the store one
    /// final time and returns.
    pub fn run(self) -> Result<(), ServeError> {
        let scheduler = {
            let inner = Arc::clone(&self.inner);
            std::thread::Builder::new()
                .name("serve-scheduler".into())
                .spawn(move || scheduler_loop(&inner))
                .map_err(|e| ServeError(format!("cannot spawn scheduler: {e}")))?
        };
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(self.inner.config.workers.max(1));
        for i in 0..self.inner.config.workers.max(1) {
            let inner = Arc::clone(&self.inner);
            let rx = Arc::clone(&rx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-conn-{i}"))
                    .spawn(move || loop {
                        // Holding the receiver lock across `recv` serializes
                        // *dispatch* only; handling runs after the guard
                        // drops. Workers exit when the accept loop drops the
                        // sender.
                        let stream = {
                            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
                            guard.recv()
                        };
                        match stream {
                            Ok(stream) => handle_connection(&inner, stream),
                            Err(_) => break,
                        }
                    })
                    .map_err(|e| ServeError(format!("cannot spawn worker: {e}")))?,
            );
        }
        for stream in self.listener.incoming() {
            if self.inner.hub.lock().shutdown {
                break;
            }
            match stream {
                Ok(stream) => {
                    // A send can only fail if every worker died; surface that
                    // instead of spinning on a dead pool.
                    if tx.send(stream).is_err() {
                        return Err(ServeError("connection workers are gone".into()));
                    }
                }
                Err(_) => continue,
            }
        }
        drop(tx);
        for worker in workers {
            let _ = worker.join();
        }
        let _ = scheduler.join();
        // Final persistence pass: everything computed is already synced per
        // batch; this compacts so the next start loads a minimal file.
        if let Some(store) = self
            .inner
            .store
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_mut()
        {
            store.sync().map_err(|e| ServeError(e.to_string()))?;
            store.compact_now().map_err(|e| ServeError(e.to_string()))?;
        }
        Ok(())
    }
}

/// The scheduler: drain → resolve → one flattened engine run → publish →
/// sync.
fn scheduler_loop(inner: &ServerInner) {
    loop {
        let batch: Vec<(String, ScheduleRequest)> = {
            let mut st = inner.hub.lock();
            while st.queue.is_empty() && !st.shutdown {
                st = inner
                    .hub
                    .kick
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            if st.queue.is_empty() {
                break;
            }
            let mut batch = std::mem::take(&mut st.queue);
            // Deterministic batch composition (arrival order is racy; the
            // *results* are order-independent either way, this just keeps
            // telemetry and store epochs tidy).
            batch.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            st.inflight.extend(batch.iter().map(|(k, _)| k.clone()));
            batch
        };

        let mut rendered: Vec<(String, String)> = Vec::with_capacity(batch.len());
        let mut items: Vec<BatchItem> = Vec::new();
        let mut item_keys: Vec<(String, ScheduleRequest)> = Vec::new();
        for (key, request) in batch {
            let resolved = inner
                .resolver
                .accelerator(&request.accelerator)
                .and_then(|acc| Ok((acc, inner.resolver.workload(&request.workload)?)));
            match resolved {
                Ok((acc, net)) => {
                    items.push(request.to_batch_item(acc, net));
                    item_keys.push((key, request));
                }
                Err(why) => rendered.push((key, render_error(&why))),
            }
        }

        if !items.is_empty() {
            let engine = if inner.config.engine_threads > 0 {
                EngineConfig::parallel().with_threads(inner.config.engine_threads)
            } else {
                EngineConfig::parallel()
            };
            let config = BatchConfig {
                engine,
                cache: inner.cache.clone(),
                fast_mapper: inner.config.fast_mapper,
                search_threads: inner.config.search_threads,
                budget: inner.config.budget,
            };
            let outcomes = run_batch(&items, &config);
            inner
                .counters
                .computed
                .fetch_add(outcomes.len() as u64, Ordering::Relaxed);
            for ((key, request), outcome) in item_keys.into_iter().zip(&outcomes) {
                rendered.push((key, render_outcome(&request, outcome)));
            }
            // Persist the batch before publishing: a kill after clients see
            // the answer can then only lose work that is already
            // recomputable from the synced cache.
            let mut store = inner.store.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(store) = store.as_mut() {
                let before = store.stats().evicted;
                if let Err(e) = store.sync() {
                    // Persistence failure degrades the daemon to in-memory
                    // serving; answers stay correct.
                    eprintln!("warning: cache store sync failed: {e}");
                }
                let evicted = store.stats().evicted - before;
                inner
                    .counters
                    .evictions
                    .fetch_add(evicted, Ordering::Relaxed);
                SERVE_EVICTIONS.add(evicted);
            } else {
                // No store: still advance the LRU epoch per batch so an
                // attached store in a future run sees consistent epochs.
                inner.cache.advance_epoch();
            }
        }

        let mut st = inner.hub.lock();
        for (key, response) in rendered {
            st.inflight.retain(|k| k != &key);
            st.responses.insert(key, response);
        }
        inner.hub.ready.notify_all();
    }
}

/// Reads the single request line, answers it, closes the connection.
fn handle_connection(inner: &ServerInner, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() || line.trim().is_empty() {
        return;
    }
    let response = answer(inner, line.trim());
    let mut stream = stream;
    let _ = stream
        .write_all(response.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush());
}

/// Computes the response line for one request line.
fn answer(inner: &ServerInner, line: &str) -> String {
    let value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => return render_error(&format!("invalid JSON: {e}")),
    };
    if let Some(cmd) = value.get("cmd").and_then(Value::as_str) {
        return match cmd {
            "ping" => Value::Object(vec![
                ("ok".into(), Value::Bool(true)),
                ("pong".into(), Value::Bool(true)),
            ])
            .to_json(),
            "stats" => stats_response(inner),
            "shutdown" => {
                let mut st = inner.hub.lock();
                st.shutdown = true;
                inner.hub.kick.notify_all();
                inner.hub.ready.notify_all();
                drop(st);
                // Unblock the accept loop so `run` can observe the flag.
                let _ = TcpStream::connect(inner.local_addr);
                Value::Object(vec![
                    ("ok".into(), Value::Bool(true)),
                    ("shutdown".into(), Value::Bool(true)),
                ])
                .to_json()
            }
            other => render_error(&format!("unknown command '{other}'")),
        };
    }
    let request = match ScheduleRequest::from_value(&value) {
        Ok(r) => r,
        Err(why) => return render_error(&why),
    };
    ServeCounters::incr(&inner.counters.requests);
    SERVE_REQUESTS.incr();
    let key = request.canonical_key();
    let mut st = inner.hub.lock();
    if let Some(response) = st.responses.get(&key) {
        ServeCounters::incr(&inner.counters.memo_hits);
        SERVE_MEMO_HITS.incr();
        return response.clone();
    }
    if st.shutdown {
        return render_error("server is shutting down");
    }
    let queued = st.inflight.iter().any(|k| k == &key) || st.queue.iter().any(|(k, _)| k == &key);
    if queued {
        ServeCounters::incr(&inner.counters.batched);
        SERVE_BATCHED.incr();
    } else {
        st.queue.push((key.clone(), request));
        inner.hub.kick.notify_one();
    }
    loop {
        st = inner
            .hub
            .ready
            .wait(st)
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(response) = st.responses.get(&key) {
            return response.clone();
        }
        if st.shutdown {
            return render_error("server is shutting down");
        }
    }
}

/// The `stats` command: per-daemon serve counters, mapping-cache stats, and
/// (when persistent) store stats.
fn stats_response(inner: &ServerInner) -> String {
    let c = &inner.counters;
    let serve = Value::Object(vec![
        (
            "requests".into(),
            Value::U64(c.requests.load(Ordering::Relaxed)),
        ),
        (
            "batched".into(),
            Value::U64(c.batched.load(Ordering::Relaxed)),
        ),
        (
            "memo_hits".into(),
            Value::U64(c.memo_hits.load(Ordering::Relaxed)),
        ),
        (
            "computed".into(),
            Value::U64(c.computed.load(Ordering::Relaxed)),
        ),
        (
            "cache_loads".into(),
            Value::U64(c.cache_loads.load(Ordering::Relaxed)),
        ),
        (
            "evictions".into(),
            Value::U64(c.evictions.load(Ordering::Relaxed)),
        ),
    ]);
    let cache = inner.cache.stats();
    let cache = Value::Object(vec![
        ("hits".into(), Value::U64(cache.hits)),
        ("misses".into(), Value::U64(cache.misses)),
        ("canonical_hits".into(), Value::U64(cache.canonical_hits)),
        ("entries".into(), Value::U64(cache.entries as u64)),
    ]);
    let store = match inner
        .store
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .as_ref()
    {
        Some(store) => {
            let s = store.stats();
            Value::Object(vec![
                ("loaded".into(), Value::U64(s.loaded)),
                ("stored".into(), Value::U64(s.stored)),
                ("evicted".into(), Value::U64(s.evicted)),
                ("compactions".into(), Value::U64(s.compactions)),
                ("entries".into(), Value::U64(s.entries as u64)),
            ])
        }
        None => Value::Null,
    };
    Value::Object(vec![
        ("ok".into(), Value::Bool(true)),
        (
            "stats".into(),
            Value::Object(vec![
                ("serve".into(), serve),
                ("cache".into(), cache),
                ("store".into(), store),
            ]),
        ),
    ])
    .to_json()
}

/// Sends one request line to a daemon and returns its response line — the
/// client side of the protocol, shared by the `defines-request` CLI and the
/// test harnesses.
pub fn send_line(addr: &str, line: &str) -> Result<String, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to '{addr}': {e}"))?;
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("cannot send request: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader
        .read_line(&mut response)
        .map_err(|e| format!("cannot read response: {e}"))?;
    let response = response.trim_end_matches('\n').to_string();
    if response.is_empty() {
        return Err("server closed the connection without a response".into());
    }
    Ok(response)
}
