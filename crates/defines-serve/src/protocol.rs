//! The daemon's wire protocol: line-delimited JSON requests and responses.
//!
//! One connection carries one request line and receives one response line —
//! deliberately the simplest possible framing over `std::net` TCP. Requests
//! are either *commands* (`{"cmd": "ping" | "stats" | "shutdown"}`) or
//! *schedule requests* naming a workload, an accelerator and the design-space
//! axes, with exactly the `sweep` CLI's keyword vocabulary:
//!
//! ```json
//! {"workload": "fsrcnn", "accelerator": "meta-proto-like-df",
//!  "dfmode": "3", "target": "energy", "fuse": "full",
//!  "tilex": [60], "tiley": [72]}
//! ```
//!
//! `dfmode`, `target` and `fuse` are optional (defaults `"123"`, `"energy"`,
//! `"auto"`); `tilex`/`tiley` must be given together or both omitted (the
//! explorer's default grid).
//!
//! # Canonical form and byte-identity
//!
//! [`ScheduleRequest::canonical_value`] renders a request with fixed field
//! order and defaults filled in, so textually different request lines that
//! mean the same thing coalesce under one [`ScheduleRequest::canonical_key`].
//! Responses ([`render_outcome`]) embed that canonical form and contain no
//! timestamps, elapsed times or other run-relative state: a response is a
//! pure function of the request, which is what lets the cross-process test
//! harness byte-compare daemon answers against standalone runs.

use defines_core::{BatchItem, FusePolicy, OptimizeTarget, OverlapMode};
use serde::{Serialize, Value};

/// The overlap-mode digit vocabulary of `--dfmode`, paper order.
pub fn parse_modes(dfmode: &str) -> Result<Vec<OverlapMode>, String> {
    if dfmode.is_empty() {
        return Err("'dfmode' needs at least one digit out of 1, 2, 3".into());
    }
    let mut modes = Vec::new();
    for c in dfmode.chars() {
        let mode = match c {
            '1' => OverlapMode::FullyRecompute,
            '2' => OverlapMode::HCachedVRecompute,
            '3' => OverlapMode::FullyCached,
            other => {
                return Err(format!(
                    "invalid 'dfmode' digit '{other}' (1 = fully-recompute, 2 = H-cached \
                     V-recompute, 3 = fully-cached)"
                ))
            }
        };
        if !modes.contains(&mode) {
            modes.push(mode);
        }
    }
    Ok(modes)
}

/// The optimization-target keyword vocabulary of `--target`.
pub fn parse_target(name: &str) -> Result<OptimizeTarget, String> {
    match name {
        "energy" => Ok(OptimizeTarget::Energy),
        "latency" => Ok(OptimizeTarget::Latency),
        "edp" => Ok(OptimizeTarget::Edp),
        "dram" => Ok(OptimizeTarget::DramAccess),
        "activation" => Ok(OptimizeTarget::ActivationEnergy),
        other => Err(format!(
            "unknown target '{other}' (expected one of: energy, latency, edp, dram, activation)"
        )),
    }
}

/// The fuse-policy keyword vocabulary of `--fuse`.
pub fn parse_fuse_policy(name: &str) -> Result<FusePolicy, String> {
    match name {
        "auto" => Ok(FusePolicy::Auto),
        "full" => Ok(FusePolicy::FullNetwork),
        "single" => Ok(FusePolicy::SingleLayerStacks),
        "search" => Ok(FusePolicy::search()),
        other => Err(format!(
            "unknown fuse policy '{other}' (expected one of: auto, full, single, search)"
        )),
    }
}

/// A validated schedule request in canonical (defaults-resolved) form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleRequest {
    /// Workload spec (builtin name or file path, resolver-interpreted).
    pub workload: String,
    /// Accelerator spec (builtin name or file path, resolver-interpreted).
    pub accelerator: String,
    /// Overlap-mode digits (validated, duplicates removed).
    pub dfmode: String,
    /// Optimization-target keyword (validated).
    pub target: String,
    /// Fuse-policy keyword (validated).
    pub fuse: String,
    /// Tile x extents; empty together with `tiley` means the default grid.
    pub tilex: Vec<u64>,
    /// Tile y extents.
    pub tiley: Vec<u64>,
}

fn string_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .ok_or_else(|| format!("missing field '{key}'"))?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("'{key}' is not a string"))
}

fn optional_string(v: &Value, key: &str, default: &str) -> Result<String, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(default.to_string()),
        Some(s) => s
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("'{key}' is not a string")),
    }
}

fn tile_axis(v: &Value, key: &str) -> Result<Vec<u64>, String> {
    let Some(axis) = v.get(key) else {
        return Ok(Vec::new());
    };
    if axis.is_null() {
        return Ok(Vec::new());
    }
    let items = axis
        .as_array()
        .ok_or_else(|| format!("'{key}' is not an array"))?;
    if items.is_empty() {
        return Err(format!("'{key}' needs at least one entry"));
    }
    items
        .iter()
        .map(|item| match item.as_u64() {
            Some(n) if n > 0 => Ok(n),
            _ => Err(format!("'{key}' entries must be positive integers")),
        })
        .collect()
}

impl ScheduleRequest {
    /// Parses and validates a request object. Keywords are checked here so a
    /// malformed request fails at the protocol boundary, not inside a batch.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let request = Self {
            workload: string_field(v, "workload")?,
            accelerator: string_field(v, "accelerator")?,
            dfmode: optional_string(v, "dfmode", "123")?,
            target: optional_string(v, "target", "energy")?,
            fuse: optional_string(v, "fuse", "auto")?,
            tilex: tile_axis(v, "tilex")?,
            tiley: tile_axis(v, "tiley")?,
        };
        // Validate the axes eagerly; also canonicalizes dfmode (dedup).
        let modes = parse_modes(&request.dfmode)?;
        parse_target(&request.target)?;
        parse_fuse_policy(&request.fuse)?;
        if request.tilex.is_empty() != request.tiley.is_empty() {
            return Err(
                "'tilex' and 'tiley' must be given together (or both omitted for the \
                 default grid)"
                    .into(),
            );
        }
        let dfmode = modes
            .iter()
            .map(|m| match m {
                OverlapMode::FullyRecompute => '1',
                OverlapMode::HCachedVRecompute => '2',
                OverlapMode::FullyCached => '3',
            })
            .collect();
        Ok(Self { dfmode, ..request })
    }

    /// The canonical JSON form: fixed field order, defaults resolved. Two
    /// requests with equal canonical forms are the same request.
    pub fn canonical_value(&self) -> Value {
        Value::Object(vec![
            ("workload".into(), Value::Str(self.workload.clone())),
            ("accelerator".into(), Value::Str(self.accelerator.clone())),
            ("dfmode".into(), Value::Str(self.dfmode.clone())),
            ("target".into(), Value::Str(self.target.clone())),
            ("fuse".into(), Value::Str(self.fuse.clone())),
            (
                "tilex".into(),
                Value::Array(self.tilex.iter().map(|&n| Value::U64(n)).collect()),
            ),
            (
                "tiley".into(),
                Value::Array(self.tiley.iter().map(|&n| Value::U64(n)).collect()),
            ),
        ])
    }

    /// The coalescing key: the canonical form as compact JSON.
    pub fn canonical_key(&self) -> String {
        self.canonical_value().to_json()
    }

    /// The tile grid, y-major like the `sweep` CLI, or `None` for the
    /// explorer's default grid.
    pub fn tile_grid(&self) -> Option<Vec<(u64, u64)>> {
        if self.tilex.is_empty() {
            return None;
        }
        let mut grid = Vec::with_capacity(self.tilex.len() * self.tiley.len());
        for &ty in &self.tiley {
            for &tx in &self.tilex {
                grid.push((tx, ty));
            }
        }
        Some(grid)
    }

    /// Builds the batch item for this request against resolved inputs. The
    /// item label is the canonical key, so engine telemetry names the
    /// request and the daemon and standalone paths label identically (run
    /// labels appear in the response's stats block — they must match for
    /// byte-identity).
    pub fn to_batch_item(
        &self,
        accelerator: defines_arch::Accelerator,
        network: defines_workload::Network,
    ) -> BatchItem {
        BatchItem {
            label: self.canonical_key(),
            accelerator,
            network,
            tile_grid: self.tile_grid(),
            modes: parse_modes(&self.dfmode).expect("dfmode was validated at parse time"),
            target: parse_target(&self.target).expect("target was validated at parse time"),
            policy: parse_fuse_policy(&self.fuse).expect("fuse was validated at parse time"),
        }
    }
}

/// Renders the response line for a completed schedule request: the canonical
/// request echoed back, the objective value, and the full schedule (or the
/// error). Deterministic — see the module docs.
pub fn render_outcome(request: &ScheduleRequest, outcome: &defines_core::BatchOutcome) -> String {
    let mut fields = vec![("ok".to_string(), Value::Bool(outcome.error.is_none()))];
    fields.push(("request".into(), request.canonical_value()));
    match (&outcome.schedule, &outcome.error) {
        (Some(schedule), None) => {
            fields.push(("value".into(), Value::F64(outcome.value)));
            fields.push(("result".into(), schedule.to_value()));
        }
        (_, Some(error)) => {
            fields.push(("error".into(), Value::Str(error.clone())));
        }
        (None, None) => {
            fields.push((
                "error".into(),
                Value::Str("request produced no result".into()),
            ));
        }
    }
    Value::Object(fields).to_json()
}

/// Renders an error response for a request that never reached a batch
/// (parse or resolution failure).
pub fn render_error(error: &str) -> String {
    Value::Object(vec![
        ("ok".into(), Value::Bool(false)),
        ("error".into(), Value::Str(error.to_string())),
    ])
    .to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(json: &str) -> Result<ScheduleRequest, String> {
        let v = serde_json::from_str(json).map_err(|e| e.to_string())?;
        ScheduleRequest::from_value(&v)
    }

    #[test]
    fn defaults_are_resolved_and_canonicalized() {
        let r = parse(r#"{"workload":"fsrcnn","accelerator":"tpu-like"}"#).unwrap();
        assert_eq!(r.dfmode, "123");
        assert_eq!(r.target, "energy");
        assert_eq!(r.fuse, "auto");
        assert!(r.tile_grid().is_none());
    }

    #[test]
    fn textually_different_equal_requests_share_a_key() {
        let a = parse(
            r#"{"accelerator":"tpu-like","workload":"fsrcnn","dfmode":"331","target":"energy"}"#,
        )
        .unwrap();
        let b = parse(r#"{"workload":"fsrcnn","accelerator":"tpu-like","dfmode":"31"}"#).unwrap();
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn tile_axes_must_come_together() {
        let err = parse(r#"{"workload":"w","accelerator":"a","tilex":[8]}"#).unwrap_err();
        assert!(err.contains("together"), "{err}");
        let r = parse(r#"{"workload":"w","accelerator":"a","tilex":[8,16],"tiley":[4]}"#).unwrap();
        assert_eq!(r.tile_grid().unwrap(), vec![(8, 4), (16, 4)]);
    }

    #[test]
    fn bad_keywords_fail_at_the_boundary() {
        for json in [
            r#"{"workload":"w","accelerator":"a","dfmode":"4"}"#,
            r#"{"workload":"w","accelerator":"a","target":"speed"}"#,
            r#"{"workload":"w","accelerator":"a","fuse":"everything"}"#,
            r#"{"workload":"w","accelerator":"a","tilex":[0],"tiley":[1]}"#,
        ] {
            assert!(parse(json).is_err(), "{json} should fail");
        }
    }
}
