//! Concurrency test for the daemon's request coalescing: N client threads
//! firing identical and distinct requests concurrently get exactly the same
//! bytes a serial client would, with every duplicate folded into one
//! computation (accounting identity: `requests == memo_hits + batched +
//! computed`, and `computed` == distinct requests).

use defines_serve::{render_outcome, send_line, Resolver, ScheduleRequest, Server, ServerConfig};
use serde::Value;

/// A minimal resolver over the two zoo objects this test uses.
struct ZooResolver;

impl Resolver for ZooResolver {
    fn workload(&self, spec: &str) -> Result<defines_workload::Network, String> {
        match spec {
            "fsrcnn" => Ok(defines_workload::models::fsrcnn()),
            other => Err(format!("unknown workload '{other}'")),
        }
    }

    fn accelerator(&self, spec: &str) -> Result<defines_arch::Accelerator, String> {
        match spec {
            "meta-proto-df" => Ok(defines_arch::zoo::meta_proto_like_df()),
            other => Err(format!("unknown accelerator '{other}'")),
        }
    }
}

/// A request line over the tile/mode axes (fsrcnn × meta-proto-df fixed).
fn request_line(dfmode: &str, tile: (u64, u64)) -> String {
    format!(
        r#"{{"workload":"fsrcnn","accelerator":"meta-proto-df","dfmode":"{dfmode}","fuse":"full","tilex":[{}],"tiley":[{}]}}"#,
        tile.0, tile.1
    )
}

/// Serial ground truth: the same request through a fresh single-item batch.
fn serial_answer(line: &str, config: &ServerConfig) -> String {
    let value = serde_json::from_str(line).expect("request line parses");
    let request = ScheduleRequest::from_value(&value).expect("request is valid");
    let resolver = ZooResolver;
    let item = request.to_batch_item(
        resolver.accelerator(&request.accelerator).unwrap(),
        resolver.workload(&request.workload).unwrap(),
    );
    let batch_config = defines_core::BatchConfig {
        fast_mapper: config.fast_mapper,
        search_threads: config.search_threads,
        budget: config.budget,
        ..defines_core::BatchConfig::default()
    };
    let outcomes = defines_core::run_batch(&[item], &batch_config);
    render_outcome(&request, &outcomes[0])
}

/// Extracts `"name":<digits>` from a stats response line.
fn stat(stats: &str, name: &str) -> u64 {
    let pat = format!("\"{name}\":");
    let at = stats
        .find(&pat)
        .unwrap_or_else(|| panic!("no {name} in {stats}"));
    stats[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("stat value")
}

#[test]
fn concurrent_identical_and_distinct_requests_coalesce() {
    let config = ServerConfig {
        workers: 8,
        fast_mapper: true,
        ..ServerConfig::default()
    };
    let serial_config = config.clone();
    let server = Server::bind(config, Box::new(ZooResolver)).expect("bind");
    let addr = server.local_addr().to_string();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    // Five distinct requests; the first is also fired by three extra
    // duplicate clients, all concurrently.
    let distinct: Vec<String> = vec![
        request_line("3", (60, 72)),
        request_line("3", (48, 48)),
        request_line("1", (60, 72)),
        request_line("2", (32, 32)),
        request_line("13", (30, 36)),
    ];
    let mut lines: Vec<&str> = distinct.iter().map(String::as_str).collect();
    lines.extend([distinct[0].as_str(); 3]);

    let responses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = lines
            .iter()
            .map(|line| {
                let addr = addr.clone();
                scope.spawn(move || send_line(&addr, line).expect("request round-trip"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every duplicate of request 0 got byte-identical answers.
    for dup in &responses[5..] {
        assert_eq!(*dup, responses[0], "duplicate clients diverged");
    }
    // Every response matches its serial ground truth, byte for byte —
    // coalescing and batch siblings changed nothing.
    for (line, response) in lines.iter().zip(&responses).take(5) {
        assert_eq!(
            *response,
            serial_answer(line, &serial_config),
            "coalesced answer differs from a serial run of {line}"
        );
        let ok = serde_json::from_str(response)
            .ok()
            .and_then(|v: Value| v.get("ok").and_then(Value::as_bool));
        assert_eq!(ok, Some(true), "{response}");
    }

    // Accounting: 8 requests, 5 computed (each distinct key exactly once),
    // and the 3 duplicates either joined a computation in flight (batched)
    // or arrived after it finished (memo hit) — timing decides which, the
    // sum does not.
    let stats = send_line(&addr, r#"{"cmd":"stats"}"#).expect("stats");
    assert_eq!(stat(&stats, "requests"), 8, "{stats}");
    assert_eq!(stat(&stats, "computed"), 5, "{stats}");
    assert_eq!(
        stat(&stats, "memo_hits") + stat(&stats, "batched"),
        3,
        "{stats}"
    );

    // A serial second wave is pure memo: no new computation.
    for line in &distinct {
        let again = send_line(&addr, line).expect("second wave");
        assert_eq!(again, serial_answer(line, &serial_config));
    }
    let stats = send_line(&addr, r#"{"cmd":"stats"}"#).expect("stats");
    assert_eq!(stat(&stats, "requests"), 13, "{stats}");
    assert_eq!(stat(&stats, "computed"), 5, "{stats}");
    assert_eq!(stat(&stats, "memo_hits") + stat(&stats, "batched"), 8);

    let bye = send_line(&addr, r#"{"cmd":"shutdown"}"#).expect("shutdown");
    assert!(bye.contains("\"shutdown\":true"), "{bye}");
    server_thread.join().expect("server thread");
}
