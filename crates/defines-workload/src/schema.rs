//! Declarative JSON schema for workloads: the serde-backed document types
//! that describe a network as data instead of Rust code.
//!
//! A workload document is a JSON object with a `name` and a topologically
//! ordered list of `layers`. Each layer names its operator, its producers
//! (`inputs`, by layer name — an empty list marks a network input) and its
//! loop dimensions; dimensions that follow from the producers may be omitted
//! and are shape-inferred by the [`loader`](crate::loader):
//!
//! ```json
//! {
//!   "format": "defines-workload-v1",
//!   "name": "my-net",
//!   "layers": [
//!     {"name": "stem", "op": "Conv", "inputs": [],
//!      "k": 16, "c": 3, "ox": 128, "oy": 128, "fx": 3, "fy": 3,
//!      "stride": [1, 1], "padding": [1, 1]},
//!     {"name": "head", "op": "Conv", "inputs": ["stem"], "k": 4}
//!   ]
//! }
//! ```
//!
//! The schema is the bridge in both directions: [`WorkloadDoc::from_network`]
//! exports any in-memory [`Network`] (including the built-in zoo models) as a
//! fully explicit document — the reference files under `workloads/` are
//! produced this way — and the loader turns documents back into validated
//! [`Network`]s. Round-tripping a network through JSON reproduces it exactly.

use crate::layer::{Layer, OpType};
use crate::loader::WorkloadError;
use crate::network::Network;
use serde::{Deserialize, Serialize};

/// The format tag expected in a workload document's optional `format` field.
pub const FORMAT: &str = "defines-workload-v1";

/// A whole workload document: the JSON-facing twin of [`Network`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadDoc {
    /// Format tag ([`FORMAT`]); optional on input, always written on export.
    pub format: Option<String>,
    /// Network name.
    pub name: String,
    /// Layers in topological order (producers before consumers).
    pub layers: Vec<LayerSpec>,
}

/// One layer of a workload document: the JSON-facing twin of [`Layer`].
///
/// Only `name`, `op` and `inputs` are always required. `fx`/`fy` default to
/// 1, `stride` to `[1, 1]`, `padding` to `[0, 0]`, `batch` to 1 and the
/// precisions to 8 bit. The channel and spatial dimensions may be omitted
/// wherever the loader can infer them from the producer layers (see
/// [`crate::loader`] for the exact rules).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Layer name, unique within the document.
    pub name: String,
    /// Operator: `"Conv"`, `"DepthwiseConv"`, `"Pooling"` or `"Add"`
    /// (lower-case and short aliases accepted on input).
    pub op: String,
    /// Names of the producer layers; empty for network-input layers.
    pub inputs: Vec<String>,
    /// Output channels. Required for `Conv`; inferable from the producer for
    /// the per-channel operators.
    pub k: Option<u64>,
    /// Input channels. Inferable from the producer's output channels.
    pub c: Option<u64>,
    /// Output feature-map width. Inferable via the convolution arithmetic.
    pub ox: Option<u64>,
    /// Output feature-map height. Inferable via the convolution arithmetic.
    pub oy: Option<u64>,
    /// Filter width (default 1).
    pub fx: Option<u64>,
    /// Filter height (default 1).
    pub fy: Option<u64>,
    /// `[stride_x, stride_y]` (default `[1, 1]`).
    pub stride: Option<(u64, u64)>,
    /// `[pad_x, pad_y]`, symmetric per axis (default `[0, 0]`).
    pub padding: Option<(u64, u64)>,
    /// Batch size (default 1).
    pub batch: Option<u64>,
    /// Bits per activation element (default 8).
    pub act_bits: Option<u32>,
    /// Bits per weight element (default 8).
    pub weight_bits: Option<u32>,
}

/// The canonical document name of an operator.
pub fn op_name(op: OpType) -> &'static str {
    match op {
        OpType::Conv => "Conv",
        OpType::DepthwiseConv => "DepthwiseConv",
        OpType::Pooling => "Pooling",
        OpType::Add => "Add",
    }
}

/// Parses an operator name. Accepts the canonical names plus common
/// lower-case / abbreviated aliases.
pub fn parse_op(name: &str) -> Option<OpType> {
    match name {
        "Conv" | "conv" => Some(OpType::Conv),
        "DepthwiseConv" | "depthwise_conv" | "dwconv" | "depthwise" => Some(OpType::DepthwiseConv),
        "Pooling" | "pooling" | "pool" => Some(OpType::Pooling),
        "Add" | "add" => Some(OpType::Add),
        _ => None,
    }
}

impl LayerSpec {
    /// A fully explicit spec of an existing layer (no field left to
    /// inference).
    fn from_layer(layer: &Layer, inputs: Vec<String>) -> Self {
        let d = &layer.dims;
        Self {
            name: layer.name.clone(),
            op: op_name(layer.op).to_string(),
            inputs,
            k: Some(d.k),
            c: Some(d.c),
            ox: Some(d.ox),
            oy: Some(d.oy),
            fx: Some(d.fx),
            fy: Some(d.fy),
            stride: Some((d.stride_x, d.stride_y)),
            padding: Some((d.pad_x, d.pad_y)),
            batch: Some(d.b),
            act_bits: Some(layer.act_bits),
            weight_bits: Some(layer.weight_bits),
        }
    }
}

impl WorkloadDoc {
    /// Exports a network as a fully explicit workload document.
    ///
    /// Every dimension is written out (nothing is left to shape inference),
    /// so the document loads back into an identical [`Network`] and remains
    /// valid even if the inference rules evolve.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Layer`] if two layers share a name: document
    /// edges are by name, so names must be unique to be exportable.
    pub fn from_network(net: &Network) -> Result<Self, WorkloadError> {
        let mut seen = std::collections::BTreeSet::new();
        for layer in net.layers() {
            if !seen.insert(layer.name.as_str()) {
                return Err(WorkloadError::Layer {
                    layer: layer.name.clone(),
                    message: "duplicate layer name: documents reference producers by name, \
                              so layer names must be unique to export"
                        .to_string(),
                });
            }
        }
        let layers = net
            .layer_ids()
            .map(|id| {
                let inputs = net
                    .predecessors(id)
                    .iter()
                    .map(|&p| net.layer(p).name.clone())
                    .collect();
                LayerSpec::from_layer(net.layer(id), inputs)
            })
            .collect();
        Ok(Self {
            format: Some(FORMAT.to_string()),
            name: net.name().to_string(),
            layers,
        })
    }

    /// Renders the document as pretty-printed JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_value(self).to_json_pretty()
    }

    /// Renders the document as compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_value(self).to_json()
    }
}

/// Exports a network as pretty-printed workload JSON (the format of the
/// reference files under `workloads/`).
///
/// # Errors
///
/// Returns [`WorkloadError::Layer`] if two layers share a name.
///
/// ```
/// use defines_workload::{models, schema};
///
/// let json = schema::to_json_pretty(&models::fsrcnn()).unwrap();
/// let reloaded = defines_workload::loader::from_json_str(&json).unwrap();
/// assert_eq!(reloaded, models::fsrcnn());
/// ```
pub fn to_json_pretty(net: &Network) -> Result<String, WorkloadError> {
    Ok(WorkloadDoc::from_network(net)?.to_json_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn op_names_round_trip() {
        for op in [
            OpType::Conv,
            OpType::DepthwiseConv,
            OpType::Pooling,
            OpType::Add,
        ] {
            assert_eq!(parse_op(op_name(op)), Some(op));
        }
        assert_eq!(parse_op("pool"), Some(OpType::Pooling));
        assert_eq!(parse_op("Softmax"), None);
    }

    #[test]
    fn export_is_fully_explicit() {
        let doc = WorkloadDoc::from_network(&models::fsrcnn()).unwrap();
        assert_eq!(doc.format.as_deref(), Some(FORMAT));
        assert_eq!(doc.name, "FSRCNN");
        assert_eq!(doc.layers.len(), 8);
        for spec in &doc.layers {
            assert!(spec.k.is_some() && spec.c.is_some());
            assert!(spec.ox.is_some() && spec.oy.is_some());
            assert!(spec.stride.is_some() && spec.padding.is_some());
        }
        // Chain edges are by producer name.
        assert_eq!(doc.layers[1].inputs, vec!["feature_extract_5x5"]);
    }

    #[test]
    fn export_preserves_branches() {
        let doc = WorkloadDoc::from_network(&models::resnet18()).unwrap();
        let add = doc.layers.iter().find(|l| l.op == "Add").unwrap();
        assert_eq!(add.inputs.len(), 2);
    }

    #[test]
    fn duplicate_names_are_rejected_on_export() {
        use crate::dims::LayerDims;

        let mut net = Network::new("dup");
        let a = net
            .add_layer(
                Layer::new("x", OpType::Conv, LayerDims::conv(4, 3, 8, 8, 3, 3)),
                &[],
            )
            .unwrap();
        net.add_layer(
            Layer::new("x", OpType::Conv, LayerDims::conv(4, 4, 8, 8, 1, 1)),
            &[a],
        )
        .unwrap();
        let err = WorkloadDoc::from_network(&net).unwrap_err();
        assert!(err.to_string().contains("layer 'x'"), "{err}");
    }
}
