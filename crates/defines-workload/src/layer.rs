//! Single-layer description.

use crate::dims::LayerDims;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a layer inside a [`crate::Network`].
///
/// Layer ids are assigned by [`crate::Network::add_layer`] in insertion order
/// and are dense (`0..n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LayerId(pub usize);

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0 + 1)
    }
}

/// The operator class of a layer.
///
/// The operator class determines how weights are counted and how input
/// channels relate to output channels:
///
/// * [`OpType::Conv`] — dense convolution / fully-connected layer,
///   `K*C*FX*FY` weights.
/// * [`OpType::DepthwiseConv`] — depthwise convolution, one filter per
///   channel: `K*FX*FY` weights and the effective `C` of the MAC loop is 1.
/// * [`OpType::Pooling`] — max/average pooling, no weights, per-channel.
/// * [`OpType::Add`] — element-wise addition of two feature maps (residual
///   connections); no weights, no MACs in the conv sense (modelled as one
///   operation per output element).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpType {
    /// Dense convolution (also used for fully-connected layers with
    /// `OX = OY = FX = FY = 1`).
    Conv,
    /// Depthwise convolution.
    DepthwiseConv,
    /// Pooling (max or average).
    Pooling,
    /// Element-wise addition (residual join).
    Add,
}

impl OpType {
    /// Whether the layer has weights that must be stored and moved.
    pub fn has_weights(&self) -> bool {
        matches!(self, OpType::Conv | OpType::DepthwiseConv)
    }
}

impl fmt::Display for OpType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpType::Conv => "Conv",
            OpType::DepthwiseConv => "DwConv",
            OpType::Pooling => "Pool",
            OpType::Add => "Add",
        };
        f.write_str(s)
    }
}

/// A single DNN layer.
///
/// ```
/// use defines_workload::{Layer, LayerDims, OpType};
///
/// let l = Layer::new("conv1", OpType::Conv, LayerDims::conv(32, 3, 112, 112, 3, 3).with_stride(2, 2));
/// assert_eq!(l.weight_elements(), 32 * 3 * 9);
/// assert_eq!(l.macs(), 32 * 3 * 112 * 112 * 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable name (unique within a network by convention, not enforced).
    pub name: String,
    /// Operator class.
    pub op: OpType,
    /// Loop dimensions.
    pub dims: LayerDims,
    /// Bits per activation element (inputs and outputs).
    pub act_bits: u32,
    /// Bits per weight element.
    pub weight_bits: u32,
}

impl Layer {
    /// Default activation precision used by the paper's case studies (8 bit).
    pub const DEFAULT_ACT_BITS: u32 = 8;
    /// Default weight precision used by the paper's case studies (8 bit).
    pub const DEFAULT_WEIGHT_BITS: u32 = 8;

    /// Creates a layer with default 8-bit activation and weight precision.
    pub fn new(name: impl Into<String>, op: OpType, dims: LayerDims) -> Self {
        Self {
            name: name.into(),
            op,
            dims,
            act_bits: Self::DEFAULT_ACT_BITS,
            weight_bits: Self::DEFAULT_WEIGHT_BITS,
        }
    }

    /// Returns a copy with the given activation precision in bits.
    pub fn with_act_bits(mut self, bits: u32) -> Self {
        self.act_bits = bits;
        self
    }

    /// Returns a copy with the given weight precision in bits.
    pub fn with_weight_bits(mut self, bits: u32) -> Self {
        self.weight_bits = bits;
        self
    }

    /// Number of weight elements, accounting for the operator class.
    pub fn weight_elements(&self) -> u64 {
        match self.op {
            OpType::Conv => self.dims.weight_elements(),
            OpType::DepthwiseConv => self.dims.k * self.dims.fx * self.dims.fy,
            OpType::Pooling | OpType::Add => 0,
        }
    }

    /// Weight footprint in bytes (rounded up to whole bytes per element).
    pub fn weight_bytes(&self) -> u64 {
        self.weight_elements() * u64::from(self.weight_bits.div_ceil(8))
    }

    /// Number of MAC operations (or per-element ops for pooling/add).
    pub fn macs(&self) -> u64 {
        match self.op {
            OpType::Conv => self.dims.total_macs(),
            // Depthwise convolution: each output channel convolves only its own
            // input channel, so the C loop collapses to 1.
            OpType::DepthwiseConv => {
                self.dims.b
                    * self.dims.k
                    * self.dims.ox
                    * self.dims.oy
                    * self.dims.fx
                    * self.dims.fy
            }
            OpType::Pooling => {
                self.dims.b
                    * self.dims.k
                    * self.dims.ox
                    * self.dims.oy
                    * self.dims.fx
                    * self.dims.fy
            }
            OpType::Add => self.dims.output_elements(),
        }
    }

    /// MAC operations restricted to a `tw`×`th` portion of the output feature
    /// map (used by the depth-first model when evaluating tiles).
    pub fn macs_for_output_region(&self, tw: u64, th: u64) -> u64 {
        let full = self.dims.ox * self.dims.oy;
        if full == 0 {
            return 0;
        }
        let region = tw.min(self.dims.ox) * th.min(self.dims.oy);
        // MAC count scales linearly with the number of output pixels.
        self.macs() / full * region + (self.macs() % full) * region / full
    }

    /// Number of output activation elements.
    pub fn output_elements(&self) -> u64 {
        self.dims.output_elements()
    }

    /// Output feature-map footprint in bytes.
    pub fn output_bytes(&self) -> u64 {
        self.output_elements() * u64::from(self.act_bits.div_ceil(8))
    }

    /// Number of input activation elements required to produce the full output.
    pub fn input_elements(&self) -> u64 {
        match self.op {
            OpType::Conv => self.dims.input_elements(),
            OpType::DepthwiseConv | OpType::Pooling => {
                self.dims.b * self.dims.k * self.dims.input_width() * self.dims.input_height()
            }
            // Add has two inputs of the same size as the output.
            OpType::Add => 2 * self.dims.output_elements(),
        }
    }

    /// Input feature-map footprint in bytes.
    pub fn input_bytes(&self) -> u64 {
        self.input_elements() * u64::from(self.act_bits.div_ceil(8))
    }

    /// The number of input channels the layer consumes.
    ///
    /// For depthwise/pooling layers this equals `K` (per-channel operators);
    /// for dense convolutions it is `C`.
    pub fn input_channels(&self) -> u64 {
        match self.op {
            OpType::Conv => self.dims.c,
            OpType::DepthwiseConv | OpType::Pooling | OpType::Add => self.dims.k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::LayerDims;

    #[test]
    fn conv_weight_count() {
        let l = Layer::new("c", OpType::Conv, LayerDims::conv(64, 32, 56, 56, 3, 3));
        assert_eq!(l.weight_elements(), 64 * 32 * 9);
        assert_eq!(l.weight_bytes(), 64 * 32 * 9);
    }

    #[test]
    fn depthwise_weight_and_mac_count() {
        let l = Layer::new(
            "dw",
            OpType::DepthwiseConv,
            LayerDims::conv(32, 32, 112, 112, 3, 3),
        );
        assert_eq!(l.weight_elements(), 32 * 9);
        assert_eq!(l.macs(), 32 * 112 * 112 * 9);
    }

    #[test]
    fn pooling_has_no_weights() {
        let l = Layer::new(
            "p",
            OpType::Pooling,
            LayerDims::conv(64, 64, 28, 28, 2, 2).with_stride(2, 2),
        );
        assert_eq!(l.weight_elements(), 0);
        assert!(!l.op.has_weights());
        assert_eq!(l.macs(), 64 * 28 * 28 * 4);
    }

    #[test]
    fn add_counts_two_inputs() {
        let l = Layer::new("add", OpType::Add, LayerDims::conv(64, 64, 56, 56, 1, 1));
        assert_eq!(l.input_elements(), 2 * 64 * 56 * 56);
        assert_eq!(l.macs(), 64 * 56 * 56);
    }

    #[test]
    fn tile_macs_scale_with_region() {
        let l = Layer::new("c", OpType::Conv, LayerDims::conv(8, 8, 100, 100, 3, 3));
        assert_eq!(l.macs_for_output_region(100, 100), l.macs());
        assert_eq!(l.macs_for_output_region(50, 100), l.macs() / 2);
        assert_eq!(l.macs_for_output_region(10, 10), l.macs() / 100);
        // Regions larger than the layer clamp to the layer size.
        assert_eq!(l.macs_for_output_region(1000, 1000), l.macs());
    }

    #[test]
    fn precision_affects_bytes() {
        let l = Layer::new("c", OpType::Conv, LayerDims::conv(4, 4, 8, 8, 1, 1)).with_act_bits(16);
        assert_eq!(l.output_bytes(), 4 * 8 * 8 * 2);
    }

    #[test]
    fn layer_id_display_is_one_based() {
        assert_eq!(LayerId(0).to_string(), "L1");
        assert_eq!(LayerId(7).to_string(), "L8");
    }
}
