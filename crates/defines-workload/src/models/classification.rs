//! Weight-dominant classification workloads: MobileNetV1 and ResNet18.

use crate::dims::LayerDims;
use crate::layer::{Layer, LayerId, OpType};
use crate::network::Network;

/// MobileNetV1 \[10\] at 224×224×3 input, width multiplier 1.0.
///
/// 13 depthwise-separable blocks (depthwise 3×3 + pointwise 1×1) preceded by a
/// strided 3×3 convolution and followed by global average pooling and a
/// fully-connected classifier. Table I(b) regime: ~4 MB of weights, feature
/// maps well under 1 MB on average — weight dominant.
pub fn mobilenet_v1() -> Network {
    let mut net = Network::new("MobileNetV1");

    let mut add = |name: &str, op: OpType, dims: LayerDims, prev: Option<LayerId>| -> LayerId {
        let preds: Vec<LayerId> = prev.into_iter().collect();
        net.add_layer(Layer::new(name, op, dims), &preds)
            .expect("valid chain")
    };

    // Initial strided convolution: 224x224x3 -> 112x112x32.
    let mut prev = add(
        "conv1",
        OpType::Conv,
        LayerDims::conv(32, 3, 112, 112, 3, 3)
            .with_stride(2, 2)
            .with_padding(1, 1),
        None,
    );

    // (out_channels, output_size, stride of the depthwise conv)
    let blocks: [(u64, u64, u64); 13] = [
        (64, 112, 1),
        (128, 56, 2),
        (128, 56, 1),
        (256, 28, 2),
        (256, 28, 1),
        (512, 14, 2),
        (512, 14, 1),
        (512, 14, 1),
        (512, 14, 1),
        (512, 14, 1),
        (512, 14, 1),
        (1024, 7, 2),
        (1024, 7, 1),
    ];

    let mut in_ch = 32u64;
    for (i, &(out_ch, out_sz, stride)) in blocks.iter().enumerate() {
        let dw = add(
            &format!("dw{}", i + 1),
            OpType::DepthwiseConv,
            LayerDims::conv(in_ch, in_ch, out_sz, out_sz, 3, 3)
                .with_stride(stride, stride)
                .with_padding(1, 1),
            Some(prev),
        );
        let pw = add(
            &format!("pw{}", i + 1),
            OpType::Conv,
            LayerDims::conv(out_ch, in_ch, out_sz, out_sz, 1, 1),
            Some(dw),
        );
        prev = pw;
        in_ch = out_ch;
    }

    // Global average pooling 7x7 -> 1x1.
    let pool = add(
        "avgpool",
        OpType::Pooling,
        LayerDims::conv(1024, 1024, 1, 1, 7, 7).with_stride(7, 7),
        Some(prev),
    );
    // Classifier as a 1x1 "convolution" over the pooled vector.
    let _fc = add(
        "fc",
        OpType::Conv,
        LayerDims::conv(1000, 1024, 1, 1, 1, 1),
        Some(pool),
    );
    net
}

/// ResNet18 \[8\] at 224×224×3 input.
///
/// Standard topology: a strided 7×7 stem, a 3×3 max-pool, four stages of two
/// basic residual blocks each (64/128/256/512 channels), global average
/// pooling and a fully-connected classifier. Downsampling stages include the
/// 1×1 projection shortcut, and every residual join is an explicit
/// [`OpType::Add`] layer so the depth-first model sees the branches.
/// Table I(b) regime: ~11 MB of weights.
pub fn resnet18() -> Network {
    let mut net = Network::new("ResNet18");

    let mut add = |name: &str, op: OpType, dims: LayerDims, preds: &[LayerId]| -> LayerId {
        net.add_layer(Layer::new(name, op, dims), preds)
            .expect("valid DAG")
    };

    // Stem: conv 7x7/2 (112x112x64) + maxpool 3x3/2 (56x56x64).
    let stem = add(
        "conv1",
        OpType::Conv,
        LayerDims::conv(64, 3, 112, 112, 7, 7)
            .with_stride(2, 2)
            .with_padding(3, 3),
        &[],
    );
    let mut prev = add(
        "maxpool",
        OpType::Pooling,
        LayerDims::conv(64, 64, 56, 56, 3, 3)
            .with_stride(2, 2)
            .with_padding(1, 1),
        &[stem],
    );

    // (stage channels, output size, number of blocks)
    let stages: [(u64, u64); 4] = [(64, 56), (128, 28), (256, 14), (512, 7)];
    let mut in_ch = 64u64;
    for (s, &(ch, sz)) in stages.iter().enumerate() {
        for b in 0..2 {
            let downsample = s > 0 && b == 0;
            let stride = if downsample { 2 } else { 1 };
            let conv_a = add(
                &format!("s{}b{}_conv_a", s + 1, b + 1),
                OpType::Conv,
                LayerDims::conv(ch, in_ch, sz, sz, 3, 3)
                    .with_stride(stride, stride)
                    .with_padding(1, 1),
                &[prev],
            );
            let conv_b = add(
                &format!("s{}b{}_conv_b", s + 1, b + 1),
                OpType::Conv,
                LayerDims::conv(ch, ch, sz, sz, 3, 3).with_padding(1, 1),
                &[conv_a],
            );
            let shortcut = if downsample {
                add(
                    &format!("s{}b{}_shortcut", s + 1, b + 1),
                    OpType::Conv,
                    LayerDims::conv(ch, in_ch, sz, sz, 1, 1).with_stride(2, 2),
                    &[prev],
                )
            } else {
                prev
            };
            prev = add(
                &format!("s{}b{}_add", s + 1, b + 1),
                OpType::Add,
                LayerDims::conv(ch, ch, sz, sz, 1, 1),
                &[conv_b, shortcut],
            );
            in_ch = ch;
        }
    }

    let pool = add(
        "avgpool",
        OpType::Pooling,
        LayerDims::conv(512, 512, 1, 1, 7, 7).with_stride(7, 7),
        &[prev],
    );
    let _fc = add(
        "fc",
        OpType::Conv,
        LayerDims::conv(1000, 512, 1, 1, 1, 1),
        &[pool],
    );
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobilenet_layer_structure() {
        let net = mobilenet_v1();
        // 1 stem + 13*(dw+pw) + pool + fc = 29 layers.
        assert_eq!(net.len(), 29);
        assert!(net.is_chain());
    }

    #[test]
    fn mobilenet_weight_total_close_to_4mb() {
        let total: u64 = mobilenet_v1()
            .layers()
            .iter()
            .map(|l| l.weight_bytes())
            .sum();
        let mb = total as f64 / (1024.0 * 1024.0);
        assert!((3.0..6.0).contains(&mb), "MobileNetV1 weights = {mb:.2} MB");
    }

    #[test]
    fn resnet18_weight_total_close_to_11mb() {
        let total: u64 = resnet18().layers().iter().map(|l| l.weight_bytes()).sum();
        let mb = total as f64 / (1024.0 * 1024.0);
        assert!((9.0..14.0).contains(&mb), "ResNet18 weights = {mb:.2} MB");
    }

    #[test]
    fn resnet18_has_projection_shortcuts() {
        let net = resnet18();
        let shortcuts = net
            .layers()
            .iter()
            .filter(|l| l.name.contains("shortcut"))
            .count();
        assert_eq!(shortcuts, 3);
        // Adds have two predecessors.
        for id in net.layer_ids() {
            if net.layer(id).op == OpType::Add {
                assert_eq!(
                    net.predecessors(id).len(),
                    2,
                    "add layer must join two branches"
                );
            }
        }
    }

    #[test]
    fn resnet18_sinks_and_sources() {
        let net = resnet18();
        assert_eq!(net.source_layers().len(), 1);
        assert_eq!(net.sink_layers().len(), 1);
    }
}
