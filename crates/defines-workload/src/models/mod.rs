//! Model zoo: the workloads used by the DeFiNES paper's case studies.
//!
//! The five case-study workloads of Table I(b) are provided, plus the simple
//! reference network used for the DepFiN validation (Section IV):
//!
//! | Constructor | Workload | Character |
//! |---|---|---|
//! | [`fsrcnn`] | FSRCNN super-resolution \[5\] | activation dominant |
//! | [`dmcnn_vd`] | DMCNN-VD demosaicing \[30\] | activation dominant |
//! | [`mccnn`] | MC-CNN fast stereo matching \[33\] | activation dominant |
//! | [`mobilenet_v1`] | MobileNetV1 classification \[10\] | weight dominant |
//! | [`resnet18`] | ResNet18 classification \[8\] | weight dominant |
//! | [`reference_net`] | 11-layer custom reference network (Section IV) | activation dominant |
//!
//! The layer shapes are reconstructed from the papers the workloads originate
//! from; tests in this module assert that the aggregate statistics (total
//! weights, maximum feature map) land in the same regime as Table I(b).

mod classification;
mod restoration;

pub use classification::{mobilenet_v1, resnet18};
pub use restoration::{dmcnn_vd, fsrcnn, mccnn, reference_net};

use crate::network::Network;

/// All the case-study workloads of Table I(b), in the paper's order.
pub fn case_study_workloads() -> Vec<Network> {
    vec![fsrcnn(), dmcnn_vd(), mccnn(), mobilenet_v1(), resnet18()]
}

/// The workloads used for the DepFiN validation experiment (Fig. 11).
pub fn validation_workloads() -> Vec<Network> {
    vec![fsrcnn(), mccnn(), reference_net()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::WorkloadSummary;

    #[test]
    fn zoo_is_complete() {
        let nets = case_study_workloads();
        assert_eq!(nets.len(), 5);
        let names: Vec<&str> = nets.iter().map(|n| n.name()).collect();
        assert_eq!(
            names,
            ["FSRCNN", "DMCNN-VD", "MCCNN", "MobileNetV1", "ResNet18"]
        );
        for n in &nets {
            n.validate().unwrap();
        }
    }

    #[test]
    fn validation_set_members() {
        let nets = validation_workloads();
        assert_eq!(nets.len(), 3);
        assert_eq!(nets[2].name(), "ReferenceNet");
    }

    #[test]
    fn fsrcnn_matches_table_1b_regime() {
        let s = WorkloadSummary::of(&fsrcnn());
        // Table I(b): 15.6 KB weights, 28.5 MB max feature map, 10.9 MB average.
        assert!(
            s.total_weight_bytes < 32 * 1024,
            "weights {}",
            s.total_weight_bytes
        );
        assert!(s.max_feature_map_bytes > 20 * 1024 * 1024);
        assert!(s.avg_feature_map_bytes > 5 * 1024 * 1024);
    }

    #[test]
    fn dmcnn_vd_matches_table_1b_regime() {
        let s = WorkloadSummary::of(&dmcnn_vd());
        // Table I(b): 651.3 KB weights, 26.7 MB max feature map.
        assert!(s.total_weight_bytes > 400 * 1024 && s.total_weight_bytes < 1024 * 1024);
        assert!(s.max_feature_map_bytes > 20 * 1024 * 1024);
    }

    #[test]
    fn mccnn_matches_table_1b_regime() {
        let s = WorkloadSummary::of(&mccnn());
        // Table I(b): 108.6 KB weights, 29.1 MB max feature map.
        assert!(s.total_weight_bytes > 64 * 1024 && s.total_weight_bytes < 256 * 1024);
        assert!(s.max_feature_map_bytes > 20 * 1024 * 1024);
    }

    #[test]
    fn mobilenet_matches_table_1b_regime() {
        let s = WorkloadSummary::of(&mobilenet_v1());
        // Table I(b): ~4 MB weights, feature maps well below the weights.
        assert!(s.total_weight_bytes > 3 * 1024 * 1024 && s.total_weight_bytes < 6 * 1024 * 1024);
        assert!(s.max_feature_map_bytes < 4 * 1024 * 1024);
    }

    #[test]
    fn resnet18_matches_table_1b_regime() {
        let s = WorkloadSummary::of(&resnet18());
        // Table I(b): ~11 MB weights.
        assert!(s.total_weight_bytes > 9 * 1024 * 1024 && s.total_weight_bytes < 14 * 1024 * 1024);
        assert!(s.max_feature_map_bytes < 8 * 1024 * 1024);
    }

    #[test]
    fn reference_net_shape() {
        let net = reference_net();
        // 10 layers of K=32 3x3 plus one final K=16 1x1 layer.
        assert_eq!(net.len(), 11);
        assert_eq!(net.layers().last().unwrap().dims.fx, 1);
        assert_eq!(net.layers().last().unwrap().dims.k, 16);
        assert!(net.is_chain());
    }

    #[test]
    fn fsrcnn_final_output_is_960_by_540() {
        let net = fsrcnn();
        let last = net.layers().last().unwrap();
        assert_eq!((last.dims.ox, last.dims.oy), (960, 540));
    }

    #[test]
    fn resnet18_contains_branches() {
        let net = resnet18();
        assert!(!net.is_chain());
        // Residual adds exist.
        assert!(net
            .layers()
            .iter()
            .any(|l| l.op == crate::layer::OpType::Add));
    }

    #[test]
    fn mobilenet_contains_depthwise() {
        let net = mobilenet_v1();
        let dw = net
            .layers()
            .iter()
            .filter(|l| l.op == crate::layer::OpType::DepthwiseConv)
            .count();
        assert_eq!(dw, 13);
    }
}
