//! Activation-dominant image-restoration workloads: FSRCNN, DMCNN-VD, MC-CNN
//! and the custom reference network from the validation section.

use crate::dims::LayerDims;
use crate::layer::{Layer, LayerId, OpType};
use crate::network::Network;

#[allow(clippy::too_many_arguments)]
fn chain_conv(
    net: &mut Network,
    prev: Option<LayerId>,
    name: &str,
    k: u64,
    c: u64,
    ox: u64,
    oy: u64,
    f: u64,
) -> LayerId {
    // All restoration networks use "same" convolutions: the spatial size is
    // preserved through symmetric zero padding of (f - 1) / 2.
    let pad = (f - 1) / 2;
    let layer = Layer::new(
        name,
        OpType::Conv,
        LayerDims::conv(k, c, ox, oy, f, f).with_padding(pad, pad),
    );
    let preds: Vec<LayerId> = prev.into_iter().collect();
    net.add_layer(layer, &preds)
        .expect("chain construction cannot fail")
}

/// FSRCNN super-resolution network \[5\] producing a 960×540 output.
///
/// Eight convolution layers: 5×5 feature extraction (d = 56), 1×1 shrinking
/// (s = 12), four 3×3 mapping layers, 1×1 expanding and a 9×9 reconstruction
/// layer. All layers run at the 960×540 output resolution, which is what makes
/// the workload strongly activation dominant (Table I(b): 15.6 KB of weights
/// versus a 28.5 MB peak feature map).
pub fn fsrcnn() -> Network {
    let mut net = Network::new("FSRCNN");
    let (w, h) = (960, 540);
    let l1 = chain_conv(&mut net, None, "feature_extract_5x5", 56, 1, w, h, 5);
    let l2 = chain_conv(&mut net, Some(l1), "shrink_1x1", 12, 56, w, h, 1);
    let l3 = chain_conv(&mut net, Some(l2), "map1_3x3", 12, 12, w, h, 3);
    let l4 = chain_conv(&mut net, Some(l3), "map2_3x3", 12, 12, w, h, 3);
    let l5 = chain_conv(&mut net, Some(l4), "map3_3x3", 12, 12, w, h, 3);
    let l6 = chain_conv(&mut net, Some(l5), "map4_3x3", 12, 12, w, h, 3);
    let l7 = chain_conv(&mut net, Some(l6), "expand_1x1", 56, 12, w, h, 1);
    // The 9x9 stride-3 deconvolution is modelled on the output grid with its
    // effective taps per output pixel (9/3 = 3 per axis), which preserves the
    // MAC count and data volumes of the transposed convolution.
    let _l8 = chain_conv(&mut net, Some(l7), "reconstruct_deconv9x9", 1, 56, w, h, 3);
    net
}

/// DMCNN-VD demosaicing network \[30\]: a deep stack of 3×3 convolutions with 64
/// channels running at full image resolution (768×576 here).
///
/// Table I(b) regime: ~650 KB of weights, ~26 MB peak feature map.
pub fn dmcnn_vd() -> Network {
    let mut net = Network::new("DMCNN-VD");
    let (w, h) = (768, 576);
    let mut prev = chain_conv(&mut net, None, "conv1_3x3", 64, 4, w, h, 3);
    for i in 2..=19 {
        prev = chain_conv(
            &mut net,
            Some(prev),
            &format!("conv{i}_3x3"),
            64,
            64,
            w,
            h,
            3,
        );
    }
    let _last = chain_conv(&mut net, Some(prev), "conv20_output", 12, 64, w, h, 3);
    net
}

/// MC-CNN fast stereo-matching network \[33\]: 3×3 convolutions with 32 channels
/// at 1280×720, followed by a 1×1 similarity layer.
///
/// Table I(b) regime: ~100 KB of weights, ~29 MB peak feature map.
pub fn mccnn() -> Network {
    let mut net = Network::new("MCCNN");
    let (w, h) = (1280, 720);
    let mut prev = chain_conv(&mut net, None, "conv1_3x3", 32, 1, w, h, 3);
    for i in 2..=12 {
        prev = chain_conv(
            &mut net,
            Some(prev),
            &format!("conv{i}_3x3"),
            32,
            32,
            w,
            h,
            3,
        );
    }
    let _last = chain_conv(&mut net, Some(prev), "similarity_1x1", 1, 32, w, h, 1);
    net
}

/// The custom reference network of the validation section (Section IV):
/// ten 3×3 layers with K = 32 followed by a final 1×1 layer with K = 16,
/// operating on a 1280×720×3 input.
pub fn reference_net() -> Network {
    let mut net = Network::new("ReferenceNet");
    let (w, h) = (1280, 720);
    let mut prev = chain_conv(&mut net, None, "conv1_3x3", 32, 3, w, h, 3);
    for i in 2..=10 {
        prev = chain_conv(
            &mut net,
            Some(prev),
            &format!("conv{i}_3x3"),
            32,
            32,
            w,
            h,
            3,
        );
    }
    let _last = chain_conv(&mut net, Some(prev), "conv11_1x1", 16, 32, w, h, 1);
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsrcnn_layer_count_and_chain() {
        let net = fsrcnn();
        assert_eq!(net.len(), 8);
        assert!(net.is_chain());
        assert_eq!(net.layers()[0].dims.c, 1);
        assert_eq!(net.layers()[0].dims.k, 56);
    }

    #[test]
    fn fsrcnn_weight_budget_fits_32kb_lb() {
        // The case studies rely on all FSRCNN weights fitting in the
        // Meta-proto-like DF architecture's 32 KB weight local buffer.
        let total: u64 = fsrcnn().layers().iter().map(|l| l.weight_bytes()).sum();
        assert!(total < 32 * 1024, "total weights {total}");
    }

    #[test]
    fn dmcnn_vd_depth() {
        let net = dmcnn_vd();
        assert_eq!(net.len(), 20);
        assert!(net.is_chain());
    }

    #[test]
    fn mccnn_spatial_resolution() {
        let net = mccnn();
        for l in net.layers() {
            assert_eq!((l.dims.ox, l.dims.oy), (1280, 720));
        }
    }

    #[test]
    fn reference_net_channels() {
        let net = reference_net();
        for l in &net.layers()[1..10] {
            assert_eq!(l.dims.k, 32);
            assert_eq!(l.dims.c, 32);
        }
    }
}
