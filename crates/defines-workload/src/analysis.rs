//! Workload statistics reproducing Table I(b) of the paper.

use crate::layer::OpType;
use crate::network::Network;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of a workload.
///
/// These are the quantities listed in Table I(b) of the paper: average and
/// maximum feature-map size, and total weight size, which together indicate
/// whether a workload is *activation-dominant* (FSRCNN, DMCNN-VD, MC-CNN) or
/// *weight-dominant* (MobileNetV1, ResNet18).
///
/// ```
/// use defines_workload::models;
/// use defines_workload::analysis::WorkloadSummary;
///
/// let s = WorkloadSummary::of(&models::mobilenet_v1());
/// assert!(s.is_weight_dominant());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadSummary {
    /// Number of layers.
    pub layer_count: usize,
    /// Average per-layer output feature-map size in bytes.
    pub avg_feature_map_bytes: u64,
    /// Maximum per-layer output feature-map size in bytes.
    pub max_feature_map_bytes: u64,
    /// Total weight footprint in bytes.
    pub total_weight_bytes: u64,
    /// Total number of MAC operations for one inference.
    pub total_macs: u64,
}

impl WorkloadSummary {
    /// Computes the summary of a network.
    pub fn of(net: &Network) -> Self {
        let mut total_fm = 0u64;
        let mut max_fm = 0u64;
        let mut total_w = 0u64;
        let mut total_macs = 0u64;
        let mut act_layers = 0u64;
        for l in net.layers() {
            let fm = l.output_bytes();
            if l.op != OpType::Add {
                total_fm += fm;
                act_layers += 1;
                max_fm = max_fm.max(fm);
            }
            total_w += l.weight_bytes();
            total_macs += l.macs();
        }
        Self {
            layer_count: net.len(),
            avg_feature_map_bytes: total_fm.checked_div(act_layers).unwrap_or(0),
            max_feature_map_bytes: max_fm,
            total_weight_bytes: total_w,
            total_macs,
        }
    }

    /// A workload is activation-dominant when its average feature map is
    /// larger than its entire weight footprint.
    pub fn is_activation_dominant(&self) -> bool {
        self.avg_feature_map_bytes > self.total_weight_bytes
    }

    /// Convenience negation of [`WorkloadSummary::is_activation_dominant`].
    pub fn is_weight_dominant(&self) -> bool {
        !self.is_activation_dominant()
    }
}

/// Formats a byte count in the mixed KB/MB units used by Table I(b).
///
/// ```
/// assert_eq!(defines_workload::analysis::format_bytes(15_976), "15.6 KB");
/// assert_eq!(defines_workload::analysis::format_bytes(29_900_000), "28.5 MB");
/// ```
pub fn format_bytes(bytes: u64) -> String {
    const KB: f64 = 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= MB {
        format!("{:.1} MB", b / MB)
    } else if b >= KB {
        format!("{:.1} KB", b / KB)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn activation_dominant_workloads() {
        for net in [models::fsrcnn(), models::dmcnn_vd(), models::mccnn()] {
            let s = WorkloadSummary::of(&net);
            assert!(
                s.is_activation_dominant(),
                "{} should be activation dominant: {s:?}",
                net.name()
            );
        }
    }

    #[test]
    fn weight_dominant_workloads() {
        for net in [models::mobilenet_v1(), models::resnet18()] {
            let s = WorkloadSummary::of(&net);
            assert!(
                s.is_weight_dominant(),
                "{} should be weight dominant: {s:?}",
                net.name()
            );
        }
    }

    #[test]
    fn format_bytes_units() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.0 KB");
        assert!(format_bytes(4 * 1024 * 1024).ends_with("MB"));
    }

    #[test]
    fn summary_totals_are_sums() {
        let net = models::reference_net();
        let s = WorkloadSummary::of(&net);
        let macs: u64 = net.layers().iter().map(|l| l.macs()).sum();
        assert_eq!(s.total_macs, macs);
        assert_eq!(s.layer_count, net.len());
        assert!(s.max_feature_map_bytes >= s.avg_feature_map_bytes);
    }
}
