//! JSON workload loader: parses a [`WorkloadDoc`] and turns it into a
//! validated [`Network`], inferring omitted shapes.
//!
//! # Shape inference
//!
//! Layers are processed in document order; every `inputs` entry must name an
//! earlier layer. For a layer with producers, omitted dimensions are derived:
//!
//! * `c` (input channels) — the first producer's output channels `k`. For the
//!   per-channel operators (`DepthwiseConv`, `Pooling`, `Add`) the convention
//!   `c = k` is applied instead.
//! * `k` (output channels) — for per-channel operators only, the producer's
//!   `k` (a dense `Conv` must state its `k`).
//! * `ox` / `oy` — the standard convolution arithmetic
//!   `(producer_extent + 2 * pad - filter) / stride + 1`.
//! * `batch` — the producer's batch size.
//!
//! Network-input layers (empty `inputs`) must state `k`, `c`, `ox` and `oy`
//! explicitly (except `Conv`'s `c`-only inference has nothing to draw from).
//!
//! # Validation
//!
//! Every error names the offending layer: unknown operators, references to
//! undeclared producers, channel mismatches against the producer, spatial
//! regions larger than what the producer (plus padding) supplies, `Add`
//! layers without exactly two congruent inputs, and zero-sized dimensions
//! are all rejected.
//!
//! # Bring your own network
//!
//! ```
//! let json = r#"{
//!   "name": "my-edge-net",
//!   "layers": [
//!     {"name": "stem", "op": "Conv", "inputs": [],
//!      "k": 16, "c": 3, "ox": 128, "oy": 128,
//!      "fx": 3, "fy": 3, "padding": [1, 1]},
//!     {"name": "body", "op": "Conv", "inputs": ["stem"],
//!      "k": 16, "fx": 3, "fy": 3, "padding": [1, 1]},
//!     {"name": "pool", "op": "Pooling", "inputs": ["body"],
//!      "fx": 2, "fy": 2, "stride": [2, 2]},
//!     {"name": "head", "op": "Conv", "inputs": ["pool"], "k": 4}
//!   ]
//! }"#;
//!
//! let net = defines_workload::loader::from_json_str(json).unwrap();
//! assert_eq!(net.len(), 4);
//! // `body` inferred c = 16 (stem's k) and ox/oy = 128 ("same" padding);
//! // `pool` inferred k = c = 16 and ox/oy = 64; `head` runs at 64x64.
//! let head = net.layers().last().unwrap();
//! assert_eq!((head.dims.c, head.dims.ox, head.dims.oy), (16, 64, 64));
//! ```

use crate::dims::{input_extent, LayerDims};
use crate::layer::{Layer, LayerId, OpType};
use crate::network::Network;
use crate::schema::{parse_op, LayerSpec, WorkloadDoc, FORMAT};
use serde::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Errors produced while loading a workload document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The file could not be read.
    Io {
        /// The path that failed.
        path: String,
        /// The OS error message.
        message: String,
    },
    /// The text is not valid JSON.
    Json(String),
    /// The JSON is valid but the document structure is not (wrong top-level
    /// shape, missing `name`/`layers`, unsupported `format` tag, …).
    Document(String),
    /// A specific layer is invalid; the message explains why.
    Layer {
        /// Name of the offending layer.
        layer: String,
        /// What is wrong with it.
        message: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Io { path, message } => {
                write!(f, "cannot read workload file '{path}': {message}")
            }
            WorkloadError::Json(message) => write!(f, "invalid workload JSON: {message}"),
            WorkloadError::Document(message) => {
                write!(f, "invalid workload document: {message}")
            }
            WorkloadError::Layer { layer, message } => write!(f, "layer '{layer}': {message}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl WorkloadError {
    fn layer(layer: &str, message: impl Into<String>) -> Self {
        WorkloadError::Layer {
            layer: layer.to_string(),
            message: message.into(),
        }
    }
}

/// Loads a workload from JSON text.
///
/// # Errors
///
/// Returns [`WorkloadError::Json`] for malformed JSON,
/// [`WorkloadError::Document`] for structural problems and
/// [`WorkloadError::Layer`] (naming the layer) for per-layer problems.
pub fn from_json_str(json: &str) -> Result<Network, WorkloadError> {
    let value = serde_json::from_str(json).map_err(|e| WorkloadError::Json(e.to_string()))?;
    let doc = document_from_value(&value)?;
    network_from_doc(&doc)
}

/// Loads a workload from a JSON file.
///
/// # Errors
///
/// Returns [`WorkloadError::Io`] when the file cannot be read, otherwise the
/// same errors as [`from_json_str`].
pub fn from_json_file(path: impl AsRef<Path>) -> Result<Network, WorkloadError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| WorkloadError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    from_json_str(&text)
}

// ---------------------------------------------------------------------------
// JSON value -> WorkloadDoc
// ---------------------------------------------------------------------------

/// The keys a layer object may carry; anything else is a typo worth rejecting.
const LAYER_KEYS: [&str; 14] = [
    "name",
    "op",
    "inputs",
    "k",
    "c",
    "ox",
    "oy",
    "fx",
    "fy",
    "stride",
    "padding",
    "batch",
    "act_bits",
    "weight_bits",
];

/// Extracts a [`WorkloadDoc`] from a parsed JSON value.
///
/// # Errors
///
/// Returns [`WorkloadError::Document`] or [`WorkloadError::Layer`] with a
/// message naming the offending field.
pub fn document_from_value(value: &Value) -> Result<WorkloadDoc, WorkloadError> {
    let entries = value.as_object().ok_or_else(|| {
        WorkloadError::Document(format!(
            "expected a JSON object at the top level, found {}",
            value.type_name()
        ))
    })?;
    for (key, _) in entries {
        if !matches!(key.as_str(), "format" | "name" | "layers") {
            return Err(WorkloadError::Document(format!(
                "unknown top-level key '{key}' (expected format, name, layers)"
            )));
        }
    }

    let format = match value.get("format") {
        None => None,
        Some(v) if v.is_null() => None,
        Some(v) => {
            let tag = v
                .as_str()
                .ok_or_else(|| WorkloadError::Document("'format' must be a string".to_string()))?;
            if tag != FORMAT {
                return Err(WorkloadError::Document(format!(
                    "unsupported format tag '{tag}' (this loader reads '{FORMAT}')"
                )));
            }
            Some(tag.to_string())
        }
    };

    let name = value
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| WorkloadError::Document("missing or non-string 'name'".to_string()))?
        .to_string();

    let layers_value = value
        .get("layers")
        .ok_or_else(|| WorkloadError::Document("missing 'layers' array".to_string()))?;
    let layer_values = layers_value.as_array().ok_or_else(|| {
        WorkloadError::Document(format!(
            "'layers' must be an array, found {}",
            layers_value.type_name()
        ))
    })?;

    let mut layers = Vec::with_capacity(layer_values.len());
    for (index, lv) in layer_values.iter().enumerate() {
        layers.push(layer_spec_from_value(lv, index)?);
    }

    Ok(WorkloadDoc {
        format,
        name,
        layers,
    })
}

fn layer_spec_from_value(value: &Value, index: usize) -> Result<LayerSpec, WorkloadError> {
    let anon = format!("#{index}");
    let entries = value.as_object().ok_or_else(|| {
        WorkloadError::layer(
            &anon,
            format!(
                "each layer must be a JSON object, found {}",
                value.type_name()
            ),
        )
    })?;
    let name = value
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| WorkloadError::layer(&anon, "missing or non-string 'name'"))?
        .to_string();

    for (key, _) in entries {
        if !LAYER_KEYS.contains(&key.as_str()) {
            return Err(WorkloadError::layer(
                &name,
                format!(
                    "unknown key '{key}' (expected one of: {})",
                    LAYER_KEYS.join(", ")
                ),
            ));
        }
    }

    let op = value
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| WorkloadError::layer(&name, "missing or non-string 'op'"))?
        .to_string();

    let inputs = match value.get("inputs") {
        None => Vec::new(),
        Some(v) => {
            let items = v.as_array().ok_or_else(|| {
                WorkloadError::layer(&name, "'inputs' must be an array of layer names")
            })?;
            items
                .iter()
                .map(|item| {
                    item.as_str().map(str::to_string).ok_or_else(|| {
                        WorkloadError::layer(&name, "'inputs' entries must be strings")
                    })
                })
                .collect::<Result<Vec<_>, _>>()?
        }
    };

    Ok(LayerSpec {
        name: name.clone(),
        op,
        inputs,
        k: opt_dim(value, "k", &name)?,
        c: opt_dim(value, "c", &name)?,
        ox: opt_dim(value, "ox", &name)?,
        oy: opt_dim(value, "oy", &name)?,
        fx: opt_dim(value, "fx", &name)?,
        fy: opt_dim(value, "fy", &name)?,
        stride: opt_pair(value, "stride", &name)?,
        padding: opt_pair(value, "padding", &name)?,
        batch: opt_dim(value, "batch", &name)?,
        act_bits: opt_bits(value, "act_bits", &name)?,
        weight_bits: opt_bits(value, "weight_bits", &name)?,
    })
}

fn opt_dim(value: &Value, key: &str, layer: &str) -> Result<Option<u64>, WorkloadError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) if v.is_null() => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            WorkloadError::layer(
                layer,
                format!(
                    "'{key}' must be a non-negative integer, found {}",
                    v.type_name()
                ),
            )
        }),
    }
}

fn opt_bits(value: &Value, key: &str, layer: &str) -> Result<Option<u32>, WorkloadError> {
    match opt_dim(value, key, layer)? {
        None => Ok(None),
        Some(bits) => u32::try_from(bits)
            .ok()
            .filter(|&b| b > 0)
            .map(Some)
            .ok_or_else(|| {
                WorkloadError::layer(layer, format!("'{key}' must be a positive bit width"))
            }),
    }
}

fn opt_pair(value: &Value, key: &str, layer: &str) -> Result<Option<(u64, u64)>, WorkloadError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) if v.is_null() => Ok(None),
        Some(v) => {
            let items = v.as_array().filter(|a| a.len() == 2).ok_or_else(|| {
                WorkloadError::layer(layer, format!("'{key}' must be a 2-element array [x, y]"))
            })?;
            let x = items[0].as_u64();
            let y = items[1].as_u64();
            match (x, y) {
                (Some(x), Some(y)) => Ok(Some((x, y))),
                _ => Err(WorkloadError::layer(
                    layer,
                    format!("'{key}' entries must be non-negative integers"),
                )),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// WorkloadDoc -> Network (shape inference + validation)
// ---------------------------------------------------------------------------

/// Builds a validated [`Network`] from a document, applying the module-level
/// shape-inference rules.
///
/// # Errors
///
/// Returns [`WorkloadError::Document`] for an empty document and
/// [`WorkloadError::Layer`] — naming the layer — for everything else.
pub fn network_from_doc(doc: &WorkloadDoc) -> Result<Network, WorkloadError> {
    if doc.layers.is_empty() {
        return Err(WorkloadError::Document(format!(
            "workload '{}' contains no layers",
            doc.name
        )));
    }

    let mut net = Network::new(doc.name.clone());
    let mut by_name: BTreeMap<&str, LayerId> = BTreeMap::new();

    for spec in &doc.layers {
        let name = spec.name.as_str();
        if by_name.contains_key(name) {
            return Err(WorkloadError::layer(name, "duplicate layer name"));
        }

        let op = parse_op(&spec.op).ok_or_else(|| {
            WorkloadError::layer(
                name,
                format!(
                    "unknown op '{}' (expected Conv, DepthwiseConv, Pooling, Add)",
                    spec.op
                ),
            )
        })?;

        // Resolve producer names. Only already-declared layers are legal, so
        // the stored order stays a valid topological order.
        let mut preds = Vec::with_capacity(spec.inputs.len());
        for input in &spec.inputs {
            let id = by_name.get(input.as_str()).copied().ok_or_else(|| {
                WorkloadError::layer(
                    name,
                    format!(
                        "references unknown input layer '{input}' \
                         (producers must be declared before their consumers)"
                    ),
                )
            })?;
            preds.push(id);
        }
        match op {
            OpType::Add if preds.len() != 2 => {
                return Err(WorkloadError::layer(
                    name,
                    format!("Add layers take exactly 2 inputs, got {}", preds.len()),
                ));
            }
            OpType::Conv | OpType::DepthwiseConv | OpType::Pooling if preds.len() > 1 => {
                return Err(WorkloadError::layer(
                    name,
                    format!(
                        "{} layers take at most 1 input, got {}",
                        spec.op,
                        preds.len()
                    ),
                ));
            }
            _ => {}
        }

        let dims = infer_dims(spec, op, &preds, &net)?;
        let mut layer = Layer::new(name, op, dims);
        if let Some(bits) = spec.act_bits {
            layer = layer.with_act_bits(bits);
        }
        if let Some(bits) = spec.weight_bits {
            layer = layer.with_weight_bits(bits);
        }

        let id = net.add_layer(layer, &preds).map_err(|e| {
            // Unreachable in practice: name resolution already guarantees
            // valid predecessor ids. Keep the message anyway.
            WorkloadError::layer(name, e.to_string())
        })?;
        by_name.insert(name, id);
    }

    Ok(net)
}

/// Shape inference and congruence checking for one layer.
fn infer_dims(
    spec: &LayerSpec,
    op: OpType,
    preds: &[LayerId],
    net: &Network,
) -> Result<LayerDims, WorkloadError> {
    let name = spec.name.as_str();
    let producer = preds.first().map(|&p| net.layer(p));
    let (fx, fy) = (spec.fx.unwrap_or(1), spec.fy.unwrap_or(1));
    let (stride_x, stride_y) = spec.stride.unwrap_or((1, 1));
    let (pad_x, pad_y) = spec.padding.unwrap_or((0, 0));
    if fx == 0 || fy == 0 {
        return Err(WorkloadError::layer(name, "filter size must be positive"));
    }
    if stride_x == 0 || stride_y == 0 {
        return Err(WorkloadError::layer(name, "stride must be positive"));
    }

    // Output channels: Conv must say; per-channel ops may inherit.
    let k = match (op, spec.k, producer) {
        (_, Some(k), _) => k,
        (OpType::Conv, None, _) => {
            return Err(WorkloadError::layer(
                name,
                "missing required dimension 'k' (output channels)",
            ));
        }
        (_, None, Some(p)) => p.dims.k,
        (_, None, None) => {
            return Err(WorkloadError::layer(
                name,
                "network-input layer must state 'k' explicitly",
            ));
        }
    };

    // Input channels: Conv reads the producer's k; per-channel ops use c = k.
    let c = match op {
        OpType::Conv => match (spec.c, producer) {
            (Some(c), _) => c,
            (None, Some(p)) => p.dims.k,
            (None, None) => {
                return Err(WorkloadError::layer(
                    name,
                    "network-input layer must state 'c' explicitly",
                ));
            }
        },
        OpType::DepthwiseConv | OpType::Pooling | OpType::Add => spec.c.unwrap_or(k),
    };

    // Spatial extents: explicit, or from the convolution arithmetic.
    let infer_extent = |explicit: Option<u64>,
                        producer_extent: Option<u64>,
                        pad: u64,
                        filter: u64,
                        stride: u64,
                        axis: &str|
     -> Result<u64, WorkloadError> {
        match (explicit, producer_extent) {
            (Some(v), _) => Ok(v),
            (None, Some(pe)) => {
                let available = pe + 2 * pad;
                if available < filter {
                    return Err(WorkloadError::layer(
                        name,
                        format!(
                            "cannot infer '{axis}': the {filter}-wide filter does not fit the \
                             producer's {pe} elements (+{} padding)",
                            2 * pad
                        ),
                    ));
                }
                Ok((available - filter) / stride + 1)
            }
            (None, None) => Err(WorkloadError::layer(
                name,
                format!("network-input layer must state '{axis}' explicitly"),
            )),
        }
    };
    let ox = infer_extent(
        spec.ox,
        producer.map(|p| p.dims.ox),
        pad_x,
        fx,
        stride_x,
        "ox",
    )?;
    let oy = infer_extent(
        spec.oy,
        producer.map(|p| p.dims.oy),
        pad_y,
        fy,
        stride_y,
        "oy",
    )?;

    let b = match (spec.batch, producer) {
        (Some(b), _) => b,
        (None, Some(p)) => p.dims.b,
        (None, None) => 1,
    };

    for (value, what) in [(b, "batch"), (k, "k"), (c, "c"), (ox, "ox"), (oy, "oy")] {
        if value == 0 {
            return Err(WorkloadError::layer(
                name,
                format!("dimension '{what}' must be positive"),
            ));
        }
    }

    let dims = LayerDims {
        b,
        k,
        c,
        ox,
        oy,
        fx,
        fy,
        stride_x,
        stride_y,
        pad_x,
        pad_y,
    };

    check_against_producers(spec, op, &dims, preds, net)?;
    Ok(dims)
}

/// Congruence checks between a layer's dims and what its producers provide.
fn check_against_producers(
    spec: &LayerSpec,
    op: OpType,
    dims: &LayerDims,
    preds: &[LayerId],
    net: &Network,
) -> Result<(), WorkloadError> {
    let name = spec.name.as_str();

    // Per-channel operators keep the repository-wide convention c = k; an
    // explicit contradicting 'c' would silently change the cost model's
    // channel loop, so reject it for all three operators.
    if matches!(op, OpType::DepthwiseConv | OpType::Pooling | OpType::Add) && dims.c != dims.k {
        return Err(WorkloadError::layer(
            name,
            format!(
                "{} layers are per-channel and require c = k, got c={} and k={}",
                spec.op, dims.c, dims.k
            ),
        ));
    }

    if op == OpType::Add {
        // Both operands must match the declared output exactly, including
        // the batch size.
        for &p in preds {
            let pl = net.layer(p);
            if pl.dims.k != dims.k || pl.dims.ox != dims.ox || pl.dims.oy != dims.oy {
                return Err(WorkloadError::layer(
                    name,
                    format!(
                        "Add operands must match: this layer is {}x{}x{} (k x ox x oy) but \
                         input '{}' produces {}x{}x{}",
                        dims.k, dims.ox, dims.oy, pl.name, pl.dims.k, pl.dims.ox, pl.dims.oy
                    ),
                ));
            }
            if pl.dims.b != dims.b {
                return Err(WorkloadError::layer(
                    name,
                    format!(
                        "batch size {} does not match producer '{}' batch size {}",
                        dims.b, pl.name, pl.dims.b
                    ),
                ));
            }
        }
        return Ok(());
    }

    let Some(&p) = preds.first() else {
        return Ok(());
    };
    let pl = net.layer(p);

    // Channel congruence.
    let consumed = match op {
        OpType::Conv => dims.c,
        OpType::DepthwiseConv | OpType::Pooling | OpType::Add => dims.k,
    };
    if consumed != pl.dims.k {
        let what = if op == OpType::Conv {
            format!("input channels c={}", dims.c)
        } else {
            format!("per-channel operator with k={}", dims.k)
        };
        return Err(WorkloadError::layer(
            name,
            format!(
                "{what} does not match producer '{}' output channels k={}",
                pl.name, pl.dims.k
            ),
        ));
    }

    // Spatial feasibility: the producer (plus declared padding) must cover
    // the input region the output demands.
    let need_x = input_extent(dims.ox, dims.stride_x, dims.fx);
    let need_y = input_extent(dims.oy, dims.stride_y, dims.fy);
    let have_x = pl.dims.ox + 2 * dims.pad_x;
    let have_y = pl.dims.oy + 2 * dims.pad_y;
    if need_x > have_x || need_y > have_y {
        return Err(WorkloadError::layer(
            name,
            format!(
                "output {}x{} needs a {need_x}x{need_y} input region but producer '{}' \
                 provides {have_x}x{have_y} (output {}x{} plus padding)",
                dims.ox, dims.oy, pl.name, pl.dims.ox, pl.dims.oy
            ),
        ));
    }

    // Batch congruence.
    if dims.b != pl.dims.b {
        return Err(WorkloadError::layer(
            name,
            format!(
                "batch size {} does not match producer '{}' batch size {}",
                dims.b, pl.name, pl.dims.b
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use crate::schema;

    #[test]
    fn zoo_models_round_trip_through_json() {
        for net in [
            models::fsrcnn(),
            models::dmcnn_vd(),
            models::mccnn(),
            models::mobilenet_v1(),
            models::resnet18(),
            models::reference_net(),
        ] {
            let json = schema::to_json_pretty(&net).unwrap();
            let reloaded = from_json_str(&json).unwrap();
            assert_eq!(reloaded, net, "{} must round-trip", net.name());
        }
    }

    #[test]
    fn shape_inference_fills_channels_and_extents() {
        let json = r#"{
          "name": "inferred",
          "layers": [
            {"name": "a", "op": "Conv", "k": 8, "c": 3, "ox": 32, "oy": 32,
             "fx": 3, "fy": 3, "padding": [1, 1]},
            {"name": "b", "op": "Conv", "inputs": ["a"], "k": 16, "fx": 3, "fy": 3},
            {"name": "p", "op": "Pooling", "inputs": ["b"], "fx": 2, "fy": 2, "stride": [2, 2]},
            {"name": "fc", "op": "Conv", "inputs": ["p"], "k": 10, "fx": 15, "fy": 15}
          ]
        }"#;
        let net = from_json_str(json).unwrap();
        let b = &net.layers()[1];
        assert_eq!((b.dims.c, b.dims.ox, b.dims.oy), (8, 30, 30));
        let p = &net.layers()[2];
        assert_eq!((p.dims.k, p.dims.c, p.dims.ox, p.dims.oy), (16, 16, 15, 15));
        let fc = &net.layers()[3];
        assert_eq!((fc.dims.c, fc.dims.ox, fc.dims.oy), (16, 1, 1));
    }

    #[test]
    fn unknown_op_names_the_layer() {
        let json = r#"{"name": "x", "layers": [
            {"name": "mystery", "op": "Softmax", "k": 4, "c": 4, "ox": 8, "oy": 8}
        ]}"#;
        let err = from_json_str(json).unwrap_err();
        assert_eq!(
            err.to_string(),
            "layer 'mystery': unknown op 'Softmax' (expected Conv, DepthwiseConv, Pooling, Add)"
        );
    }

    #[test]
    fn missing_edge_names_the_layer() {
        let json = r#"{"name": "x", "layers": [
            {"name": "a", "op": "Conv", "k": 4, "c": 3, "ox": 8, "oy": 8},
            {"name": "b", "op": "Conv", "inputs": ["nope"], "k": 4}
        ]}"#;
        let err = from_json_str(json).unwrap_err();
        assert!(
            err.to_string()
                .starts_with("layer 'b': references unknown input layer 'nope'"),
            "{err}"
        );
    }

    #[test]
    fn channel_mismatch_names_the_layer_and_producer() {
        let json = r#"{"name": "x", "layers": [
            {"name": "a", "op": "Conv", "k": 4, "c": 3, "ox": 8, "oy": 8},
            {"name": "b", "op": "Conv", "inputs": ["a"], "k": 4, "c": 7, "ox": 8, "oy": 8}
        ]}"#;
        let err = from_json_str(json).unwrap_err();
        assert_eq!(
            err.to_string(),
            "layer 'b': input channels c=7 does not match producer 'a' output channels k=4"
        );
    }

    #[test]
    fn oversized_spatial_region_is_rejected() {
        let json = r#"{"name": "x", "layers": [
            {"name": "a", "op": "Conv", "k": 4, "c": 3, "ox": 8, "oy": 8},
            {"name": "b", "op": "Conv", "inputs": ["a"], "k": 4, "ox": 16, "oy": 16, "fx": 3, "fy": 3}
        ]}"#;
        let err = from_json_str(json).unwrap_err();
        assert!(err.to_string().contains("layer 'b'"), "{err}");
        assert!(err.to_string().contains("input region"), "{err}");
    }

    #[test]
    fn add_arity_and_congruence_are_checked() {
        let one_input = r#"{"name": "x", "layers": [
            {"name": "a", "op": "Conv", "k": 4, "c": 3, "ox": 8, "oy": 8},
            {"name": "sum", "op": "Add", "inputs": ["a"]}
        ]}"#;
        let err = from_json_str(one_input).unwrap_err();
        assert_eq!(
            err.to_string(),
            "layer 'sum': Add layers take exactly 2 inputs, got 1"
        );

        let mismatched = r#"{"name": "x", "layers": [
            {"name": "a", "op": "Conv", "k": 4, "c": 3, "ox": 8, "oy": 8},
            {"name": "b", "op": "Conv", "inputs": ["a"], "k": 8, "ox": 8, "oy": 8},
            {"name": "sum", "op": "Add", "inputs": ["a", "b"]}
        ]}"#;
        let err = from_json_str(mismatched).unwrap_err();
        assert!(
            err.to_string()
                .contains("layer 'sum': Add operands must match"),
            "{err}"
        );
    }

    #[test]
    fn per_channel_c_must_equal_k() {
        // An explicit contradicting 'c' on any per-channel operator is
        // rejected, not silently fed into the cost model.
        for op in ["Pooling", "DepthwiseConv"] {
            let json = format!(
                r#"{{"name": "x", "layers": [
                    {{"name": "a", "op": "Conv", "k": 4, "c": 3, "ox": 8, "oy": 8}},
                    {{"name": "p", "op": "{op}", "inputs": ["a"], "c": 999}}
                ]}}"#
            );
            let err = from_json_str(&json).unwrap_err();
            assert!(err.to_string().contains("layer 'p'"), "{err}");
            assert!(err.to_string().contains("require c = k"), "{err}");
        }
        let add = r#"{"name": "x", "layers": [
            {"name": "a", "op": "Conv", "k": 4, "c": 3, "ox": 8, "oy": 8},
            {"name": "b", "op": "Conv", "inputs": ["a"], "k": 4, "ox": 8, "oy": 8},
            {"name": "sum", "op": "Add", "inputs": ["a", "b"], "c": 999}
        ]}"#;
        let err = from_json_str(add).unwrap_err();
        assert!(err.to_string().contains("layer 'sum'"), "{err}");
        assert!(err.to_string().contains("require c = k"), "{err}");
    }

    #[test]
    fn add_batch_must_match_producers() {
        let json = r#"{"name": "x", "layers": [
            {"name": "a", "op": "Conv", "k": 4, "c": 3, "ox": 8, "oy": 8},
            {"name": "b", "op": "Conv", "inputs": ["a"], "k": 4, "ox": 8, "oy": 8},
            {"name": "sum", "op": "Add", "inputs": ["a", "b"], "batch": 4}
        ]}"#;
        let err = from_json_str(json).unwrap_err();
        assert!(err.to_string().contains("layer 'sum'"), "{err}");
        assert!(err.to_string().contains("batch size 4"), "{err}");
    }

    #[test]
    fn source_layers_require_explicit_shapes() {
        for (json, needle) in [
            (
                r#"{"name": "x", "layers": [{"name": "a", "op": "Conv", "c": 3, "ox": 8, "oy": 8}]}"#,
                "'k'",
            ),
            (
                r#"{"name": "x", "layers": [{"name": "a", "op": "Conv", "k": 4, "ox": 8, "oy": 8}]}"#,
                "'c'",
            ),
            (
                r#"{"name": "x", "layers": [{"name": "a", "op": "Conv", "k": 4, "c": 3, "oy": 8}]}"#,
                "'ox'",
            ),
        ] {
            let err = from_json_str(json).unwrap_err();
            assert!(err.to_string().contains("layer 'a'"), "{err}");
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn typos_and_structural_problems_are_rejected() {
        assert!(matches!(
            from_json_str("[1, 2]").unwrap_err(),
            WorkloadError::Document(_)
        ));
        assert!(matches!(
            from_json_str("{\"name\": \"x\"}").unwrap_err(),
            WorkloadError::Document(_)
        ));
        assert!(matches!(
            from_json_str("{\"name\": \"x\", \"layers\": []}").unwrap_err(),
            WorkloadError::Document(_)
        ));
        assert!(matches!(
            from_json_str("{nope").unwrap_err(),
            WorkloadError::Json(_)
        ));
        // Unknown per-layer key (probable typo).
        let err = from_json_str(
            r#"{"name": "x", "layers": [
                {"name": "a", "op": "Conv", "k": 4, "c": 3, "ox": 8, "oy": 8, "strides": [2, 2]}
            ]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown key 'strides'"), "{err}");
        // Wrong format tag.
        let err = from_json_str(r#"{"format": "v999", "name": "x", "layers": []}"#).unwrap_err();
        assert!(err.to_string().contains("unsupported format tag"), "{err}");
    }

    #[test]
    fn duplicate_layer_names_are_rejected() {
        let json = r#"{"name": "x", "layers": [
            {"name": "a", "op": "Conv", "k": 4, "c": 3, "ox": 8, "oy": 8},
            {"name": "a", "op": "Conv", "inputs": ["a"], "k": 4}
        ]}"#;
        let err = from_json_str(json).unwrap_err();
        assert_eq!(err.to_string(), "layer 'a': duplicate layer name");
    }

    #[test]
    fn precisions_and_batch_are_loaded() {
        let json = r#"{"name": "x", "layers": [
            {"name": "a", "op": "Conv", "k": 4, "c": 3, "ox": 8, "oy": 8,
             "batch": 2, "act_bits": 16, "weight_bits": 4}
        ]}"#;
        let net = from_json_str(json).unwrap();
        let a = &net.layers()[0];
        assert_eq!(a.dims.b, 2);
        assert_eq!((a.act_bits, a.weight_bits), (16, 4));
    }
}
