//! DNN workload representation for the DeFiNES depth-first scheduling cost model.
//!
//! This crate provides:
//!
//! * [`Layer`] — a single DNN layer (convolution, depthwise convolution,
//!   pooling, fully-connected, element-wise add) described by its loop
//!   dimensions ([`LayerDims`]) and operator attributes,
//! * [`Network`] — a directed acyclic graph of layers with branch support,
//! * a model zoo ([`models`]) containing the five workloads used in the
//!   DeFiNES paper (FSRCNN, DMCNN-VD, MC-CNN, MobileNetV1, ResNet18) plus the
//!   11-layer reference network used for validation,
//! * a declarative JSON frontend — [`schema`] defines the document types and
//!   exports networks as JSON, [`loader`] parses documents back into
//!   validated networks with shape inference (see the reference files under
//!   `workloads/` at the repository root),
//! * [`analysis`] — utilities that reproduce the workload statistics of
//!   Table I(b) of the paper (average / maximum feature-map size and total
//!   weight size).
//!
//! # Example
//!
//! ```
//! use defines_workload::models;
//! use defines_workload::analysis::WorkloadSummary;
//!
//! let net = models::fsrcnn();
//! let summary = WorkloadSummary::of(&net);
//! // FSRCNN is activation dominant: feature maps are orders of magnitude
//! // larger than its total weight footprint.
//! assert!(summary.max_feature_map_bytes > 100 * summary.total_weight_bytes);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod dims;
pub mod layer;
pub mod loader;
pub mod models;
pub mod network;
pub mod schema;

pub use dims::{Dim, LayerDims};
pub use layer::{Layer, LayerId, OpType};
pub use loader::{from_json_file, from_json_str, WorkloadError};
pub use network::{Network, NetworkError};
pub use schema::{LayerSpec, WorkloadDoc};
