//! Loop-dimension vocabulary shared by the whole framework.
//!
//! DeFiNES (like ZigZag and Timeloop) describes a convolution-style layer by
//! its seven nested loops: batch `B`, output channels `K`, input channels `C`,
//! output spatial dimensions `OX`/`OY` and filter spatial dimensions `FX`/`FY`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the seven canonical convolution loop dimensions.
///
/// The spatial unrolling of a PE array and the temporal mapping of a layer are
/// both expressed in terms of these dimensions.
///
/// ```
/// use defines_workload::Dim;
/// assert_eq!(Dim::ALL.len(), 7);
/// assert_eq!(Dim::K.to_string(), "K");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dim {
    /// Batch dimension.
    B,
    /// Output-channel dimension.
    K,
    /// Input-channel dimension.
    C,
    /// Output feature-map horizontal dimension.
    OX,
    /// Output feature-map vertical dimension.
    OY,
    /// Filter (weight kernel) horizontal dimension.
    FX,
    /// Filter (weight kernel) vertical dimension.
    FY,
}

impl Dim {
    /// All seven dimensions, in canonical order.
    pub const ALL: [Dim; 7] = [Dim::B, Dim::K, Dim::C, Dim::OX, Dim::OY, Dim::FX, Dim::FY];

    /// The six dimensions that are typically non-trivial for inference
    /// (batch size is one for every workload in the paper).
    pub const SPATIAL_AND_CHANNEL: [Dim; 6] = [Dim::K, Dim::C, Dim::OX, Dim::OY, Dim::FX, Dim::FY];
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dim::B => "B",
            Dim::K => "K",
            Dim::C => "C",
            Dim::OX => "OX",
            Dim::OY => "OY",
            Dim::FX => "FX",
            Dim::FY => "FY",
        };
        f.write_str(s)
    }
}

/// The loop bounds of a single layer, together with stride and padding.
///
/// All sizes are in *elements*; the precision (bits per element) is a property
/// of the layer (see [`crate::Layer`]).
///
/// ```
/// use defines_workload::LayerDims;
///
/// let d = LayerDims::conv(16, 3, 32, 32, 3, 3).with_stride(2, 2);
/// assert_eq!(d.input_width(), 65);
/// assert_eq!(d.total_macs(), 16 * 3 * 32 * 32 * 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LayerDims {
    /// Batch size.
    pub b: u64,
    /// Number of output channels.
    pub k: u64,
    /// Number of input channels.
    pub c: u64,
    /// Output feature-map width.
    pub ox: u64,
    /// Output feature-map height.
    pub oy: u64,
    /// Filter width.
    pub fx: u64,
    /// Filter height.
    pub fy: u64,
    /// Horizontal stride.
    pub stride_x: u64,
    /// Vertical stride.
    pub stride_y: u64,
    /// Horizontal padding applied on each side of the input.
    pub pad_x: u64,
    /// Vertical padding applied on each side of the input.
    pub pad_y: u64,
}

impl LayerDims {
    /// Creates convolution-layer dimensions with stride 1 and zero padding.
    pub fn conv(k: u64, c: u64, ox: u64, oy: u64, fx: u64, fy: u64) -> Self {
        Self {
            b: 1,
            k,
            c,
            ox,
            oy,
            fx,
            fy,
            stride_x: 1,
            stride_y: 1,
            pad_x: 0,
            pad_y: 0,
        }
    }

    /// Returns a copy with the given strides.
    pub fn with_stride(mut self, sx: u64, sy: u64) -> Self {
        self.stride_x = sx;
        self.stride_y = sy;
        self
    }

    /// Returns a copy with the given symmetric padding.
    pub fn with_padding(mut self, px: u64, py: u64) -> Self {
        self.pad_x = px;
        self.pad_y = py;
        self
    }

    /// Returns a copy with the given batch size.
    pub fn with_batch(mut self, b: u64) -> Self {
        self.b = b;
        self
    }

    /// Loop bound of a given dimension.
    pub fn size(&self, dim: Dim) -> u64 {
        match dim {
            Dim::B => self.b,
            Dim::K => self.k,
            Dim::C => self.c,
            Dim::OX => self.ox,
            Dim::OY => self.oy,
            Dim::FX => self.fx,
            Dim::FY => self.fy,
        }
    }

    /// Width of the input region required to compute the full output width,
    /// excluding padding contributions that fall outside the real input.
    pub fn input_width(&self) -> u64 {
        input_extent(self.ox, self.stride_x, self.fx)
    }

    /// Height of the input region required to compute the full output height.
    pub fn input_height(&self) -> u64 {
        input_extent(self.oy, self.stride_y, self.fy)
    }

    /// Total number of multiply-accumulate operations in the layer.
    pub fn total_macs(&self) -> u64 {
        self.b * self.k * self.c * self.ox * self.oy * self.fx * self.fy
    }

    /// Number of output elements.
    pub fn output_elements(&self) -> u64 {
        self.b * self.k * self.ox * self.oy
    }

    /// Number of input elements (of the full required input region).
    pub fn input_elements(&self) -> u64 {
        self.b * self.c * self.input_width() * self.input_height()
    }

    /// Number of weight elements for a dense convolution.
    pub fn weight_elements(&self) -> u64 {
        self.k * self.c * self.fx * self.fy
    }
}

/// Input extent along one axis for `out` output elements with stride `s` and
/// kernel size `f`: `(out - 1) * s + f`.
///
/// ```
/// assert_eq!(defines_workload::dims::input_extent(6, 1, 3), 8);
/// assert_eq!(defines_workload::dims::input_extent(4, 2, 3), 9);
/// assert_eq!(defines_workload::dims::input_extent(0, 1, 3), 0);
/// ```
pub fn input_extent(out: u64, stride: u64, kernel: u64) -> u64 {
    if out == 0 {
        0
    } else {
        (out - 1) * stride + kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_display_roundtrip() {
        for d in Dim::ALL {
            assert!(!d.to_string().is_empty());
        }
        assert_eq!(Dim::OX.to_string(), "OX");
    }

    #[test]
    fn conv_dims_defaults() {
        let d = LayerDims::conv(8, 4, 16, 12, 3, 3);
        assert_eq!(d.b, 1);
        assert_eq!(d.stride_x, 1);
        assert_eq!(d.pad_y, 0);
        assert_eq!(d.size(Dim::K), 8);
        assert_eq!(d.size(Dim::OY), 12);
    }

    #[test]
    fn input_extent_edge_cases() {
        assert_eq!(input_extent(1, 1, 1), 1);
        assert_eq!(input_extent(1, 7, 3), 3);
        assert_eq!(input_extent(10, 1, 1), 10);
        assert_eq!(input_extent(0, 2, 5), 0);
    }

    #[test]
    fn mac_and_element_counts() {
        let d = LayerDims::conv(2, 3, 4, 5, 3, 3);
        assert_eq!(d.total_macs(), 2 * 3 * 4 * 5 * 9);
        assert_eq!(d.output_elements(), 2 * 4 * 5);
        assert_eq!(d.weight_elements(), 2 * 3 * 9);
        assert_eq!(d.input_elements(), 3 * 6 * 7);
    }

    #[test]
    fn strided_input_sizes() {
        let d = LayerDims::conv(1, 1, 112, 112, 3, 3).with_stride(2, 2);
        assert_eq!(d.input_width(), 225);
        assert_eq!(d.input_height(), 225);
    }
}
