//! Network DAG: layers connected by feature-map edges, with branch support.

use crate::layer::{Layer, LayerId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Errors produced while constructing or validating a [`Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// A predecessor id referenced a layer that does not exist (yet).
    UnknownPredecessor {
        /// The layer declaring the edge.
        layer: LayerId,
        /// The missing predecessor.
        predecessor: LayerId,
    },
    /// A layer listed itself as its own predecessor.
    SelfLoop(LayerId),
    /// The network contains no layers.
    Empty,
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::UnknownPredecessor { layer, predecessor } => {
                write!(
                    f,
                    "layer {layer} references unknown predecessor {predecessor}"
                )
            }
            NetworkError::SelfLoop(l) => write!(f, "layer {l} references itself as predecessor"),
            NetworkError::Empty => write!(f, "network contains no layers"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// A DNN workload: a DAG of [`Layer`]s.
///
/// Layers are stored in insertion order, which must be a valid topological
/// order (a layer may only reference already-inserted layers as
/// predecessors). This mirrors how the DeFiNES input files enumerate layers.
///
/// ```
/// use defines_workload::{Layer, LayerDims, Network, OpType};
///
/// let mut net = Network::new("tiny");
/// let a = net.add_layer(Layer::new("a", OpType::Conv, LayerDims::conv(8, 3, 16, 16, 3, 3)), &[]).unwrap();
/// let b = net.add_layer(Layer::new("b", OpType::Conv, LayerDims::conv(8, 8, 14, 14, 3, 3)), &[a]).unwrap();
/// assert_eq!(net.predecessors(b), &[a]);
/// assert_eq!(net.successors(a), vec![b]);
/// assert_eq!(net.sink_layers(), vec![b]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    layers: Vec<Layer>,
    predecessors: Vec<Vec<LayerId>>,
}

impl Network {
    /// Creates an empty network with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            layers: Vec::new(),
            predecessors: Vec::new(),
        }
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a layer whose inputs are the outputs of `predecessors`.
    ///
    /// An empty predecessor list marks a network-input layer (it reads the
    /// external input feature map).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::UnknownPredecessor`] if a predecessor id has not
    /// been added yet and [`NetworkError::SelfLoop`] if the layer references
    /// itself; this guarantees the stored order is a topological order.
    pub fn add_layer(
        &mut self,
        layer: Layer,
        predecessors: &[LayerId],
    ) -> Result<LayerId, NetworkError> {
        let id = LayerId(self.layers.len());
        for &p in predecessors {
            if p == id {
                return Err(NetworkError::SelfLoop(id));
            }
            if p.0 >= self.layers.len() {
                return Err(NetworkError::UnknownPredecessor {
                    layer: id,
                    predecessor: p,
                });
            }
        }
        self.layers.push(layer);
        self.predecessors.push(predecessors.to_vec());
        Ok(id)
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// All layer ids in topological (insertion) order.
    pub fn layer_ids(&self) -> impl Iterator<Item = LayerId> + '_ {
        (0..self.layers.len()).map(LayerId)
    }

    /// Access a layer by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this network.
    pub fn layer(&self, id: LayerId) -> &Layer {
        &self.layers[id.0]
    }

    /// All layers in topological order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// The direct predecessors of a layer.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this network.
    pub fn predecessors(&self, id: LayerId) -> &[LayerId] {
        &self.predecessors[id.0]
    }

    /// The direct successors of a layer.
    pub fn successors(&self, id: LayerId) -> Vec<LayerId> {
        self.layer_ids()
            .filter(|&s| self.predecessors(s).contains(&id))
            .collect()
    }

    /// Layers with no predecessors (network inputs).
    pub fn source_layers(&self) -> Vec<LayerId> {
        self.layer_ids()
            .filter(|&l| self.predecessors(l).is_empty())
            .collect()
    }

    /// Layers whose output is not consumed by any other layer (network outputs).
    pub fn sink_layers(&self) -> Vec<LayerId> {
        let mut consumed: BTreeSet<LayerId> = BTreeSet::new();
        for preds in &self.predecessors {
            consumed.extend(preds.iter().copied());
        }
        self.layer_ids().filter(|l| !consumed.contains(l)).collect()
    }

    /// Whether the DAG is a simple chain (every layer has at most one
    /// predecessor and at most one successor).
    pub fn is_chain(&self) -> bool {
        let mut out_degree: BTreeMap<LayerId, usize> = BTreeMap::new();
        for (i, preds) in self.predecessors.iter().enumerate() {
            if preds.len() > 1 {
                return false;
            }
            for &p in preds {
                *out_degree.entry(p).or_insert(0) += 1;
            }
            let _ = i;
        }
        out_degree.values().all(|&d| d <= 1)
    }

    /// Validates the network as a whole: non-empty, no self loops, and every
    /// edge points at an earlier layer (i.e. the stored order is a valid
    /// topological order).
    ///
    /// [`Network::add_layer`] already enforces the edge invariants for
    /// incrementally built networks; `validate` re-checks them so consumers
    /// of externally produced networks (e.g. future deserialization paths)
    /// get a structured error instead of undefined downstream behaviour.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::Empty`] for a network without layers,
    /// [`NetworkError::SelfLoop`] or [`NetworkError::UnknownPredecessor`]
    /// for invalid edges.
    pub fn validate(&self) -> Result<(), NetworkError> {
        if self.layers.is_empty() {
            return Err(NetworkError::Empty);
        }
        for (i, preds) in self.predecessors.iter().enumerate() {
            let id = LayerId(i);
            for &p in preds {
                if p == id {
                    return Err(NetworkError::SelfLoop(id));
                }
                if p.0 >= i {
                    return Err(NetworkError::UnknownPredecessor {
                        layer: id,
                        predecessor: p,
                    });
                }
            }
        }
        Ok(())
    }

    /// The set of *cut points*: layers after which the network has no open
    /// branches, i.e. every edge from the prefix `[0..=l]` to the suffix
    /// `(l..]` leaves from layer `l` itself.
    ///
    /// Stacks of fused layers may only end at cut points when branching is
    /// present (Section III of the paper: "either all layers between two
    /// points where there are no branches are added to a stack, or none of
    /// them").
    pub fn cut_points(&self) -> Vec<LayerId> {
        let n = self.layers.len();
        let mut cuts = Vec::new();
        for l in 0..n {
            let mut ok = true;
            // Every consumer of a layer <= l must either be <= l or only
            // consume layer l itself.
            'outer: for later in (l + 1)..n {
                for &p in self.predecessors(LayerId(later)) {
                    if p.0 < l {
                        ok = false;
                        break 'outer;
                    }
                }
            }
            if ok {
                cuts.push(LayerId(l));
            }
        }
        cuts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::LayerDims;
    use crate::layer::OpType;

    fn conv(name: &str, k: u64, c: u64, o: u64) -> Layer {
        Layer::new(name, OpType::Conv, LayerDims::conv(k, c, o, o, 3, 3))
    }

    #[test]
    fn chain_construction_and_queries() {
        let mut net = Network::new("chain");
        let a = net.add_layer(conv("a", 8, 3, 32), &[]).unwrap();
        let b = net.add_layer(conv("b", 8, 8, 30), &[a]).unwrap();
        let c = net.add_layer(conv("c", 8, 8, 28), &[b]).unwrap();
        assert_eq!(net.len(), 3);
        assert!(net.is_chain());
        assert_eq!(net.source_layers(), vec![a]);
        assert_eq!(net.sink_layers(), vec![c]);
        assert_eq!(net.successors(b), vec![c]);
        assert!(net.validate().is_ok());
        // In a chain every layer is a cut point.
        assert_eq!(net.cut_points().len(), 3);
    }

    #[test]
    fn branch_detection_and_cut_points() {
        // a -> b -> d(add of b and c), a -> c -> d
        let mut net = Network::new("branch");
        let a = net.add_layer(conv("a", 8, 3, 32), &[]).unwrap();
        let b = net.add_layer(conv("b", 8, 8, 32), &[a]).unwrap();
        let c = net.add_layer(conv("c", 8, 8, 32), &[a]).unwrap();
        let d = net
            .add_layer(
                Layer::new("d", OpType::Add, LayerDims::conv(8, 8, 32, 32, 1, 1)),
                &[b, c],
            )
            .unwrap();
        assert!(!net.is_chain());
        assert_eq!(net.sink_layers(), vec![d]);
        let cuts = net.cut_points();
        // `a` is not a cut point because c (index 2) consumes a (index 0) while
        // b (index 1) sits in between; b is not a cut point for the same reason.
        assert!(!cuts.contains(&b));
        assert!(cuts.contains(&d));
    }

    #[test]
    fn unknown_predecessor_rejected() {
        let mut net = Network::new("bad");
        let err = net
            .add_layer(conv("a", 8, 3, 32), &[LayerId(5)])
            .unwrap_err();
        assert!(matches!(err, NetworkError::UnknownPredecessor { .. }));
    }

    #[test]
    fn self_loop_rejected() {
        let mut net = Network::new("bad");
        let err = net
            .add_layer(conv("a", 8, 3, 32), &[LayerId(0)])
            .unwrap_err();
        assert_eq!(err, NetworkError::SelfLoop(LayerId(0)));
    }

    #[test]
    fn empty_network_invalid() {
        let net = Network::new("empty");
        assert_eq!(net.validate().unwrap_err(), NetworkError::Empty);
        assert!(net.is_empty());
    }

    #[test]
    fn validate_recheck_catches_corrupted_edges() {
        // add_layer guards these invariants on the way in; validate() must
        // independently catch violated ones (same-module test can corrupt
        // the private edge lists directly).
        let mut net = Network::new("bad");
        net.add_layer(conv("a", 8, 3, 32), &[]).unwrap();
        net.add_layer(conv("b", 8, 8, 30), &[LayerId(0)]).unwrap();
        assert!(net.validate().is_ok());

        let mut self_loop = net.clone();
        self_loop.predecessors[1] = vec![LayerId(1)];
        assert_eq!(
            self_loop.validate().unwrap_err(),
            NetworkError::SelfLoop(LayerId(1))
        );

        let mut forward_edge = net.clone();
        forward_edge.predecessors[0] = vec![LayerId(1)];
        assert_eq!(
            forward_edge.validate().unwrap_err(),
            NetworkError::UnknownPredecessor {
                layer: LayerId(0),
                predecessor: LayerId(1),
            }
        );
    }
}
