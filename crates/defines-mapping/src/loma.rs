//! LOMA-lite: the temporal-mapping search engine.
//!
//! The original LOMA \[29\] permutes prime factors of the layer dimensions and
//! allocates them to memory levels bottom-up. This implementation permutes
//! whole dimensions (at most 6! = 720 orderings per problem) and reuses the
//! same greedy bottom-up memory allocation; the `loma_lpf_limit`-style
//! speed/quality knob of the paper's artifact maps to
//! [`MapperConfig::max_orderings`].
//!
//! [`LomaMapper::optimize`] runs the symmetry-pruned branch-and-bound search
//! of [`crate::search`], which returns a bit-identical [`LayerCost`] while
//! evaluating only a fraction of the orderings;
//! [`LomaMapper::optimize_exhaustive`] keeps the plain scan as the reference
//! implementation the pruned search is tested against.

use crate::cost::{evaluate, LayerCost, Objective};
use crate::problem::SingleLayerProblem;
use crate::search::{search, search_with_incumbent, SearchStats};
use crate::temporal::{candidate_orderings, TemporalMapping};
use defines_telemetry::Counter;
use defines_workload::Dim;
use serde::{Deserialize, Serialize};
use std::sync::atomic::AtomicU64;

/// Loop orderings fully evaluated by the branch-and-bound search.
static ORDERINGS_EVALUATED: Counter = Counter::new("search.orderings_evaluated");
/// Orderings skipped by the partial-cost lower bound.
static PRUNED_BOUND: Counter = Counter::new("search.pruned_bound");
/// Orderings skipped as non-canonical members of a symmetry orbit.
static PRUNED_SYMMETRY: Counter = Counter::new("search.pruned_symmetry");
/// Orderings skipped because they fell beyond the search budget.
static SKIPPED_BUDGET: Counter = Counter::new("search.skipped_budget");
/// Searches that exhausted their budget and returned a degraded result.
static BUDGET_EXHAUSTED: Counter = Counter::new("fault.budget_exhausted");

/// A deterministic work budget for the exploration pipeline.
///
/// Budgets are counted in *work units of the deterministic enumeration* —
/// candidate orderings for the temporal-mapping search, relaxation steps for
/// the fusion DP — never in wall-clock time, so a budgeted run is
/// bit-identical at any thread count and on any machine. When a budget is
/// exhausted the affected search returns its exact best-so-far over the
/// in-budget window and flags the result *degraded*
/// ([`LayerCost::degraded`]); it never fails or returns garbage.
///
/// `0` means unlimited for either field, and [`Budget::default`] is fully
/// unlimited. Budgets change results (they shrink the candidate window), so
/// they are part of [`LomaMapper::config_fingerprint`] — caches never mix
/// budgeted and unbudgeted entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Budget {
    /// Maximum candidate orderings (evaluated or bound-pruned) per
    /// temporal-mapping search; `0` = unlimited.
    pub max_orderings: u64,
    /// Maximum relaxation steps per fusion-partition DP; `0` = unlimited.
    pub max_dp_nodes: u64,
}

impl Budget {
    /// An unlimited budget (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget capping only the per-search ordering window.
    pub fn orderings(max: u64) -> Self {
        Self {
            max_orderings: max,
            max_dp_nodes: 0,
        }
    }

    /// Whether both fields are unlimited.
    pub fn is_unlimited(&self) -> bool {
        self.max_orderings == 0 && self.max_dp_nodes == 0
    }
}

/// Configuration of the mapping search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MapperConfig {
    /// The objective the mapper minimizes.
    pub objective: Objective,
    /// Maximum number of loop orderings evaluated per problem (`0` means
    /// unlimited, i.e. all permutations).
    pub max_orderings: usize,
    /// Worker threads the branch-and-bound search may fan out to (work units
    /// are prefix subtrees of the permutation tree; see [`crate::search`]).
    /// `1` (the default) keeps the search fully sequential. Any value
    /// produces bit-identical results — the parallel reduction resolves ties
    /// by the sequential search's own lexicographic rank.
    pub search_threads: usize,
    /// Deterministic work budget; exhausting it degrades gracefully to the
    /// best-so-far result (see [`Budget`]). Unlimited by default.
    pub budget: Budget,
}

impl Default for MapperConfig {
    fn default() -> Self {
        Self {
            objective: Objective::Energy,
            max_orderings: 720,
            search_threads: 1,
            budget: Budget::default(),
        }
    }
}

impl MapperConfig {
    /// A faster configuration for exploration sweeps: a reduced but diverse
    /// set of loop orderings. The best-found costs are within a few percent of
    /// the exhaustive search, mirroring the paper's `loma_lpf_limit = 6`
    /// setting.
    pub fn fast() -> Self {
        Self {
            objective: Objective::Energy,
            max_orderings: 48,
            search_threads: 1,
            budget: Budget::default(),
        }
    }

    /// Returns a copy with a different objective.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Returns a copy with a different search-thread count (`0` is treated
    /// as `1`).
    pub fn with_search_threads(mut self, threads: usize) -> Self {
        self.search_threads = threads.max(1);
        self
    }

    /// Returns a copy with a different work budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }
}

/// Publishes one search's counters into the global metrics registry.
fn record_search_metrics(stats: &SearchStats) {
    ORDERINGS_EVALUATED.add(stats.evaluated);
    PRUNED_BOUND.add(stats.pruned_bound);
    PRUNED_SYMMETRY.add(stats.pruned_symmetry);
    SKIPPED_BUDGET.add(stats.skipped_budget);
    if stats.skipped_budget > 0 {
        BUDGET_EXHAUSTED.incr();
    }
}

/// The temporal-mapping search engine (LOMA-lite).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LomaMapper {
    config: MapperConfig,
}

impl LomaMapper {
    /// Creates a mapper with the given configuration.
    pub fn new(config: MapperConfig) -> Self {
        Self { config }
    }

    /// The mapper's configuration.
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// A stable fingerprint of the configuration, used by
    /// [`MappingCache`](crate::MappingCache) keys so one cache can serve
    /// mappers with different settings.
    pub fn config_fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        (self.config.objective as u64).hash(&mut h);
        self.config.max_orderings.hash(&mut h);
        // The budget IS hashed: it shrinks the candidate window and therefore
        // changes results, so budgeted and unbudgeted searches must never
        // share cache entries or incumbent cells.
        self.config.budget.hash(&mut h);
        // `search_threads` is deliberately NOT hashed: the thread count does
        // not change results, so cache entries are shared across it.
        h.finish()
    }

    /// Finds the best temporal mapping for a problem and returns its cost.
    ///
    /// Ties on the objective are broken by total energy, then latency, so the
    /// result is deterministic. Runs the symmetry-pruned branch-and-bound
    /// search, which is guaranteed to return the same cost (and the same
    /// tie-broken mapping) as [`LomaMapper::optimize_exhaustive`].
    pub fn optimize(&self, problem: &SingleLayerProblem<'_>) -> LayerCost {
        let (cost, stats) = self.optimize_with_stats(problem);
        record_search_metrics(&stats);
        cost
    }

    /// Like [`LomaMapper::optimize`], additionally returning the search
    /// counters (orderings evaluated / pruned), which the mapping benchmark
    /// and the perf-smoke CI job track.
    pub fn optimize_with_stats(
        &self,
        problem: &SingleLayerProblem<'_>,
    ) -> (LayerCost, SearchStats) {
        search(problem, &self.config)
    }

    /// Like [`LomaMapper::optimize`], additionally pruning against (and
    /// publishing into) a shared incumbent cell — the bit pattern of the best
    /// objective value any search of a *canonically equivalent* problem has
    /// fully evaluated so far. [`MappingCache`](crate::MappingCache) hands
    /// the same cell to concurrent searches that race on one canonical key,
    /// so whichever pulls ahead tightens the other's bound. Results are
    /// bit-identical with or without the cell (see [`crate::search`]).
    pub fn optimize_with_incumbent(
        &self,
        problem: &SingleLayerProblem<'_>,
        incumbent: &AtomicU64,
    ) -> LayerCost {
        let (cost, stats) = search_with_incumbent(problem, &self.config, Some(incumbent));
        record_search_metrics(&stats);
        cost
    }

    /// The reference implementation of [`LomaMapper::optimize`]: a plain scan
    /// over every candidate ordering, evaluating each through the full cost
    /// model. Kept (and exercised by the parity tests and the mapping
    /// benchmark) to prove the pruned search never changes a result bit.
    pub fn optimize_exhaustive(&self, problem: &SingleLayerProblem<'_>) -> LayerCost {
        let dram = problem.accelerator.hierarchy().dram_id();
        let max = if self.config.max_orderings == 0 {
            usize::MAX
        } else {
            self.config.max_orderings
        };
        let mut best: Option<LayerCost> = None;
        for order in candidate_orderings(problem, max) {
            let mapping = TemporalMapping::from_order(problem, &order);
            let cost = evaluate(problem, &mapping);
            let better = match &best {
                None => true,
                Some(b) => {
                    let (cv, bv) = (
                        cost.objective_value(self.config.objective, dram),
                        b.objective_value(self.config.objective, dram),
                    );
                    cv < bv
                        || (cv == bv && cost.energy_pj < b.energy_pj)
                        || (cv == bv
                            && cost.energy_pj == b.energy_pj
                            && cost.latency_cycles < b.latency_cycles)
                }
            };
            if better {
                best = Some(cost);
            }
        }
        best.expect("candidate_orderings always yields at least one ordering")
    }

    /// Evaluates a problem under a fixed, user-supplied loop ordering
    /// (innermost first). Used by the validation experiment, where the
    /// temporal mapping is pinned to the one implemented by the DepFiN chip.
    pub fn evaluate_fixed_order(
        &self,
        problem: &SingleLayerProblem<'_>,
        order: &[Dim],
    ) -> LayerCost {
        let mapping = TemporalMapping::from_order(problem, order);
        evaluate(problem, &mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::OperandTopLevels;
    use defines_arch::{zoo, Operand};
    use defines_workload::{Layer, LayerDims, OpType};

    fn layer() -> Layer {
        Layer::new("c", OpType::Conv, LayerDims::conv(64, 32, 28, 28, 3, 3))
    }

    #[test]
    fn optimizer_beats_or_matches_any_fixed_order() {
        let acc = zoo::meta_proto_like_df();
        let l = layer();
        let p = SingleLayerProblem::new(&acc, &l);
        let mapper = LomaMapper::default();
        let best = mapper.optimize(&p);
        for order in crate::temporal::candidate_orderings(&p, 36) {
            let c = mapper.evaluate_fixed_order(&p, &order);
            assert!(best.energy_pj <= c.energy_pj + 1e-6);
        }
    }

    #[test]
    fn latency_objective_prefers_lower_latency() {
        let acc = zoo::tpu_like();
        let l = layer();
        let p = SingleLayerProblem::new(&acc, &l);
        let e =
            LomaMapper::new(MapperConfig::default().with_objective(Objective::Energy)).optimize(&p);
        let t = LomaMapper::new(MapperConfig::default().with_objective(Objective::Latency))
            .optimize(&p);
        assert!(t.latency_cycles <= e.latency_cycles + 1e-6);
        assert!(e.energy_pj <= t.energy_pj + 1e-6);
    }

    #[test]
    fn fast_config_is_close_to_exhaustive() {
        let acc = zoo::meta_proto_like_df();
        let l = layer();
        let p = SingleLayerProblem::new(&acc, &l);
        let full = LomaMapper::default().optimize(&p);
        let fast = LomaMapper::new(MapperConfig::fast()).optimize(&p);
        assert!(fast.energy_pj >= full.energy_pj - 1e-6);
        assert!(
            fast.energy_pj <= full.energy_pj * 1.25,
            "fast mapper too far off"
        );
    }

    #[test]
    fn lowering_input_top_level_reduces_energy() {
        // The essence of depth-first scheduling: serving inputs from the local
        // buffer instead of DRAM must reduce the modelled energy.
        let acc = zoo::meta_proto_like_df();
        let small = Layer::new("c", OpType::Conv, LayerDims::conv(32, 12, 60, 72, 3, 3));
        let p_dram = SingleLayerProblem::new(&acc, &small);
        let lb = acc.hierarchy().level_id_named("LB_IO").unwrap();
        let tops = OperandTopLevels::dram(&acc)
            .with_level(Operand::Input, lb)
            .with_level(Operand::Output, lb);
        let p_lb = SingleLayerProblem::new(&acc, &small).with_top_levels(tops);
        let mapper = LomaMapper::default();
        let c_dram = mapper.optimize(&p_dram);
        let c_lb = mapper.optimize(&p_lb);
        assert!(
            c_lb.energy_pj < c_dram.energy_pj,
            "LB-backed activations ({}) should beat DRAM-backed ({})",
            c_lb.energy_pj,
            c_dram.energy_pj
        );
    }

    #[test]
    fn deterministic_results() {
        let acc = zoo::ascend_like_df();
        let l = layer();
        let p = SingleLayerProblem::new(&acc, &l);
        let a = LomaMapper::default().optimize(&p);
        let b = LomaMapper::default().optimize(&p);
        assert_eq!(a.energy_pj, b.energy_pj);
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn degenerate_fully_spatial_layer() {
        let acc = zoo::meta_proto_like();
        let l = Layer::new("c", OpType::Conv, LayerDims::conv(32, 2, 4, 4, 1, 1));
        let p = SingleLayerProblem::new(&acc, &l);
        let c = LomaMapper::default().optimize(&p);
        assert!(c.mapping.is_empty());
        assert!(c.energy_pj > 0.0);
    }
}
