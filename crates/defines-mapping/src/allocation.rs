//! Greedy bottom-up allocation of temporal loops to memory levels, per
//! operand (the "memory allocation" half of LOMA).

use crate::problem::SingleLayerProblem;
use crate::temporal::TemporalMapping;
use defines_arch::{MemoryLevelId, Operand};
use defines_workload::{Dim, OpType};
use serde::{Deserialize, Serialize};

/// The allocation of one operand's loops to its memory levels.
///
/// `levels[i] = (level, boundary)` means memory level `level` keeps the data
/// addressed by temporal loops `[0, boundary)` resident. Boundaries are
/// non-decreasing and the last entry is the operand's top level with a
/// boundary covering every loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperandAllocation {
    /// `(memory level, number of innermost loops resident in it)`, ordered
    /// innermost level first.
    pub levels: Vec<(MemoryLevelId, usize)>,
}

impl OperandAllocation {
    /// The innermost memory level serving the operand.
    pub fn innermost(&self) -> MemoryLevelId {
        self.levels
            .first()
            .expect("allocation has at least the top level")
            .0
    }

    /// The top (outermost allowed) memory level.
    pub fn top(&self) -> MemoryLevelId {
        self.levels
            .last()
            .expect("allocation has at least the top level")
            .0
    }
}

/// The data footprint, in bytes, of `operand` restricted to the temporal loops
/// below `boundary` (plus the spatially unrolled portion of each dimension,
/// which is by definition inner to every temporal loop).
///
/// For inputs, the OX/FX and OY/FY pairs combine through the sliding-window
/// relation `ix = (ox - 1) * stride + fx`.
pub fn data_size_bytes(
    problem: &SingleLayerProblem<'_>,
    mapping: &TemporalMapping,
    operand: Operand,
    boundary: usize,
) -> f64 {
    let unroll = problem.accelerator.pe_array().unrolling();
    let eff = |dim: Dim| -> u64 { unroll.factor(dim) * mapping.below_product(dim, boundary) };
    let bytes = problem.bytes_per_element(operand) as f64;
    let elements: f64 = match operand {
        Operand::Weight => match problem.op {
            OpType::Conv => (eff(Dim::K) * eff(Dim::C) * eff(Dim::FX) * eff(Dim::FY)) as f64,
            OpType::DepthwiseConv => (eff(Dim::K) * eff(Dim::FX) * eff(Dim::FY)) as f64,
            OpType::Pooling | OpType::Add => 0.0,
        },
        Operand::Input => {
            let channels = match problem.op {
                OpType::Conv => eff(Dim::C),
                OpType::DepthwiseConv | OpType::Pooling => eff(Dim::K),
                OpType::Add => 2 * eff(Dim::K),
            };
            let ix = (eff(Dim::OX).saturating_sub(1)) * problem.dims.stride_x + eff(Dim::FX);
            let iy = (eff(Dim::OY).saturating_sub(1)) * problem.dims.stride_y + eff(Dim::FY);
            (eff(Dim::B) * channels * ix * iy) as f64
        }
        Operand::Output => (eff(Dim::B) * eff(Dim::K) * eff(Dim::OX) * eff(Dim::OY)) as f64,
    };
    elements * bytes
}

/// The memory levels an operand may use for this problem: every level that
/// serves the operand, up to and including the operand's top level.
pub fn usable_levels(problem: &SingleLayerProblem<'_>, operand: Operand) -> Vec<MemoryLevelId> {
    let top = problem.top_levels.level(operand);
    let mut levels: Vec<MemoryLevelId> = problem
        .accelerator
        .hierarchy()
        .levels_for(operand)
        .map(|(id, _)| id)
        .filter(|&id| id <= top)
        .collect();
    if levels.last() != Some(&top) {
        // The DF model may pin an operand to a level that nominally serves
        // other operands only in the architecture description; honour it.
        levels.push(top);
    }
    levels
}

/// How many operands of this problem can use a given memory level. Used to
/// split the capacity of shared memories.
pub(crate) fn sharers(problem: &SingleLayerProblem<'_>, level: MemoryLevelId) -> u64 {
    Operand::ALL
        .iter()
        .filter(|&&op| {
            problem.footprint_bytes(op) > 0 && usable_levels(problem, op).contains(&level)
        })
        .count()
        .max(1) as u64
}

/// Allocates the loops of a temporal mapping to the memory levels of one
/// operand: each level (from the innermost up) keeps as many additional
/// innermost loops resident as fit in its capacity share; the top level holds
/// everything.
pub fn allocate(
    problem: &SingleLayerProblem<'_>,
    mapping: &TemporalMapping,
    operand: Operand,
) -> OperandAllocation {
    let levels = usable_levels(problem, operand);
    let n_loops = mapping.len();
    let hierarchy = problem.accelerator.hierarchy();
    let mut result = Vec::with_capacity(levels.len());
    let mut boundary = 0usize;
    for (i, &level_id) in levels.iter().enumerate() {
        let is_top = i + 1 == levels.len();
        if is_top {
            result.push((level_id, n_loops));
            break;
        }
        let level = hierarchy.level(level_id);
        let share = match level.capacity_bytes() {
            None => u64::MAX,
            Some(c) => c / sharers(problem, level_id),
        };
        while boundary < n_loops
            && data_size_bytes(problem, mapping, operand, boundary + 1) <= share as f64
        {
            boundary += 1;
        }
        result.push((level_id, boundary));
    }
    OperandAllocation { levels: result }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defines_arch::zoo;
    use defines_workload::{Layer, LayerDims};

    fn problem(acc: &defines_arch::Accelerator, dims: LayerDims) -> SingleLayerProblem<'_> {
        let layer = Layer::new("c", OpType::Conv, dims);
        SingleLayerProblem::new(acc, &layer).clone()
    }

    #[test]
    fn data_size_grows_with_boundary() {
        let acc = zoo::meta_proto_like();
        let p = problem(&acc, LayerDims::conv(64, 16, 32, 32, 3, 3));
        let m = TemporalMapping::from_order(&p, &Dim::SPATIAL_AND_CHANNEL);
        for op in Operand::ALL {
            let mut prev = 0.0;
            for b in 0..=m.len() {
                let s = data_size_bytes(&p, &m, op, b);
                assert!(s >= prev, "{op}: size must be monotone in boundary");
                prev = s;
            }
        }
    }

    #[test]
    fn data_size_at_full_boundary_reaches_footprint() {
        let acc = zoo::meta_proto_like();
        let p = problem(&acc, LayerDims::conv(64, 16, 32, 32, 3, 3));
        let m = TemporalMapping::from_order(&p, &Dim::SPATIAL_AND_CHANNEL);
        // At the topmost boundary the resident set covers the entire operand.
        // (Ceiling division of unrolled dimensions may slightly overestimate.)
        for op in Operand::ALL {
            let full = data_size_bytes(&p, &m, op, m.len());
            assert!(full >= p.footprint_bytes(op) as f64, "{op}");
            assert!(full <= p.footprint_bytes(op) as f64 * 1.3, "{op}");
        }
    }

    #[test]
    fn allocation_is_monotone_and_ends_at_top() {
        let acc = zoo::meta_proto_like_df();
        let p = problem(&acc, LayerDims::conv(64, 16, 32, 32, 3, 3));
        let m = TemporalMapping::from_order(&p, &Dim::SPATIAL_AND_CHANNEL);
        for op in Operand::ALL {
            let a = allocate(&p, &m, op);
            let mut prev = 0;
            for &(_, b) in &a.levels {
                assert!(b >= prev);
                prev = b;
            }
            assert_eq!(a.levels.last().unwrap().1, m.len());
            assert_eq!(a.top(), p.top_levels.level(op));
        }
    }

    #[test]
    fn usable_levels_respect_top() {
        let acc = zoo::meta_proto_like_df();
        let lb = acc.hierarchy().level_id_named("LB_IO").unwrap();
        let layer = Layer::new("c", OpType::Conv, LayerDims::conv(8, 8, 8, 8, 3, 3));
        let p = SingleLayerProblem::new(&acc, &layer)
            .with_top_levels(crate::OperandTopLevels::dram(&acc).with_level(Operand::Input, lb));
        let levels = usable_levels(&p, Operand::Input);
        assert_eq!(*levels.last().unwrap(), lb);
        assert!(levels.iter().all(|&l| l <= lb));
        // Weights still go all the way to DRAM.
        let w = usable_levels(&p, Operand::Weight);
        assert_eq!(*w.last().unwrap(), acc.hierarchy().dram_id());
    }

    #[test]
    fn small_layer_fits_innermost_buffers() {
        let acc = zoo::meta_proto_like_df();
        let p = problem(&acc, LayerDims::conv(32, 2, 4, 4, 3, 3));
        let m = TemporalMapping::from_order(&p, &Dim::SPATIAL_AND_CHANNEL);
        // Weights (32*2*9 = 576 B) fit in the 32 KB weight LB, so the LB
        // boundary covers every loop.
        let a = allocate(&p, &m, Operand::Weight);
        let lb = acc.hierarchy().level_id_named("LB_W").unwrap();
        let lb_entry = a.levels.iter().find(|(id, _)| *id == lb).unwrap();
        assert_eq!(lb_entry.1, m.len());
    }
}
