//! Single-layer temporal-mapping search and cost model for DeFiNES.
//!
//! This crate plays the role of LOMA \[29\] (the temporal mapping search
//! engine) and ZigZag \[21\], \[22\] (the single-layer cost model) in the DeFiNES
//! stack: given a layer (or a layer *tile*, when driven by the depth-first
//! model in `defines-core`), an accelerator, and the *top memory level* each
//! operand is allowed to use, it finds a good temporal mapping and reports
//! the per-memory-level access counts, energy and latency.
//!
//! The model follows the standard relevant/irrelevant-loop analysis:
//!
//! * a temporal mapping is an ordered list of loops (innermost → outermost),
//!   each loop being one whole layer dimension after spatial unrolling,
//! * per operand, loops are allocated bottom-up to the memory levels serving
//!   that operand, greedily filling each level's capacity share,
//! * the traffic between two adjacent levels equals the operand's total
//!   footprint times a *refetch factor* derived from the loops that sit above
//!   the lower level's allocation boundary,
//! * outputs additionally pay partial-sum write-back/fetch-back traffic when
//!   reduction loops interrupt accumulation.
//!
//! # Example
//!
//! ```
//! use defines_arch::zoo;
//! use defines_mapping::{LomaMapper, SingleLayerProblem};
//! use defines_workload::{Layer, LayerDims, OpType};
//!
//! let acc = zoo::meta_proto_like_df();
//! let layer = Layer::new("conv", OpType::Conv, LayerDims::conv(32, 16, 56, 56, 3, 3));
//! let problem = SingleLayerProblem::new(&acc, &layer);
//! let cost = LomaMapper::default().optimize(&problem);
//! assert!(cost.energy_pj > 0.0);
//! assert!(cost.latency_cycles >= cost.macs as f64 / 1024.0);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod allocation;
pub mod cache;
pub mod cost;
pub mod loma;
pub mod persist;
mod pool;
pub mod problem;
pub mod search;
pub mod temporal;

pub use cache::{MappingCache, ProblemKey};
pub use cost::{Access, AccessBreakdown, LayerCost, Objective};
pub use loma::{Budget, LomaMapper, MapperConfig};
pub use persist::{CacheStore, StoreError, StoreStats};
pub use problem::{OperandTopLevels, SingleLayerProblem};
pub use search::SearchStats;
pub use temporal::{TemporalLoop, TemporalMapping};
