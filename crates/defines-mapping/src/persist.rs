//! Persistent, size-bounded disk store for the [`MappingCache`].
//!
//! The store turns the in-memory mapping cache into a service asset that
//! survives restarts: every distinct `(accelerator, problem, mapper)`
//! sub-problem is searched once *per deployment*, not once per process. The
//! file format deliberately reuses the battle-tested idioms of the matrix
//! checkpoint (`defines-core/src/checkpoint.rs`):
//!
//! * **append-only JSONL** — a header line binding the format version,
//!   then one flushed line per event, so a kill loses at most the line it
//!   interrupted,
//! * **torn-tail tolerance** — a partial *last* line is dropped on load
//!   (and healed away by the next compaction); a malformed line anywhere
//!   else is an error,
//! * **atomic-rename compaction** — the rewritten file is produced as a
//!   `.tmp` sibling and `rename`d over the original, so a crash at any
//!   instant leaves either the old or the new file intact, never a hybrid,
//! * **FNV-1a fingerprints** — every entry line carries a
//!   [`Fnv`] fingerprint of its key, recomputed and
//!   verified on load, because the file outlives the process and
//!   `DefaultHasher` is not stable across Rust releases.
//!
//! # Eviction determinism
//!
//! The store is LRU-bounded ([`CacheStore::open`]'s `max_entries`), and the
//! eviction order must be a pure function of the *logical* request history —
//! never of thread interleaving or of when the store happened to be synced.
//! Two mechanisms deliver that:
//!
//! 1. usage epochs advance only at batch boundaries
//!    ([`MappingCache::advance_epoch`], called by [`CacheStore::sync`]), so
//!    every lookup within one batch records the same epoch no matter which
//!    worker thread performed it, and
//! 2. ties are broken by the total order on [`ProblemKey`]: eviction removes
//!    the entries with the smallest `(epoch, key)` first.
//!
//! A compacted file lists entries sorted by `(epoch, key)`, so re-compacting
//! a reloaded store byte-reproduces the file regardless of how many
//! append/load cycles happened in between — the property the persistence
//! round-trip tests pin down.

use crate::cache::{MappingCache, ProblemKey};
use crate::cost::{Access, AccessBreakdown, LayerCost};
use crate::problem::OperandTopLevels;
use crate::temporal::{TemporalLoop, TemporalMapping};
use defines_arch::{MemoryLevelId, Operand};
use defines_engine::Fnv;
use defines_telemetry::{failpoint, Counter};
use defines_workload::{Dim, LayerDims, OpType};
use serde::{Serialize, Value};
use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Entries preloaded into the cache from disk at open.
static STORE_LOADED: Counter = Counter::new("mapping.store.loaded");
/// Newly computed entries appended to the file.
static STORE_STORED: Counter = Counter::new("mapping.store.stored");
/// Entries evicted by the size bound.
static STORE_EVICTED: Counter = Counter::new("mapping.store.evicted");
/// Full rewrites of the file (compactions).
static STORE_COMPACTIONS: Counter = Counter::new("mapping.store.compactions");

/// On-disk format version, bound into the header line.
const VERSION: u64 = 1;

/// Header key naming the file format (and guarding against feeding some
/// other JSONL artifact to the store).
const HEADER_KEY: &str = "defines_mapping_cache";

/// An error talking to or parsing the store file.
#[derive(Debug)]
pub struct StoreError(String);

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for StoreError {}

/// Lifetime statistics of a [`CacheStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Entries preloaded from disk when the store was opened.
    pub loaded: u64,
    /// Newly computed entries appended since open.
    pub stored: u64,
    /// Entries evicted by the size bound since open.
    pub evicted: u64,
    /// File compactions since open.
    pub compactions: u64,
    /// Entries currently tracked (persisted or pending persistence).
    pub entries: usize,
}

/// A disk-backed view of a [`MappingCache`]: load on open, append on sync,
/// LRU-evict at a size bound, compact by atomic rename.
///
/// The store owns the *file*; the cache stays the owner of the entries and
/// remains fully usable (and shareable) on its own. [`CacheStore::sync`] is
/// the only write path and is meant to be called at batch boundaries —
/// between engine runs, not inside them.
#[derive(Debug)]
pub struct CacheStore {
    path: PathBuf,
    cache: MappingCache,
    /// Maximum entries kept (0 = unbounded).
    max_entries: usize,
    /// Last-used epoch per tracked key — the store's logical state. The
    /// compacted file is a pure function of this map plus the cache costs.
    epochs: HashMap<ProblemKey, u64>,
    /// Open append handle (always positioned at end of file).
    file: File,
    /// Lines appended since the last compaction; when this exceeds the
    /// entry count the log has roughly doubled and gets compacted.
    appended_since_compact: usize,
    stats: StoreStats,
}

/// The serialized name of an operator class (stable file vocabulary —
/// matches the derive encoding of [`OpType`]).
fn op_name(op: OpType) -> &'static str {
    match op {
        OpType::Conv => "Conv",
        OpType::DepthwiseConv => "DepthwiseConv",
        OpType::Pooling => "Pooling",
        OpType::Add => "Add",
    }
}

fn op_from_name(name: &str) -> Result<OpType, String> {
    match name {
        "Conv" => Ok(OpType::Conv),
        "DepthwiseConv" => Ok(OpType::DepthwiseConv),
        "Pooling" => Ok(OpType::Pooling),
        "Add" => Ok(OpType::Add),
        other => Err(format!("unknown operator class '{other}'")),
    }
}

fn dim_from_name(name: &str) -> Result<Dim, String> {
    match name {
        "B" => Ok(Dim::B),
        "K" => Ok(Dim::K),
        "C" => Ok(Dim::C),
        "OX" => Ok(Dim::OX),
        "OY" => Ok(Dim::OY),
        "FX" => Ok(Dim::FX),
        "FY" => Ok(Dim::FY),
        other => Err(format!("unknown dimension '{other}'")),
    }
}

fn operand_from_name(name: &str) -> Result<Operand, String> {
    match name {
        "Weight" => Ok(Operand::Weight),
        "Input" => Ok(Operand::Input),
        "Output" => Ok(Operand::Output),
        other => Err(format!("unknown operand '{other}'")),
    }
}

/// Stable FNV-1a fingerprint of a cache key, written on every entry line
/// and re-verified on load.
pub fn key_fingerprint(key: &ProblemKey) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(key.accelerator);
    h.write(op_name(key.op).as_bytes());
    let d = &key.dims;
    for n in [
        d.b, d.k, d.c, d.ox, d.oy, d.fx, d.fy, d.stride_x, d.stride_y, d.pad_x, d.pad_y,
    ] {
        h.write_u64(n);
    }
    h.write_u64(u64::from(key.act_bits));
    h.write_u64(u64::from(key.weight_bits));
    h.write_u64(key.top_levels.weight.0 as u64);
    h.write_u64(key.top_levels.input.0 as u64);
    h.write_u64(key.top_levels.output.0 as u64);
    h.write_u64(key.mapper);
    h.finish()
}

fn key_to_value(key: &ProblemKey) -> Value {
    Value::Object(vec![
        ("accelerator".into(), Value::U64(key.accelerator)),
        ("op".into(), Value::Str(op_name(key.op).into())),
        ("dims".into(), key.dims.to_value()),
        ("act_bits".into(), Value::U64(u64::from(key.act_bits))),
        ("weight_bits".into(), Value::U64(u64::from(key.weight_bits))),
        ("top_levels".into(), key.top_levels.to_value()),
        ("mapper".into(), Value::U64(key.mapper)),
    ])
}

fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, String> {
    v.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("'{key}' is not an unsigned integer"))
}

fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| format!("'{key}' is not a number"))
}

fn string_field<'v>(v: &'v Value, key: &str) -> Result<&'v str, String> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| format!("'{key}' is not a string"))
}

fn level_field(v: &Value, key: &str) -> Result<MemoryLevelId, String> {
    Ok(MemoryLevelId(u64_field(v, key)? as usize))
}

fn key_from_value(v: &Value) -> Result<ProblemKey, String> {
    let dims = field(v, "dims")?;
    let top = field(v, "top_levels")?;
    Ok(ProblemKey {
        accelerator: u64_field(v, "accelerator")?,
        op: op_from_name(string_field(v, "op")?)?,
        dims: LayerDims {
            b: u64_field(dims, "b")?,
            k: u64_field(dims, "k")?,
            c: u64_field(dims, "c")?,
            ox: u64_field(dims, "ox")?,
            oy: u64_field(dims, "oy")?,
            fx: u64_field(dims, "fx")?,
            fy: u64_field(dims, "fy")?,
            stride_x: u64_field(dims, "stride_x")?,
            stride_y: u64_field(dims, "stride_y")?,
            pad_x: u64_field(dims, "pad_x")?,
            pad_y: u64_field(dims, "pad_y")?,
        },
        act_bits: u64_field(v, "act_bits")? as u32,
        weight_bits: u64_field(v, "weight_bits")? as u32,
        top_levels: OperandTopLevels {
            weight: level_field(top, "weight")?,
            input: level_field(top, "input")?,
            output: level_field(top, "output")?,
        },
        mapper: u64_field(v, "mapper")?,
    })
}

fn cost_from_value(v: &Value) -> Result<LayerCost, String> {
    let accesses = field(v, "accesses").and_then(|a| field(a, "map"))?;
    let entries = accesses
        .as_array()
        .ok_or("'accesses.map' is not an array")?
        .iter()
        .map(|pair| {
            let items = pair.as_array().filter(|p| p.len() == 2);
            let [k, a] = items.ok_or("access entry is not a [key, access] pair")? else {
                return Err("access entry is not a [key, access] pair".to_string());
            };
            let k = k.as_array().filter(|p| p.len() == 2);
            let [level, operand] = k.ok_or("access key is not [level, operand]")? else {
                return Err("access key is not [level, operand]".to_string());
            };
            let level = MemoryLevelId(
                level
                    .as_u64()
                    .ok_or("access key level is not an unsigned integer")? as usize,
            );
            let operand = operand_from_name(
                operand
                    .as_str()
                    .ok_or("access key operand is not a string")?,
            )?;
            Ok((
                (level, operand),
                Access {
                    reads_bytes: f64_field(a, "reads_bytes")?,
                    writes_bytes: f64_field(a, "writes_bytes")?,
                },
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let loops = field(v, "mapping")
        .and_then(|m| field(m, "loops"))?
        .as_array()
        .ok_or("'mapping.loops' is not an array")?
        .iter()
        .map(|l| {
            Ok(TemporalLoop {
                dim: dim_from_name(string_field(l, "dim")?)?,
                size: u64_field(l, "size")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(LayerCost {
        energy_pj: f64_field(v, "energy_pj")?,
        mac_energy_pj: f64_field(v, "mac_energy_pj")?,
        memory_energy_pj: f64_field(v, "memory_energy_pj")?,
        latency_cycles: f64_field(v, "latency_cycles")?,
        compute_cycles: f64_field(v, "compute_cycles")?,
        macs: u64_field(v, "macs")?,
        accesses: AccessBreakdown::from_entries(entries),
        mapping: TemporalMapping::from_loops(loops),
        degraded: field(v, "degraded")?
            .as_bool()
            .ok_or("'degraded' is not a boolean")?,
    })
}

fn header_value() -> Value {
    Value::Object(vec![(HEADER_KEY.into(), Value::U64(VERSION))])
}

fn entry_value(fp: u64, epoch: u64, key: &ProblemKey, cost: &LayerCost) -> Value {
    Value::Object(vec![
        ("fp".into(), Value::U64(fp)),
        ("epoch".into(), Value::U64(epoch)),
        ("key".into(), key_to_value(key)),
        ("cost".into(), cost.to_value()),
    ])
}

impl CacheStore {
    /// Opens (or creates) the store at `path`, preloading every persisted
    /// entry into `cache` and enabling the cache's usage tracking.
    ///
    /// `max_entries` bounds the store (and the cache entries it manages);
    /// `0` means unbounded. A torn final line — the recording process died
    /// mid-append — is dropped and healed by an immediate compaction; a
    /// stale `.tmp` sibling from a compaction that died before its rename is
    /// removed (the original file it would have replaced is still intact).
    pub fn open(path: &Path, cache: MappingCache, max_entries: usize) -> Result<Self, StoreError> {
        cache.track_usage();
        let tmp = Self::tmp_path(path);
        if tmp.exists() {
            // A compaction died before its rename: the target file is still
            // the last good state, the temp is garbage.
            std::fs::remove_file(&tmp)
                .map_err(|e| StoreError(format!("cannot remove stale '{}': {e}", tmp.display())))?;
        }
        let mut store = CacheStore {
            path: path.to_path_buf(),
            cache,
            max_entries,
            epochs: HashMap::new(),
            file: File::options()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| StoreError(format!("cannot open store '{}': {e}", path.display())))?,
            appended_since_compact: 0,
            stats: StoreStats::default(),
        };
        let text = std::fs::read_to_string(path)
            .map_err(|e| StoreError(format!("cannot read store '{}': {e}", path.display())))?;
        if text.trim().is_empty() {
            store.append(&header_value())?;
            store.appended_since_compact = 0;
            return Ok(store);
        }
        let torn = store.load(&text)?;
        store.stats.entries = store.epochs.len();
        // lint:allow(unordered-iter, max over values is order-independent)
        let max_epoch = store.epochs.values().copied().max().unwrap_or(0);
        store.cache.set_epoch(max_epoch + 1);
        if torn {
            // Appending after a partial line would corrupt the next record;
            // rewrite the file from the loaded (valid) state instead.
            store.compact()?;
        }
        store.evict_over_bound()?;
        Ok(store)
    }

    fn tmp_path(path: &Path) -> PathBuf {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("mapping-cache");
        path.with_file_name(format!("{name}.tmp"))
    }

    /// Parses the file content, preloading the cache. Returns whether the
    /// final line was torn.
    fn load(&mut self, text: &str) -> Result<bool, StoreError> {
        let path = self.path.clone();
        let bad = move |line_no: usize, why: String| {
            StoreError(format!("store '{}' line {line_no}: {why}", path.display()))
        };
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .filter(|(_, line)| !line.trim().is_empty())
            .collect();
        let Some(&(header_line, header_text)) = lines.first() else {
            return Ok(false);
        };
        let header = serde_json::from_str(header_text)
            .map_err(|e| bad(header_line + 1, format!("invalid JSON: {e}")))?;
        let version = header
            .get(HEADER_KEY)
            .and_then(Value::as_u64)
            .ok_or_else(|| bad(header_line + 1, "not a mapping-cache store header".into()))?;
        if version != VERSION {
            return Err(bad(
                header_line + 1,
                format!("unsupported store version {version} (this build writes {VERSION})"),
            ));
        }
        // Transient fingerprint index so touch lines can name entries
        // compactly.
        let mut by_fp: HashMap<u64, ProblemKey> = HashMap::new();
        let mut torn = false;
        for (i, &(line_no, line)) in lines.iter().enumerate().skip(1) {
            let last = i == lines.len() - 1;
            let v = match serde_json::from_str(line) {
                Ok(v) => v,
                Err(_) if last => {
                    torn = true;
                    continue;
                }
                Err(e) => return Err(bad(line_no + 1, format!("invalid JSON: {e}"))),
            };
            match self.apply_line(&v, &mut by_fp) {
                Ok(()) => {}
                // A structurally valid JSON line with broken content can
                // also be the torn tail of a larger record that happened to
                // parse (rare but possible when the cut lands inside a
                // string); tolerate it in final position only.
                Err(_) if last => torn = true,
                Err(why) => return Err(bad(line_no + 1, why)),
            }
        }
        Ok(torn)
    }

    fn apply_line(
        &mut self,
        v: &Value,
        by_fp: &mut HashMap<u64, ProblemKey>,
    ) -> Result<(), String> {
        if let Some(touched) = v.get("touch") {
            let epoch = u64_field(v, "epoch")?;
            let fps = touched.as_array().ok_or("'touch' is not an array")?;
            for fp in fps {
                let fp = fp.as_u64().ok_or("touch entry is not a fingerprint")?;
                // Touches of entries this file no longer lists (evicted by a
                // later compaction) are inert, not an error.
                if let Some(key) = by_fp.get(&fp) {
                    self.epochs.insert(key.clone(), epoch);
                }
            }
            return Ok(());
        }
        let fp = u64_field(v, "fp")?;
        let epoch = u64_field(v, "epoch")?;
        let key = key_from_value(field(v, "key")?)?;
        if key_fingerprint(&key) != fp {
            return Err(format!("entry fingerprint {fp:#x} does not match its key"));
        }
        let cost = cost_from_value(field(v, "cost")?)?;
        self.cache.preload(key.clone(), Arc::new(cost));
        self.epochs.insert(key.clone(), epoch);
        by_fp.insert(fp, key);
        self.stats.loaded += 1;
        STORE_LOADED.incr();
        Ok(())
    }

    /// Appends one JSON line and flushes, so a kill right after loses at
    /// most the line it interrupted.
    fn append(&mut self, value: &Value) -> Result<(), StoreError> {
        failpoint!("persist.append");
        let mut line = value.to_json();
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| {
                StoreError(format!(
                    "cannot append to store '{}': {e}",
                    self.path.display()
                ))
            })?;
        self.appended_since_compact += 1;
        Ok(())
    }

    /// Harvests everything the cache touched since the last sync, persists
    /// it, advances the usage epoch, and enforces the size bound.
    ///
    /// Call at batch boundaries only: the epoch advance here is what makes
    /// all lookups *within* a batch indistinguishable to the LRU policy (see
    /// the module docs). New entries are appended in key order; re-touched
    /// entries become one compact `touch` line per epoch.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        let touched = self.cache.drain_usage();
        self.cache.advance_epoch();
        let mut new_entries: Vec<(ProblemKey, u64)> = Vec::new();
        // epoch -> fingerprints re-touched at that epoch. Epochs are few
        // (usually one per sync), so a sorted Vec keyed by epoch keeps the
        // output order deterministic without a tree map.
        let mut retouched: Vec<(u64, Vec<u64>)> = Vec::new();
        for (key, epoch) in touched {
            match self.epochs.get(&key) {
                None => new_entries.push((key, epoch)),
                Some(&known) if known != epoch => {
                    let fp = key_fingerprint(&key);
                    match retouched.binary_search_by_key(&epoch, |&(e, _)| e) {
                        Ok(i) => retouched[i].1.push(fp),
                        Err(i) => retouched.insert(i, (epoch, vec![fp])),
                    }
                    self.epochs.insert(key, epoch);
                }
                Some(_) => {}
            }
        }
        for (key, epoch) in new_entries {
            // A touched key can be absent from the cache only if someone
            // cleared it mid-flight; skipping is the honest response.
            let Some(cost) = self.cache.peek(&key) else {
                continue;
            };
            let fp = key_fingerprint(&key);
            self.append(&entry_value(fp, epoch, &key, &cost))?;
            self.epochs.insert(key, epoch);
            self.stats.stored += 1;
            STORE_STORED.incr();
        }
        for (epoch, mut fps) in retouched {
            fps.sort_unstable();
            fps.dedup();
            self.append(&Value::Object(vec![
                (
                    "touch".into(),
                    Value::Array(fps.into_iter().map(Value::U64).collect()),
                ),
                ("epoch".into(), Value::U64(epoch)),
            ]))?;
        }
        self.stats.entries = self.epochs.len();
        self.evict_over_bound()?;
        // Compact when the log has roughly doubled past the live entry
        // count — amortized O(1) lines per entry.
        if self.appended_since_compact > self.epochs.len().max(16) {
            self.compact()?;
        }
        Ok(())
    }

    /// Evicts least-recently-used entries (smallest `(epoch, key)` first)
    /// until the bound holds, then compacts so the file stops listing them.
    fn evict_over_bound(&mut self) -> Result<(), StoreError> {
        if self.max_entries == 0 || self.epochs.len() <= self.max_entries {
            return Ok(());
        }
        let mut order: Vec<(u64, ProblemKey)> =
            self.epochs.iter().map(|(k, &e)| (e, k.clone())).collect();
        order.sort_unstable();
        let excess = order.len() - self.max_entries;
        for (_, key) in order.into_iter().take(excess) {
            self.cache.remove(&key);
            self.epochs.remove(&key);
            self.stats.evicted += 1;
            STORE_EVICTED.incr();
        }
        self.stats.entries = self.epochs.len();
        self.compact()
    }

    /// Rewrites the file to exactly the live state — header plus one entry
    /// line per key, sorted by `(epoch, key)` — via a `.tmp` sibling and an
    /// atomic rename. The open handle follows the rename (same inode).
    fn compact(&mut self) -> Result<(), StoreError> {
        failpoint!("persist.compact.begin");
        let tmp = Self::tmp_path(&self.path);
        let mut entries: Vec<(u64, ProblemKey)> =
            self.epochs.iter().map(|(k, &e)| (e, k.clone())).collect();
        entries.sort_unstable();
        let mut file = File::create(&tmp)
            .map_err(|e| StoreError(format!("cannot create '{}': {e}", tmp.display())))?;
        let write_line = |file: &mut File, value: &Value| {
            let mut line = value.to_json();
            line.push('\n');
            file.write_all(line.as_bytes())
                .map_err(|e| StoreError(format!("cannot write '{}': {e}", tmp.display())))
        };
        write_line(&mut file, &header_value())?;
        for (epoch, key) in &entries {
            failpoint!("persist.compact.mid");
            let Some(cost) = self.cache.peek(key) else {
                continue;
            };
            write_line(
                &mut file,
                &entry_value(key_fingerprint(key), *epoch, key, &cost),
            )?;
        }
        file.flush()
            .and_then(|()| file.sync_all())
            .map_err(|e| StoreError(format!("cannot flush '{}': {e}", tmp.display())))?;
        failpoint!("persist.compact.rename");
        std::fs::rename(&tmp, &self.path).map_err(|e| {
            StoreError(format!(
                "cannot replace store '{}': {e}",
                self.path.display()
            ))
        })?;
        self.file = file;
        self.appended_since_compact = 0;
        self.stats.compactions += 1;
        STORE_COMPACTIONS.incr();
        Ok(())
    }

    /// Forces a compaction now (tests and orderly shutdown).
    pub fn compact_now(&mut self) -> Result<(), StoreError> {
        self.compact()
    }

    /// The store's lifetime statistics.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// The cache this store persists (cheap clone of the shared handle).
    pub fn cache(&self) -> MappingCache {
        self.cache.clone()
    }

    /// The file the store persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}
