//! Temporal mappings: ordered loop nests after spatial unrolling.

use crate::problem::SingleLayerProblem;
use defines_workload::Dim;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One temporal loop: a dimension and its trip count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporalLoop {
    /// The loop dimension.
    pub dim: Dim,
    /// The trip count (always ≥ 2 inside a [`TemporalMapping`]).
    pub size: u64,
}

/// A temporal mapping: loops ordered from innermost to outermost.
///
/// Loop trip counts are the layer dimensions divided (ceiling) by the PE
/// array's spatial unrolling — the spatially-unrolled part of each dimension
/// executes in parallel and is therefore not part of the temporal loop nest.
///
/// ```
/// use defines_arch::zoo;
/// use defines_mapping::{SingleLayerProblem, TemporalMapping};
/// use defines_workload::{Dim, Layer, LayerDims, OpType};
///
/// let acc = zoo::meta_proto_like();
/// let layer = Layer::new("c", OpType::Conv, LayerDims::conv(64, 4, 16, 16, 3, 3));
/// let problem = SingleLayerProblem::new(&acc, &layer);
/// // Meta-proto unrolls K32 C2 OX4 OY4, so K contributes a temporal loop of 2.
/// let m = TemporalMapping::from_order(&problem, &[Dim::K, Dim::C, Dim::OX, Dim::OY, Dim::FX, Dim::FY]);
/// assert_eq!(m.loops()[0].dim, Dim::K);
/// assert_eq!(m.loops()[0].size, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporalMapping {
    loops: Vec<TemporalLoop>,
}

impl TemporalMapping {
    /// Builds a temporal mapping from an ordering of dimensions
    /// (innermost first). Dimensions whose temporal trip count is 1 are
    /// dropped.
    pub fn from_order(problem: &SingleLayerProblem<'_>, order: &[Dim]) -> Self {
        let unrolling = problem.accelerator.pe_array().unrolling();
        let mut loops = Vec::with_capacity(order.len());
        for &dim in order {
            let total = problem.dims.size(dim).max(1);
            let spatial = unrolling.factor(dim);
            let temporal = total.div_ceil(spatial);
            if temporal > 1 {
                loops.push(TemporalLoop {
                    dim,
                    size: temporal,
                });
            }
        }
        Self { loops }
    }

    /// Rebuilds a mapping from explicit loops (innermost first) — the
    /// deserialization path of the persistent mapping-cache store. The loops
    /// are taken verbatim; callers are expected to pass back exactly what
    /// [`TemporalMapping::loops`] produced.
    pub fn from_loops(loops: Vec<TemporalLoop>) -> Self {
        Self { loops }
    }

    /// The loops, innermost first.
    pub fn loops(&self) -> &[TemporalLoop] {
        &self.loops
    }

    /// Number of temporal loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Whether there are no temporal loops (the whole tile fits one PE-array
    /// pass).
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Product of the trip counts of loops `[0, boundary)` that iterate over
    /// dimension `dim`.
    pub fn below_product(&self, dim: Dim, boundary: usize) -> u64 {
        self.loops[..boundary.min(self.loops.len())]
            .iter()
            .filter(|l| l.dim == dim)
            .map(|l| l.size)
            .product::<u64>()
            .max(1)
    }

    /// The *refetch factor* for a level whose allocation boundary is
    /// `boundary`: the product of the trip counts of loops above the boundary
    /// that are irrelevant to the operand **and** outer to at least one
    /// relevant loop that is itself above the boundary.
    ///
    /// Data resident in the level only has to be refetched when a relevant
    /// loop above the boundary changes the working set *and* an irrelevant
    /// loop even further out revisits the same data later.
    pub fn refetch_factor(&self, relevant: &[Dim], boundary: usize) -> f64 {
        let mut seen_relevant = false;
        let mut factor = 1.0;
        for l in &self.loops[boundary.min(self.loops.len())..] {
            if relevant.contains(&l.dim) {
                seen_relevant = true;
            } else if seen_relevant {
                factor *= l.size as f64;
            }
        }
        factor
    }

    /// Total number of temporal iterations (product of all trip counts).
    pub fn total_iterations(&self) -> u64 {
        self.loops.iter().map(|l| l.size).product::<u64>().max(1)
    }
}

impl fmt::Display for TemporalMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.loops.is_empty() {
            return f.write_str("(fully spatial)");
        }
        let parts: Vec<String> = self
            .loops
            .iter()
            .map(|l| format!("{} {}", l.dim, l.size))
            .collect();
        write!(f, "[{}]", parts.join(" -> "))
    }
}

/// The temporal loops a problem actually has to order: the dimensions of
/// [`Dim::SPATIAL_AND_CHANNEL`] whose temporal trip count (after spatial
/// unrolling) exceeds one, in canonical order, paired with that trip count.
///
/// This is the "drop size-1 dims" half of the search-space canonicalization:
/// trivial loops can sit anywhere in an ordering without changing anything,
/// so they are excluded from the permutation space outright.
pub fn active_loops(problem: &SingleLayerProblem<'_>) -> Vec<TemporalLoop> {
    let unrolling = problem.accelerator.pe_array().unrolling();
    Dim::SPATIAL_AND_CHANNEL
        .iter()
        .copied()
        .filter_map(|d| {
            let size = problem.dims.size(d).div_ceil(unrolling.factor(d));
            (size > 1).then_some(TemporalLoop { dim: d, size })
        })
        .collect()
}

/// Generates candidate loop orderings (innermost-first permutations of the
/// dimensions that have a non-trivial temporal trip count), capped at
/// `max_orderings` by deterministic subsampling.
///
/// Permutations are enumerated lexicographically with respect to the
/// canonical dimension order — the same enumeration the pruned search in
/// [`crate::search`] walks, which is what makes the two agree bit-for-bit on
/// tie-breaking. Subsampling picks index `i * total / max` for each
/// `i < max`: exact integer striding, so the sample always contains exactly
/// `max` *distinct* orderings (the float-stride sampler it replaces could
/// duplicate or skip entries when `total / max` was not exactly
/// representable).
pub fn candidate_orderings(
    problem: &SingleLayerProblem<'_>,
    max_orderings: usize,
) -> Vec<Vec<Dim>> {
    let dims: Vec<Dim> = active_loops(problem).iter().map(|l| l.dim).collect();
    if dims.is_empty() {
        return vec![vec![]];
    }
    let mut all = Vec::new();
    let mut used = vec![false; dims.len()];
    let mut current = Vec::with_capacity(dims.len());
    permute_lex(&dims, &mut used, &mut current, &mut all);
    if all.len() <= max_orderings || max_orderings == 0 {
        return all;
    }
    // Deterministic subsample: an evenly spaced subset by integer striding.
    let total = all.len();
    (0..max_orderings)
        .map(|i| all[i * total / max_orderings].clone())
        .collect()
}

/// Lexicographic permutation enumeration: at every position the remaining
/// dimensions are tried in canonical (input) order. Intermediate recursion
/// mutates `current` in place; a `Vec` is materialized only at the leaves.
fn permute_lex(dims: &[Dim], used: &mut [bool], current: &mut Vec<Dim>, out: &mut Vec<Vec<Dim>>) {
    if current.len() == dims.len() {
        out.push(current.clone());
        return;
    }
    for i in 0..dims.len() {
        if used[i] {
            continue;
        }
        used[i] = true;
        current.push(dims[i]);
        permute_lex(dims, used, current, out);
        current.pop();
        used[i] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defines_arch::zoo;
    use defines_workload::{Layer, LayerDims, OpType};

    fn problem_for(dims: LayerDims) -> (defines_arch::Accelerator, Layer) {
        (zoo::meta_proto_like(), Layer::new("c", OpType::Conv, dims))
    }

    #[test]
    fn from_order_divides_by_spatial_unrolling() {
        let (acc, layer) = problem_for(LayerDims::conv(64, 4, 16, 16, 3, 3));
        let p = SingleLayerProblem::new(&acc, &layer);
        let m = TemporalMapping::from_order(&p, &Dim::SPATIAL_AND_CHANNEL);
        // K: 64/32 = 2, C: 4/2 = 2, OX: 16/4 = 4, OY: 4, FX: 3, FY: 3.
        assert_eq!(m.total_iterations(), 2 * 2 * 4 * 4 * 3 * 3);
        // C is unrolled by 2 so its temporal loop is 2.
        assert!(m.loops().iter().any(|l| l.dim == Dim::C && l.size == 2));
    }

    #[test]
    fn trivial_loops_are_dropped() {
        let (acc, layer) = problem_for(LayerDims::conv(32, 2, 4, 4, 1, 1));
        let p = SingleLayerProblem::new(&acc, &layer);
        let m = TemporalMapping::from_order(&p, &Dim::SPATIAL_AND_CHANNEL);
        assert!(m.is_empty(), "{m}");
        assert_eq!(m.total_iterations(), 1);
    }

    #[test]
    fn below_product_counts_only_inner_loops() {
        let (acc, layer) = problem_for(LayerDims::conv(64, 4, 16, 16, 3, 3));
        let p = SingleLayerProblem::new(&acc, &layer);
        let m =
            TemporalMapping::from_order(&p, &[Dim::OX, Dim::OY, Dim::K, Dim::C, Dim::FX, Dim::FY]);
        assert_eq!(m.below_product(Dim::OX, 1), 4);
        assert_eq!(m.below_product(Dim::OX, 0), 1);
        assert_eq!(m.below_product(Dim::K, 2), 1);
        assert_eq!(m.below_product(Dim::K, 3), 2);
    }

    #[test]
    fn refetch_factor_examples() {
        let (acc, layer) = problem_for(LayerDims::conv(128, 4, 16, 16, 1, 1));
        let p = SingleLayerProblem::new(&acc, &layer);
        // Innermost K (temporal 4), then OX (4), OY (4), C (2).
        let m = TemporalMapping::from_order(&p, &[Dim::K, Dim::OX, Dim::OY, Dim::C]);
        let w_rel = [Dim::K, Dim::C, Dim::FX, Dim::FY];
        // Boundary after K: OX, OY are irrelevant to W but no relevant W loop
        // sits between the boundary and them -> no refetch.
        assert_eq!(m.refetch_factor(&w_rel, 1), 1.0);
        // Boundary 0: K (relevant) is above, then OX/OY irrelevant above it -> 16.
        assert_eq!(m.refetch_factor(&w_rel, 0), 16.0);
        // Outputs: relevant K, OX, OY; C on the outside is a reduction loop but
        // has relevant loops below it -> factor 2 at boundary 0.
        let o_rel = [Dim::B, Dim::K, Dim::OX, Dim::OY];
        assert_eq!(m.refetch_factor(&o_rel, 0), 2.0);
        // Boundary above everything: never a refetch.
        assert_eq!(m.refetch_factor(&o_rel, m.len()), 1.0);
    }

    #[test]
    fn candidate_orderings_cover_permutations() {
        let (acc, layer) = problem_for(LayerDims::conv(64, 4, 16, 16, 3, 3));
        let p = SingleLayerProblem::new(&acc, &layer);
        let all = candidate_orderings(&p, usize::MAX);
        assert_eq!(all.len(), 720);
        let capped = candidate_orderings(&p, 24);
        assert_eq!(capped.len(), 24);
        // Deterministic.
        assert_eq!(capped, candidate_orderings(&p, 24));
    }

    #[test]
    fn candidate_orderings_degenerate_layer() {
        let (acc, layer) = problem_for(LayerDims::conv(32, 2, 4, 4, 1, 1));
        let p = SingleLayerProblem::new(&acc, &layer);
        let all = candidate_orderings(&p, usize::MAX);
        assert_eq!(all, vec![Vec::<Dim>::new()]);
    }

    #[test]
    fn display_shows_order() {
        let (acc, layer) = problem_for(LayerDims::conv(64, 4, 16, 16, 3, 3));
        let p = SingleLayerProblem::new(&acc, &layer);
        let m = TemporalMapping::from_order(&p, &[Dim::K, Dim::OX]);
        let s = m.to_string();
        assert!(s.contains("K 2") && s.contains("OX 4"), "{s}");
    }
}
