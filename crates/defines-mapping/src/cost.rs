//! Access-count, energy and latency model for a single layer-tile under a
//! given temporal mapping.

use crate::allocation::{allocate, OperandAllocation};
use crate::problem::SingleLayerProblem;
use crate::temporal::TemporalMapping;
use defines_arch::{MemoryLevelId, Operand};
use serde::{Deserialize, Serialize, Value};

/// Read/write traffic at one memory level attributable to one operand, in
/// bytes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Access {
    /// Bytes read from the level.
    pub reads_bytes: f64,
    /// Bytes written to the level.
    pub writes_bytes: f64,
}

impl Access {
    /// Total traffic (reads + writes).
    pub fn total_bytes(&self) -> f64 {
        self.reads_bytes + self.writes_bytes
    }
}

/// Per-(memory level, operand) access breakdown.
///
/// Internally a `Vec` of entries kept sorted by `(level, operand)` — the
/// entry count is bounded by `levels × 3`, where binary search plus a short
/// memmove beats a node-allocating tree map by a wide margin on the cost
/// model's hot accumulation paths. Iteration order (and therefore every
/// float-summation order built on it) is identical to the previous
/// `BTreeMap`-backed representation, as is the serialized form.
#[derive(Debug, Clone, PartialEq, Default, Deserialize)]
pub struct AccessBreakdown {
    map: Vec<((MemoryLevelId, Operand), Access)>,
}

impl Serialize for AccessBreakdown {
    fn to_value(&self) -> Value {
        // Matches the derived (BTreeMap-backed) encoding: a `map` field whose
        // non-string keys render as an array of `[key, value]` pairs.
        Value::Object(vec![(
            "map".to_string(),
            Value::Array(
                self.map
                    .iter()
                    .map(|(k, a)| Value::Array(vec![k.to_value(), a.to_value()]))
                    .collect(),
            ),
        )])
    }
}

impl AccessBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a breakdown from explicit entries — the deserialization path
    /// of the persistent mapping-cache store. Entries are re-sorted by
    /// `(level, operand)` so the invariant the accessors rely on holds even
    /// if the input order drifted.
    pub fn from_entries(entries: Vec<((MemoryLevelId, Operand), Access)>) -> Self {
        let mut map = entries;
        map.sort_unstable_by_key(|&(k, _)| k);
        Self { map }
    }

    /// The slot for a key, inserted zeroed if absent.
    fn slot(&mut self, key: (MemoryLevelId, Operand)) -> &mut Access {
        match self.map.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => &mut self.map[i].1,
            Err(i) => {
                self.map.insert(i, (key, Access::default()));
                &mut self.map[i].1
            }
        }
    }

    /// Adds reads at a level for an operand.
    pub fn add_reads(&mut self, level: MemoryLevelId, operand: Operand, bytes: f64) {
        self.slot((level, operand)).reads_bytes += bytes;
    }

    /// Adds writes at a level for an operand.
    pub fn add_writes(&mut self, level: MemoryLevelId, operand: Operand, bytes: f64) {
        self.slot((level, operand)).writes_bytes += bytes;
    }

    /// The access record for a (level, operand) pair.
    pub fn get(&self, level: MemoryLevelId, operand: Operand) -> Access {
        match self
            .map
            .binary_search_by_key(&(level, operand), |&(k, _)| k)
        {
            Ok(i) => self.map[i].1,
            Err(_) => Access::default(),
        }
    }

    /// Iterates over all `(level, operand, access)` entries in
    /// `(level, operand)` order.
    pub fn iter(&self) -> impl Iterator<Item = (MemoryLevelId, Operand, Access)> + '_ {
        self.map.iter().map(|&((l, o), a)| (l, o, a))
    }

    /// Total traffic at a level across operands.
    pub fn level_total(&self, level: MemoryLevelId) -> Access {
        let mut acc = Access::default();
        for &((l, _), a) in &self.map {
            if l == level {
                acc.reads_bytes += a.reads_bytes;
                acc.writes_bytes += a.writes_bytes;
            }
        }
        acc
    }

    /// Total traffic of one operand across levels.
    pub fn operand_total(&self, operand: Operand) -> Access {
        let mut acc = Access::default();
        for &((_, o), a) in &self.map {
            if o == operand {
                acc.reads_bytes += a.reads_bytes;
                acc.writes_bytes += a.writes_bytes;
            }
        }
        acc
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &AccessBreakdown) {
        for &(k, a) in &other.map {
            let e = self.slot(k);
            e.reads_bytes += a.reads_bytes;
            e.writes_bytes += a.writes_bytes;
        }
    }

    /// Merges `other` scaled by `factor`, without materializing the scaled
    /// intermediate — bit-identical to `merge(&other.scaled(factor))`.
    pub fn merge_scaled(&mut self, other: &AccessBreakdown, factor: f64) {
        for &(k, a) in &other.map {
            let e = self.slot(k);
            e.reads_bytes += a.reads_bytes * factor;
            e.writes_bytes += a.writes_bytes * factor;
        }
    }

    /// Scales all traffic by a factor (used when replicating tile types).
    pub fn scaled(&self, factor: f64) -> AccessBreakdown {
        let map = self
            .map
            .iter()
            .map(|&(k, a)| {
                (
                    k,
                    Access {
                        reads_bytes: a.reads_bytes * factor,
                        writes_bytes: a.writes_bytes * factor,
                    },
                )
            })
            .collect();
        AccessBreakdown { map }
    }
}

/// What the mapper should minimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize total energy (the paper's default for the case studies).
    #[default]
    Energy,
    /// Minimize latency in cycles.
    Latency,
    /// Minimize the energy-delay product.
    Edp,
    /// Minimize DRAM traffic (the target used by several SotA frameworks in
    /// Table II; exposed to reproduce Fig. 18).
    DramAccess,
}

/// The evaluated cost of one layer (or layer-tile).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Total energy in pJ (MAC + memory).
    pub energy_pj: f64,
    /// Energy spent in MAC operations, in pJ.
    pub mac_energy_pj: f64,
    /// Energy spent in memory accesses, in pJ.
    pub memory_energy_pj: f64,
    /// Latency in cycles (compute / bandwidth bound, whichever dominates).
    pub latency_cycles: f64,
    /// Ideal compute cycles (no memory stalls).
    pub compute_cycles: f64,
    /// Number of MAC operations performed.
    pub macs: u64,
    /// Per-level, per-operand access breakdown.
    pub accesses: AccessBreakdown,
    /// The temporal mapping this cost was evaluated for.
    pub mapping: TemporalMapping,
    /// Whether the search that produced this cost exhausted its work budget
    /// ([`crate::Budget`]): the cost is then the exact optimum of the
    /// in-budget candidate window only. Evaluating a *fixed* mapping never
    /// degrades.
    pub degraded: bool,
}

impl LayerCost {
    /// Energy-delay product (pJ · cycles).
    pub fn edp(&self) -> f64 {
        self.energy_pj * self.latency_cycles
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self, dram: MemoryLevelId) -> f64 {
        self.accesses.level_total(dram).total_bytes()
    }

    /// The scalar value of an objective for this cost.
    pub fn objective_value(&self, objective: Objective, dram: MemoryLevelId) -> f64 {
        match objective {
            Objective::Energy => self.energy_pj,
            Objective::Latency => self.latency_cycles,
            Objective::Edp => self.edp(),
            Objective::DramAccess => self.dram_bytes(dram),
        }
    }
}

/// Evaluates the cost of a problem under a specific temporal mapping.
pub fn evaluate(problem: &SingleLayerProblem<'_>, mapping: &TemporalMapping) -> LayerCost {
    let hierarchy = problem.accelerator.hierarchy();
    let pe = problem.accelerator.pe_array();
    let macs = problem.total_macs();
    let mut accesses = AccessBreakdown::new();

    for operand in Operand::ALL {
        let footprint = problem.footprint_bytes(operand) as f64;
        if footprint <= 0.0 {
            continue;
        }
        let allocation = allocate(problem, mapping, operand);
        let relevant = problem.relevant_dims(operand);
        let spatial_reuse = pe.unrolling().spatial_reuse(relevant) as f64;
        let pe_bytes = macs as f64 / spatial_reuse * problem.bytes_per_element(operand) as f64;
        add_operand_traffic(
            &mut accesses,
            operand,
            &allocation,
            footprint,
            pe_bytes,
            |boundary| mapping.refetch_factor(relevant, boundary),
        );
    }

    let mut memory_energy_pj = 0.0;
    for (level_id, _operand, access) in accesses.iter() {
        let level = hierarchy.level(level_id);
        memory_energy_pj += access.reads_bytes * level.read_energy_pj_per_byte()
            + access.writes_bytes * level.write_energy_pj_per_byte();
    }
    let mac_energy_pj = macs as f64 * pe.mac_energy_pj();

    let compute_cycles = pe.compute_cycles(macs, &problem.dims);
    let mut latency_cycles = compute_cycles;
    for (i, level) in hierarchy.levels().iter().enumerate() {
        let total = accesses.level_total(MemoryLevelId(i));
        let read_cycles = if level.read_bw_bytes_per_cycle().is_finite() {
            total.reads_bytes / level.read_bw_bytes_per_cycle()
        } else {
            0.0
        };
        let write_cycles = if level.write_bw_bytes_per_cycle().is_finite() {
            total.writes_bytes / level.write_bw_bytes_per_cycle()
        } else {
            0.0
        };
        latency_cycles = latency_cycles.max(read_cycles).max(write_cycles);
    }

    LayerCost {
        energy_pj: mac_energy_pj + memory_energy_pj,
        mac_energy_pj,
        memory_energy_pj,
        latency_cycles,
        compute_cycles,
        macs,
        accesses,
        mapping: mapping.clone(),
        degraded: false,
    }
}

/// Adds the inter-level traffic of one operand to the breakdown.
///
/// * For read operands (weights, inputs): the PE drains `pe_bytes` from the
///   innermost level; every lower level is filled from its parent
///   `footprint × refetch(boundary)` bytes. The top level itself is not
///   written (its content is provided by the depth-first model / DRAM).
/// * For outputs: the PE performs read+write accumulation traffic at the
///   innermost level; between adjacent levels, partial sums move up
///   `footprint × r` bytes and come back down `footprint × (r − 1)` bytes,
///   where `r` is the refetch factor of the lower level's boundary.
fn add_operand_traffic(
    accesses: &mut AccessBreakdown,
    operand: Operand,
    allocation: &OperandAllocation,
    footprint: f64,
    pe_bytes: f64,
    refetch: impl Fn(usize) -> f64,
) {
    let levels = &allocation.levels;
    let innermost = levels[0].0;
    match operand {
        Operand::Weight | Operand::Input => {
            accesses.add_reads(innermost, operand, pe_bytes);
            for window in levels.windows(2) {
                let (child, boundary) = window[0];
                let (parent, _) = window[1];
                let fills = footprint * refetch(boundary);
                accesses.add_writes(child, operand, fills);
                accesses.add_reads(parent, operand, fills);
            }
        }
        Operand::Output => {
            accesses.add_reads(innermost, operand, pe_bytes);
            accesses.add_writes(innermost, operand, pe_bytes);
            for window in levels.windows(2) {
                let (child, boundary) = window[0];
                let (parent, _) = window[1];
                let r = refetch(boundary);
                let up = footprint * r;
                let down = footprint * (r - 1.0);
                accesses.add_reads(child, operand, up);
                accesses.add_writes(parent, operand, up);
                accesses.add_reads(parent, operand, down);
                accesses.add_writes(child, operand, down);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::candidate_orderings;
    use defines_arch::zoo;
    use defines_workload::{Dim, Layer, LayerDims, OpType};

    fn cost_for(dims: LayerDims, order: &[Dim]) -> (defines_arch::Accelerator, LayerCost) {
        let acc = zoo::meta_proto_like_df();
        let layer = Layer::new("c", OpType::Conv, dims);
        let p = SingleLayerProblem::new(&acc, &layer);
        let m = TemporalMapping::from_order(&p, order);
        let c = evaluate(&p, &m);
        (acc, c)
    }

    #[test]
    fn energy_components_are_consistent() {
        let (_, c) = cost_for(
            LayerDims::conv(64, 16, 32, 32, 3, 3),
            &Dim::SPATIAL_AND_CHANNEL,
        );
        assert!(c.energy_pj > 0.0);
        assert!((c.energy_pj - (c.mac_energy_pj + c.memory_energy_pj)).abs() < 1e-6);
        assert!(c.latency_cycles >= c.compute_cycles);
        assert_eq!(c.macs, 64 * 16 * 32 * 32 * 9);
    }

    #[test]
    fn output_drain_reaches_top_level_exactly_once_for_output_stationary_order() {
        // With all reduction loops innermost, outputs are fully accumulated
        // before moving up: the DRAM sees exactly the output footprint.
        let acc = zoo::meta_proto_like_df();
        let layer = Layer::new("c", OpType::Conv, LayerDims::conv(64, 16, 32, 32, 3, 3));
        let p = SingleLayerProblem::new(&acc, &layer);
        let m =
            TemporalMapping::from_order(&p, &[Dim::C, Dim::FX, Dim::FY, Dim::K, Dim::OX, Dim::OY]);
        let c = evaluate(&p, &m);
        let dram = acc.hierarchy().dram_id();
        let o_at_dram = c.accesses.get(dram, Operand::Output);
        assert!((o_at_dram.writes_bytes - (64.0 * 32.0 * 32.0)).abs() < 1e-6);
        assert_eq!(o_at_dram.reads_bytes, 0.0);
    }

    #[test]
    fn weight_dram_reads_at_least_footprint() {
        let (acc, c) = cost_for(
            LayerDims::conv(64, 16, 32, 32, 3, 3),
            &Dim::SPATIAL_AND_CHANNEL,
        );
        let dram = acc.hierarchy().dram_id();
        let w = c.accesses.get(dram, Operand::Weight);
        assert!(w.reads_bytes >= (64 * 16 * 9) as f64);
    }

    #[test]
    fn mapping_choice_changes_cost() {
        let orders = [
            [Dim::K, Dim::C, Dim::FX, Dim::FY, Dim::OX, Dim::OY],
            [Dim::OX, Dim::OY, Dim::K, Dim::C, Dim::FX, Dim::FY],
        ];
        let dims = LayerDims::conv(128, 64, 56, 56, 3, 3);
        let (_, a) = cost_for(dims, &orders[0]);
        let (_, b) = cost_for(dims, &orders[1]);
        assert_ne!(a.energy_pj, b.energy_pj);
    }

    #[test]
    fn breakdown_merge_and_scale() {
        let (_, c) = cost_for(
            LayerDims::conv(16, 8, 16, 16, 3, 3),
            &Dim::SPATIAL_AND_CHANNEL,
        );
        let mut merged = AccessBreakdown::new();
        merged.merge(&c.accesses);
        merged.merge(&c.accesses);
        let doubled = c.accesses.scaled(2.0);
        for (l, o, a) in doubled.iter() {
            let m = merged.get(l, o);
            assert!((m.reads_bytes - a.reads_bytes).abs() < 1e-9);
            assert!((m.writes_bytes - a.writes_bytes).abs() < 1e-9);
        }
    }

    #[test]
    fn objective_values() {
        let (acc, c) = cost_for(
            LayerDims::conv(16, 8, 16, 16, 3, 3),
            &Dim::SPATIAL_AND_CHANNEL,
        );
        let dram = acc.hierarchy().dram_id();
        assert_eq!(c.objective_value(Objective::Energy, dram), c.energy_pj);
        assert_eq!(
            c.objective_value(Objective::Latency, dram),
            c.latency_cycles
        );
        assert_eq!(c.objective_value(Objective::Edp, dram), c.edp());
        assert!(c.objective_value(Objective::DramAccess, dram) > 0.0);
    }

    #[test]
    fn pooling_layer_has_no_weight_traffic() {
        let acc = zoo::meta_proto_like_df();
        let layer = Layer::new(
            "pool",
            OpType::Pooling,
            LayerDims::conv(64, 64, 28, 28, 2, 2).with_stride(2, 2),
        );
        let p = SingleLayerProblem::new(&acc, &layer);
        let m = TemporalMapping::from_order(&p, &Dim::SPATIAL_AND_CHANNEL);
        let c = evaluate(&p, &m);
        assert_eq!(c.accesses.operand_total(Operand::Weight).total_bytes(), 0.0);
        assert!(c.accesses.operand_total(Operand::Input).total_bytes() > 0.0);
    }

    #[test]
    fn all_orderings_produce_positive_finite_costs() {
        let acc = zoo::edge_tpu_like_df();
        let layer = Layer::new("c", OpType::Conv, LayerDims::conv(24, 12, 20, 20, 3, 3));
        let p = SingleLayerProblem::new(&acc, &layer);
        for order in candidate_orderings(&p, 64) {
            let m = TemporalMapping::from_order(&p, &order);
            let c = evaluate(&p, &m);
            assert!(c.energy_pj.is_finite() && c.energy_pj > 0.0);
            assert!(c.latency_cycles.is_finite() && c.latency_cycles > 0.0);
        }
    }
}
