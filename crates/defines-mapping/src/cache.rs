//! Memoization of single-layer mapping results across design points.
//!
//! The depth-first design space is hugely redundant from the mapper's point
//! of view: different (tile size, overlap mode, fuse depth) design points
//! decompose into the *same* per-layer tile sub-problems, and the LOMA
//! temporal-mapping search is by far the most expensive part of evaluating
//! one. A [`MappingCache`] keys mapping results by the full sub-problem
//! identity — layer signature (operator, precisions), tile dimensions,
//! operand top levels and the accelerator's structural fingerprint — so each
//! distinct sub-problem is searched exactly once no matter how many design
//! points, sweeps or cost-model instances share the cache.

use crate::cost::LayerCost;
use crate::loma::LomaMapper;
use crate::problem::{OperandTopLevels, SingleLayerProblem};
use defines_engine::{CacheStats, MemoCache};
use defines_workload::{LayerDims, OpType};
use std::sync::Arc;

/// The memoization key: everything that determines a mapping result.
///
/// Two problems with equal keys are guaranteed to produce bit-identical
/// [`LayerCost`]s under the same [`MapperConfig`](crate::MapperConfig),
/// because the mapper is deterministic in the problem alone.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProblemKey {
    /// Structural fingerprint of the accelerator
    /// ([`Accelerator::fingerprint`](defines_arch::Accelerator::fingerprint)).
    pub accelerator: u64,
    /// Operator class of the layer.
    pub op: OpType,
    /// Loop dimensions of the (tile of the) layer.
    pub dims: LayerDims,
    /// Bits per activation element.
    pub act_bits: u32,
    /// Bits per weight element.
    pub weight_bits: u32,
    /// Highest memory level each operand may use.
    pub top_levels: OperandTopLevels,
    /// The mapper configuration fingerprint (objective + search width), so
    /// one cache can serve models with different mapper settings.
    pub mapper: u64,
}

impl ProblemKey {
    /// Builds the key for a problem solved by a specific mapper.
    pub fn new(problem: &SingleLayerProblem<'_>, mapper: &LomaMapper) -> Self {
        Self {
            accelerator: problem.accelerator.fingerprint(),
            op: problem.op,
            dims: problem.dims,
            act_bits: problem.act_bits,
            weight_bits: problem.weight_bits,
            top_levels: problem.top_levels,
            mapper: mapper.config_fingerprint(),
        }
    }
}

/// A shared, thread-safe cache of single-layer mapping results.
///
/// Cloning the handle is cheap (`Arc`); all clones share the same entries and
/// statistics. The cache is safe to share across threads, accelerators and
/// mapper configurations — the key disambiguates all of them.
#[derive(Debug, Clone, Default)]
pub struct MappingCache {
    inner: Arc<MemoCache<ProblemKey, LayerCost>>,
}

impl MappingCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached cost for the problem, running the mapper on a miss.
    pub fn optimize(&self, mapper: &LomaMapper, problem: &SingleLayerProblem<'_>) -> LayerCost {
        let key = ProblemKey::new(problem, mapper);
        self.inner
            .get_or_insert_with(key, || mapper.optimize(problem))
    }

    /// Hit/miss statistics accumulated since creation (or the last clear).
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Drops all entries and resets the statistics.
    pub fn clear(&self) {
        self.inner.clear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loma::MapperConfig;
    use defines_arch::zoo;
    use defines_workload::{Layer, LayerDims, OpType};

    fn layer() -> Layer {
        Layer::new("c", OpType::Conv, LayerDims::conv(32, 16, 28, 28, 3, 3))
    }

    #[test]
    fn cache_returns_identical_results() {
        let acc = zoo::meta_proto_like_df();
        let l = layer();
        let problem = SingleLayerProblem::new(&acc, &l);
        let mapper = LomaMapper::new(MapperConfig::fast());
        let cache = MappingCache::new();
        let fresh = mapper.optimize(&problem);
        let first = cache.optimize(&mapper, &problem);
        let second = cache.optimize(&mapper, &problem);
        assert_eq!(first, fresh);
        assert_eq!(second, fresh);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn key_distinguishes_accelerators_and_mappers() {
        let a = zoo::meta_proto_like_df();
        let b = zoo::tpu_like();
        let l = layer();
        let pa = SingleLayerProblem::new(&a, &l);
        let pb = SingleLayerProblem::new(&b, &l);
        let fast = LomaMapper::new(MapperConfig::fast());
        let full = LomaMapper::default();
        assert_ne!(ProblemKey::new(&pa, &fast), ProblemKey::new(&pb, &fast));
        assert_ne!(ProblemKey::new(&pa, &fast), ProblemKey::new(&pa, &full));
        assert_eq!(ProblemKey::new(&pa, &fast), ProblemKey::new(&pa, &fast));
    }

    #[test]
    fn shared_handles_share_entries() {
        let acc = zoo::meta_proto_like_df();
        let l = layer();
        let problem = SingleLayerProblem::new(&acc, &l);
        let mapper = LomaMapper::new(MapperConfig::fast());
        let cache = MappingCache::new();
        let clone = cache.clone();
        let _ = cache.optimize(&mapper, &problem);
        let _ = clone.optimize(&mapper, &problem);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(clone.stats().entries, 1);
    }
}
