//! Memoization of single-layer mapping results across design points.
//!
//! The depth-first design space is hugely redundant from the mapper's point
//! of view: different (tile size, overlap mode, fuse depth) design points
//! decompose into the *same* per-layer tile sub-problems, and the LOMA
//! temporal-mapping search is by far the most expensive part of evaluating
//! one. A [`MappingCache`] keys mapping results by the full sub-problem
//! identity — layer signature (operator, precisions), tile dimensions,
//! operand top levels and the accelerator's structural fingerprint — so each
//! distinct sub-problem is searched exactly once no matter how many design
//! points, sweeps or cost-model instances share the cache.

use crate::cost::LayerCost;
use crate::loma::LomaMapper;
use crate::problem::{OperandTopLevels, SingleLayerProblem};
use crate::search::INCUMBENT_EMPTY;
use defines_engine::{CacheStats, MemoCache};
use defines_telemetry::{span, Counter};
use defines_workload::{LayerDims, OpType};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Mapping-cache lookups served from an existing entry.
static CACHE_HITS: Counter = Counter::new("mapping.cache.hits");
/// Lookups that ran the mapper (and inserted the result).
static CACHE_MISSES: Counter = Counter::new("mapping.cache.misses");
/// Hits that only exist because of key canonicalization.
static CACHE_CANONICAL_HITS: Counter = Counter::new("mapping.cache.canonical_hits");

/// The memoization key: everything that determines a mapping result.
///
/// Two problems with equal keys are guaranteed to produce bit-identical
/// [`LayerCost`]s under the same [`MapperConfig`](crate::MapperConfig),
/// because the mapper is deterministic in the problem alone.
///
/// [`ProblemKey::canonical`] additionally normalizes the components that
/// provably cannot influence the result, so problems that differ only in
/// those share one cache entry (a *canonical hit*).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProblemKey {
    /// Structural fingerprint of the accelerator
    /// ([`Accelerator::fingerprint`](defines_arch::Accelerator::fingerprint)).
    pub accelerator: u64,
    /// Operator class of the layer.
    pub op: OpType,
    /// Loop dimensions of the (tile of the) layer.
    pub dims: LayerDims,
    /// Bits per activation element.
    pub act_bits: u32,
    /// Bits per weight element.
    pub weight_bits: u32,
    /// Highest memory level each operand may use.
    pub top_levels: OperandTopLevels,
    /// The mapper configuration fingerprint (objective + search width), so
    /// one cache can serve models with different mapper settings.
    pub mapper: u64,
}

impl ProblemKey {
    /// Builds the raw (uncanonicalized) key for a problem solved by a
    /// specific mapper.
    pub fn new(problem: &SingleLayerProblem<'_>, mapper: &LomaMapper) -> Self {
        Self {
            accelerator: problem.accelerator.fingerprint(),
            op: problem.op,
            dims: problem.dims,
            act_bits: problem.act_bits,
            weight_bits: problem.weight_bits,
            top_levels: problem.top_levels,
            mapper: mapper.config_fingerprint(),
        }
    }

    /// Builds the canonical key for a problem: the raw key with every
    /// component the single-layer model provably ignores normalized away.
    /// Returns the key and whether canonicalization changed anything (i.e.
    /// whether a hit on this key may be a *canonical* hit).
    ///
    /// Normalized components:
    ///
    /// * **padding** — the single-layer cost model never reads `pad_x` /
    ///   `pad_y`: footprints use the un-padded input extent, the resident
    ///   data sizes use stride and kernel only, and the PE utilization uses
    ///   the plain loop bounds. Tiles (padding already zeroed) therefore
    ///   share entries with identically-shaped full layers.
    /// * **weight precision and weight top level for weight-less operators**
    ///   (pooling, add) — a zero weight footprint removes the weight operand
    ///   from allocation, traffic and capacity sharing entirely, so neither
    ///   value can reach the result. This is what makes tile problems that
    ///   differ only in the placement of (non-existent) weights — common in
    ///   pooling/add-heavy sweeps — resolve to one cache entry.
    pub fn canonical(problem: &SingleLayerProblem<'_>, mapper: &LomaMapper) -> (Self, bool) {
        Self::canonical_with_fingerprints(
            problem,
            problem.accelerator.fingerprint(),
            mapper.config_fingerprint(),
        )
    }

    /// [`ProblemKey::canonical`] with the accelerator / mapper fingerprints
    /// supplied by the caller. The fingerprints hash the full architecture
    /// description, so callers that resolve many sub-problems against one
    /// accelerator (the depth-first cost model) compute them once instead of
    /// once per lookup.
    pub fn canonical_with_fingerprints(
        problem: &SingleLayerProblem<'_>,
        accelerator: u64,
        mapper: u64,
    ) -> (Self, bool) {
        let mut key = Self {
            accelerator,
            op: problem.op,
            dims: problem.dims,
            act_bits: problem.act_bits,
            weight_bits: problem.weight_bits,
            top_levels: problem.top_levels,
            mapper,
        };
        let mut changed = false;
        if key.dims.pad_x != 0 || key.dims.pad_y != 0 {
            key.dims.pad_x = 0;
            key.dims.pad_y = 0;
            changed = true;
        }
        if problem.weight_footprint_bytes() == 0 {
            let dram = problem.accelerator.hierarchy().dram_id();
            if key.weight_bits != 0 || key.top_levels.weight != dram {
                key.weight_bits = 0;
                key.top_levels.weight = dram;
                changed = true;
            }
        }
        (key, changed)
    }
}

/// A shared, thread-safe cache of single-layer mapping results.
///
/// Cloning the handle is cheap (`Arc`); all clones share the same entries and
/// statistics. The cache is safe to share across threads, accelerators and
/// mapper configurations — the key disambiguates all of them.
///
/// Entries are stored behind an `Arc`, so the hot path
/// ([`MappingCache::optimize_shared`]) hands out shared references instead of
/// deep-copying the access breakdown on every hit; problems are keyed by
/// their [canonical form](ProblemKey::canonical), with canonical hits counted
/// separately in the [`CacheStats`].
#[derive(Debug, Clone, Default)]
pub struct MappingCache {
    inner: Arc<MemoCache<ProblemKey, Arc<LayerCost>>>,
    /// One shared incumbent cell per canonical key (see
    /// [`crate::search`]'s incumbent encoding). [`MemoCache`] deliberately
    /// does not hold its lock while computing a missed entry, so two threads
    /// (e.g. two matrix cells recurring the same canonical sub-problem) can
    /// search the same key concurrently — handing both the same cell lets
    /// whichever pulls ahead tighten the other's branch-and-bound pruning.
    /// Every published value is the exact cost of a fully evaluated
    /// ordering of the *same* canonical problem, so results stay
    /// bit-identical (the cache contract already requires canonical twins
    /// to produce identical costs).
    incumbents: Arc<Mutex<HashMap<ProblemKey, Arc<AtomicU64>>>>,
    /// Last-used epoch tracking for the persistent store's LRU eviction (see
    /// [`crate::persist`]). Disabled by default: when off, the hot lookup
    /// path pays exactly one relaxed atomic load. Epochs advance only at
    /// *batch* boundaries ([`MappingCache::advance_epoch`]), never per
    /// lookup, so every touch within one batch records the same epoch and
    /// the recorded usage is independent of thread interleaving — the
    /// foundation of the store's deterministic eviction order.
    usage: Arc<UsageTracker>,
}

/// See [`MappingCache::usage`].
#[derive(Debug, Default)]
struct UsageTracker {
    enabled: AtomicBool,
    epoch: AtomicU64,
    last_used: Mutex<HashMap<ProblemKey, u64>>,
}

impl UsageTracker {
    /// Locks the last-used map, recovering from poisoning (same argument as
    /// [`MappingCache::lock_incumbents`]: every critical section is a single
    /// map operation that cannot be observed half-done).
    fn lock(&self) -> MutexGuard<'_, HashMap<ProblemKey, u64>> {
        self.last_used
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl MappingCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the incumbent map, recovering from poisoning. Sound for the same
    /// reason as `MemoCache`'s shard recovery: the guard only ever covers a
    /// single `entry().or_insert_with()` (the mapper itself runs after the
    /// guard is dropped) or a `clear()`, neither of which can be observed
    /// half-done — a panicking thread leaves the map valid, so the poison
    /// flag carries no information and recovery keeps sibling sweeps alive.
    fn lock_incumbents(&self) -> MutexGuard<'_, HashMap<ProblemKey, Arc<AtomicU64>>> {
        self.incumbents
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns the cached cost for the problem, running the mapper on a miss.
    pub fn optimize(&self, mapper: &LomaMapper, problem: &SingleLayerProblem<'_>) -> LayerCost {
        (*self.optimize_shared(mapper, problem)).clone()
    }

    /// Returns a shared handle to the cached cost for the problem, running
    /// the mapper on a miss. The allocation-free variant of
    /// [`MappingCache::optimize`]: a hit costs one reference-count bump
    /// instead of a deep copy of the cost record.
    pub fn optimize_shared(
        &self,
        mapper: &LomaMapper,
        problem: &SingleLayerProblem<'_>,
    ) -> Arc<LayerCost> {
        let (key, canonicalized) = ProblemKey::canonical(problem, mapper);
        self.optimize_shared_keyed(key, canonicalized, mapper, problem)
    }

    /// [`MappingCache::optimize_shared`] with a pre-built canonical key (see
    /// [`ProblemKey::canonical_with_fingerprints`]).
    pub fn optimize_shared_keyed(
        &self,
        key: ProblemKey,
        canonicalized: bool,
        mapper: &LomaMapper,
        problem: &SingleLayerProblem<'_>,
    ) -> Arc<LayerCost> {
        let key_for_usage = self
            .usage
            .enabled
            .load(Ordering::Relaxed)
            .then(|| key.clone());
        let (cost, hit) = self.inner.get_or_insert_with_meta(key.clone(), || {
            let _span = span!("mapping.search");
            let cell = Arc::clone(
                self.lock_incumbents()
                    .entry(key)
                    .or_insert_with(|| Arc::new(AtomicU64::new(INCUMBENT_EMPTY))),
            );
            Arc::new(mapper.optimize_with_incumbent(problem, &cell))
        });
        if hit {
            CACHE_HITS.incr();
            if canonicalized {
                self.inner.record_canonical_hit();
                CACHE_CANONICAL_HITS.incr();
            }
        } else {
            CACHE_MISSES.incr();
        }
        if let Some(key) = key_for_usage {
            let epoch = self.usage.epoch.load(Ordering::Relaxed);
            self.usage.lock().insert(key, epoch);
        }
        cost
    }

    /// Enables last-used tracking for this cache (and all clones of the
    /// handle). Required before attaching the cache to a persistent store.
    pub fn track_usage(&self) {
        self.usage.enabled.store(true, Ordering::Relaxed);
    }

    /// The current usage epoch.
    pub fn current_epoch(&self) -> u64 {
        self.usage.epoch.load(Ordering::Relaxed)
    }

    /// Sets the usage epoch (used when reloading a persisted store, which
    /// resumes counting after the highest persisted epoch).
    pub fn set_epoch(&self, epoch: u64) {
        self.usage.epoch.store(epoch, Ordering::Relaxed);
    }

    /// Advances the usage epoch by one. Call at batch boundaries only: all
    /// lookups between two calls share one epoch, which is what makes the
    /// recorded usage — and therefore LRU eviction — independent of how
    /// threads interleaved within the batch.
    pub fn advance_epoch(&self) {
        self.usage.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// The keys touched since tracking began, with the epoch of their most
    /// recent touch, sorted by key. Draining (`clear`) keeps the next
    /// snapshot incremental.
    pub fn drain_usage(&self) -> Vec<(ProblemKey, u64)> {
        let mut guard = self.usage.lock();
        let mut out: Vec<(ProblemKey, u64)> = guard.drain().collect();
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Records a usage epoch for `key` directly (store reload path).
    pub fn set_usage(&self, key: ProblemKey, epoch: u64) {
        self.usage.lock().insert(key, epoch);
    }

    /// Inserts a previously computed cost without touching the hit/miss
    /// counters, returning `true` if the key was absent. Used by the
    /// persistent store to warm the cache from disk.
    pub fn preload(&self, key: ProblemKey, cost: Arc<LayerCost>) -> bool {
        self.inner.insert(key, cost)
    }

    /// The cached cost for `key` without counting a hit or miss — for
    /// persistence bookkeeping that must not distort the lookup statistics.
    pub fn peek(&self, key: &ProblemKey) -> Option<Arc<LayerCost>> {
        self.inner.peek(key)
    }

    /// Removes an entry (and its incumbent cell), returning its cost if it
    /// was present. Eviction bookkeeping: no effect on hit/miss counters.
    pub fn remove(&self, key: &ProblemKey) -> Option<Arc<LayerCost>> {
        self.lock_incumbents().remove(key);
        self.usage.lock().remove(key);
        self.inner.remove(key)
    }

    /// All entries, sorted by key (deterministic regardless of insertion or
    /// shard order).
    pub fn entries(&self) -> Vec<(ProblemKey, Arc<LayerCost>)> {
        let mut out = self.inner.snapshot();
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Hit/miss statistics accumulated since creation (or the last clear).
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Drops all entries (including the per-key incumbent cells) and resets
    /// the statistics.
    pub fn clear(&self) {
        self.inner.clear();
        self.lock_incumbents().clear();
        self.usage.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loma::MapperConfig;
    use defines_arch::{zoo, Operand};
    use defines_workload::{Layer, LayerDims, OpType};

    fn layer() -> Layer {
        Layer::new("c", OpType::Conv, LayerDims::conv(32, 16, 28, 28, 3, 3))
    }

    #[test]
    fn cache_returns_identical_results() {
        let acc = zoo::meta_proto_like_df();
        let l = layer();
        let problem = SingleLayerProblem::new(&acc, &l);
        let mapper = LomaMapper::new(MapperConfig::fast());
        let cache = MappingCache::new();
        let fresh = mapper.optimize(&problem);
        let first = cache.optimize(&mapper, &problem);
        let second = cache.optimize(&mapper, &problem);
        assert_eq!(first, fresh);
        assert_eq!(second, fresh);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn key_distinguishes_accelerators_and_mappers() {
        let a = zoo::meta_proto_like_df();
        let b = zoo::tpu_like();
        let l = layer();
        let pa = SingleLayerProblem::new(&a, &l);
        let pb = SingleLayerProblem::new(&b, &l);
        let fast = LomaMapper::new(MapperConfig::fast());
        let full = LomaMapper::default();
        assert_ne!(ProblemKey::new(&pa, &fast), ProblemKey::new(&pb, &fast));
        assert_ne!(ProblemKey::new(&pa, &fast), ProblemKey::new(&pa, &full));
        assert_eq!(ProblemKey::new(&pa, &fast), ProblemKey::new(&pa, &fast));
    }

    #[test]
    fn canonical_hits_are_counted_separately() {
        let acc = zoo::meta_proto_like_df();
        let mapper = LomaMapper::new(MapperConfig::fast());
        let cache = MappingCache::new();
        // A weight-less pooling tile whose (irrelevant) weight top level
        // varies across design points: one entry, canonical hits for the
        // variants.
        let pool = Layer::new(
            "pool",
            OpType::Pooling,
            LayerDims::conv(64, 64, 28, 28, 2, 2).with_stride(2, 2),
        );
        let base = SingleLayerProblem::new(&acc, &pool);
        let lb = acc.hierarchy().level_id_named("LB_W").unwrap();
        let moved = base
            .clone()
            .with_top_levels(crate::OperandTopLevels::dram(&acc).with_level(Operand::Weight, lb));
        let a = cache.optimize(&mapper, &base);
        let b = cache.optimize(&mapper, &moved);
        assert_eq!(a, b);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.canonical_hits, 1);

        // Padding never reaches the single-layer model either.
        let conv = Layer::new("c", OpType::Conv, LayerDims::conv(16, 8, 28, 28, 3, 3));
        let padded = Layer::new(
            "c",
            OpType::Conv,
            LayerDims::conv(16, 8, 28, 28, 3, 3).with_padding(1, 1),
        );
        let plain = cache.optimize(&mapper, &SingleLayerProblem::new(&acc, &conv));
        let with_pad = cache.optimize(&mapper, &SingleLayerProblem::new(&acc, &padded));
        assert_eq!(plain, with_pad);
        assert_eq!(cache.stats().canonical_hits, 2);
    }

    #[test]
    fn shared_handles_share_entries() {
        let acc = zoo::meta_proto_like_df();
        let l = layer();
        let problem = SingleLayerProblem::new(&acc, &l);
        let mapper = LomaMapper::new(MapperConfig::fast());
        let cache = MappingCache::new();
        let clone = cache.clone();
        let _ = cache.optimize(&mapper, &problem);
        let _ = clone.optimize(&mapper, &problem);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(clone.stats().entries, 1);
    }
}
