//! The single-layer mapping problem: layer tile + accelerator + operand top
//! memory levels.

use defines_arch::{Accelerator, MemoryLevelId, Operand};
use defines_workload::{Dim, Layer, LayerDims, OpType};
use serde::{Deserialize, Serialize};

/// The highest memory level each operand is allowed to use for this problem.
///
/// The depth-first model of `defines-core` lowers these below DRAM whenever a
/// tile's data fits on chip (the paper's "multi-level memory skipping"); for a
/// plain single-layer evaluation they default to the outermost level serving
/// each operand (DRAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OperandTopLevels {
    /// Top level for weights.
    pub weight: MemoryLevelId,
    /// Top level for input activations.
    pub input: MemoryLevelId,
    /// Top level for output activations.
    pub output: MemoryLevelId,
}

impl OperandTopLevels {
    /// All operands fetch from / drain to DRAM (single-layer default).
    pub fn dram(acc: &Accelerator) -> Self {
        let dram = acc.hierarchy().dram_id();
        Self {
            weight: dram,
            input: dram,
            output: dram,
        }
    }

    /// The top level for a given operand.
    pub fn level(&self, operand: Operand) -> MemoryLevelId {
        match operand {
            Operand::Weight => self.weight,
            Operand::Input => self.input,
            Operand::Output => self.output,
        }
    }

    /// Returns a copy with the level of one operand replaced.
    pub fn with_level(mut self, operand: Operand, level: MemoryLevelId) -> Self {
        match operand {
            Operand::Weight => self.weight = level,
            Operand::Input => self.input = level,
            Operand::Output => self.output = level,
        }
        self
    }
}

/// A single-layer (or single layer-tile) mapping and cost problem.
#[derive(Debug, Clone)]
pub struct SingleLayerProblem<'a> {
    /// The accelerator to map onto.
    pub accelerator: &'a Accelerator,
    /// Operator class of the layer.
    pub op: OpType,
    /// Loop dimensions of the (tile of the) layer.
    pub dims: LayerDims,
    /// Bits per activation element.
    pub act_bits: u32,
    /// Bits per weight element.
    pub weight_bits: u32,
    /// Highest memory level each operand may use.
    pub top_levels: OperandTopLevels,
}

impl<'a> SingleLayerProblem<'a> {
    /// Builds a problem for a full layer with all operands backed by DRAM.
    pub fn new(accelerator: &'a Accelerator, layer: &Layer) -> Self {
        Self {
            accelerator,
            op: layer.op,
            dims: layer.dims,
            act_bits: layer.act_bits,
            weight_bits: layer.weight_bits,
            top_levels: OperandTopLevels::dram(accelerator),
        }
    }

    /// Builds a problem for a tile of a layer (`dims` already reduced to the
    /// tile) with explicit operand top levels.
    pub fn for_tile(
        accelerator: &'a Accelerator,
        layer: &Layer,
        dims: LayerDims,
        top_levels: OperandTopLevels,
    ) -> Self {
        Self {
            accelerator,
            op: layer.op,
            dims,
            act_bits: layer.act_bits,
            weight_bits: layer.weight_bits,
            top_levels,
        }
    }

    /// Returns a copy with different operand top levels.
    pub fn with_top_levels(mut self, top_levels: OperandTopLevels) -> Self {
        self.top_levels = top_levels;
        self
    }

    /// The loop dimensions that are *relevant* to an operand — i.e. the
    /// dimensions that index into the operand's data. Irrelevant loops provide
    /// temporal reuse for the operand.
    pub fn relevant_dims(&self, operand: Operand) -> &'static [Dim] {
        relevant_dims(self.op, operand)
    }

    /// Bytes per element of an operand.
    pub fn bytes_per_element(&self, operand: Operand) -> u64 {
        let bits = match operand {
            Operand::Weight => self.weight_bits,
            Operand::Input | Operand::Output => self.act_bits,
        };
        u64::from(bits.div_ceil(8))
    }

    /// Total number of MAC operations (or per-element operations for layers
    /// without MACs) of the problem.
    pub fn total_macs(&self) -> u64 {
        match self.op {
            OpType::Conv => self.dims.total_macs(),
            OpType::DepthwiseConv | OpType::Pooling => {
                self.dims.b
                    * self.dims.k
                    * self.dims.ox
                    * self.dims.oy
                    * self.dims.fx
                    * self.dims.fy
            }
            OpType::Add => self.dims.output_elements(),
        }
    }

    /// Total weight footprint in bytes (zero for weight-less operators).
    pub fn weight_footprint_bytes(&self) -> u64 {
        let elements = match self.op {
            OpType::Conv => self.dims.weight_elements(),
            OpType::DepthwiseConv => self.dims.k * self.dims.fx * self.dims.fy,
            OpType::Pooling | OpType::Add => 0,
        };
        elements * self.bytes_per_element(Operand::Weight)
    }

    /// Total input footprint in bytes for the problem's dimensions.
    pub fn input_footprint_bytes(&self) -> u64 {
        let channels = match self.op {
            OpType::Conv => self.dims.c,
            OpType::DepthwiseConv | OpType::Pooling => self.dims.k,
            OpType::Add => 2 * self.dims.k,
        };
        self.dims.b
            * channels
            * self.dims.input_width()
            * self.dims.input_height()
            * self.bytes_per_element(Operand::Input)
    }

    /// Total output footprint in bytes.
    pub fn output_footprint_bytes(&self) -> u64 {
        self.dims.output_elements() * self.bytes_per_element(Operand::Output)
    }

    /// Total footprint of an operand in bytes.
    pub fn footprint_bytes(&self, operand: Operand) -> u64 {
        match operand {
            Operand::Weight => self.weight_footprint_bytes(),
            Operand::Input => self.input_footprint_bytes(),
            Operand::Output => self.output_footprint_bytes(),
        }
    }
}

/// Relevant dimensions per (operator class, operand).
pub fn relevant_dims(op: OpType, operand: Operand) -> &'static [Dim] {
    match (op, operand) {
        (OpType::Conv, Operand::Weight) => &[Dim::K, Dim::C, Dim::FX, Dim::FY],
        (OpType::Conv, Operand::Input) => &[Dim::B, Dim::C, Dim::OX, Dim::OY, Dim::FX, Dim::FY],
        (OpType::Conv, Operand::Output) => &[Dim::B, Dim::K, Dim::OX, Dim::OY],
        // Depthwise / pooling layers index inputs by the output channel.
        (OpType::DepthwiseConv, Operand::Weight) => &[Dim::K, Dim::FX, Dim::FY],
        (OpType::DepthwiseConv | OpType::Pooling, Operand::Input) => {
            &[Dim::B, Dim::K, Dim::OX, Dim::OY, Dim::FX, Dim::FY]
        }
        (OpType::DepthwiseConv | OpType::Pooling, Operand::Output) => {
            &[Dim::B, Dim::K, Dim::OX, Dim::OY]
        }
        (OpType::Pooling, Operand::Weight) => &[],
        (OpType::Add, Operand::Weight) => &[],
        (OpType::Add, Operand::Input) => &[Dim::B, Dim::K, Dim::OX, Dim::OY],
        (OpType::Add, Operand::Output) => &[Dim::B, Dim::K, Dim::OX, Dim::OY],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defines_arch::zoo;
    use defines_workload::{Layer, LayerDims};

    fn layer() -> Layer {
        Layer::new("conv", OpType::Conv, LayerDims::conv(32, 16, 56, 56, 3, 3))
    }

    #[test]
    fn default_top_levels_are_dram() {
        let acc = zoo::meta_proto_like();
        let p = SingleLayerProblem::new(&acc, &layer());
        let dram = acc.hierarchy().dram_id();
        assert_eq!(p.top_levels.weight, dram);
        assert_eq!(p.top_levels.level(Operand::Input), dram);
    }

    #[test]
    fn with_level_replaces_one_operand() {
        let acc = zoo::meta_proto_like_df();
        let lb = acc.hierarchy().level_id_named("LB_IO").unwrap();
        let t = OperandTopLevels::dram(&acc).with_level(Operand::Input, lb);
        assert_eq!(t.input, lb);
        assert_eq!(t.weight, acc.hierarchy().dram_id());
    }

    #[test]
    fn footprints_match_layer_helpers() {
        let acc = zoo::meta_proto_like();
        let l = layer();
        let p = SingleLayerProblem::new(&acc, &l);
        assert_eq!(p.weight_footprint_bytes(), l.weight_bytes());
        assert_eq!(p.output_footprint_bytes(), l.output_bytes());
        assert_eq!(p.input_footprint_bytes(), l.input_bytes());
        assert_eq!(p.total_macs(), l.macs());
    }

    #[test]
    fn relevance_tables() {
        assert!(relevant_dims(OpType::Conv, Operand::Weight).contains(&Dim::C));
        assert!(!relevant_dims(OpType::Conv, Operand::Weight).contains(&Dim::OX));
        assert!(!relevant_dims(OpType::Conv, Operand::Output).contains(&Dim::C));
        assert!(relevant_dims(OpType::DepthwiseConv, Operand::Input).contains(&Dim::K));
        assert!(relevant_dims(OpType::Pooling, Operand::Weight).is_empty());
    }

    #[test]
    fn depthwise_footprints() {
        let acc = zoo::meta_proto_like();
        let l = Layer::new(
            "dw",
            OpType::DepthwiseConv,
            LayerDims::conv(32, 32, 56, 56, 3, 3),
        );
        let p = SingleLayerProblem::new(&acc, &l);
        assert_eq!(p.weight_footprint_bytes(), 32 * 9);
        assert_eq!(p.total_macs(), 32 * 56 * 56 * 9);
    }

    #[test]
    fn bytes_per_element_follows_precision() {
        let acc = zoo::meta_proto_like();
        let l = layer().with_act_bits(16);
        let p = SingleLayerProblem::new(&acc, &l);
        assert_eq!(p.bytes_per_element(Operand::Input), 2);
        assert_eq!(p.bytes_per_element(Operand::Weight), 1);
    }
}
