//! The symmetry-pruned, branch-and-bound temporal-mapping search.
//!
//! [`LomaMapper::optimize`](crate::LomaMapper::optimize) used to evaluate up
//! to `6! = 720` full loop orderings per problem, each with a fresh bottom-up
//! memory allocation and a heap-allocated cost record. This module replaces
//! that cold path with a search that is guaranteed to return a bit-identical
//! [`LayerCost`] while doing far less work:
//!
//! * **Canonicalization** — size-1 loops are dropped from the permutation
//!   space ([`crate::temporal::active_loops`]), and
//!   *interchangeable* dimensions (equal trip count, equal spatial unrolling,
//!   identical relevance for every operand, and a symmetric role in every
//!   data-size formula) are pinned to their canonical relative order. Each
//!   surviving ordering is the lexicographically-first member of its symmetry
//!   orbit, which is exactly the member an exhaustive lexicographic scan
//!   would crown on a tie — so skipping the mirrors cannot change the result.
//! * **Prefix-tree enumeration** — orderings are walked innermost-first
//!   through the permutation tree, and the greedy bottom-up allocation state
//!   (per-operand level boundaries plus the refetch factors of already-closed
//!   levels) is extended incrementally, so orderings sharing an innermost
//!   prefix share that work instead of re-deriving it from scratch.
//! * **Branch and bound** — at every prefix the same allocation state yields
//!   a *monotone lower bound* on the cost of any completion: closed levels
//!   keep their current refetch factor (future loops can only multiply it),
//!   open levels are priced at the refetch-free minimum of one footprint
//!   fill. The bound is evaluated with the exact float-operation order of the
//!   true cost, term-wise dominated by it, so `bound > best` proves the whole
//!   subtree is strictly worse and it is skipped. Strictness preserves the
//!   exhaustive scan's tie-breaking.
//! * **Work-stealing parallelism** — with
//!   [`MapperConfig::search_threads`](crate::MapperConfig) > 1 the
//!   permutation tree is split into prefix-subtree work units dispatched over
//!   the `pool` module's deque pool. All workers prune against one shared
//!   incumbent (an `AtomicU64` holding the best cost's bit pattern:
//!   non-negative finite f64 bits order like the floats, so a CAS min-loop
//!   implements "publish if better"). The incumbent is always the exact value
//!   of some fully evaluated ordering, hence `>=` the optimum, so strict
//!   `bound > incumbent` pruning can never eliminate an optimal-value leaf —
//!   every worker therefore evaluates the complete optimal tie set, and the
//!   reduction's arg-min over (value, energy, latency, lexicographic rank)
//!   is independent of scheduling. The rank is the leaf's index in the full
//!   lexicographic enumeration, which is exactly the sequential search's
//!   first-encountered tie-break, so the winning ordering is bit-identical
//!   at any thread count.
//!
//! The scalar kernel behind both the bound and the leaf evaluation is
//! allocation-free: it works on fixed-size arrays indexed by memory level and
//! operand, mirroring [`crate::cost::evaluate`]'s accumulation order exactly
//! so the scalars it produces are bit-identical to the full cost model's.
//! Only the single best ordering is re-evaluated through
//! [`crate::cost::evaluate`] to build the returned [`LayerCost`].

use crate::allocation::{sharers, usable_levels};
use crate::cost::{evaluate, LayerCost, Objective};
use crate::loma::MapperConfig;
use crate::pool;
use crate::problem::SingleLayerProblem;
use crate::temporal::{active_loops, TemporalMapping};
use defines_arch::Operand;
use defines_workload::{Dim, OpType};
use serde::{Serialize, Value};
use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum number of temporal loops a problem can have (the six non-batch
/// dimensions; batch is never temporal in this model).
pub(crate) const MAX_LOOPS: usize = 6;
/// Maximum number of memory levels on one operand's path.
const MAX_LEVELS: usize = 8;
/// Minimum candidate count before the parallel path is worth dispatching;
/// below it the sequential walk wins on sheer setup cost.
const PARALLEL_MIN_ORDERINGS: u64 = 8;

/// Counters describing one temporal-mapping search
/// ([`LomaMapper::optimize_with_stats`](crate::LomaMapper::optimize_with_stats)).
///
/// `evaluated + pruned_bound + pruned_symmetry + skipped_budget ==
/// orderings_selected` always holds: every candidate ordering is either fully
/// evaluated or attributed to exactly one skip mechanism. On the parallel
/// path each worker counts into its own private `SearchStats` and the owner
/// merges them with [`SearchStats::accumulate`] after the join — counters are
/// never shared mutable state, so the invariant survives any interleaving
/// (the *split* between `evaluated` and `pruned_bound` may legitimately vary
/// with thread count and incumbent timing; the sum may not, and
/// `skipped_budget` is a pure function of candidate ranks, identical at any
/// thread count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Loop dimensions with a non-trivial temporal trip count.
    pub dims_active: usize,
    /// Size of the full permutation space (`dims_active!`).
    pub orderings_total: u64,
    /// Orderings selected as candidates (after the `max_orderings` cap).
    pub orderings_selected: u64,
    /// Candidate orderings fully evaluated.
    pub evaluated: u64,
    /// Candidate orderings skipped because the partial-cost lower bound of
    /// their shared prefix already exceeded the best evaluated cost.
    pub pruned_bound: u64,
    /// Candidate orderings skipped as non-canonical members of a symmetry
    /// orbit (only active when the full permutation space is enumerated).
    pub pruned_symmetry: u64,
    /// Candidate orderings skipped because their rank in the deterministic
    /// enumeration fell at or beyond [`crate::Budget::max_orderings`]. A
    /// non-zero count marks the returned cost as *degraded*: it is the exact
    /// optimum of the in-budget candidate window, not of the full space.
    pub skipped_budget: u64,
}

impl SearchStats {
    /// Accumulates another search's counters into this one.
    pub fn accumulate(&mut self, other: &SearchStats) {
        self.dims_active = self.dims_active.max(other.dims_active);
        self.orderings_total += other.orderings_total;
        self.orderings_selected += other.orderings_selected;
        self.evaluated += other.evaluated;
        self.pruned_bound += other.pruned_bound;
        self.pruned_symmetry += other.pruned_symmetry;
        self.skipped_budget += other.skipped_budget;
    }

    /// Orderings skipped by either pruning mechanism.
    pub fn pruned(&self) -> u64 {
        self.pruned_bound + self.pruned_symmetry
    }
}

impl Serialize for SearchStats {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "dims_active".to_string(),
                Value::U64(self.dims_active as u64),
            ),
            (
                "orderings_total".to_string(),
                Value::U64(self.orderings_total),
            ),
            (
                "orderings_selected".to_string(),
                Value::U64(self.orderings_selected),
            ),
            ("evaluated".to_string(), Value::U64(self.evaluated)),
            ("pruned_bound".to_string(), Value::U64(self.pruned_bound)),
            (
                "pruned_symmetry".to_string(),
                Value::U64(self.pruned_symmetry),
            ),
            (
                "skipped_budget".to_string(),
                Value::U64(self.skipped_budget),
            ),
        ])
    }
}

/// Lowers `cell` (f64 bit pattern, non-negative finite or `+inf`) to `value`
/// if `value` is smaller, via a CAS min-loop. Returns whether the cell was
/// actually lowered. Non-negative finite f64 bit patterns order like the
/// floats themselves, so the u64 comparison is exact.
pub(crate) fn atomic_f64_min(cell: &AtomicU64, value: f64) -> bool {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        if f64::from_bits(current) <= value {
            return false;
        }
        match cell.compare_exchange_weak(
            current,
            value.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return true,
            Err(observed) => current = observed,
        }
    }
}

/// The bit pattern a fresh incumbent cell starts from (`+inf`: everything
/// published beats it).
pub(crate) const INCUMBENT_EMPTY: u64 = f64::INFINITY.to_bits();

/// Entry point: finds the best temporal mapping of a problem under the given
/// mapper configuration, returning the (bit-identical-to-exhaustive) cost and
/// the search counters.
pub(crate) fn search(
    problem: &SingleLayerProblem<'_>,
    config: &MapperConfig,
) -> (LayerCost, SearchStats) {
    search_with_incumbent(problem, config, None)
}

/// [`search`], additionally pruning against (and publishing into) a shared
/// incumbent cell. The cell may be pre-populated by an earlier search of a
/// *canonically equivalent* problem (same [`crate::ProblemKey::canonical`]
/// key, hence bit-identical per-ordering costs): any published value is the
/// exact cost of some fully evaluated candidate ordering, so it is `>=` this
/// search's optimum and strict bound pruning against it never drops an
/// optimal-value leaf — the result stays bit-identical, only `pruned_bound`
/// can grow.
pub(crate) fn search_with_incumbent(
    problem: &SingleLayerProblem<'_>,
    config: &MapperConfig,
    incumbent: Option<&AtomicU64>,
) -> (LayerCost, SearchStats) {
    let loops = active_loops(problem);
    let k = loops.len();
    let mut stats = SearchStats {
        dims_active: k,
        ..SearchStats::default()
    };
    if k == 0 {
        stats.orderings_total = 1;
        stats.orderings_selected = 1;
        stats.evaluated = 1;
        let mapping = TemporalMapping::from_order(problem, &[]);
        return (evaluate(problem, &mapping), stats);
    }

    let total: u64 = (1..=k as u64).product();
    let max = if config.max_orderings == 0 {
        u64::MAX
    } else {
        config.max_orderings as u64
    };
    let sample = total > max;
    stats.orderings_total = total;
    stats.orderings_selected = if sample { max } else { total };

    let threads = config.search_threads.max(1);
    let try_parallel = threads > 1 && k >= 2 && stats.orderings_selected >= PARALLEL_MIN_ORDERINGS;
    // The parallel path always needs a shared cell for the workers, even
    // when no cross-search cell was handed in.
    let local_cell = AtomicU64::new(INCUMBENT_EMPTY);
    let incumbent = match (incumbent, try_parallel) {
        (None, true) => Some(&local_cell),
        (cell, _) => cell,
    };

    let budget = if config.budget.max_orderings == 0 {
        u64::MAX
    } else {
        config.budget.max_orderings
    };
    let ctx = SearchCtx::new(
        problem,
        config.objective,
        &loops,
        sample,
        max,
        budget,
        incumbent,
    );
    let mut state = WorkerState::fresh(&ctx);
    state.stats = stats;

    let ran_parallel = try_parallel && pool::run_parallel(&ctx, &mut state, threads);
    if !ran_parallel {
        let states = [AllocState::default(); 3];
        ctx.descend(&mut state, 0, 0, &states);
    }
    pool::BOUND_BROADCASTS.add(state.broadcasts);

    let stats = state.stats;
    debug_assert_eq!(
        stats.evaluated + stats.pruned_bound + stats.pruned_symmetry + stats.skipped_budget,
        stats.orderings_selected
    );
    let best = state.best.expect("at least one ordering evaluated");
    let order = best.order[..best.order_len].to_vec();
    let mapping = TemporalMapping::from_order(problem, &order);
    let mut cost = evaluate(problem, &mapping);
    cost.degraded = stats.skipped_budget > 0;
    debug_assert_eq!(
        cost.objective_value(config.objective, problem.accelerator.hierarchy().dram_id()),
        best.value,
        "scalar search kernel diverged from the full cost model"
    );
    (cost, stats)
}

/// Read/write traffic accumulator for one (memory level, operand) slot.
#[derive(Debug, Clone, Copy, Default)]
struct Traffic {
    reads: f64,
    writes: f64,
}

/// Per-operand, mapping-independent context of the search.
struct OpCtx {
    operand: Operand,
    /// Total operand footprint in bytes (always > 0 here).
    footprint: f64,
    /// Traffic the PE array drains from the innermost level.
    pe_bytes: f64,
    /// Bitmask over [`Dim::ALL`] indices of the operand's relevant loops.
    relevant: u8,
    /// The operand's usable memory levels, innermost first (global indices).
    levels: Vec<usize>,
    /// Capacity share of each non-top level, as the cost model compares it.
    shares: Vec<f64>,
    /// Whether the capacity shares are non-decreasing from the innermost
    /// level outward. When they are (every zoo architecture), the incremental
    /// allocation state is exact; otherwise leaf costs recompute the greedy
    /// allocation from scratch and bounds fall back to refetch-free fills.
    incremental: bool,
}

/// Incremental bottom-up allocation state of one operand for one prefix.
///
/// Level `i` (a non-top usable level) is *closed* once the data addressed by
/// the prefix loops no longer fits its share. The boundary itself need not be
/// stored — the cost kernel only consumes the refetch factor of the loops
/// above it, which is final from the moment the level closes (shares
/// permitting, see [`OpCtx::incremental`]); open levels always price at
/// factor 1.
#[derive(Debug, Clone, Copy)]
struct AllocState {
    /// Bitmask of closed levels.
    closed: u8,
    /// Per closed level: whether a relevant loop has appeared above its
    /// boundary yet (the refetch factor only multiplies after that).
    seen_relevant: u8,
    /// Per closed level: the refetch factor of the prefix loops above its
    /// boundary, maintained in exact loop order.
    factor: [f64; MAX_LEVELS],
}

impl Default for AllocState {
    fn default() -> Self {
        Self {
            closed: 0,
            seen_relevant: 0,
            factor: [1.0; MAX_LEVELS],
        }
    }
}

/// The best leaf seen by one worker, with everything the deterministic
/// reduction needs: ties on (value, energy, latency) resolve by `rank`, the
/// leaf's index in the full lexicographic enumeration — the same candidate a
/// sequential first-encountered-wins scan crowns.
pub(crate) struct Best {
    pub(crate) value: f64,
    energy: f64,
    latency: f64,
    rank: u64,
    order_len: usize,
    order: [Dim; MAX_LOOPS],
}

impl Best {
    /// Whether this candidate beats `other` under the deterministic total
    /// order (value, then energy, then latency, then lexicographic rank).
    /// All fields are finite and ranks are unique, so this is a strict total
    /// order — the reduction's arg-min is independent of merge order.
    pub(crate) fn beats(&self, other: &Best) -> bool {
        (self.value, self.energy, self.latency, self.rank)
            < (other.value, other.energy, other.latency, other.rank)
    }
}

/// One parallel work unit: the permutation subtree below a fixed prefix of
/// active-dimension indices. `leaf_base` is the subtree's first leaf index in
/// the full lexicographic enumeration, which both seeds the sampling window
/// and makes every leaf's rank globally consistent across workers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Unit {
    prefix: [u8; MAX_LOOPS],
    depth: u8,
    leaf_base: u64,
}

/// The immutable, `Sync` context shared by every worker of one search.
pub(crate) struct SearchCtx<'p, 'a> {
    problem: &'p SingleLayerProblem<'a>,
    objective: Objective,
    /// Active loop dimensions, canonical order.
    dims: Vec<Dim>,
    /// Temporal trip count per active dimension.
    trips: Vec<u64>,
    /// Spatial unrolling factor per [`Dim::ALL`] index.
    factors: [u64; 7],
    /// Temporal trip count per [`Dim::ALL`] index (1 for inactive dims).
    trip_by_dim: [u64; 7],
    /// For each active dim: bitmask of earlier active dims that are
    /// interchangeable with it and must therefore already be placed before it
    /// may be chosen (symmetry canonicalization).
    pred_mask: Vec<u8>,
    /// Whether symmetry pruning is active (only without subsampling: a
    /// sampled candidate's mirror may not be in the sample, so skipping it
    /// would lose a candidate instead of a duplicate).
    symmetry: bool,
    sample: bool,
    max: u64,
    /// Rank-window budget: candidates whose selected-index reaches this value
    /// are skipped (`u64::MAX` = unlimited). A pure function of enumeration
    /// rank, so the skipped set — and the degraded result — is identical at
    /// any thread count.
    budget: u64,
    total: u64,
    /// Sub-factorials: `fact[i] = i!`.
    fact: [u64; MAX_LOOPS + 1],
    ops: Vec<OpCtx>,
    /// Per global memory level: read/write energy per byte and bandwidth.
    level_read_e: Vec<f64>,
    level_write_e: Vec<f64>,
    level_read_bw: Vec<f64>,
    level_write_bw: Vec<f64>,
    dram: usize,
    mac_energy: f64,
    compute_cycles: f64,
    /// The shared incumbent cell: the bit pattern of the best objective value
    /// published by any worker (or a canonically-equivalent earlier search).
    incumbent: Option<&'p AtomicU64>,
}

/// The per-worker mutable walk state: the current prefix, the scratch
/// traffic accumulators and this worker's private best/stats. Workers never
/// share one — the reduction merges them after the join, which is what makes
/// the counters race-free by construction.
pub(crate) struct WorkerState {
    /// Effective (spatial × temporal-below) size per [`Dim::ALL`] index for
    /// the current prefix, as used by the data-size formulas.
    eff: [u64; 7],
    used: u8,
    order_buf: [Dim; MAX_LOOPS],
    /// Scratch traffic accumulators, one slot per (level, operand).
    traffic: Vec<[Traffic; 3]>,
    pub(crate) best: Option<Best>,
    pub(crate) stats: SearchStats,
    /// Successful lowerings of the shared incumbent by this worker.
    pub(crate) broadcasts: u64,
}

impl WorkerState {
    /// A fresh walk state for one worker of `ctx`'s search.
    pub(crate) fn fresh(ctx: &SearchCtx<'_, '_>) -> Self {
        Self {
            eff: ctx.factors,
            used: 0,
            order_buf: [Dim::B; MAX_LOOPS],
            traffic: vec![[Traffic::default(); 3]; ctx.level_read_e.len()],
            best: None,
            stats: SearchStats::default(),
            broadcasts: 0,
        }
    }
}

impl<'p, 'a> SearchCtx<'p, 'a> {
    fn new(
        problem: &'p SingleLayerProblem<'a>,
        objective: Objective,
        loops: &[crate::temporal::TemporalLoop],
        sample: bool,
        max: u64,
        budget: u64,
        incumbent: Option<&'p AtomicU64>,
    ) -> Self {
        let unrolling = problem.accelerator.pe_array().unrolling();
        let mut factors = [1u64; 7];
        for (i, d) in Dim::ALL.iter().enumerate() {
            factors[i] = unrolling.factor(*d);
        }
        let dims: Vec<Dim> = loops.iter().map(|l| l.dim).collect();
        let trips: Vec<u64> = loops.iter().map(|l| l.size).collect();
        let k = dims.len();
        let mut fact = [1u64; MAX_LOOPS + 1];
        for i in 1..=MAX_LOOPS {
            fact[i] = fact[i - 1] * i as u64;
        }
        let total = fact[k];

        let hierarchy = problem.accelerator.hierarchy();
        let n_levels = hierarchy.levels().len();
        let mut level_read_e = Vec::with_capacity(n_levels);
        let mut level_write_e = Vec::with_capacity(n_levels);
        let mut level_read_bw = Vec::with_capacity(n_levels);
        let mut level_write_bw = Vec::with_capacity(n_levels);
        for level in hierarchy.levels() {
            level_read_e.push(level.read_energy_pj_per_byte());
            level_write_e.push(level.write_energy_pj_per_byte());
            level_read_bw.push(level.read_bw_bytes_per_cycle());
            level_write_bw.push(level.write_bw_bytes_per_cycle());
        }

        let pe = problem.accelerator.pe_array();
        let macs = problem.total_macs();
        let mut ops = Vec::with_capacity(3);
        for operand in Operand::ALL {
            let footprint = problem.footprint_bytes(operand) as f64;
            if footprint <= 0.0 {
                continue;
            }
            let relevant_dims = problem.relevant_dims(operand);
            let spatial_reuse = pe.unrolling().spatial_reuse(relevant_dims) as f64;
            let pe_bytes = macs as f64 / spatial_reuse * problem.bytes_per_element(operand) as f64;
            let mut relevant = 0u8;
            for (i, d) in Dim::ALL.iter().enumerate() {
                if relevant_dims.contains(d) {
                    relevant |= 1 << i;
                }
            }
            let levels: Vec<usize> = usable_levels(problem, operand)
                .into_iter()
                .map(|id| id.0)
                .collect();
            assert!(levels.len() <= MAX_LEVELS, "memory hierarchy too deep");
            let mut shares = Vec::with_capacity(levels.len().saturating_sub(1));
            for &lvl in &levels[..levels.len() - 1] {
                let level = hierarchy.level(defines_arch::MemoryLevelId(lvl));
                let share = match level.capacity_bytes() {
                    None => u64::MAX,
                    Some(c) => c / sharers(problem, defines_arch::MemoryLevelId(lvl)),
                };
                shares.push(share as f64);
            }
            let incremental = shares.windows(2).all(|w| w[0] <= w[1]);
            ops.push(OpCtx {
                operand,
                footprint,
                pe_bytes,
                relevant,
                levels,
                shares,
                incremental,
            });
        }

        let mut trip_by_dim = [1u64; 7];
        for (d, t) in dims.iter().zip(trips.iter()) {
            trip_by_dim[dim_index(*d)] = *t;
        }

        let mut ctx = Self {
            problem,
            objective,
            pred_mask: vec![0; k],
            symmetry: !sample,
            sample,
            max,
            budget,
            total,
            fact,
            ops,
            level_read_e,
            level_write_e,
            level_read_bw,
            level_write_bw,
            dram: hierarchy.dram_id().0,
            mac_energy: macs as f64 * pe.mac_energy_pj(),
            compute_cycles: pe.compute_cycles(macs, &problem.dims),
            incumbent,
            dims,
            trips,
            factors,
            trip_by_dim,
        };
        if ctx.symmetry {
            ctx.compute_symmetry();
        }
        ctx
    }

    /// Marks, for every active dimension, the earlier interchangeable
    /// dimensions it must follow. Two dimensions are interchangeable when
    /// swapping them in *any* ordering provably yields the exact same cost:
    /// equal temporal trip count, equal spatial unrolling factor, identical
    /// relevance for every evaluated operand, and a symmetric role in every
    /// data-size formula (purely multiplicative dims always qualify; the
    /// OX/OY and FX/FY sliding-window pairs qualify when the strides match
    /// and the partner pair is temporally trivial with equal unrolling).
    fn compute_symmetry(&mut self) {
        let k = self.dims.len();
        for j in 1..k {
            for i in 0..j {
                if self.interchangeable(i, j) {
                    self.pred_mask[j] |= 1 << i;
                }
            }
        }
    }

    fn interchangeable(&self, i: usize, j: usize) -> bool {
        let (di, dj) = (self.dims[i], self.dims[j]);
        if self.trips[i] != self.trips[j] {
            return false;
        }
        if self.factors[dim_index(di)] != self.factors[dim_index(dj)] {
            return false;
        }
        let (bi, bj) = (1u8 << dim_index(di), 1u8 << dim_index(dj));
        for op in &self.ops {
            if (op.relevant & bi != 0) != (op.relevant & bj != 0) {
                return false;
            }
        }
        let multiplicative = |d: Dim| matches!(d, Dim::B | Dim::K | Dim::C);
        if multiplicative(di) && multiplicative(dj) {
            return true;
        }
        let dims = &self.problem.dims;
        let inactive = |d: Dim| !self.dims.contains(&d);
        match (di, dj) {
            (Dim::OX, Dim::OY) | (Dim::OY, Dim::OX) => {
                dims.stride_x == dims.stride_y
                    && inactive(Dim::FX)
                    && inactive(Dim::FY)
                    && self.factors[dim_index(Dim::FX)] == self.factors[dim_index(Dim::FY)]
            }
            (Dim::FX, Dim::FY) | (Dim::FY, Dim::FX) => {
                dims.stride_x == dims.stride_y
                    && inactive(Dim::OX)
                    && inactive(Dim::OY)
                    && self.factors[dim_index(Dim::OX)] == self.factors[dim_index(Dim::OY)]
            }
            _ => false,
        }
    }

    /// The current shared-incumbent value, if one has been published.
    fn incumbent_value(&self) -> Option<f64> {
        self.incumbent.and_then(|cell| {
            let v = f64::from_bits(cell.load(Ordering::Relaxed));
            v.is_finite().then_some(v)
        })
    }

    /// Number of *selected* candidate orderings whose leaf index falls in
    /// `[from, to)`. Without sampling every leaf is a candidate; with
    /// sampling the candidates are the exact integer-stride picks
    /// `i * total / max`.
    fn selected_in(&self, from: u64, to: u64) -> u64 {
        if !self.sample {
            return to - from;
        }
        // floor(i * total / max) >= x  <=>  i >= ceil(x * max / total)
        let first = |x: u64| x.saturating_mul(self.max).div_ceil(self.total);
        first(to) - first(from)
    }

    /// Walks the permutation subtree below the current prefix (`depth` loops
    /// placed, leaves covering `[leaf_base, leaf_base + (k - depth)!)`).
    fn descend(
        &self,
        state: &mut WorkerState,
        depth: usize,
        leaf_base: u64,
        states: &[AllocState; 3],
    ) {
        let k = self.dims.len();
        let sub = self.fact[k - depth - 1];
        let mut branch = 0u64;
        for idx in 0..k {
            if state.used & (1 << idx) != 0 {
                continue;
            }
            let base = leaf_base + branch * sub;
            branch += 1;
            let selected = self.selected_in(base, base + sub);
            if selected == 0 {
                continue;
            }
            if self.symmetry && (self.pred_mask[idx] & state.used) != self.pred_mask[idx] {
                state.stats.pruned_symmetry += selected;
                continue;
            }
            // Rank-window budget: a subtree whose first candidate already
            // sits at or beyond the budget is skipped wholesale. The check
            // depends only on enumeration ranks — never on timing or the
            // incumbent — so the skipped set is identical at any thread
            // count and the degraded result stays deterministic.
            let start_rank = self.selected_in(0, base);
            if start_rank >= self.budget {
                state.stats.skipped_budget += selected;
                continue;
            }
            let fully_in_budget = start_rank + selected <= self.budget;
            let mut child = *states;
            self.push(state, depth, idx, &mut child);
            if depth + 1 == k {
                self.evaluate_leaf(state, &child, base);
                self.pop(state, idx);
                continue;
            }
            // Bounding a subtree with a single candidate costs as much as
            // evaluating that candidate, so only bound where pruning can
            // amortize. The prune reference is the tighter of this worker's
            // best and the shared incumbent — both are exact evaluated
            // costs, so both are >= the optimum and strict pruning stays
            // deterministic. Subtrees straddling the budget boundary always
            // recurse: bound-pruning them would charge their beyond-budget
            // tail to `pruned_bound`, making `skipped_budget` depend on
            // incumbent timing.
            let local = state.best.as_ref().map(|b| b.value);
            let reference = match (local, self.incumbent_value()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            };
            if let (Some(best_value), true) = (reference, selected > 1 && fully_in_budget) {
                let (bound, _, _) = self.eval_scalars(state, &child, false);
                if bound > best_value {
                    state.stats.pruned_bound += selected;
                    self.pop(state, idx);
                    continue;
                }
            }
            self.descend(state, depth + 1, base, &child);
            self.pop(state, idx);
        }
    }

    /// Enumerates the prefix subtrees at the shallowest split depth that
    /// yields at least `target` work units (bounded by depth `k - 1`),
    /// applying the same sampling-window, symmetry and budget skips as the
    /// walk itself. Returns the units plus the number of orderings
    /// symmetry-pruned and budget-skipped at the skipped shallow depths (the
    /// caller charges them to its stats exactly once).
    pub(crate) fn collect_units(&self, target: usize) -> (Vec<Unit>, u64, u64) {
        let k = self.dims.len();
        let mut units = Vec::new();
        let mut pruned_symmetry = 0u64;
        let mut skipped_budget = 0u64;
        for split in 1..k {
            units.clear();
            pruned_symmetry = 0;
            skipped_budget = 0;
            let mut used = 0u8;
            let mut prefix = [0u8; MAX_LOOPS];
            self.units_at(
                split,
                0,
                0,
                &mut used,
                &mut prefix,
                &mut units,
                &mut pruned_symmetry,
                &mut skipped_budget,
            );
            if units.len() >= target || split == k - 1 {
                break;
            }
        }
        (units, pruned_symmetry, skipped_budget)
    }

    /// Recursive helper of [`SearchCtx::collect_units`]: replays the
    /// enumeration structure of [`SearchCtx::descend`] (branch order, leaf
    /// bases, sampling windows, symmetry and budget skips) down to `split`,
    /// emitting a [`Unit`] per surviving prefix. Skips must mirror `descend`
    /// exactly — same checks, same order — so the sequential walk and the
    /// parallel decomposition attribute every candidate to the same counter.
    #[allow(clippy::too_many_arguments)]
    fn units_at(
        &self,
        split: usize,
        depth: usize,
        leaf_base: u64,
        used: &mut u8,
        prefix: &mut [u8; MAX_LOOPS],
        out: &mut Vec<Unit>,
        pruned_symmetry: &mut u64,
        skipped_budget: &mut u64,
    ) {
        let k = self.dims.len();
        let sub = self.fact[k - depth - 1];
        let mut branch = 0u64;
        for idx in 0..k {
            if *used & (1 << idx) != 0 {
                continue;
            }
            let base = leaf_base + branch * sub;
            branch += 1;
            let selected = self.selected_in(base, base + sub);
            if selected == 0 {
                continue;
            }
            if self.symmetry && (self.pred_mask[idx] & *used) != self.pred_mask[idx] {
                *pruned_symmetry += selected;
                continue;
            }
            if self.selected_in(0, base) >= self.budget {
                *skipped_budget += selected;
                continue;
            }
            prefix[depth] = idx as u8;
            if depth + 1 == split {
                out.push(Unit {
                    prefix: *prefix,
                    depth: split as u8,
                    leaf_base: base,
                });
                continue;
            }
            *used |= 1 << idx;
            self.units_at(
                split,
                depth + 1,
                base,
                used,
                prefix,
                out,
                pruned_symmetry,
                skipped_budget,
            );
            *used &= !(1 << idx);
        }
    }

    /// Processes one work unit: replays the unit's prefix pushes to rebuild
    /// the allocation states, walks the subtree, and pops back down.
    pub(crate) fn process_unit(&self, state: &mut WorkerState, unit: &Unit) {
        let depth = unit.depth as usize;
        let mut states = [AllocState::default(); 3];
        for (d, &idx) in unit.prefix[..depth].iter().enumerate() {
            self.push(state, d, idx as usize, &mut states);
        }
        self.descend(state, depth, unit.leaf_base, &states);
        for &idx in unit.prefix[..depth].iter().rev() {
            self.pop(state, idx as usize);
        }
    }

    /// Extends the prefix with active dim `idx` as the new outermost loop,
    /// updating the effective sizes and each operand's allocation state.
    fn push(&self, state: &mut WorkerState, depth: usize, idx: usize, states: &mut [AllocState]) {
        let d = self.dims[idx];
        let t = self.trips[idx];
        let di = dim_index(d);
        state.order_buf[depth] = d;
        state.used |= 1 << idx;
        state.eff[di] = self.factors[di] * t;

        for (op, alloc) in self.ops.iter().zip(states.iter_mut()) {
            let relevant = op.relevant & (1 << di) != 0;
            // Advance the refetch trackers of the already-closed levels: the
            // new loop sits above every closed boundary.
            let mut closed = alloc.closed;
            while closed != 0 {
                let lvl = closed.trailing_zeros() as usize;
                closed &= closed - 1;
                let bit = 1u8 << lvl;
                if relevant {
                    alloc.seen_relevant |= bit;
                } else if alloc.seen_relevant & bit != 0 {
                    alloc.factor[lvl] *= t as f64;
                }
            }
            if !op.incremental {
                continue;
            }
            // Try to keep the new loop resident in every still-open non-top
            // level; levels it no longer fits close with the loop as the
            // first (already processed) loop above their boundary.
            let mut size = None;
            for lvl in 0..op.shares.len() {
                let bit = 1u8 << lvl;
                if alloc.closed & bit != 0 {
                    continue;
                }
                let size = *size.get_or_insert_with(|| data_size(self.problem, op, &state.eff));
                if size > op.shares[lvl] {
                    alloc.closed |= bit;
                    alloc.factor[lvl] = 1.0;
                    if relevant {
                        alloc.seen_relevant |= bit;
                    }
                }
            }
        }
    }

    fn pop(&self, state: &mut WorkerState, idx: usize) {
        let di = dim_index(self.dims[idx]);
        state.used &= !(1 << idx);
        state.eff[di] = self.factors[di];
    }

    /// Evaluates the full ordering described by the current prefix (which now
    /// covers every active loop) and updates this worker's best. `rank` is
    /// the leaf's index in the full lexicographic enumeration. Improvements
    /// are published into the shared incumbent, so concurrent workers prune
    /// against the globally best cost.
    fn evaluate_leaf(&self, state: &mut WorkerState, states: &[AllocState], rank: u64) {
        state.stats.evaluated += 1;
        let (value, energy, latency) = self.eval_scalars(state, states, true);
        let better = match &state.best {
            None => true,
            Some(b) => (value, energy, latency, rank) < (b.value, b.energy, b.latency, b.rank),
        };
        if better {
            state.best = Some(Best {
                value,
                energy,
                latency,
                rank,
                order_len: self.dims.len(),
                order: state.order_buf,
            });
            if let Some(cell) = self.incumbent {
                if atomic_f64_min(cell, value) {
                    state.broadcasts += 1;
                }
            }
        }
    }

    /// The allocation-free scalar cost kernel.
    ///
    /// With `exact == true` (a complete ordering) it reproduces
    /// [`crate::cost::evaluate`]'s energy / latency / objective scalars
    /// bit-for-bit: the traffic terms are accumulated into dense
    /// (level, operand) slots in the same order the cost model fills its
    /// sorted access map, and the reductions over levels and operands follow
    /// the same iteration order. With `exact == false` (a prefix) the same
    /// computation prices still-open levels at refetch factor 1 — every term
    /// is then dominated by its true counterpart in any completion and the
    /// float accumulation order is identical, so the result is a monotone
    /// lower bound of every completion's true cost.
    fn eval_scalars(
        &self,
        state: &mut WorkerState,
        states: &[AllocState],
        exact: bool,
    ) -> (f64, f64, f64) {
        for slot in state.traffic.iter_mut() {
            *slot = [Traffic::default(); 3];
        }
        let mut exact_factors = [1.0f64; MAX_LEVELS];
        for (op_idx, (op, alloc)) in self.ops.iter().zip(states.iter()).enumerate() {
            let o = operand_index(op.operand);
            let innermost = op.levels[0];
            state.traffic[innermost][o].reads += op.pe_bytes;
            if op.operand == Operand::Output {
                state.traffic[innermost][o].writes += op.pe_bytes;
            }
            let n_windows = op.levels.len() - 1;
            if n_windows == 0 {
                continue;
            }
            let fallback_exact = exact && !op.incremental;
            if fallback_exact {
                self.exact_refetch_factors(state, op_idx, &mut exact_factors);
            }
            // `w` indexes three parallel structures (level pairs, closure
            // bits, exact factors), so a plain range loop is the clear form.
            #[allow(clippy::needless_range_loop)]
            for w in 0..n_windows {
                let child = op.levels[w];
                let parent = op.levels[w + 1];
                let r = if fallback_exact {
                    exact_factors[w]
                } else if op.incremental && alloc.closed & (1 << w) != 0 {
                    alloc.factor[w]
                } else {
                    1.0
                };
                match op.operand {
                    Operand::Weight | Operand::Input => {
                        let fills = op.footprint * r;
                        state.traffic[child][o].writes += fills;
                        state.traffic[parent][o].reads += fills;
                    }
                    Operand::Output => {
                        let up = op.footprint * r;
                        let down = op.footprint * (r - 1.0);
                        state.traffic[child][o].reads += up;
                        state.traffic[parent][o].writes += up;
                        state.traffic[parent][o].reads += down;
                        state.traffic[child][o].writes += down;
                    }
                }
            }
        }

        // Memory energy, iterating (level, operand) slots in the sorted-map
        // order of the cost model. Slots never touched contribute exactly 0.
        let mut memory_energy = 0.0;
        for (lvl, slots) in state.traffic.iter().enumerate() {
            for t in slots {
                memory_energy +=
                    t.reads * self.level_read_e[lvl] + t.writes * self.level_write_e[lvl];
            }
        }
        let energy = self.mac_energy + memory_energy;

        // Latency: compute-bound unless one level's traffic dominates.
        let mut latency = self.compute_cycles;
        let mut dram_reads = 0.0;
        let mut dram_writes = 0.0;
        for (lvl, slots) in state.traffic.iter().enumerate() {
            let mut reads = 0.0;
            let mut writes = 0.0;
            for t in slots {
                reads += t.reads;
                writes += t.writes;
            }
            if lvl == self.dram {
                dram_reads = reads;
                dram_writes = writes;
            }
            let read_cycles = if self.level_read_bw[lvl].is_finite() {
                reads / self.level_read_bw[lvl]
            } else {
                0.0
            };
            let write_cycles = if self.level_write_bw[lvl].is_finite() {
                writes / self.level_write_bw[lvl]
            } else {
                0.0
            };
            latency = latency.max(read_cycles).max(write_cycles);
        }

        let value = match self.objective {
            Objective::Energy => energy,
            Objective::Latency => latency,
            Objective::Edp => energy * latency,
            Objective::DramAccess => dram_reads + dram_writes,
        };
        (value, energy, latency)
    }

    /// Greedy bottom-up allocation and refetch factors recomputed from
    /// scratch over the complete current ordering, for operands whose
    /// capacity shares are not monotone (where the incremental state may
    /// diverge from the reference greedy). Mirrors
    /// [`crate::allocation::allocate`] exactly.
    fn exact_refetch_factors(
        &self,
        state: &WorkerState,
        op_idx: usize,
        factors: &mut [f64; MAX_LEVELS],
    ) {
        let op = &self.ops[op_idx];
        let k = self.dims.len();
        let mut eff = self.factors;
        let mut boundary = 0usize;
        let mut boundaries = [0usize; MAX_LEVELS];
        for (lvl, share) in op.shares.iter().enumerate() {
            while boundary < k {
                let di = dim_index(state.order_buf[boundary]);
                let saved = eff[di];
                eff[di] = self.factors[di] * self.trip_by_dim[di];
                if data_size(self.problem, op, &eff) <= *share {
                    boundary += 1;
                } else {
                    eff[di] = saved;
                    break;
                }
            }
            boundaries[lvl] = boundary;
        }
        for (lvl, &b) in boundaries[..op.shares.len()].iter().enumerate() {
            let mut seen_relevant = false;
            let mut factor = 1.0f64;
            for pos in b..k {
                let di = dim_index(state.order_buf[pos]);
                if op.relevant & (1 << di) != 0 {
                    seen_relevant = true;
                } else if seen_relevant {
                    factor *= self.trip_by_dim[di] as f64;
                }
            }
            factors[lvl] = factor;
        }
    }
}

/// Index of a dimension in [`Dim::ALL`].
fn dim_index(d: Dim) -> usize {
    match d {
        Dim::B => 0,
        Dim::K => 1,
        Dim::C => 2,
        Dim::OX => 3,
        Dim::OY => 4,
        Dim::FX => 5,
        Dim::FY => 6,
    }
}

/// Index of an operand in [`Operand::ALL`].
fn operand_index(op: Operand) -> usize {
    match op {
        Operand::Weight => 0,
        Operand::Input => 1,
        Operand::Output => 2,
    }
}

/// The resident data size of an operand given the effective per-dimension
/// sizes of a boundary, in bytes. Mirrors
/// [`crate::allocation::data_size_bytes`] exactly (same integer products,
/// same float conversion points).
fn data_size(problem: &SingleLayerProblem<'_>, op: &OpCtx, eff: &[u64; 7]) -> f64 {
    let e = |d: Dim| eff[dim_index(d)];
    let bytes = problem.bytes_per_element(op.operand) as f64;
    let elements: f64 = match op.operand {
        Operand::Weight => match problem.op {
            OpType::Conv => (e(Dim::K) * e(Dim::C) * e(Dim::FX) * e(Dim::FY)) as f64,
            OpType::DepthwiseConv => (e(Dim::K) * e(Dim::FX) * e(Dim::FY)) as f64,
            OpType::Pooling | OpType::Add => 0.0,
        },
        Operand::Input => {
            let channels = match problem.op {
                OpType::Conv => e(Dim::C),
                OpType::DepthwiseConv | OpType::Pooling => e(Dim::K),
                OpType::Add => 2 * e(Dim::K),
            };
            let ix = (e(Dim::OX).saturating_sub(1)) * problem.dims.stride_x + e(Dim::FX);
            let iy = (e(Dim::OY).saturating_sub(1)) * problem.dims.stride_y + e(Dim::FY);
            (e(Dim::B) * channels * ix * iy) as f64
        }
        Operand::Output => (e(Dim::B) * e(Dim::K) * e(Dim::OX) * e(Dim::OY)) as f64,
    };
    elements * bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loma::LomaMapper;
    use defines_arch::zoo;
    use defines_workload::{Layer, LayerDims};

    fn problems() -> Vec<(defines_arch::Accelerator, Layer)> {
        vec![
            (
                zoo::meta_proto_like_df(),
                Layer::new("c", OpType::Conv, LayerDims::conv(64, 32, 28, 28, 3, 3)),
            ),
            (
                zoo::tpu_like(),
                Layer::new("c", OpType::Conv, LayerDims::conv(32, 16, 56, 56, 3, 3)),
            ),
            (
                zoo::edge_tpu_like_df(),
                Layer::new(
                    "dw",
                    OpType::DepthwiseConv,
                    LayerDims::conv(48, 48, 28, 28, 3, 3),
                ),
            ),
            (
                zoo::ascend_like_df(),
                Layer::new(
                    "pool",
                    OpType::Pooling,
                    LayerDims::conv(64, 64, 28, 28, 2, 2).with_stride(2, 2),
                ),
            ),
        ]
    }

    #[test]
    fn pruned_search_matches_exhaustive_reference() {
        for (acc, layer) in problems() {
            let problem = SingleLayerProblem::new(&acc, &layer);
            let mapper = LomaMapper::default();
            let exhaustive = mapper.optimize_exhaustive(&problem);
            let (pruned, stats) = mapper.optimize_with_stats(&problem);
            assert_eq!(pruned, exhaustive, "{} / {}", acc.name(), layer.name);
            assert_eq!(
                stats.evaluated + stats.pruned_bound + stats.pruned_symmetry + stats.skipped_budget,
                stats.orderings_selected
            );
        }
    }

    #[test]
    fn sampled_search_matches_exhaustive_reference() {
        for (acc, layer) in problems() {
            let problem = SingleLayerProblem::new(&acc, &layer);
            for max in [3, 7, 48, 100] {
                let mapper = LomaMapper::new(MapperConfig {
                    objective: Objective::Energy,
                    max_orderings: max,
                    search_threads: 1,
                    budget: crate::Budget::default(),
                });
                let exhaustive = mapper.optimize_exhaustive(&problem);
                let (pruned, stats) = mapper.optimize_with_stats(&problem);
                assert_eq!(pruned, exhaustive, "{} max={max}", acc.name());
                assert!(stats.orderings_selected <= max as u64);
            }
        }
    }

    #[test]
    fn all_objectives_agree_with_reference() {
        let acc = zoo::meta_proto_like_df();
        let layer = Layer::new("c", OpType::Conv, LayerDims::conv(64, 32, 28, 28, 3, 3));
        let problem = SingleLayerProblem::new(&acc, &layer);
        for objective in [
            Objective::Energy,
            Objective::Latency,
            Objective::Edp,
            Objective::DramAccess,
        ] {
            let mapper = LomaMapper::new(MapperConfig::default().with_objective(objective));
            assert_eq!(
                mapper.optimize(&problem),
                mapper.optimize_exhaustive(&problem),
                "{objective:?}"
            );
        }
    }

    #[test]
    fn search_prunes_a_nontrivial_fraction() {
        let acc = zoo::meta_proto_like_df();
        let layer = Layer::new("c", OpType::Conv, LayerDims::conv(64, 32, 28, 28, 3, 3));
        let problem = SingleLayerProblem::new(&acc, &layer);
        let (_, stats) = LomaMapper::default().optimize_with_stats(&problem);
        assert_eq!(stats.orderings_total, 720);
        assert!(
            stats.pruned() > 0,
            "expected pruning on a 6-dim problem: {stats:?}"
        );
        assert!(stats.evaluated < stats.orderings_selected);
    }

    #[test]
    fn degenerate_problem_evaluates_single_empty_ordering() {
        let acc = zoo::meta_proto_like();
        let layer = Layer::new("c", OpType::Conv, LayerDims::conv(32, 2, 4, 4, 1, 1));
        let problem = SingleLayerProblem::new(&acc, &layer);
        let (cost, stats) = LomaMapper::default().optimize_with_stats(&problem);
        assert!(cost.mapping.is_empty());
        assert_eq!(stats.dims_active, 0);
        assert_eq!(stats.evaluated, 1);
    }

    #[test]
    fn symmetry_detection_fires_for_square_one_by_one_conv() {
        // A square tile on a 1x1 conv: OX and OY have equal trips, equal
        // unrolling, equal relevance, and FX/FY are trivial -> the OX/OY pair
        // is interchangeable and half the orderings are symmetry-pruned.
        let acc = zoo::meta_proto_like_df();
        let layer = Layer::new("c", OpType::Conv, LayerDims::conv(64, 32, 32, 32, 1, 1));
        let problem = SingleLayerProblem::new(&acc, &layer);
        let (cost, stats) = LomaMapper::default().optimize_with_stats(&problem);
        assert!(stats.pruned_symmetry > 0, "{stats:?}");
        assert_eq!(cost, LomaMapper::default().optimize_exhaustive(&problem));
    }

    #[test]
    fn atomic_f64_min_orders_like_floats() {
        let cell = AtomicU64::new(INCUMBENT_EMPTY);
        assert!(atomic_f64_min(&cell, 5.0));
        assert!(!atomic_f64_min(&cell, 5.0));
        assert!(!atomic_f64_min(&cell, 7.25));
        assert!(atomic_f64_min(&cell, 0.5));
        assert!(atomic_f64_min(&cell, 0.0));
        assert!(!atomic_f64_min(&cell, 1e300));
        assert_eq!(f64::from_bits(cell.load(Ordering::Relaxed)), 0.0);
    }

    #[test]
    fn parallel_search_matches_sequential_at_every_thread_count() {
        for (acc, layer) in problems() {
            let problem = SingleLayerProblem::new(&acc, &layer);
            let sequential = LomaMapper::default();
            let (seq_cost, seq_stats) = sequential.optimize_with_stats(&problem);
            for threads in [2, 4, 8] {
                let mapper = LomaMapper::new(MapperConfig {
                    search_threads: threads,
                    ..MapperConfig::default()
                });
                let (cost, stats) = mapper.optimize_with_stats(&problem);
                assert_eq!(
                    cost,
                    seq_cost,
                    "{} / {} at {threads} threads",
                    acc.name(),
                    layer.name
                );
                assert_eq!(
                    stats.evaluated
                        + stats.pruned_bound
                        + stats.pruned_symmetry
                        + stats.skipped_budget,
                    stats.orderings_selected,
                    "stats invariant at {threads} threads: {stats:?}"
                );
                assert_eq!(stats.orderings_selected, seq_stats.orderings_selected);
            }
        }
    }

    #[test]
    fn unit_generation_covers_the_selected_space_exactly() {
        let acc = zoo::meta_proto_like_df();
        let layer = Layer::new("c", OpType::Conv, LayerDims::conv(64, 32, 28, 28, 3, 3));
        let problem = SingleLayerProblem::new(&acc, &layer);
        let loops = active_loops(&problem);
        let ctx = SearchCtx::new(
            &problem,
            Objective::Energy,
            &loops,
            false,
            u64::MAX,
            u64::MAX,
            None,
        );
        for target in [2, 8, 32, 64] {
            let (units, pruned_symmetry, skipped_budget) = ctx.collect_units(target);
            assert_eq!(skipped_budget, 0, "unlimited budget skips nothing");
            // Every unit's subtree plus the symmetry-skipped shallow
            // subtrees partition the selected candidate set.
            let covered: u64 = units
                .iter()
                .map(|u| {
                    let sub = ctx.fact[loops.len() - u.depth as usize];
                    ctx.selected_in(u.leaf_base, u.leaf_base + sub)
                })
                .sum();
            assert_eq!(covered + pruned_symmetry, 720, "target={target}");
        }
    }

    #[test]
    fn budgeted_search_is_bit_identical_at_any_thread_count() {
        for (acc, layer) in problems() {
            let problem = SingleLayerProblem::new(&acc, &layer);
            for budget in [1, 3, 17, 100] {
                let config = MapperConfig::default()
                    .with_budget(crate::Budget::orderings(budget))
                    .with_search_threads(1);
                let (seq_cost, seq_stats) = search(&problem, &config);
                for threads in [2, 4, 8] {
                    let config = config.with_search_threads(threads);
                    let (cost, stats) = search(&problem, &config);
                    assert_eq!(
                        cost,
                        seq_cost,
                        "{} budget={budget} at {threads} threads",
                        acc.name()
                    );
                    assert_eq!(
                        stats.skipped_budget,
                        seq_stats.skipped_budget,
                        "budget skips are rank-pure: {} budget={budget}",
                        acc.name()
                    );
                    assert_eq!(
                        stats.evaluated
                            + stats.pruned_bound
                            + stats.pruned_symmetry
                            + stats.skipped_budget,
                        stats.orderings_selected
                    );
                }
            }
        }
    }

    #[test]
    fn exhausted_budget_flags_the_cost_degraded() {
        let acc = zoo::meta_proto_like_df();
        let layer = Layer::new("c", OpType::Conv, LayerDims::conv(64, 32, 28, 28, 3, 3));
        let problem = SingleLayerProblem::new(&acc, &layer);
        let tight = MapperConfig::default().with_budget(crate::Budget::orderings(2));
        let (cost, stats) = search(&problem, &tight);
        assert!(stats.skipped_budget > 0, "{stats:?}");
        assert!(cost.degraded, "exhausted budget must flag the result");
        // The degraded result is the exact optimum of the in-budget window,
        // so it can never beat the unlimited search.
        let (full, full_stats) = search(&problem, &MapperConfig::default());
        assert_eq!(full_stats.skipped_budget, 0);
        assert!(!full.degraded);
        assert!(cost.energy_pj >= full.energy_pj - 1e-9);
    }

    #[test]
    fn cross_search_incumbent_does_not_change_the_result() {
        // Pre-seeding the incumbent with the known optimum (what a canonical
        // twin search would have published) must not change the returned
        // cost — only the pruning counters.
        for (acc, layer) in problems() {
            let problem = SingleLayerProblem::new(&acc, &layer);
            let config = MapperConfig::default();
            let (reference, ref_stats) = search(&problem, &config);
            let optimum = reference.objective_value(config.objective, acc.hierarchy().dram_id());
            let cell = AtomicU64::new(optimum.to_bits());
            let (seeded, stats) = search_with_incumbent(&problem, &config, Some(&cell));
            assert_eq!(seeded, reference, "{}", acc.name());
            assert_eq!(
                stats.evaluated + stats.pruned_bound + stats.pruned_symmetry + stats.skipped_budget,
                stats.orderings_selected
            );
            assert!(
                stats.evaluated <= ref_stats.evaluated,
                "a seeded incumbent can only tighten pruning"
            );
        }
    }
}
