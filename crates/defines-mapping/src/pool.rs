//! The work-stealing thread pool behind the parallel branch-and-bound
//! mapping search.
//!
//! One global pool of lazily-spawned worker threads serves every search in
//! the process. A search that wants to go parallel
//! ([`run_parallel`]) splits its permutation tree into prefix-subtree
//! [`Unit`]s, seeds them round-robin into one fixed-capacity
//! [`crossbeam_deque::Worker`] per participant (all pushes happen before the
//! job is published — the vendored deque's single-phase contract), and posts
//! the job. Parked workers wake, claim a deque each, and drain: LIFO pops
//! from their own deque, FIFO steals from everyone else's once it runs dry.
//! The owner thread participates symmetrically on deque 0, so on a machine
//! with fewer cores than requested threads the search degrades gracefully to
//! the sequential walk plus some deque overhead — never a stall waiting for
//! workers that cannot run.
//!
//! # Why the result is deterministic
//!
//! Workers never share mutable search state. Each carries a private
//! [`WorkerState`] (best candidate, [`SearchStats`] counters) and the only
//! cross-thread communication is the monotone incumbent cell inside the
//! search context — always the exact cost of some fully evaluated ordering,
//! so pruning against it never drops an optimal-value leaf. The owner merges
//! the deposited per-worker results with [`Best::beats`], a strict total
//! order ending in the unique lexicographic leaf rank, so the winning
//! ordering is independent of which worker found it first. Only the
//! `evaluated` / `pruned_bound` *split* of the stats may vary with timing;
//! their sum is exact at any thread count.
//!
//! # Lifetime safety of the shared context
//!
//! The job carries a type-erased pointer to the owner's stack-allocated
//! [`SearchCtx`]. The owner returns from [`run_parallel`] only once every
//! unit has been processed (`units_done == total`) *and* every claimed deque
//! has been deposited (`finished + unclaimed == participants`). A worker
//! dereferences the context only between obtaining a unit and marking it
//! done — a window in which the owner provably cannot have returned — and a
//! worker that claims a deque must deposit before the owner's exit condition
//! can hold. Late workers that find nothing left to claim never touch the
//! pointer.
//!
//! # Fault tolerance
//!
//! Every unit is processed under `catch_unwind`: a panic marks the job
//! failed (first failure wins), the panicking participant keeps draining so
//! remaining units are still marked done, and the owner re-raises the
//! failure as one structured error — `"parallel mapping search failed: …"` —
//! that the sweep engine's per-point isolation turns into a `Failed` record
//! for just that design point. The owner's wait is a
//! [`Condvar::wait_timeout`] loop with an *exact* wedge check (see
//! [`wait_for_completion`]), so a lost unit is reported as a structured
//! error instead of hanging the process, and late claimants check the
//! abandoned flag under the progress lock before ever touching the context
//! pointer.
//!
//! # Telemetry
//!
//! * `search.subtrees` — work units generated for parallel jobs.
//! * `search.steals` — units taken from another participant's deque.
//! * `search.bound_broadcasts` — successful lowerings of a shared incumbent
//!   cell (counted in [`crate::search`] for the sequential cross-cache path
//!   too, so the counter covers every incumbent publication).

use crate::search::{Best, SearchCtx, SearchStats, Unit, WorkerState};
use crossbeam_deque::{Steal, Stealer, Worker};
use defines_telemetry::{failpoint, Counter};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// Prefix-subtree work units generated for parallel search jobs.
pub(crate) static SUBTREES: Counter = Counter::new("search.subtrees");
/// Work units a participant took from another participant's deque.
pub(crate) static STEALS: Counter = Counter::new("search.steals");
/// Successful lowerings of a shared incumbent cell.
pub(crate) static BOUND_BROADCASTS: Counter = Counter::new("search.bound_broadcasts");

/// How many units to aim for per requested thread (over-decomposition keeps
/// the stealers busy when subtree costs are skewed), and the cap that keeps
/// unit generation O(small).
const UNITS_PER_THREAD: usize = 4;
const MAX_UNITS: usize = 64;

/// How long the owner sleeps on the completion condvar before re-checking
/// for a wedged job. Pure polling granularity for a defensive check — the
/// timeout never influences any result, only how fast an (unreachable by
/// construction) lost-unit state is reported instead of hung on.
const WEDGE_POLL: Duration = Duration::from_millis(500);

/// Type-erased pointer to the owner's stack-allocated [`SearchCtx`]. See the
/// module docs for the protocol that keeps dereferences inside the owner's
/// lifetime.
struct CtxPtr(*const SearchCtx<'static, 'static>);
// SAFETY: the pointee is a `SearchCtx`, which is `Sync` (asserted in
// `run_parallel`), and the deref protocol above confines accesses to the
// owner's stack frame lifetime.
unsafe impl Send for CtxPtr {}
// SAFETY: same contract as `Send` above — the pointee is `Sync` and the deref
// protocol confines shared accesses to the owner's stack frame lifetime.
unsafe impl Sync for CtxPtr {}

/// Claim/progress state of one job, behind the job's mutex.
struct Progress {
    /// Unclaimed participant deques (index, owner handle). The posting
    /// thread keeps deque 0 for itself; workers take one each.
    deques: Vec<Option<(usize, Worker<Unit>)>>,
    /// How many entries of `deques` are still `Some`.
    unclaimed: usize,
    /// Units fully processed so far (incremented *after* processing).
    units_done: usize,
    /// Workers that claimed a deque and have deposited their results.
    finished: usize,
    /// Deposited per-worker results: (best, stats, steals, broadcasts).
    results: Vec<(Option<Best>, SearchStats, u64, u64)>,
    /// The first panic any participant caught while processing a unit. Once
    /// set, the job's results are discarded and the owner re-raises the
    /// failure as a structured error. Claiming stays allowed — claimers keep
    /// marking units done so the owner's wait can terminate.
    failed: Option<String>,
    /// Set (under this lock) by the owner's wedge exit, just before its
    /// stack frame — and the context it holds — goes away. New claimants
    /// check this flag under the lock and refuse to claim, so they never
    /// dereference the dangling context pointer.
    abandoned: bool,
}

/// One posted parallel search job.
struct Job {
    ctx: CtxPtr,
    /// Stealer handles of every participant deque, indexed like `deques`.
    stealers: Vec<Stealer<Unit>>,
    total_units: usize,
    progress: Mutex<Progress>,
    /// Signalled on unit completion and worker deposit; the owner waits here.
    done_cv: Condvar,
}

impl Job {
    /// Locks the progress state, recovering from poisoning. Sound: every
    /// critical section is a counter bump, a `Vec` push or an `Option` set —
    /// none can be observed half-done, so the poison flag carries no
    /// information and recovery keeps the completion protocol alive after a
    /// participant panic.
    fn progress(&self) -> MutexGuard<'_, Progress> {
        self.progress.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn mark_unit_done(&self) {
        let mut p = self.progress();
        p.units_done += 1;
        if p.units_done == self.total_units {
            self.done_cv.notify_all();
        }
    }

    /// Records the first failure any participant observes. Units keep being
    /// marked done afterwards (so the owner's wait terminates), but their
    /// results are discarded and the owner re-raises the failure.
    fn record_failure(&self, error: String) {
        let mut p = self.progress();
        if p.failed.is_none() {
            p.failed = Some(error);
        }
    }
}

/// Renders a caught panic payload as an error string.
fn panic_error(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// The global pool: the currently posted job (at most one at a time) and the
/// parked worker threads.
struct Pool {
    shared: Mutex<PoolShared>,
    work_cv: Condvar,
}

impl Pool {
    /// Locks the pool state, recovering from poisoning. Sound: every
    /// critical section writes a handful of scalars/`Option`s that are valid
    /// in any prefix. Worst case a poster that panicked mid-post leaves
    /// `busy == true` forever — subsequent searches then degrade gracefully
    /// to their sequential walk instead of panicking on a poisoned lock.
    fn shared(&self) -> MutexGuard<'_, PoolShared> {
        self.shared.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

struct PoolShared {
    job: Option<Arc<Job>>,
    /// Bumped per posted job so a worker never re-enters a job it already
    /// visited.
    epoch: u64,
    /// Worker threads spawned so far.
    workers: usize,
    /// Whether a job is currently posted (searches arriving meanwhile fall
    /// back to their sequential walk instead of queueing).
    busy: bool,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        shared: Mutex::new(PoolShared {
            job: None,
            epoch: 0,
            workers: 0,
            busy: false,
        }),
        work_cv: Condvar::new(),
    })
}

fn require_sync<T: Sync>(_: &T) {}

/// Runs `ctx`'s search as a parallel job on up to `threads` participants
/// (the calling thread plus pool workers), merging everything into
/// `owner_state`. Returns `false` — with `owner_state` untouched — when the
/// job is not worth or not able to go parallel (too few units, or another
/// parallel job is already running); the caller then does the sequential
/// walk.
pub(crate) fn run_parallel(
    ctx: &SearchCtx<'_, '_>,
    owner_state: &mut WorkerState,
    threads: usize,
) -> bool {
    require_sync(ctx);
    let target = (UNITS_PER_THREAD * threads).min(MAX_UNITS);
    let (units, gen_pruned_symmetry, gen_skipped_budget) = ctx.collect_units(target);
    if units.len() < 2 {
        return false;
    }
    let participants = threads.min(units.len());

    let pool = pool();
    {
        let mut shared = pool.shared();
        if shared.busy {
            return false;
        }
        shared.busy = true;
        while shared.workers < participants - 1 {
            shared.workers += 1;
            std::thread::Builder::new()
                .name("defines-search".into())
                .spawn(worker_loop)
                .expect("spawning search worker");
        }
    }

    // Seed the deques round-robin. All pushes happen before the job is
    // published, honouring the vendored deque's single-phase contract.
    let deques: Vec<Worker<Unit>> = (0..participants)
        .map(|_| Worker::with_capacity(units.len()))
        .collect();
    for (i, unit) in units.iter().enumerate() {
        deques[i % participants]
            .push(*unit)
            .expect("deque sized for all units");
    }
    let stealers: Vec<Stealer<Unit>> = deques.iter().map(|d| d.stealer()).collect();
    let mut deques = deques.into_iter();
    let own = deques.next().expect("participants >= 2");
    let worker_deques: Vec<Option<(usize, Worker<Unit>)>> =
        deques.enumerate().map(|(i, d)| Some((i + 1, d))).collect();

    let job = Arc::new(Job {
        ctx: CtxPtr(std::ptr::from_ref(ctx).cast::<SearchCtx<'static, 'static>>()),
        stealers,
        total_units: units.len(),
        progress: Mutex::new(Progress {
            unclaimed: worker_deques.len(),
            deques: worker_deques,
            units_done: 0,
            finished: 0,
            results: Vec::new(),
            failed: None,
            abandoned: false,
        }),
        done_cv: Condvar::new(),
    });
    let expected_deposits = participants - 1;
    {
        let mut shared = pool.shared();
        shared.job = Some(Arc::clone(&job));
        shared.epoch += 1;
        pool.work_cv.notify_all();
    }

    // The job is committed: charge the orderings symmetry-pruned and
    // budget-skipped during unit generation (the walks below start at the
    // split depth and never revisit the shallow levels).
    owner_state.stats.pruned_symmetry += gen_pruned_symmetry;
    owner_state.stats.skipped_budget += gen_skipped_budget;

    // Participate: drain own deque, then steal.
    let mut owner_steals = 0u64;
    drain(ctx, owner_state, &own, 0, &job, &mut owner_steals);

    // Wait for every unit to be processed and every claimed deque deposited,
    // detecting the wedged state instead of blocking on it forever.
    let wait_result = wait_for_completion(&job, expected_deposits);

    // Unpost the job before merging so the pool frees up immediately.
    {
        let mut shared = pool.shared();
        shared.job = None;
        shared.busy = false;
    }

    let failed = job.progress().failed.take();
    if let Err(wedged) = wait_result {
        // All deposits are in (no thread still references the context) yet
        // units are missing: surface the structured error. The pool itself
        // was unposted above and stays usable.
        panic!("{wedged}");
    }
    if let Some(error) = failed {
        // A participant caught a panic while processing a unit. Its partial
        // walk state is untrustworthy, so the whole search fails as one
        // structured error — callers (the sweep engine) isolate it to the
        // design point that triggered it.
        panic!("parallel mapping search failed: {error}");
    }

    // Deterministic reduction: strict total order ending in the unique
    // lexicographic rank — merge order cannot matter.
    let mut total_steals = owner_steals;
    let results = std::mem::take(&mut job.progress().results);
    for (best, stats, steals, broadcasts) in results {
        owner_state.stats.accumulate(&stats);
        total_steals += steals;
        owner_state.broadcasts += broadcasts;
        if let Some(b) = best {
            let wins = match &owner_state.best {
                None => true,
                Some(current) => b.beats(current),
            };
            if wins {
                owner_state.best = Some(b);
            }
        }
    }
    SUBTREES.add(units.len() as u64);
    STEALS.add(total_steals);
    true
}

/// Processes units until none are left anywhere: LIFO pops from `own`,
/// then FIFO steals from every *other* participant's deque.
///
/// Every unit is guarded by `catch_unwind`: a panic while processing records
/// the failure on the job and flips this participant to *unsound* — it keeps
/// draining so every remaining unit is still marked done (the owner's wait
/// terminates), but stops touching its now-untrustworthy walk state. Returns
/// whether the participant stayed sound; unsound results must be discarded.
fn drain(
    ctx: &SearchCtx<'_, '_>,
    state: &mut WorkerState,
    own: &Worker<Unit>,
    own_index: usize,
    job: &Job,
    steals: &mut u64,
) -> bool {
    let mut sound = true;
    loop {
        // `quiet_panics`: both catches below report the payload through the
        // job's structured failure, so the default hook's stderr dump would
        // only duplicate it.
        let acquired = defines_telemetry::quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| {
                failpoint!("pool.steal");
                own.pop().or_else(|| steal_any(job, own_index, steals))
            }))
        });
        let unit = match acquired {
            Ok(unit) => unit,
            Err(payload) => {
                // Acquisition itself panicked (before any unit was popped —
                // both the failpoint and any deque failure fire pre-pop), so
                // no unit is lost: stop participating and let the remaining
                // units be drained by the other participants, with the wedge
                // detector as the backstop if none are left.
                job.record_failure(panic_error(payload.as_ref()));
                return false;
            }
        };
        let Some(unit) = unit else { break };
        if sound {
            let processed = defines_telemetry::quiet_panics(|| {
                catch_unwind(AssertUnwindSafe(|| {
                    failpoint!("pool.unit");
                    ctx.process_unit(state, &unit);
                }))
            });
            if let Err(payload) = processed {
                job.record_failure(panic_error(payload.as_ref()));
                sound = false;
            }
        }
        job.mark_unit_done();
    }
    sound
}

/// Blocks until every unit is processed and every claimed deque deposited —
/// or reports a wedged job as a structured error instead of hanging forever.
///
/// The wedge condition is exact, not heuristic: `finished` reaches
/// `expected_deposits` only once *every* worker deque has been claimed and
/// its claimer has deposited, and the owner (the caller) has already left
/// its own drain — so no participant can ever process a unit again and
/// `units_done` is frozen. If it is still short of `total_units`, the
/// missing units can never complete. Note the condition is deliberately
/// *not* `finished + unclaimed >= expected_deposits`: an unclaimed deque may
/// still hold units that a late-waking worker will claim and drain, so
/// `unclaimed > 0` never justifies giving up. `WEDGE_POLL` is pure polling
/// granularity; it never influences which branch is taken.
///
/// On wedge, `abandoned` (and `failed`) are set *under the progress lock*
/// before returning, so a late claimant can never observe an unabandoned job
/// whose owner has left — the claim path in [`worker_loop`] checks the flag
/// under the same lock and refuses to claim (and therefore to dereference
/// the context pointer).
fn wait_for_completion(job: &Job, expected_deposits: usize) -> Result<(), String> {
    let mut p = job.progress();
    loop {
        if p.units_done >= job.total_units && p.finished + p.unclaimed >= expected_deposits {
            return Ok(());
        }
        if p.finished >= expected_deposits && p.units_done < job.total_units {
            let error = format!(
                "parallel mapping search wedged: {}/{} units completed",
                p.units_done, job.total_units
            );
            p.abandoned = true;
            if p.failed.is_none() {
                p.failed = Some(error.clone());
            }
            return Err(error);
        }
        p = job
            .done_cv
            .wait_timeout(p, WEDGE_POLL)
            .unwrap_or_else(PoisonError::into_inner)
            .0;
    }
}

/// One full steal sweep over every *other* participant's deque, retrying as
/// long as any attempt reports a lost race ([`Steal::Retry`]). Returns
/// `None` only after a complete pass in which every deque was empty.
fn steal_any(job: &Job, own_index: usize, steals: &mut u64) -> Option<Unit> {
    let n = job.stealers.len();
    loop {
        let mut saw_retry = false;
        for v in 0..n {
            if v == own_index {
                continue;
            }
            match job.stealers[v].steal() {
                Steal::Success(u) => {
                    *steals += 1;
                    return Some(u);
                }
                Steal::Retry => saw_retry = true,
                Steal::Empty => {}
            }
        }
        if !saw_retry {
            return None;
        }
    }
}

/// The body of one pool worker thread: park until a job is posted, claim a
/// deque, drain, deposit, repeat. Threads are never joined — they park on
/// the condvar between jobs and die with the process.
fn worker_loop() {
    let pool = pool();
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut shared = pool.shared();
            loop {
                if shared.epoch != last_epoch {
                    if let Some(job) = shared.job.clone() {
                        last_epoch = shared.epoch;
                        break job;
                    }
                    // The job of this epoch already completed while we slept.
                    last_epoch = shared.epoch;
                }
                shared = pool
                    .work_cv
                    .wait(shared)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let claimed = {
            let mut p = job.progress();
            if p.unclaimed == 0 || p.abandoned {
                // Nothing left to claim — or the owner wedge-exited and the
                // context pointer is dangling. (A merely *failed* job must
                // still be claimed and drained: marking its remaining units
                // done is what lets the owner's wait terminate.)
                None
            } else {
                p.unclaimed -= 1;
                let slot = p
                    .deques
                    .iter_mut()
                    .find(|d| d.is_some())
                    .expect("unclaimed > 0 implies a free deque");
                slot.take()
            }
        };
        let Some((own_index, own)) = claimed else {
            continue;
        };
        // Having claimed a deque, this thread MUST deposit below — the
        // owner's exit condition counts on it.
        //
        // SAFETY: the deque was claimed under the progress lock while the
        // job was unabandoned. From this point until the deposit below,
        // `finished <= expected_deposits - 1` (this claimer has not
        // deposited) and `finished + unclaimed <= expected_deposits - 1`
        // (the claim consumed one `unclaimed` without adding a `finished`),
        // so neither the normal nor the wedge exit of `wait_for_completion`
        // can be taken — the owner's stack frame (and the context it holds)
        // outlives this drain.
        let ctx: &SearchCtx<'_, '_> = unsafe { &*job.ctx.0 };
        let mut state = WorkerState::fresh(ctx);
        let mut steals = 0u64;
        let sound = drain(ctx, &mut state, &own, own_index, &job, &mut steals);
        let mut p = job.progress();
        p.finished += 1;
        if sound {
            p.results
                .push((state.best, state.stats, steals, state.broadcasts));
        }
        job.done_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::{wait_for_completion, CtxPtr, Job, Progress};
    use crate::search::SearchStats;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Barrier, Condvar, Mutex};

    /// A job whose unit count can never be reached (one unit, no deque
    /// holding it) must be reported as a structured wedge error — with the
    /// failed flag set for late claimants — instead of blocking the owner
    /// forever on the completion condvar.
    #[test]
    fn wedged_job_is_reported_not_hung() {
        let job = Job {
            ctx: CtxPtr(std::ptr::null()),
            stealers: Vec::new(),
            total_units: 1,
            progress: Mutex::new(Progress {
                deques: Vec::new(),
                unclaimed: 0,
                units_done: 0,
                finished: 0,
                results: Vec::new(),
                failed: None,
                abandoned: false,
            }),
            done_cv: Condvar::new(),
        };
        let error = wait_for_completion(&job, 0).expect_err("job is wedged");
        assert!(
            error.contains("wedged") && error.contains("0/1"),
            "structured wedge error, got: {error}"
        );
        let p = job.progress();
        assert_eq!(
            p.failed.as_deref(),
            Some(error.as_str()),
            "failure recorded for the owner to re-raise"
        );
        assert!(
            p.abandoned,
            "abandoned flag set under the lock so late claimants back off"
        );
    }

    /// Demonstrates why the parallel search keeps *per-worker* stats merged
    /// at the end instead of one shared mutable counter: an unsynchronized
    /// read-modify-write on shared state loses updates. The barrier forces
    /// every worker to read the counter before any worker writes it back, so
    /// every round deterministically loses all but one increment — the data
    /// race the old single-`SearchStats` design would have been exposed to.
    #[test]
    fn shared_counter_loses_updates_but_merged_worker_stats_do_not() {
        const THREADS: usize = 4;
        const ROUNDS: usize = 64;

        // The broken design: one shared counter, updated with a plain
        // load-then-store (what `stats.evaluated += 1` compiles to when the
        // stats struct is naively shared).
        let shared = AtomicU64::new(0);
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for _ in 0..ROUNDS {
                        let seen = shared.load(Ordering::SeqCst);
                        // Everyone has read the same value before anyone
                        // stores: the race is now guaranteed, not timing-
                        // dependent.
                        barrier.wait();
                        shared.store(seen + 1, Ordering::SeqCst);
                        barrier.wait();
                    }
                });
            }
        });
        let expected = (THREADS * ROUNDS) as u64;
        assert_eq!(
            shared.load(Ordering::SeqCst),
            ROUNDS as u64,
            "each round keeps exactly one of {THREADS} increments"
        );
        assert!(
            shared.load(Ordering::SeqCst) < expected,
            "updates were lost"
        );

        // The adopted design: every worker owns its `SearchStats` and the
        // owner merges them after the job — no shared mutation, no race,
        // exact accounting.
        let merged = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..THREADS)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = SearchStats::default();
                        for _ in 0..ROUNDS {
                            local.evaluated += 1;
                        }
                        local
                    })
                })
                .collect();
            let mut merged = SearchStats::default();
            for worker in workers {
                merged.accumulate(&worker.join().expect("worker panicked"));
            }
            merged
        });
        assert_eq!(merged.evaluated, expected, "merged stats are exact");
    }
}
