//! Fault-injection campaign against the persistent mapping-cache store:
//! deterministic kills injected into every persistence site — mid-append,
//! at compaction start, between compacted entries, and just before the
//! atomic rename — must never corrupt the file. Reopening after each kill
//! must succeed (healing the torn tail / stale `.tmp`), and re-replaying
//! the same usage history must converge to byte-identical file content.
#![cfg(feature = "failpoints")]

use defines_arch::MemoryLevelId;
use defines_mapping::{
    Access, AccessBreakdown, CacheStore, LayerCost, MappingCache, OperandTopLevels, ProblemKey,
    TemporalLoop, TemporalMapping,
};
use defines_telemetry::fault;
use defines_workload::{Dim, LayerDims, OpType};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

fn fresh_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("defines-persist-fault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}.jsonl"))
}

fn key(i: u64) -> ProblemKey {
    ProblemKey {
        accelerator: 0xdead_beef,
        op: OpType::Conv,
        dims: LayerDims {
            b: 1,
            k: 8 + i,
            c: 3,
            ox: 16,
            oy: 16,
            fx: 3,
            fy: 3,
            stride_x: 1,
            stride_y: 1,
            pad_x: 1,
            pad_y: 1,
        },
        act_bits: 8,
        weight_bits: 8,
        top_levels: OperandTopLevels {
            weight: MemoryLevelId(2),
            input: MemoryLevelId(2),
            output: MemoryLevelId(2),
        },
        mapper: 7,
    }
}

fn cost(i: u64) -> LayerCost {
    LayerCost {
        energy_pj: 100.0 + i as f64,
        mac_energy_pj: 40.0,
        memory_energy_pj: 60.0 + i as f64,
        latency_cycles: 1000.0 * (i + 1) as f64,
        compute_cycles: 900.0,
        macs: 4096 + i,
        accesses: AccessBreakdown::from_entries(vec![(
            (MemoryLevelId(0), defines_arch::Operand::Input),
            Access {
                reads_bytes: 64.0 + i as f64,
                writes_bytes: 32.0,
            },
        )]),
        mapping: TemporalMapping::from_loops(vec![TemporalLoop {
            dim: Dim::OX,
            size: 4,
        }]),
        degraded: false,
    }
}

/// The fixed usage history every campaign replays: three batches with
/// re-touches, enough entries that mid-compaction kills land between lines.
const BATCHES: [&[u64]; 3] = [&[0, 1, 2, 3], &[1, 4, 5], &[0, 5, 6, 7]];

/// Replays the history from epoch 1 (matching a fresh store), so a healed
/// store converges to the exact reference epochs.
fn replay(store: &mut CacheStore, cache: &MappingCache) -> Result<(), String> {
    cache.set_epoch(1);
    for batch in BATCHES {
        for &i in batch {
            cache.preload(key(i), Arc::new(cost(i)));
            cache.set_usage(key(i), cache.current_epoch());
        }
        store.sync().map_err(|e| e.to_string())?;
    }
    store.compact_now().map_err(|e| e.to_string())
}

/// One sequential campaign (the fault registry is process-global).
#[test]
fn kills_during_persistence_never_corrupt_the_store() {
    const BOUND: usize = 6;

    // Fault-free reference bytes for the full history at the same bound.
    let reference = {
        let path = fresh_path("reference");
        let _ = std::fs::remove_file(&path);
        let cache = MappingCache::new();
        let mut store = CacheStore::open(&path, cache.clone(), BOUND).expect("open reference");
        replay(&mut store, &cache).expect("reference replay");
        let bytes = std::fs::read(&path).expect("read reference");
        let _ = std::fs::remove_file(&path);
        bytes
    };
    assert!(!reference.is_empty());

    let mut injections = 0u64;
    for site in [
        "persist.append",
        "persist.compact.begin",
        "persist.compact.mid",
        "persist.compact.rename",
    ] {
        for fire_at in [1u64, 2, 3] {
            let tag = format!("{}-{fire_at}", site.replace('.', "-"));
            let path = fresh_path(&tag);
            let _ = std::fs::remove_file(&path);

            // First life: the injected kill lands somewhere inside the
            // replay (or never fires, when fire_at exceeds the site's hit
            // count — that case degenerates to the fault-free path).
            let cache = MappingCache::new();
            let mut store = CacheStore::open(&path, cache.clone(), BOUND).expect("open");
            let fired = {
                let guard = fault::arm(site, fire_at);
                let outcome = catch_unwind(AssertUnwindSafe(|| replay(&mut store, &cache)));
                let fired = fault::hits(site) >= fire_at;
                drop(guard);
                match outcome {
                    Ok(Ok(())) => assert!(!fired, "{site}@{fire_at}: fired but no panic"),
                    Ok(Err(e)) => panic!("{site}@{fire_at}: IO error instead of panic: {e}"),
                    Err(_) => assert!(fired, "{site}@{fire_at}: panic without firing"),
                }
                fired
            };
            injections += u64::from(fired);
            drop(store);

            // Second life: reopening heals whatever the kill left behind
            // (torn tail, stale .tmp) — never an error, never a corrupt
            // entry (fingerprints are verified line by line).
            let cache = MappingCache::new();
            let mut store = CacheStore::open(&path, cache.clone(), BOUND)
                .unwrap_or_else(|e| panic!("{site}@{fire_at}: reopen failed: {e}"));
            for (k, c) in cache.entries() {
                let i = k.dims.k - 8;
                assert_eq!(key(i), k, "{site}@{fire_at}: reloaded a corrupt key");
                assert_eq!(
                    cost(i),
                    *c,
                    "{site}@{fire_at}: reloaded a corrupt cost for key {i}"
                );
            }

            // Healing: re-replaying the same history converges to the
            // byte-exact reference file, whatever was lost.
            replay(&mut store, &cache)
                .unwrap_or_else(|e| panic!("{site}@{fire_at}: healing replay failed: {e}"));
            let healed = std::fs::read(&path).expect("read healed file");
            assert_eq!(
                healed, reference,
                "{site}@{fire_at}: healed store diverged from the reference bytes"
            );
            let _ = std::fs::remove_file(&path);
        }
    }
    assert!(
        injections >= 8,
        "campaign only injected {injections} kills — sites are not being exercised"
    );
}
