//! Fault-injection campaign against the work-stealing search pool: injected
//! panics in unit processing and unit acquisition must surface as one
//! structured search failure — never a hung owner or a wedged pool — and the
//! pool must stay fully usable afterwards.
#![cfg(feature = "failpoints")]

use defines_arch::zoo;
use defines_mapping::{LomaMapper, MapperConfig, SingleLayerProblem};
use defines_telemetry::fault;
use defines_workload::{Layer, LayerDims, OpType};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// One sequential campaign (the fault registry and the pool are global, so
/// the two injections and the reuse check must not race each other).
#[test]
fn injected_pool_panics_fail_the_search_cleanly_and_spare_the_pool() {
    let acc = zoo::meta_proto_like_df();
    let layer = Layer::new("c", OpType::Conv, LayerDims::conv(64, 32, 28, 28, 3, 3));
    let problem = SingleLayerProblem::new(&acc, &layer);
    let config = MapperConfig::default().with_search_threads(4);

    // Baseline before any injection, and proof the problem goes parallel.
    let sequential = LomaMapper::new(config.with_search_threads(1)).optimize(&problem);
    let parallel = LomaMapper::new(config).optimize(&problem);
    assert_eq!(parallel, sequential);

    // Campaign 1: panic while *processing* a unit. Whichever participant hits
    // the probe first records the failure; the owner must re-raise it as one
    // structured error after every unit is accounted for.
    {
        let _guard = fault::arm("pool.unit", 1);
        let result = catch_unwind(AssertUnwindSafe(|| {
            LomaMapper::new(config).optimize(&problem)
        }));
        let message = panic_message(result.expect_err("injected unit panic must fail the search"));
        assert!(
            message.contains("parallel mapping search failed")
                && message.contains("failpoint pool.unit fired"),
            "structured failure expected, got: {message}"
        );
    }

    // Campaign 2: panic while *acquiring* a unit (pop/steal path). The
    // panicking participant backs off before any unit is popped, so no unit
    // is lost — the others drain everything and the owner re-raises the
    // recorded failure instead of wedging on the completion condvar.
    {
        let _guard = fault::arm("pool.steal", 1);
        let result = catch_unwind(AssertUnwindSafe(|| {
            LomaMapper::new(config).optimize(&problem)
        }));
        let message = panic_message(result.expect_err("injected steal panic must fail the search"));
        assert!(
            message.contains("parallel mapping search failed")
                && message.contains("failpoint pool.steal fired"),
            "structured failure expected, got: {message}"
        );
    }

    // The pool survived both injections: fault-free parallel searches still
    // run (the busy flag was released, no worker is stuck) and still match
    // the sequential result bit-for-bit.
    for threads in [2usize, 4, 8] {
        let rerun = LomaMapper::new(config.with_search_threads(threads)).optimize(&problem);
        assert_eq!(
            rerun, sequential,
            "post-injection search at {threads} threads"
        );
    }
}
