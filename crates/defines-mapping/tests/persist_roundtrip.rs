//! Property tests for the persistent mapping-cache store: an arbitrary
//! sequence of store/touch/evict batches, persisted and reloaded into a
//! fresh cache, must reproduce the surviving entries, their LRU epochs, and
//! — after re-compaction — the exact file bytes. The compacted file is a
//! pure function of the logical request history.

use defines_arch::MemoryLevelId;
use defines_mapping::{
    Access, AccessBreakdown, CacheStore, LayerCost, MappingCache, ProblemKey, TemporalLoop,
    TemporalMapping,
};
use defines_workload::{Dim, LayerDims, OpType};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A fresh store path per invocation (cases run sequentially per test, but
/// tests run in parallel).
fn fresh_path(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("defines-persist-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}-{n}.jsonl"))
}

/// Deterministic splitmix-style stream for deriving entry contents from a
/// proptest-drawn seed.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A synthetic but structurally honest key: every field the fingerprint and
/// the serializer cover varies with `i`.
fn key(i: u64, accelerator: u64) -> ProblemKey {
    let ops = [
        OpType::Conv,
        OpType::DepthwiseConv,
        OpType::Pooling,
        OpType::Add,
    ];
    ProblemKey {
        accelerator,
        op: ops[(i % 4) as usize],
        dims: LayerDims {
            b: 1 + i % 2,
            k: 8 + i,
            c: 3 + i % 5,
            ox: 16 + i % 7,
            oy: 16 + (i / 2) % 7,
            fx: 1 + i % 3,
            fy: 1 + (i / 3) % 3,
            stride_x: 1 + i % 2,
            stride_y: 1,
            pad_x: i % 2,
            pad_y: (i / 2) % 2,
        },
        act_bits: if i.is_multiple_of(2) { 8 } else { 16 },
        weight_bits: 8,
        top_levels: defines_mapping::OperandTopLevels {
            weight: MemoryLevelId((i % 3) as usize),
            input: MemoryLevelId(2),
            output: MemoryLevelId(((i / 3) % 3) as usize),
        },
        mapper: i.wrapping_mul(0x1234_5678_9abc_def1),
    }
}

/// A synthetic cost exercising every serialized field, including the access
/// breakdown map and the temporal mapping loops.
fn cost(i: u64) -> LayerCost {
    let f = |n: u64| (n % 100_000) as f64 * 0.25 + 1.0;
    LayerCost {
        energy_pj: f(i.wrapping_mul(3)),
        mac_energy_pj: f(i.wrapping_mul(5)),
        memory_energy_pj: f(i.wrapping_mul(7)),
        latency_cycles: f(i.wrapping_mul(11)),
        compute_cycles: f(i.wrapping_mul(13)),
        macs: i * 1000 + 1,
        accesses: AccessBreakdown::from_entries(vec![
            (
                (MemoryLevelId(0), defines_arch::Operand::Input),
                Access {
                    reads_bytes: f(i),
                    writes_bytes: f(i + 1),
                },
            ),
            (
                (
                    MemoryLevelId((i % 3) as usize),
                    defines_arch::Operand::Output,
                ),
                Access {
                    reads_bytes: f(i + 2),
                    writes_bytes: f(i + 3),
                },
            ),
        ]),
        mapping: TemporalMapping::from_loops(vec![
            TemporalLoop {
                dim: Dim::OX,
                size: 2 + i % 6,
            },
            TemporalLoop {
                dim: Dim::K,
                size: 2 + i % 4,
            },
        ]),
        degraded: i.is_multiple_of(5),
    }
}

/// Replays a batched usage history into a store: each batch preloads /
/// touches its keys at the current epoch, then syncs (which advances the
/// epoch — the batch boundary).
fn replay(store: &mut CacheStore, cache: &MappingCache, batches: &[Vec<u64>], accelerator: u64) {
    for batch in batches {
        for &i in batch {
            let k = key(i, accelerator);
            cache.preload(k.clone(), Arc::new(cost(i)));
            cache.set_usage(k, cache.current_epoch());
        }
        store.sync().expect("sync");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn store_evict_persist_reload_reproduces_entries_and_bytes(
        seed in 0u64..u64::MAX,
        n_batches in 1usize..5,
        batch_size in 1usize..8,
        bound in 0usize..10,
        accelerator in 1u64..u64::MAX,
    ) {
        // Derive the usage history: batches of key indices with deliberate
        // overlap so later batches re-touch earlier entries.
        let mut state = seed;
        let universe = 2 + (mix(&mut state) % 12);
        let batches: Vec<Vec<u64>> = (0..n_batches)
            .map(|_| (0..batch_size).map(|_| mix(&mut state) % universe).collect())
            .collect();

        // First life: populate, sync per batch, evict at the bound.
        let path = fresh_path("roundtrip");
        let cache_a = MappingCache::new();
        let mut store_a = CacheStore::open(&path, cache_a.clone(), bound).expect("open");
        replay(&mut store_a, &cache_a, &batches, accelerator);
        store_a.compact_now().expect("compact");
        let stats_a = store_a.stats();
        let entries_a = cache_a.entries();
        let bytes_a = std::fs::read(&path).expect("read store file");
        drop(store_a);

        if bound > 0 {
            prop_assert!(entries_a.len() <= bound,
                "bound {bound} violated: {} entries", entries_a.len());
        }
        prop_assert_eq!(stats_a.entries, entries_a.len());

        // Second life: a fresh cache reloaded from the file must hold the
        // same entries with the same costs...
        let cache_b = MappingCache::new();
        let mut store_b = CacheStore::open(&path, cache_b.clone(), bound).expect("reopen");
        prop_assert_eq!(store_b.stats().loaded as usize, entries_a.len());
        let entries_b = cache_b.entries();
        prop_assert_eq!(entries_a.len(), entries_b.len());
        for ((ka, ca), (kb, cb)) in entries_a.iter().zip(&entries_b) {
            prop_assert_eq!(ka, kb, "reloaded key order diverged");
            prop_assert_eq!(ca.as_ref(), cb.as_ref(), "reloaded cost diverged for {:?}", ka);
        }
        // ...and re-compacting must byte-reproduce the file: the epochs (LRU
        // order) survived the round-trip exactly.
        store_b.compact_now().expect("recompact");
        let bytes_b = std::fs::read(&path).expect("read recompacted file");
        prop_assert_eq!(&bytes_a, &bytes_b, "compacted file is not a pure function of state");

        // Third life, asymmetric sync schedule: replaying the same history
        // in one store with per-batch syncs (above) and in another with the
        // same batches against a *fresh* file must converge to the same
        // compacted bytes — persistence timing is not observable.
        let path_c = fresh_path("replay");
        let cache_c = MappingCache::new();
        let mut store_c = CacheStore::open(&path_c, cache_c.clone(), bound).expect("open c");
        replay(&mut store_c, &cache_c, &batches, accelerator);
        store_c.compact_now().expect("compact c");
        let bytes_c = std::fs::read(&path_c).expect("read replayed file");
        prop_assert_eq!(&bytes_a, &bytes_c, "replayed history produced different bytes");

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&path_c);
    }
}

/// Deterministic LRU pin-down: with a bound of 2, the entry whose last use
/// is oldest goes first, and ties on the epoch break by key order.
#[test]
fn eviction_is_least_recently_used_with_key_tiebreak() {
    let path = fresh_path("lru");
    let cache = MappingCache::new();
    let mut store = CacheStore::open(&path, cache.clone(), 2).expect("open");
    let acc = 42u64;

    // Batch 0: keys 0 and 1. Batch 1: re-touch 0, add 2 → bound exceeded.
    replay(&mut store, &cache, &[vec![0, 1], vec![0, 2]], acc);
    let entries: Vec<ProblemKey> = cache.entries().into_iter().map(|(k, _)| k).collect();
    assert_eq!(entries.len(), 2);
    assert!(
        !entries.contains(&key(1, acc)),
        "key 1 (least recently used) should have been evicted"
    );
    assert!(
        entries.contains(&key(0, acc)),
        "re-touched key 0 must survive"
    );
    assert!(entries.contains(&key(2, acc)), "fresh key 2 must survive");
    assert_eq!(store.stats().evicted, 1);

    let _ = std::fs::remove_file(&path);

    // Same-epoch tie: three keys arrive in one batch against a bound of 2;
    // the smallest key is the deterministic victim.
    let path = fresh_path("lru-tie");
    let cache = MappingCache::new();
    let mut store = CacheStore::open(&path, cache.clone(), 2).expect("open");
    replay(&mut store, &cache, &[vec![3, 4, 5]], acc);
    let entries: Vec<ProblemKey> = cache.entries().into_iter().map(|(k, _)| k).collect();
    assert_eq!(entries.len(), 2);
    let mut tied = [key(3, acc), key(4, acc), key(5, acc)];
    tied.sort();
    assert!(
        !entries.contains(&tied[0]),
        "the smallest same-epoch key is the deterministic victim"
    );
    assert!(entries.contains(&tied[1]));
    assert!(entries.contains(&tied[2]));
    assert_eq!(store.stats().evicted, 1);
    let _ = std::fs::remove_file(&path);
}
