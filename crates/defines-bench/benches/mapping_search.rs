//! Criterion bench: the LOMA temporal-mapping search, exhaustive reference
//! versus the symmetry-pruned branch-and-bound search, over a representative
//! set of single-layer (and layer-tile) mapping problems.
//!
//! Besides the criterion samples, the bench writes `BENCH_mapping.json` at
//! the repository root with the aggregate search counters (orderings
//! evaluated / pruned), cold and warm wall-clock numbers, and a parity flag
//! asserting the pruned search returned a bit-identical [`LayerCost`] for
//! every problem. The CI perf-smoke job fails if `results_identical` is ever
//! false or if pruning stops firing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use defines_bench::{write_json, BenchHeader};
use defines_mapping::{LomaMapper, MapperConfig, MappingCache, SearchStats, SingleLayerProblem};
use defines_workload::{models, Layer, LayerDims, OpType};
use serde::Serialize;
use std::time::Instant;

/// The problem set: every FSRCNN layer at three depth-first tile sizes (the
/// shapes the cold sweep path resolves), plus full-layer problems covering
/// the depthwise / pooling operand paths and a second architecture.
fn problems() -> Vec<(defines_arch::Accelerator, Layer)> {
    let mut set = Vec::new();
    let fsrcnn = models::fsrcnn();
    for layer in fsrcnn.layers() {
        for (tx, ty) in [(60, 72), (16, 18), (960, 540)] {
            let mut dims = layer.dims;
            dims.ox = tx.min(layer.dims.ox);
            dims.oy = ty.min(layer.dims.oy);
            dims.pad_x = 0;
            dims.pad_y = 0;
            let tile = Layer::new(&layer.name, layer.op, dims);
            set.push((defines_arch::zoo::meta_proto_like_df(), tile));
        }
    }
    set.push((
        defines_arch::zoo::edge_tpu_like_df(),
        Layer::new(
            "dw",
            OpType::DepthwiseConv,
            LayerDims::conv(48, 48, 28, 28, 3, 3),
        ),
    ));
    set.push((
        defines_arch::zoo::ascend_like_df(),
        Layer::new(
            "pool",
            OpType::Pooling,
            LayerDims::conv(64, 64, 28, 28, 2, 2).with_stride(2, 2),
        ),
    ));
    set.push((
        defines_arch::zoo::tpu_like(),
        Layer::new("c", OpType::Conv, LayerDims::conv(64, 32, 56, 56, 3, 3)),
    ));
    // A square 1x1 conv: OX/OY are interchangeable, exercising the symmetry
    // half of the pruning (the counters land in BENCH_mapping.json).
    set.push((
        defines_arch::zoo::meta_proto_like_df(),
        Layer::new("sq", OpType::Conv, LayerDims::conv(64, 32, 32, 32, 1, 1)),
    ));
    set
}

fn bench_mapping_search(c: &mut Criterion) {
    let set = problems();
    let full = LomaMapper::default();
    let fast = LomaMapper::new(MapperConfig::fast());

    let mut group = c.benchmark_group("mapping_search");
    group.sample_size(10);
    group.bench_function("exhaustive_720", |b| {
        b.iter(|| {
            for (acc, layer) in &set {
                let p = SingleLayerProblem::new(acc, layer);
                black_box(full.optimize_exhaustive(&p));
            }
        });
    });
    group.bench_function("pruned_720", |b| {
        b.iter(|| {
            for (acc, layer) in &set {
                let p = SingleLayerProblem::new(acc, layer);
                black_box(full.optimize(&p));
            }
        });
    });
    group.bench_function("pruned_48", |b| {
        b.iter(|| {
            for (acc, layer) in &set {
                let p = SingleLayerProblem::new(acc, layer);
                black_box(fast.optimize(&p));
            }
        });
    });
    let parallel = LomaMapper::new(MapperConfig::default().with_search_threads(4));
    group.bench_function("pruned_720_t4", |b| {
        b.iter(|| {
            for (acc, layer) in &set {
                let p = SingleLayerProblem::new(acc, layer);
                black_box(parallel.optimize(&p));
            }
        });
    });
    group.finish();

    write_report(&set);
}

/// One-shot wall-clock comparison and counter dump written to
/// `BENCH_mapping.json`.
#[derive(Serialize)]
struct MappingBenchReport {
    header: BenchHeader,
    problems: usize,
    max_orderings: usize,
    orderings_total: u64,
    orderings_selected: u64,
    orderings_evaluated: u64,
    orderings_pruned: u64,
    pruned_bound: u64,
    pruned_symmetry: u64,
    exhaustive_cold_ms: f64,
    search_cold_ms: f64,
    search_warm_ms: f64,
    speedup_vs_exhaustive: f64,
    results_identical: bool,
    threads: Vec<ThreadRow>,
}

/// One cold-search measurement at a fixed `--search-threads` value. The
/// parity flag compares against the exhaustive reference, so it covers both
/// the pruning and the parallel reduction.
#[derive(Serialize)]
struct ThreadRow {
    threads: usize,
    search_cold_ms: f64,
    speedup_vs_exhaustive: f64,
    results_identical: bool,
}

fn write_report(set: &[(defines_arch::Accelerator, Layer)]) {
    let mapper = LomaMapper::default();

    let start = Instant::now();
    let reference: Vec<_> = set
        .iter()
        .map(|(acc, layer)| mapper.optimize_exhaustive(&SingleLayerProblem::new(acc, layer)))
        .collect();
    let exhaustive_cold = start.elapsed();

    let mut stats = SearchStats::default();
    let start = Instant::now();
    let pruned: Vec<_> = set
        .iter()
        .map(|(acc, layer)| {
            let (cost, s) = mapper.optimize_with_stats(&SingleLayerProblem::new(acc, layer));
            stats.accumulate(&s);
            cost
        })
        .collect();
    let search_cold = start.elapsed();

    // Per-thread-count cold rows: the parallel branch-and-bound search must
    // return bit-identical results at every width, and each row records its
    // own speedup against the exhaustive baseline.
    let mut thread_rows = vec![ThreadRow {
        threads: 1,
        search_cold_ms: search_cold.as_secs_f64() * 1e3,
        speedup_vs_exhaustive: exhaustive_cold.as_secs_f64() / search_cold.as_secs_f64(),
        results_identical: reference == pruned,
    }];
    for threads in [2usize, 4] {
        let parallel = LomaMapper::new(MapperConfig::default().with_search_threads(threads));
        // One untimed pass first so thread spawning and allocator warm-up do
        // not land in the measured run.
        for (acc, layer) in set {
            black_box(parallel.optimize(&SingleLayerProblem::new(acc, layer)));
        }
        let start = Instant::now();
        let costs: Vec<_> = set
            .iter()
            .map(|(acc, layer)| parallel.optimize(&SingleLayerProblem::new(acc, layer)))
            .collect();
        let elapsed = start.elapsed();
        thread_rows.push(ThreadRow {
            threads,
            search_cold_ms: elapsed.as_secs_f64() * 1e3,
            speedup_vs_exhaustive: exhaustive_cold.as_secs_f64() / elapsed.as_secs_f64(),
            results_identical: reference == costs,
        });
    }

    // Warm path: the mapping cache answers repeated problems outright.
    let cache = MappingCache::new();
    for (acc, layer) in set {
        let _ = cache.optimize_shared(&mapper, &SingleLayerProblem::new(acc, layer));
    }
    let start = Instant::now();
    for (acc, layer) in set {
        black_box(cache.optimize_shared(&mapper, &SingleLayerProblem::new(acc, layer)));
    }
    let search_warm = start.elapsed();

    let results_identical = reference == pruned;
    let report = MappingBenchReport {
        // The problem set mixes FSRCNN layer tiles with micro-problems across
        // four zoo architectures; the search itself is single-threaded.
        header: BenchHeader::new(
            "mapping_search",
            "fsrcnn-tiles+micro",
            "zoo (meta-proto, edge-tpu, ascend, tpu)",
            1,
        ),
        problems: set.len(),
        max_orderings: mapper.config().max_orderings,
        orderings_total: stats.orderings_total,
        orderings_selected: stats.orderings_selected,
        orderings_evaluated: stats.evaluated,
        orderings_pruned: stats.pruned(),
        pruned_bound: stats.pruned_bound,
        pruned_symmetry: stats.pruned_symmetry,
        exhaustive_cold_ms: exhaustive_cold.as_secs_f64() * 1e3,
        search_cold_ms: search_cold.as_secs_f64() * 1e3,
        search_warm_ms: search_warm.as_secs_f64() * 1e3,
        speedup_vs_exhaustive: exhaustive_cold.as_secs_f64() / search_cold.as_secs_f64(),
        results_identical,
        threads: thread_rows,
    };
    assert!(
        report.results_identical,
        "pruned search diverged from the exhaustive reference"
    );
    assert!(
        report.threads.iter().all(|row| row.results_identical),
        "parallel search diverged from the exhaustive reference"
    );
    assert!(
        report.orderings_pruned > 0,
        "pruning never fired over the benchmark problem set"
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mapping.json");
    write_json(path, &report).expect("write BENCH_mapping.json");
    eprintln!(
        "  BENCH_mapping.json: exhaustive {:.1} ms | pruned {:.1} ms ({:.2}x) | warm {:.3} ms | \
         {} evaluated / {} pruned of {} orderings",
        report.exhaustive_cold_ms,
        report.search_cold_ms,
        report.speedup_vs_exhaustive,
        report.search_warm_ms,
        report.orderings_evaluated,
        report.orderings_pruned,
        report.orderings_selected,
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_mapping_search
}
criterion_main!(benches);
