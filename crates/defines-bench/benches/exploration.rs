//! Criterion bench: a small design-space exploration (several tile sizes and
//! all overlap modes), measuring the cost of a sweep with warm single-layer
//! memoization — the common usage pattern of DeFiNES.

use criterion::{criterion_group, criterion_main, Criterion};
use defines_bench::ExperimentContext;
use defines_core::{Explorer, OverlapMode};

fn bench_exploration(c: &mut Criterion) {
    let ctx = ExperimentContext::case_study_1();
    let net = ctx.fsrcnn();
    let tiles = [(16, 18), (60, 72), (240, 270)];
    let mut group = c.benchmark_group("exploration_sweep");
    group.sample_size(10);
    group.bench_function("fsrcnn_3_tiles_3_modes", |b| {
        b.iter(|| {
            let model = ctx.model();
            let explorer = Explorer::new(&model);
            explorer.sweep(&net, &tiles, &OverlapMode::ALL).unwrap()
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_exploration
}
criterion_main!(benches);
