//! Criterion bench: runtime of the full depth-first cost model for one
//! FSRCNN schedule per overlap mode — the Rust counterpart of the paper's
//! Section-III footnote ("the (60, 72) case took 23 / 34 / 84 seconds in
//! Python").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use defines_bench::ExperimentContext;
use defines_core::{DfStrategy, OverlapMode, TileSize};

fn bench_model_runtime(c: &mut Criterion) {
    let ctx = ExperimentContext::case_study_1();
    let net = ctx.fsrcnn();
    let mut group = c.benchmark_group("df_model_fsrcnn_60x72");
    group.sample_size(10);
    for mode in OverlapMode::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |b, &mode| {
            b.iter(|| {
                // A fresh model per iteration so the single-layer memoization
                // cache does not carry over between measurements.
                let model = ctx.model();
                let strategy = DfStrategy::depth_first(TileSize::new(60, 72), mode);
                model.evaluate_network(&net, &strategy).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_model_runtime
}
criterion_main!(benches);
