//! Criterion bench: single-layer mapping search + cost model (the ZigZag/LOMA
//! substrate), across layer shapes and accelerators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use defines_arch::zoo;
use defines_mapping::{LomaMapper, MapperConfig, SingleLayerProblem};
use defines_workload::{Layer, LayerDims, OpType};

fn bench_single_layer(c: &mut Criterion) {
    let layers = [
        (
            "fsrcnn_map_3x3",
            Layer::new("m", OpType::Conv, LayerDims::conv(12, 12, 60, 72, 3, 3)),
        ),
        (
            "resnet_stage1_3x3",
            Layer::new("r", OpType::Conv, LayerDims::conv(64, 64, 56, 56, 3, 3)),
        ),
        (
            "mobilenet_pw_1x1",
            Layer::new("p", OpType::Conv, LayerDims::conv(256, 128, 28, 28, 1, 1)),
        ),
        (
            "mobilenet_dw_3x3",
            Layer::new(
                "d",
                OpType::DepthwiseConv,
                LayerDims::conv(128, 128, 56, 56, 3, 3),
            ),
        ),
    ];
    let accelerators = [
        zoo::meta_proto_like_df(),
        zoo::tpu_like(),
        zoo::edge_tpu_like_df(),
    ];

    let mut group = c.benchmark_group("single_layer_mapper");
    for acc in &accelerators {
        for (name, layer) in &layers {
            let problem = SingleLayerProblem::new(acc, layer);
            group.bench_with_input(
                BenchmarkId::new(acc.name().replace(' ', "_"), name),
                &problem,
                |b, p| {
                    let mapper = LomaMapper::new(MapperConfig::fast());
                    b.iter(|| mapper.optimize(p));
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_single_layer
}
criterion_main!(benches);
