//! Criterion bench: full-grid FSRCNN design-space sweep, sequential (the
//! seed's cold-cache scan) versus the exploration engine (parallel work
//! queue + shared mapping memoization).
//!
//! Besides the criterion samples, the bench writes `BENCH_engine.json` at
//! the repository root with cold/warm wall-clock numbers and the measured
//! speedups, seeding the benchmark trajectory of the project.

use criterion::{criterion_group, criterion_main, Criterion};
use defines_bench::{fig12_tile_grid, write_json, BenchHeader, ExperimentContext};
use defines_core::{DfCostModel, Explorer, OverlapMode};
use defines_engine::EngineConfig;
use defines_mapping::MappingCache;
use serde::Serialize;
use std::time::Instant;

fn grid() -> Vec<(u64, u64)> {
    fig12_tile_grid()
}

fn bench_engine_sweep(c: &mut Criterion) {
    let ctx = ExperimentContext::case_study_1();
    let net = ctx.fsrcnn();
    let tiles = grid();

    let mut group = c.benchmark_group("engine_sweep");
    group.sample_size(10);

    // The seed's usage pattern: a fresh model (cold mapping cache) swept
    // sequentially — every design point re-runs its mapping sub-problems.
    group.bench_function("sequential_cold_cache", |b| {
        b.iter(|| {
            let model = ctx.model();
            let explorer = Explorer::new(&model);
            explorer
                .sweep_sequential(&net, &tiles, &OverlapMode::ALL)
                .unwrap()
        });
    });

    // The engine: parallel work queue plus a mapping cache shared across
    // sweeps, so repeated exploration (the common DSE loop) pays the mapper
    // once per distinct sub-problem.
    let shared = MappingCache::new();
    let engine_model = DfCostModel::new(&ctx.accelerator)
        .with_fast_mapper()
        .with_shared_cache(shared.clone());
    group.bench_function("engine_parallel_memoized", |b| {
        b.iter(|| {
            let explorer =
                Explorer::new(&engine_model).with_engine_config(EngineConfig::parallel());
            explorer.sweep(&net, &tiles, &OverlapMode::ALL).unwrap()
        });
    });
    group.finish();

    write_report(&ctx, &net, &tiles);
}

/// The cold single-thread sequential sweep time recorded by PR 1's run of
/// this bench (the pre-overhaul LOMA search and cost kernels). The cold-path
/// overhaul is tracked as `sequential_cold_ms` against this number.
const PR1_SEQUENTIAL_COLD_MS: f64 = 252.273;

/// One-shot wall-clock comparison written to `BENCH_engine.json`.
///
/// The workload / accelerator / thread identification lives in the shared
/// [`BenchHeader`] so every `BENCH_*.json` carries the same machine-readable
/// provenance block.
#[derive(Serialize)]
struct EngineBenchReport {
    header: BenchHeader,
    design_points: usize,
    sequential_cold_ms: f64,
    engine_cold_ms: f64,
    engine_warm_ms: f64,
    speedup_cold: f64,
    speedup_warm: f64,
    pr1_sequential_cold_ms: f64,
    cold_speedup_vs_pr1: f64,
    cache_entries: usize,
    cache_hit_rate: f64,
    results_identical: bool,
}

fn write_report(ctx: &ExperimentContext, net: &defines_workload::Network, tiles: &[(u64, u64)]) {
    let start = Instant::now();
    let cold_model = ctx.model();
    let sequential = Explorer::new(&cold_model)
        .sweep_sequential(net, tiles, &OverlapMode::ALL)
        .unwrap();
    let sequential_cold = start.elapsed();

    let shared = MappingCache::new();
    let model = DfCostModel::new(&ctx.accelerator)
        .with_fast_mapper()
        .with_shared_cache(shared.clone());
    let explorer = Explorer::new(&model).with_engine_config(EngineConfig::parallel());

    let start = Instant::now();
    let engine_first = explorer.sweep(net, tiles, &OverlapMode::ALL).unwrap();
    let engine_cold = start.elapsed();

    let start = Instant::now();
    let engine_second = explorer.sweep(net, tiles, &OverlapMode::ALL).unwrap();
    let engine_warm = start.elapsed();

    let stats = shared.stats();
    let report = EngineBenchReport {
        header: BenchHeader::new(
            "engine_sweep",
            net.name(),
            ctx.accelerator.name(),
            EngineConfig::parallel().threads,
        ),
        design_points: tiles.len() * OverlapMode::ALL.len(),
        sequential_cold_ms: sequential_cold.as_secs_f64() * 1e3,
        engine_cold_ms: engine_cold.as_secs_f64() * 1e3,
        engine_warm_ms: engine_warm.as_secs_f64() * 1e3,
        speedup_cold: sequential_cold.as_secs_f64() / engine_cold.as_secs_f64(),
        speedup_warm: sequential_cold.as_secs_f64() / engine_warm.as_secs_f64(),
        pr1_sequential_cold_ms: PR1_SEQUENTIAL_COLD_MS,
        cold_speedup_vs_pr1: PR1_SEQUENTIAL_COLD_MS / (sequential_cold.as_secs_f64() * 1e3),
        cache_entries: stats.entries,
        cache_hit_rate: stats.hit_rate(),
        results_identical: engine_first == sequential && engine_second == sequential,
    };
    assert!(
        report.results_identical,
        "engine sweep diverged from the sequential reference"
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    write_json(path, &report).expect("write BENCH_engine.json");
    eprintln!(
        "  BENCH_engine.json: sequential {:.1} ms ({:.2}x vs PR-1's {:.0} ms) | engine cold \
         {:.1} ms ({:.2}x) | engine warm {:.1} ms ({:.2}x) | {} threads",
        report.sequential_cold_ms,
        report.cold_speedup_vs_pr1,
        report.pr1_sequential_cold_ms,
        report.engine_cold_ms,
        report.speedup_cold,
        report.engine_warm_ms,
        report.speedup_warm,
        report.header.threads
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_engine_sweep
}
criterion_main!(benches);
