//! Canonical experiment settings shared by the figure/table binaries.

use defines_arch::{zoo, Accelerator};
use defines_core::DfCostModel;
use defines_mapping::MapperConfig;
use defines_workload::{models, Network};

/// The tile-size grid of Fig. 12: the paper sweeps 6 × 6 (Tx, Ty) points for
/// FSRCNN's 960×540 output.
pub fn fig12_tile_grid() -> Vec<(u64, u64)> {
    let xs = [1u64, 4, 16, 60, 240, 960];
    let ys = [1u64, 4, 18, 72, 270, 540];
    let mut grid = Vec::with_capacity(36);
    for &ty in &ys {
        for &tx in &xs {
            grid.push((tx, ty));
        }
    }
    grid
}

/// The diagonal design points of Fig. 13–15.
pub fn diagonal_tile_sizes() -> Vec<(u64, u64)> {
    vec![(1, 1), (4, 4), (16, 18), (60, 72), (240, 270), (960, 540)]
}

/// A reduced tile grid used when sweeping many workload/architecture
/// combinations (case studies 2 and 3): a handful of representative points
/// per axis, derived from the workload's *largest* feature map so the grid is
/// meaningful for every stack (classification networks end in 1×1 layers, but
/// their early stacks are tiled over large feature maps).
pub fn case_study_tile_grid(net: &Network) -> Vec<(u64, u64)> {
    let (w, h) = net
        .layers()
        .iter()
        .map(|l| (l.dims.ox, l.dims.oy))
        .max_by_key(|&(x, y)| x * y)
        .expect("non-empty network");
    let fractions = [(16, 16), (8, 8), (8, 4), (4, 8), (4, 4), (2, 2), (1, 1)];
    let mut grid: Vec<(u64, u64)> = fractions
        .iter()
        .map(|&(dx, dy)| ((w / dx).max(1), (h / dy).max(1)))
        .collect();
    grid.push((4.min(w), (h / 8).max(1)));
    grid.push(((w / 8).max(1), 4.min(h)));
    grid.sort_unstable();
    grid.dedup();
    grid
}

/// Everything an experiment binary needs: the accelerator, the workloads and a
/// ready-to-use cost model factory.
pub struct ExperimentContext {
    /// The accelerator under study.
    pub accelerator: Accelerator,
    /// Whether to use the fast (reduced) mapper search.
    pub fast_mapper: bool,
}

impl ExperimentContext {
    /// Case-study-1 context: the Meta-prototype-like DF architecture.
    pub fn case_study_1() -> Self {
        Self {
            accelerator: zoo::meta_proto_like_df(),
            fast_mapper: true,
        }
    }

    /// Context for an arbitrary accelerator.
    pub fn for_accelerator(accelerator: Accelerator) -> Self {
        Self {
            accelerator,
            fast_mapper: true,
        }
    }

    /// Builds a cost model bound to this context's accelerator.
    pub fn model(&self) -> DfCostModel<'_> {
        let model = DfCostModel::new(&self.accelerator);
        if self.fast_mapper {
            model.with_mapper(MapperConfig::fast())
        } else {
            model
        }
    }

    /// The FSRCNN workload used by case study 1.
    pub fn fsrcnn(&self) -> Network {
        models::fsrcnn()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_grid_is_6_by_6() {
        let g = fig12_tile_grid();
        assert_eq!(g.len(), 36);
        assert!(g.contains(&(960, 540)));
        assert!(g.contains(&(1, 1)));
    }

    #[test]
    fn diagonal_matches_fig13() {
        assert_eq!(diagonal_tile_sizes().len(), 6);
    }

    #[test]
    fn case_study_grid_follows_largest_feature_map() {
        let net = models::mobilenet_v1();
        let g = case_study_tile_grid(&net);
        // MobileNetV1's largest feature map is 112x112; the grid must offer
        // meaningful tiles even though the network ends in 1x1 layers.
        assert!(g.iter().all(|&(tx, ty)| tx <= 112 && ty <= 112));
        assert!(g.iter().any(|&(tx, ty)| tx >= 28 && ty >= 28));
        assert!(!g.is_empty());
    }

    #[test]
    fn context_builds_model() {
        let ctx = ExperimentContext::case_study_1();
        let model = ctx.model();
        assert_eq!(model.accelerator().name(), "Meta-proto-like DF");
    }
}
