//! Shared helpers for the DeFiNES experiment harness.
//!
//! Each figure and table of the paper's evaluation has a dedicated binary in
//! `src/bin/` (see `DESIGN.md` for the full index); this library provides the
//! plumbing they share: canonical experiment settings, simple table / heatmap
//! printing, and JSON result dumps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod report;
pub mod settings;

pub use report::{heatmap, ratio, table, write_json, BenchHeader, BENCH_SCHEMA_VERSION};
pub use settings::{case_study_tile_grid, diagonal_tile_sizes, fig12_tile_grid, ExperimentContext};
