//! Plain-text table / heatmap rendering and JSON dumps for the experiment
//! binaries.

use serde::Serialize;
use std::fmt::Display;
use std::fs;
use std::path::Path;

/// Schema version of the shared `header` object in every `BENCH_*.json`
/// this workspace writes. Bump when the header's shape changes.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// The shared header every `BENCH_*.json` report starts with, so the bench
/// trajectory is machine-comparable across PRs: consumers key on
/// (`schema_version`, `bench`) and can refuse runs whose workload,
/// accelerator or thread count differ from the one they are diffing against.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchHeader {
    /// Header schema version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Name of the bench that wrote the report (e.g. `"engine_sweep"`).
    pub bench: String,
    /// Workload(s) the bench ran.
    pub workload: String,
    /// Accelerator(s) the bench ran on.
    pub accelerator: String,
    /// Worker threads the measured runs used.
    pub threads: usize,
}

impl BenchHeader {
    /// Builds a header stamped with the current schema version.
    pub fn new(
        bench: impl Into<String>,
        workload: impl Into<String>,
        accelerator: impl Into<String>,
        threads: usize,
    ) -> Self {
        Self {
            schema_version: BENCH_SCHEMA_VERSION,
            bench: bench.into(),
            workload: workload.into(),
            accelerator: accelerator.into(),
            threads,
        }
    }
}

/// Renders a simple aligned table.
///
/// `header` and every row must have the same number of columns.
pub fn table<H: Display, C: Display>(header: &[H], rows: &[Vec<C>]) -> String {
    let header_strings: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    let row_strings: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|c| c.to_string()).collect())
        .collect();
    let cols = header_strings.len();
    let mut widths: Vec<usize> = header_strings.iter().map(|s| s.len()).collect();
    for row in &row_strings {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(&header_strings, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
    out.push('\n');
    for row in &row_strings {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders a heatmap-style matrix (Fig. 12): row labels down the side, column
/// labels across the top, one numeric cell per combination.
pub fn heatmap<L: Display>(
    title: &str,
    col_labels: &[L],
    row_labels: &[L],
    values: &[Vec<f64>],
    unit: &str,
) -> String {
    let mut out = format!("{title} [{unit}]\n");
    let mut header: Vec<String> = vec!["Ty \\ Tx".to_string()];
    header.extend(col_labels.iter().map(|c| c.to_string()));
    let rows: Vec<Vec<String>> = row_labels
        .iter()
        .zip(values)
        .map(|(label, row)| {
            let mut cells = vec![label.to_string()];
            cells.extend(row.iter().map(|v| format!("{v:.1}")));
            cells
        })
        .collect();
    out.push_str(&table(&header, &rows));
    out
}

/// Formats a ratio ("10.2x") between a baseline and an improved value.
pub fn ratio(baseline: f64, improved: f64) -> String {
    if improved <= 0.0 {
        return "inf".to_string();
    }
    format!("{:.1}x", baseline / improved)
}

/// Writes a serializable result to a JSON file, creating parent directories.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn write_json<T: Serialize>(
    path: impl AsRef<Path>,
    value: &T,
) -> Result<(), Box<dyn std::error::Error>> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, serde_json::to_string_pretty(value)?)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[vec!["a".to_string(), "1".to_string()]],
        );
        assert!(t.contains("name"));
        assert!(t.lines().count() >= 3);
    }

    #[test]
    fn heatmap_contains_all_cells() {
        let h = heatmap(
            "test",
            &[1, 2],
            &[10, 20],
            &[vec![1.0, 2.0], vec![3.0, 4.0]],
            "mJ",
        );
        assert!(h.contains("test"));
        assert!(h.contains("3.0"));
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(10.0, 1.0), "10.0x");
        assert_eq!(ratio(1.0, 0.0), "inf");
    }

    #[test]
    fn write_json_roundtrip() {
        let dir = std::env::temp_dir().join("defines_bench_test");
        let path = dir.join("out.json");
        write_json(&path, &vec![1, 2, 3]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains('2'));
        let _ = std::fs::remove_dir_all(dir);
    }
}
