//! Table I(b): the five case-study DNN workloads and their aggregate
//! statistics (average / maximum feature map size, total weights).
//!
//! Run with: `cargo run --release -p defines-bench --bin table1_workloads`

use defines_bench::table;
use defines_workload::analysis::{format_bytes, WorkloadSummary};
use defines_workload::models;

fn main() {
    let header = [
        "Idx",
        "Workload",
        "layers",
        "avg feature map",
        "max feature map",
        "total weights",
        "GMACs",
        "dominance",
    ];
    let mut rows = Vec::new();
    for (i, net) in models::case_study_workloads().into_iter().enumerate() {
        let s = WorkloadSummary::of(&net);
        rows.push(vec![
            format!("{}", i + 1),
            net.name().to_string(),
            format!("{}", s.layer_count),
            format_bytes(s.avg_feature_map_bytes),
            format_bytes(s.max_feature_map_bytes),
            format_bytes(s.total_weight_bytes),
            format!("{:.2}", s.total_macs as f64 / 1e9),
            if s.is_activation_dominant() {
                "activation".to_string()
            } else {
                "weight".to_string()
            },
        ]);
    }
    println!("Table I(b): case-study DNN workloads\n");
    println!("{}", table(&header, &rows));
    println!(
        "Paper reference: FSRCNN 10.9/28.5 MB & 15.6 KB, DMCNN-VD 24.1/26.7 MB & 651.3 KB, \
         MCCNN 21.8/29.1 MB & 108.6 KB, MobileNetV1 760 KB/3.8 MB & 4 MB, ResNet18 895 KB/5.9 MB & 11 MB."
    );
}
