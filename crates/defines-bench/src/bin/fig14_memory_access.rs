//! Fig. 14: memory-access breakdown (in bytes) at every memory level for the
//! diagonal depth-first design points of case study 1, split by the data that
//! causes the accesses: (a) layer activations, (b) layer weights, (c) data
//! copy actions, and (d) the total.
//!
//! Results are also written to `results/fig14.json`.
//!
//! Run with: `cargo run --release -p defines-bench --bin fig14_memory_access`

use defines_bench::{diagonal_tile_sizes, table, write_json, ExperimentContext};
use defines_core::{DataClass, DfStrategy, OverlapMode, TileSize};
use defines_mapping::AccessBreakdown;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    mode: String,
    tx: u64,
    ty: u64,
    class: String,
    level: String,
    gigabytes: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = ExperimentContext::case_study_1();
    let acc = &ctx.accelerator;
    let net = ctx.fsrcnn();
    let model = ctx.model();

    // Aggregate the per-level traffic into the three groups the paper plots:
    // local buffers (LB, registers), the global buffer, and DRAM.
    let group_of = |level_name: &str| -> &'static str {
        if level_name == "DRAM" {
            "DRAM"
        } else if level_name.starts_with("GB") {
            "GB"
        } else {
            "LB"
        }
    };
    let groups = ["LB", "GB", "DRAM"];

    let mut json_rows = Vec::new();
    for class in [
        DataClass::Activation,
        DataClass::Weight,
        DataClass::DataCopy,
    ] {
        println!(
            "Fig. 14({}) memory access caused by {:?} [GB of traffic]\n",
            match class {
                DataClass::Activation => 'a',
                DataClass::Weight => 'b',
                DataClass::DataCopy => 'c',
            },
            class
        );
        let header = ["mode", "tile (Tx,Ty)", "LB", "GB", "DRAM"];
        let mut rows = Vec::new();
        for mode in OverlapMode::ALL {
            for (tx, ty) in diagonal_tile_sizes() {
                let strategy = DfStrategy::depth_first(TileSize::new(tx, ty), mode);
                let cost = model.evaluate_network(&net, &strategy)?;
                let breakdown: &AccessBreakdown = cost.access_of(class);
                let mut per_group = [0.0f64; 3];
                for (level_id, _op, access) in breakdown.iter() {
                    let name = acc.hierarchy().level(level_id).name();
                    let idx = groups.iter().position(|&g| g == group_of(name)).unwrap();
                    per_group[idx] += access.total_bytes();
                }
                let mut row = vec![mode.to_string(), format!("({tx}, {ty})")];
                for (g, &bytes) in groups.iter().zip(&per_group) {
                    row.push(format!("{:.3}", bytes / 1e9));
                    json_rows.push(Row {
                        mode: mode.to_string(),
                        tx,
                        ty,
                        class: format!("{class:?}"),
                        level: g.to_string(),
                        gigabytes: bytes / 1e9,
                    });
                }
                rows.push(row);
            }
        }
        println!("{}", table(&header, &rows));
    }

    // (d) total memory access.
    println!("Fig. 14(d) total memory access [GB of traffic]\n");
    let header = ["mode", "tile (Tx,Ty)", "LB", "GB", "DRAM"];
    let mut rows = Vec::new();
    for mode in OverlapMode::ALL {
        for (tx, ty) in diagonal_tile_sizes() {
            let strategy = DfStrategy::depth_first(TileSize::new(tx, ty), mode);
            let cost = model.evaluate_network(&net, &strategy)?;
            let mut per_group = [0.0f64; 3];
            for class in DataClass::ALL {
                for (level_id, _op, access) in cost.access_of(class).iter() {
                    let name = acc.hierarchy().level(level_id).name();
                    let idx = groups.iter().position(|&g| g == group_of(name)).unwrap();
                    per_group[idx] += access.total_bytes();
                }
            }
            let mut row = vec![mode.to_string(), format!("({tx}, {ty})")];
            for &bytes in &per_group {
                row.push(format!("{:.3}", bytes / 1e9));
            }
            rows.push(row);
        }
    }
    println!("{}", table(&header, &rows));
    println!(
        "Expected shape (paper): DRAM access is nearly mode-independent and only explodes for the\n\
         largest tiles; LB access at small tiles is ordered recompute > H-cached > fully-cached;\n\
         weight traffic spikes at tile (1,1); data copies matter for small cached tiles and vanish\n\
         for the largest tiles."
    );
    write_json("results/fig14.json", &json_rows)?;
    println!("Wrote results/fig14.json");
    Ok(())
}
