//! Table I(a): the ten case-study accelerator architectures (five baselines
//! and their DF-friendly variants), all normalized to 1024 MACs and at most
//! 2 MB of global buffer.
//!
//! Run with: `cargo run --release -p defines-bench --bin table1_architectures`

use defines_arch::accelerator::OperandCapacity;
use defines_arch::{zoo, Operand};
use defines_bench::table;

fn main() {
    let header = [
        "Idx",
        "HW architecture",
        "Spatial unrolling (MACs)",
        "on-chip W",
        "on-chip I",
        "on-chip O",
        "levels",
    ];
    let mut rows = Vec::new();
    for (i, acc) in zoo::all_case_study_architectures().into_iter().enumerate() {
        let cap = OperandCapacity::of(&acc);
        let kb = |b: u64| format!("{:.0} KB", b as f64 / 1024.0);
        rows.push(vec![
            format!("{}", i + 1),
            acc.name().to_string(),
            format!(
                "{} ({})",
                acc.pe_array().unrolling(),
                acc.pe_array().total_macs()
            ),
            kb(cap.weight_bytes),
            kb(cap.input_bytes),
            kb(cap.output_bytes),
            format!("{}", acc.hierarchy().len()),
        ]);
    }
    println!("Table I(a): case-study accelerator architectures\n");
    println!("{}", table(&header, &rows));

    println!("Memory hierarchies (innermost -> DRAM):");
    for acc in zoo::all_case_study_architectures() {
        let levels: Vec<String> = acc
            .hierarchy()
            .levels()
            .iter()
            .map(|l| {
                let ops: String = Operand::ALL
                    .iter()
                    .filter(|&&o| l.serves(o))
                    .map(|o| o.to_string())
                    .collect();
                match l.capacity_bytes() {
                    Some(c) => format!("{}[{} {:.0}K]", l.name(), ops, c as f64 / 1024.0),
                    None => format!("{}[{}]", l.name(), ops),
                }
            })
            .collect();
        println!("  {:<22} {}", acc.name(), levels.join(" -> "));
    }
}
