//! Fig. 17 (case study 3): layer-by-layer versus the best depth-first single
//! strategy versus the best *combination over searched stack partitions*
//! (axis 3 explored by DP, [`FusePolicy::search`]) on all ten accelerator
//! architectures (five baselines and their DF-friendly variants), reported as
//! the geometric mean of energy and latency across the five case-study
//! workloads.
//!
//! Results are also written to `results/fig17.json`.
//!
//! Run with: `cargo run --release -p defines-bench --bin fig17_case_study3`

use defines_arch::zoo;
use defines_bench::{case_study_tile_grid, table, write_json, ExperimentContext};
use defines_core::{DfStrategy, Explorer, FusePolicy, OptimizeTarget, OverlapMode};
use defines_workload::models;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    architecture: String,
    schedule: String,
    geomean_energy_mj: f64,
    geomean_latency_mcycles: f64,
}

fn geomean(values: &[f64]) -> f64 {
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workloads = models::case_study_workloads();
    let header = [
        "architecture",
        "LBL energy (geomean mJ)",
        "best-DF energy (geomean mJ)",
        "searched-partition energy (geomean mJ)",
        "DF gain",
        "LBL latency (geomean Mcyc)",
        "best-DF latency (geomean Mcyc)",
    ];
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let search = FusePolicy::search();

    for acc in zoo::all_case_study_architectures() {
        let ctx = ExperimentContext::for_accelerator(acc);
        let model = ctx.model();
        let explorer = Explorer::new(&model);
        let mut lbl_e = Vec::new();
        let mut lbl_l = Vec::new();
        let mut df_e = Vec::new();
        let mut df_l = Vec::new();
        let mut search_e = Vec::new();
        let mut search_l = Vec::new();
        for net in &workloads {
            let tiles = case_study_tile_grid(net);
            let lbl = model.evaluate_network(net, &DfStrategy::layer_by_layer())?;
            let best = explorer.best_single_strategy(
                net,
                &tiles,
                &OverlapMode::ALL,
                OptimizeTarget::Energy,
            )?;
            let searched = explorer.best_schedule(
                net,
                &tiles,
                &OverlapMode::ALL,
                OptimizeTarget::Energy,
                &search,
            )?;
            lbl_e.push(lbl.energy_mj());
            lbl_l.push(lbl.latency_mcycles());
            df_e.push(best.cost.energy_mj());
            df_l.push(best.cost.latency_mcycles());
            search_e.push(searched.cost.energy_mj());
            search_l.push(searched.cost.latency_mcycles());
        }
        let (ge_lbl, gl_lbl) = (geomean(&lbl_e), geomean(&lbl_l));
        let (ge_df, gl_df) = (geomean(&df_e), geomean(&df_l));
        let (ge_search, gl_search) = (geomean(&search_e), geomean(&search_l));
        let best_df = ge_df.min(ge_search);
        rows.push(vec![
            ctx.accelerator.name().to_string(),
            format!("{ge_lbl:.2}"),
            format!("{ge_df:.2}"),
            format!("{ge_search:.2}"),
            format!("{:.1}x", ge_lbl / best_df),
            format!("{gl_lbl:.1}"),
            format!("{gl_df:.1}"),
        ]);
        json_rows.push(Row {
            architecture: ctx.accelerator.name().to_string(),
            schedule: "LBL".to_string(),
            geomean_energy_mj: ge_lbl,
            geomean_latency_mcycles: gl_lbl,
        });
        json_rows.push(Row {
            architecture: ctx.accelerator.name().to_string(),
            schedule: "best DF".to_string(),
            geomean_energy_mj: ge_df,
            geomean_latency_mcycles: gl_df,
        });
        json_rows.push(Row {
            architecture: ctx.accelerator.name().to_string(),
            schedule: "searched partition".to_string(),
            geomean_energy_mj: ge_search,
            geomean_latency_mcycles: gl_search,
        });
        println!("evaluated {}", ctx.accelerator.name());
    }

    println!(
        "\nFig. 17 (case study 3): LBL vs best DF vs searched stack partition, geometric mean \
         over the 5 workloads\n"
    );
    println!("{}", table(&header, &rows));
    println!(
        "Expected shape (paper): DF outperforms LBL on every architecture except the TPU-like\n\
         baseline (no on-chip weight buffer); the DF-friendly variants benefit the most (up to ~6x\n\
         for TPU-like DF and ~4.3x for Edge-TPU-like DF), and are never much worse than the\n\
         baselines under LBL."
    );
    write_json("results/fig17.json", &json_rows)?;
    println!("Wrote results/fig17.json");
    Ok(())
}
