//! Fig. 10: the activation data sizes (I, O and I+O) of every layer for the
//! main tile types of the (60, 72) fully-cached FSRCNN schedule, compared to
//! the LB and GB capacities, explaining the top-memory-level decisions of
//! Fig. 9.
//!
//! Run with: `cargo run --release -p defines-bench --bin fig10_activation_sizes`

use defines_bench::{table, ExperimentContext};
use defines_core::backcalc::StackGeometry;
use defines_core::stack::Stack;
use defines_core::strategy::{OverlapMode, TileSize};
use defines_core::tiling::TileGrid;
use std::collections::HashMap;

fn main() {
    let ctx = ExperimentContext::case_study_1();
    let acc = &ctx.accelerator;
    let net = ctx.fsrcnn();
    let stack = Stack::new(net.layer_ids().collect());
    let geo = StackGeometry::new(&net, &stack);
    let grid = TileGrid::new(960, 540, TileSize::new(60, 72));
    let mode = OverlapMode::FullyCached;

    let lb = acc
        .hierarchy()
        .level_named("LB_IO")
        .unwrap()
        .capacity_bytes()
        .unwrap();
    let gb = acc
        .hierarchy()
        .level_named("GB_IO")
        .unwrap()
        .capacity_bytes()
        .unwrap();

    let mut types: Vec<(defines_core::backcalc::TileAnalysis, u64)> = Vec::new();
    let mut index: HashMap<defines_core::backcalc::TileAnalysis, usize> = HashMap::new();
    for (c, r, _) in grid.iter() {
        let a = geo.analyze_tile(mode, &grid, c, r);
        match index.get(&a) {
            Some(&i) => types[i].1 += 1,
            None => {
                index.insert(a.clone(), types.len());
                types.push((a, 1));
            }
        }
    }
    // Most frequent types last, as in the paper (type 2 and 3 are the regime
    // tiles).
    types.sort_by_key(|t| t.1);

    println!(
        "Fig. 10: per-layer activation data sizes for FSRCNN, tile (60, 72), {mode}\n\
         LB capacity = {} KB, GB capacity = {} KB\n",
        lb / 1024,
        gb / 1024
    );
    let header = [
        "tile type",
        "count",
        "layer",
        "I (KB)",
        "O (KB)",
        "I+O (KB)",
        "fits",
    ];
    let mut rows = Vec::new();
    for (t, (analysis, count)) in types.iter().enumerate() {
        for rec in &analysis.layers {
            if rec.to_compute_w == 0 {
                continue;
            }
            let io = rec.input_bytes + rec.output_bytes;
            let fits = if io <= lb {
                "LB"
            } else if rec.input_bytes <= lb || rec.output_bytes <= lb {
                "LB+GB"
            } else if io <= gb {
                "GB"
            } else {
                "DRAM"
            };
            rows.push(vec![
                format!("{}", t + 1),
                format!("{count}"),
                format!("{}", rec.layer),
                format!("{:.1}", rec.input_bytes as f64 / 1024.0),
                format!("{:.1}", rec.output_bytes as f64 / 1024.0),
                format!("{:.1}", io as f64 / 1024.0),
                fits.to_string(),
            ]);
        }
    }
    println!("{}", table(&header, &rows));
    println!(
        "Expected shape (paper): when I+O fits the LB both use it; when only one of them fits,\n\
         the input is prioritized for the LB and the output is pushed to the GB."
    );
}
