//! Ablation: the speed/quality trade-off of the temporal-mapping search
//! budget — the Rust counterpart of the paper artifact's `loma_lpf_limit`
//! knob ("setting it to 6 cuts the runtime from 18 hours to 45 minutes while
//! some design points' best found energy increases by a few percent").
//!
//! The binary evaluates the case-study-1 best region (fully-cached, three tile
//! sizes) of FSRCNN on the Meta-prototype-like DF architecture with mapper
//! budgets from 6 to 720 loop orderings and reports the found energy and the
//! wall-clock time per budget.
//!
//! Run with: `cargo run --release -p defines-bench --bin ablation_mapper`

use defines_bench::table;
use defines_core::{DfCostModel, DfStrategy, OverlapMode, TileSize};
use defines_mapping::MapperConfig;
use defines_workload::models;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let acc = defines_arch::zoo::meta_proto_like_df();
    let net = models::fsrcnn();
    let tiles = [(4u64, 72u64), (16, 18), (60, 72)];
    let budgets = [6usize, 12, 48, 120, 720];

    println!(
        "Mapper-budget ablation: FSRCNN on {}, fully-cached tiles {:?}\n",
        acc.name(),
        tiles
    );
    let header = [
        "orderings",
        "energy (4,72)",
        "energy (16,18)",
        "energy (60,72)",
        "total time (ms)",
    ];
    let mut rows = Vec::new();
    let mut reference: Option<Vec<f64>> = None;
    for &budget in &budgets {
        let model = DfCostModel::new(&acc).with_mapper(MapperConfig {
            max_orderings: budget,
            ..MapperConfig::default()
        });
        let start = Instant::now();
        let energies: Vec<f64> = tiles
            .iter()
            .map(|&(tx, ty)| {
                model
                    .evaluate_network(
                        &net,
                        &DfStrategy::depth_first(TileSize::new(tx, ty), OverlapMode::FullyCached),
                    )
                    .map(|c| c.energy_mj())
                    .expect("evaluation succeeds")
            })
            .collect();
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        if budget == *budgets.last().unwrap() {
            reference = Some(energies.clone());
        }
        rows.push(vec![
            budget.to_string(),
            format!("{:.3}", energies[0]),
            format!("{:.3}", energies[1]),
            format!("{:.3}", energies[2]),
            format!("{elapsed:.0}"),
        ]);
    }
    println!("{}", table(&header, &rows));
    if let Some(reference) = reference {
        println!(
            "Reference (720 orderings): {:.3} / {:.3} / {:.3} mJ. Reduced budgets must stay within a\n\
             few percent of these values, mirroring the paper's loma_lpf_limit observation.",
            reference[0], reference[1], reference[2]
        );
    }
    Ok(())
}
