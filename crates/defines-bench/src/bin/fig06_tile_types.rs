//! Fig. 6: the number of distinct tile types for FSRCNN under different tile
//! sizes and overlap storing modes, and the per-type tile counts for the
//! (60, 72) case used throughout case study 1.
//!
//! Run with: `cargo run --release -p defines-bench --bin fig06_tile_types`

use defines_bench::table;
use defines_core::backcalc::StackGeometry;
use defines_core::stack::Stack;
use defines_core::strategy::{OverlapMode, TileSize};
use defines_core::tiling::TileGrid;
use defines_workload::models;
use std::collections::HashMap;

fn main() {
    let net = models::fsrcnn();
    let stack = Stack::new(net.layer_ids().collect());
    let geo = StackGeometry::new(&net, &stack);
    let last = net.layers().last().unwrap();
    let (w, h) = (last.dims.ox, last.dims.oy);

    let tile_sizes = [(60u64, 72u64), (36, 30), (16, 18), (120, 135)];
    let header = ["tile (Tx,Ty)", "mode", "tiles", "tile types"];
    let mut rows = Vec::new();
    for &(tx, ty) in &tile_sizes {
        let grid = TileGrid::new(w, h, TileSize::new(tx, ty));
        for mode in OverlapMode::ALL {
            let mut types: HashMap<_, u64> = HashMap::new();
            for (c, r, _) in grid.iter() {
                *types
                    .entry(geo.analyze_tile(mode, &grid, c, r))
                    .or_default() += 1;
            }
            rows.push(vec![
                format!("({tx}, {ty})"),
                mode.to_string(),
                format!("{}", grid.num_tiles()),
                format!("{}", types.len()),
            ]);
        }
    }
    println!(
        "Fig. 6: tile type count per tile size and overlap storing mode (FSRCNN, 960x540 output)\n"
    );
    println!("{}", table(&header, &rows));

    // Detailed per-type counts for the canonical (60, 72) fully-recompute case
    // (the paper's "9 tile types" example).
    let grid = TileGrid::new(w, h, TileSize::new(60, 72));
    for mode in OverlapMode::ALL {
        let mut types: HashMap<_, u64> = HashMap::new();
        for (c, r, _) in grid.iter() {
            *types
                .entry(geo.analyze_tile(mode, &grid, c, r))
                .or_default() += 1;
        }
        let mut counts: Vec<u64> = types.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        println!(
            "(60, 72) {mode}: {} types with tile counts {:?} (paper: 9 / 6 / 3 types; our type \
             descriptor also distinguishes feature-map-edge clamping, see EXPERIMENTS.md)",
            counts.len(),
            counts
        );
    }
}
