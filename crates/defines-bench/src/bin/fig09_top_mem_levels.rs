//! Fig. 9: the top memory level determined for weights, inputs and outputs of
//! every unique (tile type, layer) combination of FSRCNN on the
//! Meta-prototype-like DF architecture with a (60, 72) fully-cached schedule.
//!
//! Run with: `cargo run --release -p defines-bench --bin fig09_top_mem_levels`

use defines_bench::{table, ExperimentContext};
use defines_core::backcalc::StackGeometry;
use defines_core::memlevel::{determine_placement, PlacementPolicy, PlacementRequest};
use defines_core::stack::Stack;
use defines_core::strategy::{OverlapMode, TileSize};
use defines_core::tiling::TileGrid;
use std::collections::HashMap;

fn main() {
    let ctx = ExperimentContext::case_study_1();
    let acc = &ctx.accelerator;
    let net = ctx.fsrcnn();
    let stack = Stack::new(net.layer_ids().collect());
    let geo = StackGeometry::new(&net, &stack);
    let grid = TileGrid::new(960, 540, TileSize::new(60, 72));
    let mode = OverlapMode::FullyCached;
    let dram = acc.hierarchy().dram_id();
    let stack_weights = stack.weight_bytes(&net);

    // Group tiles into types.
    let mut types: Vec<(defines_core::backcalc::TileAnalysis, u64)> = Vec::new();
    let mut index: HashMap<defines_core::backcalc::TileAnalysis, usize> = HashMap::new();
    for (c, r, _) in grid.iter() {
        let a = geo.analyze_tile(mode, &grid, c, r);
        match index.get(&a) {
            Some(&i) => types[i].1 += 1,
            None => {
                index.insert(a.clone(), types.len());
                types.push((a, 1));
            }
        }
    }
    types.sort_by_key(|t| t.1);

    println!(
        "Fig. 9: top memory level per operand, layer and tile type\n\
         (FSRCNN on {}, tile (60, 72), {mode})\n",
        acc.name()
    );
    let header = ["tile type", "count", "layer", "W top", "I top", "O top"];
    let mut rows = Vec::new();
    for (t, (analysis, count)) in types.iter().enumerate() {
        for rec in &analysis.layers {
            if rec.to_compute_w == 0 {
                continue;
            }
            let layer = net.layer(rec.layer);
            let request = PlacementRequest {
                stack_weight_bytes: stack_weights,
                layer_has_weights: layer.weight_bytes() > 0,
                is_first_tile: analysis.is_first_tile,
                input_bytes: rec.input_bytes,
                output_bytes: rec.output_bytes,
                cache_h_bytes: analysis.cache_h_bytes,
                cache_v_bytes: analysis.cache_v_bytes,
            };
            let p = determine_placement(acc, &request, &PlacementPolicy::default());
            // The stack's first layer reads the network input from DRAM and the
            // last layer writes the network output back to DRAM, as in the
            // evaluator.
            let input_top = if rec.external_input_bytes > 0 {
                p.input.max(dram)
            } else {
                p.input
            };
            let output_top = if rec.layer == stack.last_layer() {
                p.output.max(dram)
            } else {
                p.output
            };
            rows.push(vec![
                format!("{}", t + 1),
                format!("{count}"),
                format!("{}", rec.layer),
                acc.hierarchy().level(p.weight).name().to_string(),
                acc.hierarchy().level(input_top).name().to_string(),
                acc.hierarchy().level(output_top).name().to_string(),
            ]);
        }
    }
    println!("{}", table(&header, &rows));
    println!(
        "Expected shape (paper): first tile takes weights from DRAM, later tiles from the weight LB;\n\
         every tile's first layer reads its input from DRAM and its last layer writes to DRAM;\n\
         in between, activations use the LB when they fit and the GB otherwise."
    );
}
