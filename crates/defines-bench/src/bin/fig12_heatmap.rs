//! Fig. 12: total energy and latency heatmaps for FSRCNN on the
//! Meta-prototype-like DF architecture, sweeping the three overlap storing
//! modes and a 6×6 grid of tile sizes (108 depth-first schedules in total).
//!
//! Results are also written to `results/fig12.json`.
//!
//! Run with: `cargo run --release -p defines-bench --bin fig12_heatmap`

use defines_bench::{heatmap, write_json, ExperimentContext};
use defines_core::{DfStrategy, OverlapMode, TileSize};
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    mode: String,
    tx: u64,
    ty: u64,
    energy_mj: f64,
    latency_mcycles: f64,
    dram_mb: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = ExperimentContext::case_study_1();
    let net = ctx.fsrcnn();
    let model = ctx.model();
    let xs = [1u64, 4, 16, 60, 240, 960];
    let ys = [1u64, 4, 18, 72, 270, 540];
    let mut cells = Vec::new();

    let mut best: Option<(OverlapMode, u64, u64, f64)> = None;
    let mut worst_energy: f64 = 0.0;
    let mut worst_latency: f64 = 0.0;
    let mut best_latency = f64::INFINITY;

    for mode in OverlapMode::ALL {
        let mut energy_rows = Vec::new();
        let mut latency_rows = Vec::new();
        for &ty in &ys {
            let mut energy_row = Vec::new();
            let mut latency_row = Vec::new();
            for &tx in &xs {
                let strategy = DfStrategy::depth_first(TileSize::new(tx, ty), mode);
                let cost = model.evaluate_network(&net, &strategy)?;
                energy_row.push(cost.energy_mj());
                latency_row.push(cost.latency_mcycles());
                worst_energy = worst_energy.max(cost.energy_mj());
                worst_latency = worst_latency.max(cost.latency_mcycles());
                best_latency = best_latency.min(cost.latency_mcycles());
                if best
                    .map(|(_, _, _, e)| cost.energy_mj() < e)
                    .unwrap_or(true)
                {
                    best = Some((mode, tx, ty, cost.energy_mj()));
                }
                cells.push(Cell {
                    mode: mode.to_string(),
                    tx,
                    ty,
                    energy_mj: cost.energy_mj(),
                    latency_mcycles: cost.latency_mcycles(),
                    dram_mb: cost.dram_traffic_bytes(&ctx.accelerator) / (1024.0 * 1024.0),
                });
            }
            energy_rows.push(energy_row);
            latency_rows.push(latency_row);
        }
        println!(
            "{}",
            heatmap(&format!("{mode} - Energy"), &xs, &ys, &energy_rows, "mJ")
        );
        println!(
            "{}",
            heatmap(
                &format!("{mode} - Latency"),
                &xs,
                &ys,
                &latency_rows,
                "Mcycles"
            )
        );
    }

    let (bm, btx, bty, be) = best.expect("at least one cell evaluated");
    println!("Best energy point: {bm} with tile ({btx}, {bty}) -> {be:.2} mJ");
    println!(
        "Energy spread best..worst: {:.2} .. {:.2} mJ ({:.0}x); latency spread: {:.1} .. {:.1} Mcycles ({:.0}x)",
        be,
        worst_energy,
        worst_energy / be,
        best_latency,
        worst_latency,
        worst_latency / best_latency
    );
    println!(
        "Expected shape (paper): best points at intermediate tile sizes, fully-cached <= H-cached <= \
         fully-recompute per tile size, identical values in the (960, 540) LBL corner, and a spread of \
         roughly 26x in energy and 57x in latency."
    );
    write_json("results/fig12.json", &cells)?;
    println!("Wrote results/fig12.json");
    Ok(())
}
