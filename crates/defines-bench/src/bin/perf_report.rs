//! `perf_report` — trace-backed localization of the engine's cold-sweep
//! overhead.
//!
//! `BENCH_engine.json` records `speedup_cold < 1.0`: on few cores the engine's
//! cold FSRCNN sweep is *slower* than the seed's plain sequential scan. This
//! binary re-runs the same three scenarios (sequential cold, engine cold,
//! engine warm) with span tracing and metrics enabled, aggregates a per-phase
//! wall-time breakdown for each, and derives where the overhead actually
//! lives: queue dispatch (`engine.run` time outside `engine.execute`),
//! per-point setup (`engine.execute` time outside `evaluate.stack`), or the
//! shared mapping memo (`mapping.search` delta versus the sequential run).
//!
//! Results are written to `BENCH_perf_report.json` at the repository root
//! with the shared bench header.
//!
//! Run with: `cargo run --release -p defines-bench --bin perf_report`

use defines_bench::{fig12_tile_grid, write_json, BenchHeader, ExperimentContext};
use defines_core::{DfCostModel, Explorer, OverlapMode};
use defines_engine::EngineConfig;
use defines_mapping::MappingCache;
use defines_telemetry::{MetricsSnapshot, PhaseBreakdown};
use serde::Serialize;
use std::time::Instant;

/// One traced run: its wall clock, phase breakdown and metrics delta.
#[derive(Serialize)]
struct Scenario {
    name: String,
    wall_ms: f64,
    breakdown: PhaseBreakdown,
    metrics: MetricsSnapshot,
}

/// Where the engine's cold-sweep time goes relative to the sequential scan.
/// All values in milliseconds; spans nest, so these are span-total
/// differences, not a partition of the wall clock.
#[derive(Serialize)]
struct Localization {
    speedup_cold: f64,
    speedup_warm: f64,
    /// `engine.run` minus `engine.execute` minus `engine.collect`: queue
    /// dispatch, worker setup and result plumbing.
    queue_dispatch_ms: f64,
    /// Result-collection time (`engine.collect`; zero on a single thread,
    /// where the engine takes the sequential fast path).
    collect_ms: f64,
    /// `engine.execute` minus `evaluate.stack` in the engine-cold run:
    /// per-point strategy setup and fuse partitioning around the cost model.
    per_point_setup_ms: f64,
    /// `mapping.search` total in the engine-cold run minus the sequential
    /// run: the cost (or saving) of routing mappings through the shared
    /// memo instead of the model's inline mapper.
    memo_delta_ms: f64,
    /// The dominant overhead source among the three above.
    verdict: String,
}

/// Runs `f` with a clean telemetry slate and packages the resulting trace.
fn traced<T>(name: &str, f: impl FnOnce() -> T) -> (T, Scenario) {
    defines_telemetry::clear_events();
    let before = defines_telemetry::snapshot();
    let start = Instant::now();
    let result = f();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let events = defines_telemetry::drain_events();
    let scenario = Scenario {
        name: name.to_string(),
        wall_ms,
        breakdown: PhaseBreakdown::from_events(&events),
        metrics: defines_telemetry::snapshot().since(&before),
    };
    (result, scenario)
}

#[derive(Serialize)]
struct PerfReport {
    header: BenchHeader,
    design_points: usize,
    scenarios: Vec<Scenario>,
    localization: Localization,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    defines_telemetry::set_tracing(true);
    defines_telemetry::set_metrics(true);

    let ctx = ExperimentContext::case_study_1();
    let net = ctx.fsrcnn();
    let tiles = fig12_tile_grid();
    let threads = EngineConfig::parallel().threads;

    // Scenario 1 — the seed's usage pattern: fresh model, sequential scan.
    let cold_model = ctx.model();
    let (sequential, seq_scenario) = traced("sequential_cold", || {
        Explorer::new(&cold_model)
            .sweep_sequential(&net, &tiles, &OverlapMode::ALL)
            .unwrap()
    });

    // Scenarios 2 and 3 — the engine with a shared mapping cache, cold then
    // warm (the second sweep answers every mapping from the memo).
    let shared = MappingCache::new();
    let engine_model = DfCostModel::new(&ctx.accelerator)
        .with_fast_mapper()
        .with_shared_cache(shared.clone());
    let explorer = Explorer::new(&engine_model).with_engine_config(EngineConfig::parallel());
    let (engine_cold_results, cold_scenario) = traced("engine_cold", || {
        explorer.sweep(&net, &tiles, &OverlapMode::ALL).unwrap()
    });
    let (engine_warm_results, warm_scenario) = traced("engine_warm", || {
        explorer.sweep(&net, &tiles, &OverlapMode::ALL).unwrap()
    });
    assert!(
        engine_cold_results == sequential && engine_warm_results == sequential,
        "engine sweep diverged from the sequential reference under tracing"
    );

    let b = &cold_scenario.breakdown;
    let queue_dispatch_ms =
        (b.total_ms("engine.run") - b.total_ms("engine.execute") - b.total_ms("engine.collect"))
            .max(0.0);
    let per_point_setup_ms = (b.total_ms("engine.execute") - b.total_ms("evaluate.stack")).max(0.0);
    let memo_delta_ms =
        b.total_ms("mapping.search") - seq_scenario.breakdown.total_ms("mapping.search");
    let sources = [
        ("queue dispatch", queue_dispatch_ms),
        ("per-point setup", per_point_setup_ms),
        ("mapping memo", memo_delta_ms),
    ];
    let dominant = sources
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty source list");
    let localization = Localization {
        speedup_cold: seq_scenario.wall_ms / cold_scenario.wall_ms,
        speedup_warm: seq_scenario.wall_ms / warm_scenario.wall_ms,
        queue_dispatch_ms,
        collect_ms: b.total_ms("engine.collect"),
        per_point_setup_ms,
        memo_delta_ms,
        verdict: format!("{} ({:.1} ms)", dominant.0, dominant.1),
    };

    let report = PerfReport {
        header: BenchHeader::new("perf_report", net.name(), ctx.accelerator.name(), threads),
        design_points: tiles.len() * OverlapMode::ALL.len(),
        scenarios: vec![seq_scenario, cold_scenario, warm_scenario],
        localization,
    };

    for scenario in &report.scenarios {
        println!("## {} — {:.1} ms wall\n", scenario.name, scenario.wall_ms);
        println!("{}", scenario.breakdown.to_markdown());
    }
    println!("## Cold-overhead localization\n");
    println!(
        "speedup: cold {:.3}x, warm {:.3}x vs sequential",
        report.localization.speedup_cold, report.localization.speedup_warm
    );
    println!(
        "queue dispatch {:.1} ms | collect {:.1} ms | per-point setup {:.1} ms | mapping memo \
         delta {:+.1} ms",
        report.localization.queue_dispatch_ms,
        report.localization.collect_ms,
        report.localization.per_point_setup_ms,
        report.localization.memo_delta_ms,
    );
    println!("dominant overhead: {}", report.localization.verdict);

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_perf_report.json");
    write_json(path, &report)?;
    println!("Wrote BENCH_perf_report.json");
    Ok(())
}
