//! Case study 2 (Fig. 13–16) as one matrix run: the five DF-flexible
//! architectures × the five case-study workloads × {auto, single} fuse
//! policies, evaluated in a single flattened engine run sharing one mapping
//! cache, ranked Fig.-13-style.
//!
//! `single` fixes every layer as its own stack (the layer-by-layer
//! reference); `auto` is the weight-budget fuse heuristic with the best
//! (tile, mode) per stack — the paper's "best combination" strategy. The gap
//! between the two per architecture is the depth-first benefit the figures
//! plot.
//!
//! Results are also written to `results/matrix.json` and
//! `results/matrix.md`.
//!
//! Run with: `cargo run --release -p defines-bench --bin case_study_matrix`

use defines_arch::zoo;
use defines_core::matrix::{run_matrix, MatrixConfig};
use defines_core::{FusePolicy, OptimizeTarget, OverlapMode};
use defines_workload::models;
use serde::Serialize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let accelerators = zoo::df_architectures();
    let workloads = models::case_study_workloads();
    let policies = [FusePolicy::Auto, FusePolicy::SingleLayerStacks];

    println!(
        "Case study 2 matrix: {} architectures x {} workloads x {} policies\n",
        accelerators.len(),
        workloads.len(),
        policies.len()
    );

    let report = run_matrix(
        &accelerators,
        &workloads,
        &policies,
        None, // each workload's default case-study tile grid
        &OverlapMode::ALL,
        OptimizeTarget::Energy,
        &MatrixConfig::default(),
        |cell| println!("  {}  energy {:.4e}", cell.label, cell.value),
    )?;

    println!("\n{}", report.to_markdown());
    println!(
        "Expected shape (paper): every DF architecture gains from fused stacks on the\n\
         activation-dominant workloads (FSRCNN, DMCNN-VD, MC-CNN) and the ranking is led by\n\
         designs pairing a shared I/O local buffer with an on-chip weight buffer; for\n\
         MobileNetV1/ResNet18 the auto policy falls back to layer-by-layer for the\n\
         weight-dominant tails, shrinking the gap between auto and single."
    );

    std::fs::create_dir_all("results")?;
    std::fs::write("results/matrix.json", report.to_value().to_json_pretty())?;
    std::fs::write("results/matrix.md", report.to_markdown())?;
    println!("\nWrote results/matrix.json and results/matrix.md");
    Ok(())
}
