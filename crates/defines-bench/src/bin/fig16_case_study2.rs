//! Fig. 16 (case study 2): five inference strategies compared across the five
//! case-study workloads on the Meta-prototype-like DF architecture:
//! single-layer, layer-by-layer, the fully-cached 4×72 schedule found in case
//! study 1, the best single strategy, and the best per-stack combination.
//!
//! Results are also written to `results/fig16.json`.
//!
//! Run with: `cargo run --release -p defines-bench --bin fig16_case_study2`

use defines_bench::{case_study_tile_grid, ratio, table, write_json, ExperimentContext};
use defines_core::baselines::fixed_fully_cached;
use defines_core::{DfStrategy, Explorer, OptimizeTarget, OverlapMode};
use defines_workload::models;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    strategy: String,
    energy_mj: f64,
    latency_mcycles: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = ExperimentContext::case_study_1();
    let model = ctx.model();
    let explorer = Explorer::new(&model);

    println!(
        "Fig. 16 (case study 2): strategies across workloads on {}\n",
        ctx.accelerator.name()
    );
    let header = [
        "workload",
        "single-layer",
        "layer-by-layer",
        "fully-cached 4x72",
        "best single",
        "best combination",
        "gain vs SL",
    ];
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for net in models::case_study_workloads() {
        let tiles = case_study_tile_grid(&net);
        let last = net.layers().last().unwrap();
        let sl = model.evaluate_network(&net, &DfStrategy::single_layer())?;
        let lbl = model.evaluate_network(&net, &DfStrategy::layer_by_layer())?;
        // The case-study-1 winner, clamped to the workload's output size.
        let cs1 = {
            let s = fixed_fully_cached(4.min(last.dims.ox), 72.min(last.dims.oy));
            model.evaluate_network(&net, &s)?
        };
        let best_single = explorer.best_single_strategy(
            &net,
            &tiles,
            &OverlapMode::ALL,
            OptimizeTarget::Energy,
        )?;
        let combo =
            explorer.best_combination(&net, &tiles, &OverlapMode::ALL, OptimizeTarget::Energy)?;

        for (name, energy, latency) in [
            ("single-layer", sl.energy_mj(), sl.latency_mcycles()),
            ("layer-by-layer", lbl.energy_mj(), lbl.latency_mcycles()),
            ("fully-cached 4x72", cs1.energy_mj(), cs1.latency_mcycles()),
            (
                "best single",
                best_single.cost.energy_mj(),
                best_single.cost.latency_mcycles(),
            ),
            (
                "best combination",
                combo.cost.energy_mj(),
                combo.cost.latency_mcycles(),
            ),
        ] {
            json_rows.push(Row {
                workload: net.name().to_string(),
                strategy: name.to_string(),
                energy_mj: energy,
                latency_mcycles: latency,
            });
        }

        rows.push(vec![
            net.name().to_string(),
            format!("{:.2} mJ", sl.energy_mj()),
            format!("{:.2} mJ", lbl.energy_mj()),
            format!("{:.2} mJ", cs1.energy_mj()),
            format!(
                "{:.2} mJ ({})",
                best_single.cost.energy_mj(),
                best_single.strategy.tile
            ),
            format!("{:.2} mJ", combo.cost.energy_mj()),
            ratio(sl.energy_pj, combo.cost.energy_pj),
        ]);
    }
    println!("{}", table(&header, &rows));
    println!(
        "Expected shape (paper): ~10x gain over single-layer for the activation-dominant workloads\n\
         (FSRCNN, DMCNN-VD, MCCNN) where the 4x72 schedule is already near-optimal; for MobileNetV1\n\
         and ResNet18 the 4x72 schedule is clearly worse than the best combination, which applies\n\
         depth-first stacks to the early layers and layer-by-layer to the weight-dominant tail\n\
         (~5.7x gain over single-layer for MobileNetV1)."
    );
    write_json("results/fig16.json", &json_rows)?;
    println!("Wrote results/fig16.json");
    Ok(())
}
