//! Fig. 13: MAC operation count for the diagonal depth-first design points of
//! case study 1, per overlap storing mode. Recompute modes perform extra MACs
//! for the overlap regions, especially at small tile sizes.
//!
//! Run with: `cargo run --release -p defines-bench --bin fig13_mac_ops`

use defines_bench::{diagonal_tile_sizes, table, ExperimentContext};
use defines_core::{DfStrategy, OverlapMode, TileSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = ExperimentContext::case_study_1();
    let net = ctx.fsrcnn();
    let model = ctx.model();
    let lbl_macs: u64 = net.layers().iter().map(|l| l.macs()).sum();

    let header = [
        "tile (Tx,Ty)",
        "fully-recompute",
        "H-cached V-recompute",
        "fully-cached",
    ];
    let mut rows = Vec::new();
    for (tx, ty) in diagonal_tile_sizes() {
        let mut row = vec![format!("({tx}, {ty})")];
        for mode in OverlapMode::ALL {
            let strategy = DfStrategy::depth_first(TileSize::new(tx, ty), mode);
            let cost = model.evaluate_network(&net, &strategy)?;
            row.push(format!(
                "{:.2}e9 ({:.2}x)",
                cost.macs as f64 / 1e9,
                cost.macs as f64 / lbl_macs as f64
            ));
        }
        rows.push(row);
    }
    println!("Fig. 13: MAC operation count per DF strategy (FSRCNN on Meta-proto-like DF)\n");
    println!("{}", table(&header, &rows));
    println!(
        "Layer-by-layer MAC count (no recomputation): {:.2}e9",
        lbl_macs as f64 / 1e9
    );
    println!(
        "Expected shape (paper): fully-cached never recomputes (flat line at the LBL count); the\n\
         recompute modes blow up at small tile sizes, fully-recompute worst of all."
    );
    Ok(())
}
