//! Fig. 11: validation of the cost model against the DepFiN depth-first
//! processor for FSRCNN, MC-CNN and the 11-layer reference network.
//!
//! We cannot measure the taped-out chip, so the "measured" series is derived
//! from the relative prediction errors the paper reports (latency predictions
//! within 10 % / 3 % / 2 %, relative energy within 6 % / 3 % / 0 %); our
//! harness reports our predictions next to that synthetic measurement and the
//! resulting relative error, mirroring the structure of the paper's figure.
//! See DESIGN.md ("Substitutions") for the rationale.
//!
//! Run with: `cargo run --release -p defines-bench --bin fig11_validation`

use defines_arch::zoo;
use defines_bench::table;
use defines_core::{DfCostModel, DfStrategy, OverlapMode, TileSize};
use defines_workload::models;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let acc = zoo::depfin_like();
    let model = DfCostModel::new(&acc).with_fast_mapper();
    // DepFiN processes high-resolution networks depth-first with line-buffer
    // style tiles: a full-width stripe a few rows tall.
    let strategy = |net: &defines_workload::Network| {
        let last = net.layers().last().unwrap();
        DfStrategy::depth_first(TileSize::new(last.dims.ox, 8), OverlapMode::FullyCached)
    };

    // Paper-reported prediction/measurement ratios (Fig. 11): latency
    // prediction was 90 % / 97 % / 98 % of the measurement, relative energy
    // 106 % / 103 % / 100 %.
    let paper_latency_ratio = [0.90, 0.97, 0.98];
    let paper_energy_ratio = [1.06, 1.03, 1.00];

    let nets = models::validation_workloads();
    let mut predictions = Vec::new();
    for net in &nets {
        let cost = model.evaluate_network(net, &strategy(net))?;
        predictions.push(cost);
    }

    // Energies are normalized to the reference network (index 2), as in the
    // paper, to cancel process/voltage/temperature effects.
    let ref_energy = predictions[2].energy_pj;

    println!(
        "Fig. 11: DeFiNES-rs predictions vs DepFiN-derived reference (synthetic measurement)\n"
    );
    let header = [
        "network",
        "pred latency (Mcyc)",
        "\"measured\" latency",
        "latency err",
        "pred energy (norm)",
        "\"measured\" energy",
        "energy err",
    ];
    let mut rows = Vec::new();
    for (i, net) in nets.iter().enumerate() {
        let pred_lat = predictions[i].latency_mcycles();
        let meas_lat = pred_lat / paper_latency_ratio[i];
        let pred_en = predictions[i].energy_pj / ref_energy;
        let meas_en = pred_en / paper_energy_ratio[i];
        rows.push(vec![
            net.name().to_string(),
            format!("{pred_lat:.2}"),
            format!("{meas_lat:.2}"),
            format!("{:+.1}%", (pred_lat / meas_lat - 1.0) * 100.0),
            format!("{pred_en:.3}"),
            format!("{meas_en:.3}"),
            format!("{:+.1}%", (pred_en / meas_en - 1.0) * 100.0),
        ]);
    }
    println!("{}", table(&header, &rows));
    println!(
        "The paper reports end-to-end latency matching within 3 % (10 % for FSRCNN due to an\n\
         unmodelled control-flow limitation) and relative energy within 6 %."
    );
    Ok(())
}
