//! Fig. 18: quantifying the factors that SotA depth-first frameworks omit
//! (Table II), on the Meta-prototype-like DF and Edge-TPU-like DF
//! architectures:
//!
//! * (a) modelling on-chip data traffic (vs optimizing DRAM traffic only) —
//!   FSRCNN,
//! * (b) multi-level memory skipping (vs DRAM-only skipping) — FSRCNN,
//! * (c) modelling weight traffic (vs optimizing activations only) — ResNet18,
//! * (d) the optimization target (energy- vs latency-optimized) — ResNet18.
//!
//! Run with: `cargo run --release -p defines-bench --bin fig18_sota [--part a|b|c|d]`
//! (all parts run when no argument is given). Results are written to
//! `results/fig18.json`.

use defines_arch::zoo;
use defines_bench::{case_study_tile_grid, ratio, table, write_json, ExperimentContext};
use defines_core::baselines::{run_baseline, BaselineKind, BaselineResult};
use defines_core::OverlapMode;
use defines_workload::{models, Network};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    part: String,
    architecture: String,
    scenario: String,
    energy_mj: f64,
    latency_mcycles: f64,
    dram_mb: f64,
    chosen_strategy: String,
}

fn run_part(
    part: &str,
    workload: &Network,
    kinds: &[(&str, BaselineKind)],
    json: &mut Vec<Row>,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Fig. 18({part}) — workload: {} ===\n", workload.name());
    let header = [
        "architecture",
        "scenario",
        "energy (mJ)",
        "latency (Mcyc)",
        "DRAM (MB)",
        "chosen schedule",
    ];
    let mut rows = Vec::new();
    for acc in [zoo::meta_proto_like_df(), zoo::edge_tpu_like_df()] {
        let ctx = ExperimentContext::for_accelerator(acc);
        let model = ctx.model();
        let tiles = case_study_tile_grid(workload);
        let mut ours: Option<BaselineResult> = None;
        for &(name, kind) in kinds {
            let result = run_baseline(&model, workload, kind, &tiles, &OverlapMode::ALL)?;
            let dram_mb = result.cost.dram_traffic_bytes(&ctx.accelerator) / (1024.0 * 1024.0);
            rows.push(vec![
                ctx.accelerator.name().to_string(),
                name.to_string(),
                format!("{:.2}", result.cost.energy_mj()),
                format!("{:.1}", result.cost.latency_mcycles()),
                format!("{dram_mb:.1}"),
                result.strategy.to_string(),
            ]);
            json.push(Row {
                part: part.to_string(),
                architecture: ctx.accelerator.name().to_string(),
                scenario: name.to_string(),
                energy_mj: result.cost.energy_mj(),
                latency_mcycles: result.cost.latency_mcycles(),
                dram_mb,
                chosen_strategy: result.strategy.to_string(),
            });
            if kind == BaselineKind::FullModel {
                ours = Some(result);
            }
        }
        if let Some(ours) = ours {
            if let Some(first) = rows
                .iter()
                .find(|r| r[0] == ctx.accelerator.name() && r[1] != "ours (full model)")
            {
                let baseline_energy: f64 = first[2].parse().unwrap_or(f64::NAN);
                println!(
                    "{}: gain of the full model over '{}': {}",
                    ctx.accelerator.name(),
                    first[1],
                    ratio(baseline_energy, ours.cost.energy_mj())
                );
            }
        }
    }
    println!("\n{}", table(&header, &rows));
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arg = std::env::args().nth(2).or_else(|| std::env::args().nth(1));
    let only: Option<String> = arg.filter(|a| ["a", "b", "c", "d"].contains(&a.as_str()));
    let fsrcnn = models::fsrcnn();
    let resnet = models::resnet18();
    let mut json = Vec::new();

    type Part<'a> = (&'a str, &'a Network, Vec<(&'a str, BaselineKind)>);
    let parts: Vec<Part<'_>> = vec![
        (
            "a",
            &fsrcnn,
            vec![
                ("single-layer", BaselineKind::SingleLayer),
                (
                    "DF, optimize DRAM traffic only",
                    BaselineKind::DramTrafficOnly,
                ),
                ("ours (full model)", BaselineKind::FullModel),
            ],
        ),
        (
            "b",
            &fsrcnn,
            vec![
                ("DF, DRAM-only skipping", BaselineKind::DramOnlySkipping),
                ("ours (full model)", BaselineKind::FullModel),
            ],
        ),
        (
            "c",
            &resnet,
            vec![
                ("single-layer", BaselineKind::SingleLayer),
                (
                    "DF, optimize activations only",
                    BaselineKind::ActivationsOnly,
                ),
                ("ours (full model)", BaselineKind::FullModel),
            ],
        ),
        (
            "d",
            &resnet,
            vec![
                ("DF, latency-optimized", BaselineKind::LatencyOptimized),
                ("ours (energy-optimized)", BaselineKind::FullModel),
            ],
        ),
    ];

    for (part, workload, kinds) in &parts {
        if only.as_deref().map(|p| p == *part).unwrap_or(true) {
            run_part(part, workload, kinds, &mut json)?;
        }
    }
    println!(
        "Expected shape (paper): (a) optimizing DRAM only leaves large on-chip energy on the table\n\
         (5.6x gap on Meta-proto-like DF); (b) multi-level skipping saves ~17-18% energy; (c) ignoring\n\
         weights picks tiny tiles and loses 2.3x / 10.2x; (d) the latency-optimized schedule prefers\n\
         larger tiles and trades energy for cycles."
    );
    write_json("results/fig18.json", &json)?;
    println!("Wrote results/fig18.json");
    Ok(())
}
