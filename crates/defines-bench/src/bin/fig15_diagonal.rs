//! Fig. 15: total energy and latency of the diagonal design points of case
//! study 1 (the same points as Fig. 13 and Fig. 14).
//!
//! Run with: `cargo run --release -p defines-bench --bin fig15_diagonal`

use defines_bench::{diagonal_tile_sizes, table, ExperimentContext};
use defines_core::{DfStrategy, OverlapMode, TileSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = ExperimentContext::case_study_1();
    let net = ctx.fsrcnn();
    let model = ctx.model();

    let header = [
        "tile (Tx,Ty)",
        "recompute E (mJ)",
        "H-cached E (mJ)",
        "fully-cached E (mJ)",
        "recompute L (Mcyc)",
        "H-cached L (Mcyc)",
        "fully-cached L (Mcyc)",
    ];
    let mut rows = Vec::new();
    for (tx, ty) in diagonal_tile_sizes() {
        let mut energies = Vec::new();
        let mut latencies = Vec::new();
        for mode in OverlapMode::ALL {
            let strategy = DfStrategy::depth_first(TileSize::new(tx, ty), mode);
            let cost = model.evaluate_network(&net, &strategy)?;
            energies.push(cost.energy_mj());
            latencies.push(cost.latency_mcycles());
        }
        rows.push(vec![
            format!("({tx}, {ty})"),
            format!("{:.2}", energies[0]),
            format!("{:.2}", energies[1]),
            format!("{:.2}", energies[2]),
            format!("{:.1}", latencies[0]),
            format!("{:.1}", latencies[1]),
            format!("{:.1}", latencies[2]),
        ]);
    }
    println!("Fig. 15: total energy and latency of the diagonal design points (FSRCNN on Meta-proto-like DF)\n");
    println!("{}", table(&header, &rows));
    println!(
        "Expected shape (paper): mid-sized tiles minimize both energy and latency; the three modes\n\
         converge at the largest (layer-by-layer) tile."
    );
    Ok(())
}
