//! Rectangle arithmetic on feature-map regions.
//!
//! All regions are inclusive integer rectangles in the coordinate space of one
//! feature map. Back-calculation (Section III, step 2) projects an output
//! region of a layer to the input region it requires, and trims regions by
//! what neighbouring tiles have already computed.

use serde::{Deserialize, Serialize};

/// An inclusive, possibly empty, axis-aligned rectangle.
///
/// `x1 < x0` (or `y1 < y0`) denotes the empty rectangle.
///
/// ```
/// use defines_core::geometry::Rect;
/// let r = Rect::new(0, 9, 0, 4);
/// assert_eq!(r.width(), 10);
/// assert_eq!(r.height(), 5);
/// assert_eq!(r.area(), 50);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// Leftmost column (inclusive).
    pub x0: i64,
    /// Rightmost column (inclusive).
    pub x1: i64,
    /// Topmost row (inclusive).
    pub y0: i64,
    /// Bottommost row (inclusive).
    pub y1: i64,
}

impl Rect {
    /// Creates a rectangle from inclusive bounds.
    pub fn new(x0: i64, x1: i64, y0: i64, y1: i64) -> Self {
        Self { x0, x1, y0, y1 }
    }

    /// The canonical empty rectangle.
    pub fn empty() -> Self {
        Self {
            x0: 0,
            x1: -1,
            y0: 0,
            y1: -1,
        }
    }

    /// Whether the rectangle contains no cells.
    pub fn is_empty(&self) -> bool {
        self.x1 < self.x0 || self.y1 < self.y0
    }

    /// Width in cells (0 when empty).
    pub fn width(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            (self.x1 - self.x0 + 1) as u64
        }
    }

    /// Height in cells (0 when empty).
    pub fn height(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            (self.y1 - self.y0 + 1) as u64
        }
    }

    /// Number of cells.
    pub fn area(&self) -> u64 {
        self.width() * self.height()
    }

    /// Intersection with another rectangle.
    pub fn intersect(&self, other: &Rect) -> Rect {
        let r = Rect {
            x0: self.x0.max(other.x0),
            x1: self.x1.min(other.x1),
            y0: self.y0.max(other.y0),
            y1: self.y1.min(other.y1),
        };
        if r.is_empty() {
            Rect::empty()
        } else {
            r
        }
    }

    /// Bounding box of two rectangles (the paper's branch handling combines
    /// the outermost edges of the per-branch regions, Fig. 8).
    pub fn union_bbox(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            x0: self.x0.min(other.x0),
            x1: self.x1.max(other.x1),
            y0: self.y0.min(other.y0),
            y1: self.y1.max(other.y1),
        }
    }

    /// Clamps the rectangle to `[0, w-1] × [0, h-1]`.
    pub fn clamp_to(&self, w: u64, h: u64) -> Rect {
        let r = Rect {
            x0: self.x0.max(0),
            x1: self.x1.min(w as i64 - 1),
            y0: self.y0.max(0),
            y1: self.y1.min(h as i64 - 1),
        };
        if r.is_empty() {
            Rect::empty()
        } else {
            r
        }
    }

    /// Removes the columns left of (and including) `x` — data already computed
    /// by the tile to the left in a cached mode.
    pub fn trim_left_through(&self, x: i64) -> Rect {
        let r = Rect {
            x0: self.x0.max(x + 1),
            ..*self
        };
        if r.is_empty() {
            Rect::empty()
        } else {
            r
        }
    }

    /// Removes the rows above (and including) `y` — data already computed by
    /// the tile row above in fully-cached mode.
    pub fn trim_top_through(&self, y: i64) -> Rect {
        let r = Rect {
            y0: self.y0.max(y + 1),
            ..*self
        };
        if r.is_empty() {
            Rect::empty()
        } else {
            r
        }
    }
}

/// Projects an output-space region to the input-space region required to
/// compute it, for a layer with the given stride, kernel size and padding.
///
/// `in = [out.x0 * sx - px, out.x1 * sx - px + fx - 1]` (same along y), before
/// clamping to the input feature map.
pub fn project_to_input(
    out: &Rect,
    stride: (u64, u64),
    kernel: (u64, u64),
    pad: (u64, u64),
) -> Rect {
    if out.is_empty() {
        return Rect::empty();
    }
    let (sx, sy) = (stride.0 as i64, stride.1 as i64);
    let (fx, fy) = (kernel.0 as i64, kernel.1 as i64);
    let (px, py) = (pad.0 as i64, pad.1 as i64);
    Rect {
        x0: out.x0 * sx - px,
        x1: out.x1 * sx - px + fx - 1,
        y0: out.y0 * sy - py,
        y1: out.y1 * sy - py + fy - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_dimensions() {
        let r = Rect::new(2, 5, 3, 3);
        assert_eq!(r.width(), 4);
        assert_eq!(r.height(), 1);
        assert_eq!(r.area(), 4);
        assert!(!r.is_empty());
        assert!(Rect::empty().is_empty());
        assert_eq!(Rect::empty().area(), 0);
    }

    #[test]
    fn intersection_and_union() {
        let a = Rect::new(0, 9, 0, 9);
        let b = Rect::new(5, 14, -3, 4);
        let i = a.intersect(&b);
        assert_eq!(i, Rect::new(5, 9, 0, 4));
        let u = a.union_bbox(&b);
        assert_eq!(u, Rect::new(0, 14, -3, 9));
        let disjoint = Rect::new(0, 1, 0, 1).intersect(&Rect::new(5, 6, 5, 6));
        assert!(disjoint.is_empty());
        assert_eq!(Rect::empty().union_bbox(&a), a);
    }

    #[test]
    fn clamping() {
        let r = Rect::new(-2, 12, -1, 8).clamp_to(10, 8);
        assert_eq!(r, Rect::new(0, 9, 0, 7));
        let gone = Rect::new(20, 25, 0, 1).clamp_to(10, 8);
        assert!(gone.is_empty());
    }

    #[test]
    fn trims() {
        let r = Rect::new(0, 9, 0, 9);
        assert_eq!(r.trim_left_through(3), Rect::new(4, 9, 0, 9));
        assert_eq!(r.trim_top_through(9), Rect::empty());
        assert_eq!(r.trim_left_through(-1), r);
    }

    #[test]
    fn projection_unit_stride() {
        // A 3x3 kernel with stride 1: a 4x4 output tile needs a 6x6 input.
        let out = Rect::new(0, 3, 0, 3);
        let inp = project_to_input(&out, (1, 1), (3, 3), (0, 0));
        assert_eq!(inp, Rect::new(0, 5, 0, 5));
        assert_eq!(inp.width(), 6);
    }

    #[test]
    fn projection_stride_and_padding() {
        let out = Rect::new(0, 111, 0, 111);
        let inp = project_to_input(&out, (2, 2), (3, 3), (1, 1));
        assert_eq!(inp.x0, -1);
        assert_eq!(inp.x1, 223);
        // After clamping to a 224-wide input everything is in range.
        let clamped = inp.clamp_to(224, 224);
        assert_eq!(clamped.width(), 224);
    }

    #[test]
    fn projection_1x1_is_identity() {
        let out = Rect::new(7, 20, 3, 9);
        assert_eq!(project_to_input(&out, (1, 1), (1, 1), (0, 0)), out);
    }

    #[test]
    fn projection_of_empty_is_empty() {
        assert!(project_to_input(&Rect::empty(), (1, 1), (3, 3), (0, 0)).is_empty());
    }
}
