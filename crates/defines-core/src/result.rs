//! Cost-result structures: per tile type, per stack, and per network.

use crate::backcalc::TileAnalysis;
use crate::stack::Stack;
use defines_arch::{Accelerator, MemoryLevelId, Operand};
use defines_mapping::AccessBreakdown;
use serde::{Deserialize, Serialize};

/// The class a memory access belongs to, used for the Fig.-14-style
/// breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataClass {
    /// Accesses caused by the layers' input/output activations.
    Activation,
    /// Accesses caused by the layers' weights.
    Weight,
    /// Accesses caused by data copy actions.
    DataCopy,
}

impl DataClass {
    /// All data classes.
    pub const ALL: [DataClass; 3] = [
        DataClass::Activation,
        DataClass::Weight,
        DataClass::DataCopy,
    ];
}

/// Summary of where the energy of an evaluation went.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergySummary {
    /// Energy of the MAC operations, in pJ.
    pub mac_pj: f64,
    /// Energy of DRAM accesses, in pJ.
    pub dram_pj: f64,
    /// Energy of on-chip memory accesses, in pJ.
    pub on_chip_pj: f64,
    /// Memory energy attributable to weights, in pJ.
    pub weight_memory_pj: f64,
    /// Memory energy attributable to activations (including overlap caches and
    /// data copies), in pJ.
    pub activation_memory_pj: f64,
    /// Energy of the data copy actions alone, in pJ.
    pub copy_pj: f64,
}

impl EnergySummary {
    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.mac_pj + self.dram_pj + self.on_chip_pj
    }

    /// Adds another summary to this one.
    pub fn accumulate(&mut self, other: &EnergySummary) {
        self.mac_pj += other.mac_pj;
        self.dram_pj += other.dram_pj;
        self.on_chip_pj += other.on_chip_pj;
        self.weight_memory_pj += other.weight_memory_pj;
        self.activation_memory_pj += other.activation_memory_pj;
        self.copy_pj += other.copy_pj;
    }

    /// Scales the summary by a factor (used when replicating tile types).
    pub fn scaled(&self, f: f64) -> EnergySummary {
        EnergySummary {
            mac_pj: self.mac_pj * f,
            dram_pj: self.dram_pj * f,
            on_chip_pj: self.on_chip_pj * f,
            weight_memory_pj: self.weight_memory_pj * f,
            activation_memory_pj: self.activation_memory_pj * f,
            copy_pj: self.copy_pj * f,
        }
    }
}

/// Builds an [`EnergySummary`] from per-class access breakdowns and the MAC
/// energy, pricing each access with the accelerator's memory-level costs.
pub fn energy_summary(
    acc: &Accelerator,
    mac_pj: f64,
    activation: &AccessBreakdown,
    weight: &AccessBreakdown,
    copies: &AccessBreakdown,
) -> EnergySummary {
    let hierarchy = acc.hierarchy();
    let mut s = EnergySummary {
        mac_pj,
        ..Default::default()
    };
    let mut add = |bd: &AccessBreakdown, class: DataClass| {
        for (level_id, _operand, access) in bd.iter() {
            let level = hierarchy.level(level_id);
            let e = access.reads_bytes * level.read_energy_pj_per_byte()
                + access.writes_bytes * level.write_energy_pj_per_byte();
            if level.is_dram() {
                s.dram_pj += e;
            } else {
                s.on_chip_pj += e;
            }
            match class {
                DataClass::Weight => s.weight_memory_pj += e,
                DataClass::Activation => s.activation_memory_pj += e,
                DataClass::DataCopy => {
                    s.activation_memory_pj += e;
                    s.copy_pj += e;
                }
            }
        }
    };
    add(activation, DataClass::Activation);
    add(weight, DataClass::Weight);
    add(copies, DataClass::DataCopy);
    s
}

/// The cost of one tile *type* (a set of identical tiles evaluated once).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileTypeCost {
    /// The back-calculation result describing the tile type.
    pub analysis: TileAnalysis,
    /// How many tiles of this type the stack contains.
    pub count: u64,
    /// Energy of **one** tile of this type, in pJ.
    pub energy_pj: f64,
    /// Latency of one tile of this type, in cycles.
    pub latency_cycles: f64,
    /// MAC operations of one tile of this type.
    pub macs: u64,
    /// Access breakdown of one tile: activations (I/O) of the layers.
    pub activation_access: AccessBreakdown,
    /// Access breakdown of one tile: weights.
    pub weight_access: AccessBreakdown,
    /// Access breakdown of one tile: data copy actions.
    pub copy_access: AccessBreakdown,
    /// Energy summary of one tile.
    pub energy_summary: EnergySummary,
    /// Whether any single-layer mapping search inside this tile type ran out
    /// of its deterministic work budget and returned a best-so-far mapping
    /// (see [`defines_mapping::Budget`]). `false` under unlimited budgets.
    pub degraded: bool,
}

/// The cost of one stack of fused layers across all its tiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackCost {
    /// The stack.
    pub stack: Stack,
    /// Number of tiles the stack's output was partitioned into.
    pub num_tiles: u64,
    /// The unique tile types and their per-tile costs.
    pub tile_types: Vec<TileTypeCost>,
    /// Total energy of the stack, in pJ.
    pub energy_pj: f64,
    /// Total latency of the stack, in cycles.
    pub latency_cycles: f64,
    /// Total MAC operations.
    pub macs: u64,
    /// Aggregated activation accesses.
    pub activation_access: AccessBreakdown,
    /// Aggregated weight accesses.
    pub weight_access: AccessBreakdown,
    /// Aggregated data-copy accesses.
    pub copy_access: AccessBreakdown,
    /// Aggregated energy summary.
    pub energy_summary: EnergySummary,
    /// Whether any tile type of this stack is budget-degraded (OR over
    /// [`TileTypeCost::degraded`]): the reported cost is exact for the
    /// mappings that were searched, but a larger budget might find better
    /// mappings.
    pub degraded: bool,
}

impl StackCost {
    /// Number of distinct tile types (a proxy for code/control complexity,
    /// Fig. 6).
    pub fn tile_type_count(&self) -> usize {
        self.tile_types.len()
    }
}

/// The cost of a full network under one scheduling strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkCost {
    /// Per-stack results.
    pub stacks: Vec<StackCost>,
    /// Total energy, in pJ.
    pub energy_pj: f64,
    /// Total latency, in cycles.
    pub latency_cycles: f64,
    /// Total MAC operations.
    pub macs: u64,
    /// Aggregated activation accesses.
    pub activation_access: AccessBreakdown,
    /// Aggregated weight accesses.
    pub weight_access: AccessBreakdown,
    /// Aggregated data-copy accesses.
    pub copy_access: AccessBreakdown,
    /// Aggregated energy summary.
    pub energy_summary: EnergySummary,
    /// Whether any stack is budget-degraded (OR over
    /// [`StackCost::degraded`]).
    pub degraded: bool,
}

impl NetworkCost {
    /// Builds the network cost by summing stack costs.
    pub fn from_stacks(stacks: Vec<StackCost>) -> Self {
        let mut energy = 0.0;
        let mut latency = 0.0;
        let mut macs = 0;
        let mut activation = AccessBreakdown::new();
        let mut weight = AccessBreakdown::new();
        let mut copy = AccessBreakdown::new();
        let mut summary = EnergySummary::default();
        let mut degraded = false;
        for s in &stacks {
            energy += s.energy_pj;
            latency += s.latency_cycles;
            macs += s.macs;
            activation.merge(&s.activation_access);
            weight.merge(&s.weight_access);
            copy.merge(&s.copy_access);
            summary.accumulate(&s.energy_summary);
            degraded |= s.degraded;
        }
        Self {
            stacks,
            energy_pj: energy,
            latency_cycles: latency,
            macs,
            activation_access: activation,
            weight_access: weight,
            copy_access: copy,
            energy_summary: summary,
            degraded,
        }
    }

    /// Energy in millijoules (the unit used by the paper's figures).
    pub fn energy_mj(&self) -> f64 {
        self.energy_pj * 1e-9
    }

    /// Latency in millions of cycles (the unit used by the paper's figures).
    pub fn latency_mcycles(&self) -> f64 {
        self.latency_cycles * 1e-6
    }

    /// Energy-delay product in pJ · cycles.
    pub fn edp(&self) -> f64 {
        self.energy_pj * self.latency_cycles
    }

    /// Total accesses of one data class.
    pub fn access_of(&self, class: DataClass) -> &AccessBreakdown {
        match class {
            DataClass::Activation => &self.activation_access,
            DataClass::Weight => &self.weight_access,
            DataClass::DataCopy => &self.copy_access,
        }
    }

    /// Total bytes moved at a given memory level, across all data classes.
    pub fn level_traffic_bytes(&self, level: MemoryLevelId) -> f64 {
        DataClass::ALL
            .iter()
            .map(|&c| self.access_of(c).level_total(level).total_bytes())
            .sum()
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_traffic_bytes(&self, acc: &Accelerator) -> f64 {
        self.level_traffic_bytes(acc.hierarchy().dram_id())
    }

    /// Total traffic of one operand across all levels and data classes.
    pub fn operand_traffic_bytes(&self, operand: Operand) -> f64 {
        DataClass::ALL
            .iter()
            .map(|&c| self.access_of(c).operand_total(operand).total_bytes())
            .sum()
    }

    /// Memory energy caused by activations (including data copies), in pJ —
    /// the quantity an "activation-only" optimizer would see (Fig. 18(c)).
    pub fn activation_energy_pj(&self) -> f64 {
        self.energy_summary.activation_memory_pj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defines_arch::zoo;

    fn dummy_breakdown(
        level: MemoryLevelId,
        operand: Operand,
        reads: f64,
        writes: f64,
    ) -> AccessBreakdown {
        let mut b = AccessBreakdown::new();
        b.add_reads(level, operand, reads);
        b.add_writes(level, operand, writes);
        b
    }

    #[test]
    fn energy_summary_splits_dram_and_on_chip() {
        let acc = zoo::meta_proto_like_df();
        let dram = acc.hierarchy().dram_id();
        let lb = acc.hierarchy().level_id_named("LB_IO").unwrap();
        let act = dummy_breakdown(lb, Operand::Input, 1000.0, 0.0);
        let w = dummy_breakdown(dram, Operand::Weight, 1000.0, 0.0);
        let copies = AccessBreakdown::new();
        let s = energy_summary(&acc, 10.0, &act, &w, &copies);
        assert!(s.dram_pj > s.on_chip_pj, "DRAM must dominate: {s:?}");
        assert!(s.weight_memory_pj > 0.0);
        assert!(s.activation_memory_pj > 0.0);
        assert_eq!(s.copy_pj, 0.0);
        assert!((s.total_pj() - (10.0 + s.dram_pj + s.on_chip_pj)).abs() < 1e-9);
    }

    #[test]
    fn summary_accumulate_and_scale() {
        let a = EnergySummary {
            mac_pj: 1.0,
            dram_pj: 2.0,
            on_chip_pj: 3.0,
            weight_memory_pj: 1.5,
            activation_memory_pj: 3.5,
            copy_pj: 0.5,
        };
        let mut b = a;
        b.accumulate(&a);
        assert_eq!(b.total_pj(), 2.0 * a.total_pj());
        let c = a.scaled(3.0);
        assert_eq!(c.mac_pj, 3.0);
        assert_eq!(c.copy_pj, 1.5);
    }

    #[test]
    fn network_cost_sums_stacks() {
        let stack = Stack::new(vec![defines_workload::LayerId(0)]);
        let make = |e: f64, l: f64| StackCost {
            stack: stack.clone(),
            num_tiles: 1,
            tile_types: vec![],
            energy_pj: e,
            latency_cycles: l,
            macs: 100,
            activation_access: AccessBreakdown::new(),
            weight_access: AccessBreakdown::new(),
            copy_access: AccessBreakdown::new(),
            energy_summary: EnergySummary {
                mac_pj: e,
                ..Default::default()
            },
            degraded: false,
        };
        let net = NetworkCost::from_stacks(vec![make(10.0, 5.0), make(20.0, 7.0)]);
        assert_eq!(net.energy_pj, 30.0);
        assert_eq!(net.latency_cycles, 12.0);
        assert_eq!(net.macs, 200);
        assert_eq!(net.edp(), 30.0 * 12.0);
        assert!((net.energy_mj() - 30.0e-9).abs() < 1e-18);
    }
}
