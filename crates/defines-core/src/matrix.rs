//! The case-study matrix runner: every `{accelerator} × {workload} × {fuse
//! policy}` cell of DeFiNES' §V case study 2 (Fig. 13–16), evaluated in **one
//! flattened engine run** sharing a single [`MappingCache`].
//!
//! The paper's headline multi-accelerator comparison ranks five DF-flexible
//! architectures across the case-study networks. [`run_matrix`] generalizes
//! that grid to arbitrary axes: each cell is a full schedule search
//! ([`Explorer::best_schedule`]) under its fuse policy, the cells fan out
//! over the outer [`SweepEngine`] work queue (each cell's inner search runs
//! sequentially, so the machine is never oversubscribed), and every cost
//! model shares one mapping cache — keyed by accelerator fingerprint, so
//! repeated sub-problems are searched once per *hardware*, not once per
//! cell.
//!
//! The resulting [`MatrixReport`] carries per-cell energy / latency / EDP,
//! the per-accelerator best strategy per workload, and a Fig.-13-style
//! ranking table; [`MatrixReport::to_markdown`] renders it for humans and
//! the [`Serialize`] impl for machines (the `matrix` CLI writes both).

use crate::checkpoint;
use crate::evaluate::{DfCostModel, EvaluationError};
use crate::explore::{Explorer, OptimizeTarget, ScheduleResult};
use crate::fuse::FusePolicy;
use crate::stack::partition_into_stacks;
use crate::strategy::OverlapMode;
use defines_arch::Accelerator;
use defines_engine::{EngineConfig, SweepEngine, SweepStats};
use defines_mapping::MappingCache;
use defines_telemetry::{failpoint, Counter, MetricsSnapshot};
use defines_workload::Network;
use serde::{Serialize, Value};
use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// Cells whose evaluation panicked (caught and isolated into
/// [`CellOutcome::error`]) — includes injected faults and missed deadlines.
static CELLS_FAILED: Counter = Counter::new("fault.cells_failed");
/// Cells spliced into the report from a checkpoint instead of re-running.
static CELLS_RESUMED: Counter = Counter::new("fault.cells_resumed");

/// Errors produced by [`run_matrix`].
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// The matrix axes themselves are unusable (an empty axis, duplicate
    /// names that would make cells ambiguous, …).
    Config(String),
    /// A cell failed upfront evaluation validation.
    Evaluation(EvaluationError),
    /// The checkpoint file is unreadable, corrupt, or records a different
    /// run configuration (see [`crate::checkpoint`]).
    Checkpoint(String),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::Config(msg) => write!(f, "invalid matrix: {msg}"),
            MatrixError::Evaluation(e) => write!(f, "matrix cell cannot be evaluated: {e}"),
            MatrixError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
        }
    }
}

impl std::error::Error for MatrixError {}

impl From<EvaluationError> for MatrixError {
    fn from(e: EvaluationError) -> Self {
        MatrixError::Evaluation(e)
    }
}

/// How the matrix executes.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// The outer engine configuration: cells fan out over this work queue
    /// (each cell's inner schedule search is forced sequential).
    pub engine: EngineConfig,
    /// The mapping cache shared by every cell's cost model. Pass a fresh
    /// cache (the default) or a pre-warmed one from earlier sweeps.
    pub cache: MappingCache,
    /// Whether the cells use the fast symmetry-pruned temporal-mapping
    /// search (default) or the exhaustive reference scan.
    pub fast_mapper: bool,
    /// Worker threads each cell's branch-and-bound mapping search may fan
    /// out to per problem (`1`, the default, keeps it sequential; any value
    /// produces bit-identical cells). Cells recurring the same canonical
    /// mapping problem additionally share incumbent bounds through the
    /// matrix cache, independent of this knob.
    pub search_threads: usize,
    /// Deterministic work budget applied to every cell's searches (mapping
    /// orderings and fusion-DP relaxations, see [`defines_mapping::Budget`]).
    /// Exhausting it degrades the cell to its best-so-far result
    /// ([`CellOutcome::degraded`]) — bit-identically at any thread count,
    /// never by wall clock. Unlimited by default.
    pub budget: defines_mapping::Budget,
    /// Hard wall-clock deadline measured from the start of the run. A cell
    /// whose evaluation *begins* after the deadline expired is marked failed
    /// (`"matrix deadline … exceeded"` in [`CellOutcome::error`]) without
    /// being searched. The deadline never reaches inside a running search,
    /// so every cell that does complete is bit-identical to an undeadlined
    /// run — wall clock decides only *which* cells fail, never their values.
    /// Combine with [`MatrixConfig::checkpoint`] to finish the missed cells
    /// in a later run.
    pub deadline: Option<Duration>,
    /// Append-only JSONL checkpoint path (see [`crate::checkpoint`] for the
    /// format). A missing or empty file is created and each finished cell is
    /// appended as it completes; an existing file is *resumed*: its header
    /// must match this run's configuration, recorded cells are spliced into
    /// the report without re-running, and newly finished cells are appended.
    /// Failed cells are never recorded, so resuming retries them.
    pub checkpoint: Option<std::path::PathBuf>,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        Self {
            engine: EngineConfig::parallel(),
            cache: MappingCache::new(),
            fast_mapper: true,
            search_threads: 1,
            budget: defines_mapping::Budget::default(),
            deadline: None,
            checkpoint: None,
        }
    }
}

/// One stack of a cell's chosen schedule, with layer names resolved so the
/// report stands alone without the `Network`.
#[derive(Debug, Clone, PartialEq)]
pub struct CellStack {
    /// The layer names of the stack, in topological order.
    pub layers: Vec<String>,
    /// The chosen tile size, rendered (`"(60, 72)"` or `"full feature map"`).
    pub tile: String,
    /// The chosen overlap storing mode, rendered.
    pub mode: String,
    /// The stack's contribution to the optimization target.
    pub value: f64,
}

/// One evaluated `(accelerator, workload, fuse policy)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// The accelerator's name.
    pub accelerator: String,
    /// The accelerator's structural fingerprint (the mapping-cache key
    /// space the cell evaluated in).
    pub fingerprint: u64,
    /// The workload's name.
    pub workload: String,
    /// The fuse policy the cell's schedule was searched under.
    pub policy: FusePolicy,
    /// The policy's unique axis label: its CLI keyword, suffixed `#2`, `#3`,
    /// … when several distinct configurations share a keyword (two
    /// different [`FusePolicy::Search`] setups, say).
    pub fuse: String,
    /// The cell's run label (`"workload @ accelerator [policy]"`), also
    /// carried on the inner engine run's [`SweepStats`].
    pub label: String,
    /// The schedule's value under the matrix's optimization target.
    pub value: f64,
    /// Total energy of the chosen schedule, in pJ.
    pub energy_pj: f64,
    /// Total latency of the chosen schedule, in cycles.
    pub latency_cycles: f64,
    /// Energy-delay product of the chosen schedule (pJ · cycles).
    pub edp: f64,
    /// Number of candidate stacks that entered the cell's schedule search.
    pub candidates: usize,
    /// Whether any search inside the cell exhausted its deterministic work
    /// budget ([`defines_mapping::Budget`]) and returned a best-so-far
    /// result (see [`ScheduleResult::degraded`]). Always `false` under the
    /// default unlimited budget.
    pub degraded: bool,
    /// The panic message, if the cell's evaluation failed instead of
    /// producing a schedule — a caught panic, an injected fault, or a missed
    /// [`MatrixConfig::deadline`]. Failed cells carry NaN values (rendered
    /// `null` in JSON), an empty stack list, and are skipped by the ranking;
    /// sibling cells are bit-identical to a run without the failure.
    pub error: Option<String>,
    /// The chosen stack partition with its per-stack choices.
    pub stacks: Vec<CellStack>,
    /// Statistics of the cell's inner engine run. The per-cell wall-clock
    /// time is zeroed (it is non-deterministic and the shared cache skews it
    /// anyway), so cell records — including checkpoint lines — are exactly
    /// reproducible; the outer [`MatrixReport::stats`] keeps the real
    /// elapsed time.
    pub stats: SweepStats,
}

/// One row of the Fig.-13-style accelerator ranking: accelerators ordered by
/// the sum, over workloads, of their best cell value.
#[derive(Debug, Clone, PartialEq)]
pub struct RankingEntry {
    /// 1-based rank (1 = best).
    pub rank: usize,
    /// The accelerator's name.
    pub accelerator: String,
    /// Sum over workloads of the accelerator's best cell value.
    pub total_value: f64,
    /// `total_value` relative to the rank-1 accelerator (1.0 for the best).
    pub ratio_to_best: f64,
    /// Per workload (in axis order), the index into
    /// [`MatrixReport::cells`] of this accelerator's best *successful* cell.
    /// A workload whose cells all failed contributes no entry here and
    /// `f64::MAX` to `total_value`, ranking the accelerator last.
    pub best_cells: Vec<usize>,
}

/// The full result of a matrix run.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixReport {
    /// The optimization target every cell minimized.
    pub target: OptimizeTarget,
    /// The accelerator axis, in submission order.
    pub accelerators: Vec<String>,
    /// The workload axis, in submission order.
    pub workloads: Vec<String>,
    /// The fuse-policy axis (CLI keywords), in submission order.
    pub policies: Vec<String>,
    /// Every cell, accelerator-major (then workload, then policy) — exactly
    /// the submission order of the flattened engine run.
    pub cells: Vec<CellOutcome>,
    /// The accelerator ranking, best first.
    pub ranking: Vec<RankingEntry>,
    /// Statistics of the single flattened outer engine run (one point per
    /// cell), with the shared mapping cache's whole-run snapshot attached.
    pub stats: SweepStats,
    /// The merged statistics of all inner per-cell schedule searches: how
    /// many design points the matrix evaluated in total.
    pub inner_stats: SweepStats,
    /// Delta of the global telemetry metrics over this run (mapping-cache
    /// hit/miss/canonical counters, branch-and-bound prune counters, …).
    /// Empty unless the process enabled metrics recording
    /// ([`defines_telemetry::set_metrics`]) — the `matrix` CLI always does.
    pub metrics: MetricsSnapshot,
}

impl MatrixReport {
    /// Looks a cell up by its axis names (`policy` is the unique axis label
    /// listed in [`MatrixReport::policies`]).
    pub fn cell(&self, accelerator: &str, workload: &str, policy: &str) -> Option<&CellOutcome> {
        self.cells
            .iter()
            .find(|c| c.accelerator == accelerator && c.workload == workload && c.fuse == policy)
    }

    /// Renders the report as a markdown document: a Fig.-13-style ranking
    /// table (one row per accelerator), the per-cell grid, and the engine /
    /// cache statistics.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# DeFiNES case-study matrix\n\n");
        out.push_str(&format!(
            "- target: **{}**\n- grid: {} accelerators × {} workloads × {} fuse policies \
             = {} cells\n",
            self.target,
            self.accelerators.len(),
            self.workloads.len(),
            self.policies.len(),
            self.cells.len(),
        ));
        out.push_str(&format!(
            "- outer engine: {} cells evaluated in {:.1} ms on {} threads (one flattened \
             run); inner searches evaluated {} design points\n",
            self.stats.evaluated,
            self.stats.elapsed.as_secs_f64() * 1e3,
            self.stats.threads,
            self.inner_stats.evaluated,
        ));
        let failed = self.cells.iter().filter(|c| c.error.is_some()).count();
        let degraded = self.cells.iter().filter(|c| c.degraded).count();
        if failed > 0 || degraded > 0 {
            out.push_str(&format!(
                "- faults: {failed} cells failed, {degraded} budget-degraded\n"
            ));
        }
        if let Some(cache) = &self.stats.cache {
            out.push_str(&format!(
                "- shared mapping cache: {} sub-problems, {} hits / {} misses \
                 ({:.1}% hit rate, {} canonical)\n",
                cache.entries,
                cache.hits,
                cache.misses,
                cache.hit_rate() * 100.0,
                cache.canonical_hits,
            ));
        }
        if !self.metrics.is_empty() {
            let get = |name: &str| self.metrics.get(name).unwrap_or(0);
            let hits = get("mapping.cache.hits");
            let misses = get("mapping.cache.misses");
            let lookups = hits + misses;
            let hit_rate = if lookups > 0 {
                hits as f64 / lookups as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "- mapping cache (metrics): {hits} hits / {misses} misses ({:.1}% hit \
                 rate, {} canonical)\n",
                hit_rate * 100.0,
                get("mapping.cache.canonical_hits"),
            ));
            out.push_str(&format!(
                "- mapping search: {} orderings evaluated, {} pruned by bound, \
                 {} pruned by symmetry\n",
                get("search.orderings_evaluated"),
                get("search.pruned_bound"),
                get("search.pruned_symmetry"),
            ));
            out.push_str("\n## Metrics\n\n| metric | value |\n|---|---:|\n");
            for metric in &self.metrics.values {
                out.push_str(&format!("| `{}` | {} |\n", metric.name, metric.value));
            }
        }

        out.push_str(&format!(
            "\n## Ranking (best strategy per workload, Fig. 13 style)\n\n\
             | rank | accelerator | total {} | vs best | best strategy per workload |\n\
             |---|---|---|---|---|\n",
            self.target
        ));
        for entry in &self.ranking {
            let best: Vec<String> = entry
                .best_cells
                .iter()
                .map(|&idx| {
                    let cell = &self.cells[idx];
                    let detail = if cell.stacks.len() == 1 {
                        format!("tile {} {}", cell.stacks[0].tile, cell.stacks[0].mode)
                    } else {
                        format!("{} stacks", cell.stacks.len())
                    };
                    format!("{}: {} ({detail})", cell.workload, cell.fuse)
                })
                .collect();
            // Three decimals: case-study gaps are often under 1%, and a
            // rank-2 row printed as "1.00x" would read as tied with rank 1.
            out.push_str(&format!(
                "| {} | {} | {:.4e} | {:.3}x | {} |\n",
                entry.rank,
                entry.accelerator,
                entry.total_value,
                entry.ratio_to_best,
                best.join("; "),
            ));
        }

        out.push_str(&format!(
            "\n## Cells\n\n\
             | accelerator | workload | fuse | energy (mJ) | latency (Mcycles) | \
             EDP (pJ·cycles) | {} |\n|---|---|---|---|---|---|---|\n",
            self.target
        ));
        for cell in &self.cells {
            if cell.error.is_some() {
                out.push_str(&format!(
                    "| {} | {} | {} | — | — | — | — |\n",
                    cell.accelerator, cell.workload, cell.fuse,
                ));
                continue;
            }
            // A `*` marks budget-degraded cells (best-so-far, not optimum).
            let mark = if cell.degraded { "\\*" } else { "" };
            out.push_str(&format!(
                "| {} | {} | {} | {:.3} | {:.3} | {:.4e} | {:.4e}{mark} |\n",
                cell.accelerator,
                cell.workload,
                cell.fuse,
                cell.energy_pj / 1e9,
                cell.latency_cycles / 1e6,
                cell.edp,
                cell.value,
            ));
        }
        if failed > 0 {
            out.push_str("\n## Failed cells\n\n");
            for cell in self.cells.iter().filter(|c| c.error.is_some()) {
                out.push_str(&format!(
                    "- **{}**: {}\n",
                    cell.label,
                    cell.error.as_deref().unwrap_or(""),
                ));
            }
        }
        out
    }
}

impl Serialize for CellStack {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "layers".into(),
                Value::Array(self.layers.iter().map(|l| Value::Str(l.clone())).collect()),
            ),
            ("tile".into(), Value::Str(self.tile.clone())),
            ("mode".into(), Value::Str(self.mode.clone())),
            ("value".into(), Value::F64(self.value)),
        ])
    }
}

impl Serialize for CellOutcome {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("accelerator".into(), Value::Str(self.accelerator.clone())),
            ("fingerprint".into(), Value::U64(self.fingerprint)),
            ("workload".into(), Value::Str(self.workload.clone())),
            ("fuse".into(), Value::Str(self.fuse.clone())),
            // The full policy (Display form carries the Search parameters),
            // so report consumers can tell which configuration a label like
            // "search#2" stands for.
            ("policy".into(), Value::Str(self.policy.to_string())),
            ("label".into(), Value::Str(self.label.clone())),
            ("value".into(), Value::F64(self.value)),
            ("energy_pj".into(), Value::F64(self.energy_pj)),
            ("latency_cycles".into(), Value::F64(self.latency_cycles)),
            ("edp".into(), Value::F64(self.edp)),
            ("candidates".into(), Value::U64(self.candidates as u64)),
            ("degraded".into(), Value::Bool(self.degraded)),
            ("error".into(), self.error.to_value()),
            (
                "stacks".into(),
                Value::Array(self.stacks.iter().map(Serialize::to_value).collect()),
            ),
            ("stats".into(), self.stats.to_value()),
        ])
    }
}

impl Serialize for RankingEntry {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("rank".into(), Value::U64(self.rank as u64)),
            ("accelerator".into(), Value::Str(self.accelerator.clone())),
            ("total_value".into(), Value::F64(self.total_value)),
            ("ratio_to_best".into(), Value::F64(self.ratio_to_best)),
            (
                "best_cells".into(),
                Value::Array(
                    self.best_cells
                        .iter()
                        .map(|&i| Value::U64(i as u64))
                        .collect(),
                ),
            ),
        ])
    }
}

impl Serialize for MatrixReport {
    fn to_value(&self) -> Value {
        let names =
            |items: &[String]| Value::Array(items.iter().map(|n| Value::Str(n.clone())).collect());
        Value::Object(vec![
            ("target".into(), Value::Str(self.target.to_string())),
            ("accelerators".into(), names(&self.accelerators)),
            ("workloads".into(), names(&self.workloads)),
            ("policies".into(), names(&self.policies)),
            (
                "cells".into(),
                Value::Array(self.cells.iter().map(Serialize::to_value).collect()),
            ),
            (
                "ranking".into(),
                Value::Array(self.ranking.iter().map(Serialize::to_value).collect()),
            ),
            ("stats".into(), self.stats.to_value()),
            ("inner_stats".into(), self.inner_stats.to_value()),
            ("metrics".into(), self.metrics.to_value()),
        ])
    }
}

/// Checks an axis for emptiness and ambiguous (duplicate) names.
fn validate_axis(kind: &str, names: &[String]) -> Result<(), MatrixError> {
    if names.is_empty() {
        return Err(MatrixError::Config(format!("the {kind} axis is empty")));
    }
    let mut seen = std::collections::BTreeSet::new();
    for name in names {
        if !seen.insert(name.as_str()) {
            return Err(MatrixError::Config(format!(
                "duplicate {kind} '{name}': cells are keyed by name, so each {kind} \
                 may appear only once"
            )));
        }
    }
    Ok(())
}

/// Runs the full `{accelerators} × {workloads} × {policies}` grid as one
/// flattened engine run sharing one mapping cache, streaming each finished
/// cell to `on_cell` in completion order.
///
/// * `tile_grid` — the tile sizes every cell's schedule search draws from;
///   `None` uses each workload's default case-study grid
///   ([`Explorer::default_tile_grid`]).
/// * `modes` — the overlap storing modes searched per stack.
/// * `target` — the scalar objective every cell minimizes, and the ranking
///   metric.
///
/// Cells are submitted accelerator-major (then workload, then policy), and
/// [`MatrixReport::cells`] preserves that order regardless of completion
/// order or thread count.
///
/// # Errors
///
/// Returns [`MatrixError::Config`] for empty or ambiguous axes and
/// [`MatrixError::Evaluation`] when a cell's workload/partition fails
/// upfront validation (the flattened run itself then never starts).
#[allow(clippy::too_many_arguments)]
pub fn run_matrix(
    accelerators: &[Accelerator],
    workloads: &[Network],
    policies: &[FusePolicy],
    tile_grid: Option<&[(u64, u64)]>,
    modes: &[OverlapMode],
    target: OptimizeTarget,
    config: &MatrixConfig,
    mut on_cell: impl FnMut(&CellOutcome),
) -> Result<MatrixReport, MatrixError> {
    let acc_names: Vec<String> = accelerators.iter().map(|a| a.name().to_string()).collect();
    let wl_names: Vec<String> = workloads.iter().map(|w| w.name().to_string()).collect();
    // Fuse-policy axis labels: the CLI keyword, suffixed `#2`, `#3`, … when
    // several *distinct* configurations share a keyword (e.g. two Search
    // setups with different spans). Truly identical policies would make
    // cells ambiguous and are rejected like any duplicate axis entry.
    let mut policy_names: Vec<String> = Vec::with_capacity(policies.len());
    for (i, policy) in policies.iter().enumerate() {
        if policies[..i].contains(policy) {
            return Err(MatrixError::Config(format!(
                "duplicate fuse policy '{}': cells are keyed by name, so each fuse policy \
                 may appear only once",
                policy.keyword()
            )));
        }
        let same_keyword = policies[..i]
            .iter()
            .filter(|p| p.keyword() == policy.keyword())
            .count();
        policy_names.push(if same_keyword == 0 {
            policy.keyword().to_string()
        } else {
            format!("{}#{}", policy.keyword(), same_keyword + 1)
        });
    }
    validate_axis("accelerator", &acc_names)?;
    validate_axis("workload", &wl_names)?;
    validate_axis("fuse policy", &policy_names)?;
    if modes.is_empty() {
        return Err(MatrixError::Config(
            "no overlap storing modes to search".into(),
        ));
    }

    // One cost model per accelerator, all sharing the matrix's mapping
    // cache. The cache key includes the accelerator fingerprint, so sharing
    // across hardware is sound — and a file-loaded twin of a builtin
    // accelerator hits the same entries.
    let models: Vec<DfCostModel<'_>> = accelerators
        .iter()
        .map(|acc| {
            let model = DfCostModel::new(acc).with_shared_cache(config.cache.clone());
            let model = if config.fast_mapper {
                model.with_fast_mapper()
            } else {
                model
            };
            // After the mapper choice: `with_fast_mapper` replaces the whole
            // mapper configuration, thread count included.
            model
                .with_search_threads(config.search_threads)
                .with_search_budget(config.budget)
        })
        .collect();

    // Per-workload tile grids: the caller's grid, or the default.
    let grids: Vec<Vec<(u64, u64)>> = workloads
        .iter()
        .map(|net| match tile_grid {
            Some(grid) => grid.to_vec(),
            None => Explorer::default_tile_grid(net),
        })
        .collect();

    // Upfront validation: every error a cell evaluation could produce is
    // surfaced here, so the engine's evaluate closure is infallible.
    for net in workloads {
        net.validate().map_err(EvaluationError::Network)?;
    }
    for acc in accelerators {
        for net in workloads {
            for policy in policies {
                if let Some(fuse) = policy.fixed_fuse_depth() {
                    let stacks = partition_into_stacks(net, acc, &fuse);
                    crate::evaluate::validate_stacks(net, &stacks)?;
                }
            }
        }
    }

    // The flattened cell list, accelerator-major.
    let mut points: Vec<(usize, usize, usize)> =
        Vec::with_capacity(accelerators.len() * workloads.len() * policies.len());
    for ai in 0..accelerators.len() {
        for wi in 0..workloads.len() {
            for pi in 0..policies.len() {
                points.push((ai, wi, pi));
            }
        }
    }
    let cell_index =
        |ai: usize, wi: usize, pi: usize| (ai * workloads.len() + wi) * policies.len() + pi;

    let cell_label = |&(ai, wi, pi): &(usize, usize, usize)| {
        format!(
            "{} @ {} [{}]",
            wl_names[wi], acc_names[ai], policy_names[pi]
        )
    };

    // ---- Checkpoint: resume completed cells, open the file for appends ----
    // The header binds the file to this exact run; anything that shapes cell
    // results (beyond the axes themselves) is folded into the fingerprint.
    // `search_threads` is deliberately excluded: results are thread-independent.
    let mapper_fingerprint = {
        let cfg = models[0].mapper_config();
        let mut h = checkpoint::Fnv::new();
        h.write_u64(cfg.objective as u64);
        h.write_u64(cfg.max_orderings as u64);
        h.write_u64(cfg.budget.max_orderings);
        h.write_u64(cfg.budget.max_dp_nodes);
        h.finish()
    };
    let acc_keys: Vec<(String, u64)> = accelerators
        .iter()
        .map(|a| (a.name().to_string(), a.fingerprint()))
        .collect();
    let header = checkpoint::live_header(
        target,
        &acc_keys,
        &wl_names,
        policies,
        &policy_names,
        &grids,
        modes,
        mapper_fingerprint,
    );
    // Before the resume splice: the `fault.cells_resumed` increments below
    // must survive the report's since-delta.
    let metrics_before = defines_telemetry::snapshot();
    let mut resumed: HashMap<(String, u64, String, String), CellOutcome> = HashMap::new();
    let mut writer: Option<checkpoint::Writer> = None;
    if let Some(path) = &config.checkpoint {
        let populated = std::fs::metadata(path)
            .map(|m| m.len() > 0)
            .unwrap_or(false);
        if populated {
            let ckpt = checkpoint::load(path)?;
            ckpt.header.validate_against(&header)?;
            for v in &ckpt.cells {
                let cell =
                    checkpoint::cell_from_value(v, policies, &policy_names).map_err(|why| {
                        MatrixError::Checkpoint(format!("checkpoint '{}': {why}", path.display()))
                    })?;
                let key = (
                    cell.accelerator.clone(),
                    cell.fingerprint,
                    cell.workload.clone(),
                    cell.fuse.clone(),
                );
                if !acc_keys.contains(&(key.0.clone(), key.1)) || !wl_names.contains(&key.2) {
                    return Err(MatrixError::Checkpoint(format!(
                        "checkpoint '{}' records cell '{}' which is not on this grid",
                        path.display(),
                        cell.label
                    )));
                }
                resumed.insert(key, cell);
            }
            // Rewrites the valid prefix (dropping any torn tail) and keeps
            // appending from there.
            writer = Some(checkpoint::Writer::resume(path, &header, &ckpt.cells)?);
        } else {
            writer = Some(checkpoint::Writer::create(path, &header)?);
        }
    }

    // Splice resumed cells straight into their slots; only the rest run.
    let mut slots: Vec<Option<CellOutcome>> = (0..points.len()).map(|_| None).collect();
    let mut pending: Vec<(usize, usize, usize)> = Vec::with_capacity(points.len());
    for &(ai, wi, pi) in &points {
        let key = (
            acc_names[ai].clone(),
            accelerators[ai].fingerprint(),
            wl_names[wi].clone(),
            policy_names[pi].clone(),
        );
        match resumed.remove(&key) {
            Some(cell) => {
                CELLS_RESUMED.incr();
                slots[cell_index(ai, wi, pi)] = Some(cell);
            }
            None => pending.push((ai, wi, pi)),
        }
    }
    let resumed_cells = points.len() - pending.len();

    let engine = SweepEngine::new(config.engine.with_pruning(false))
        .with_label("matrix")
        .with_label_detail(if resumed_cells == 0 {
            format!("{} cells", pending.len())
        } else {
            format!("{} cells ({resumed_cells} resumed)", pending.len())
        });
    let cache_before = config.cache.stats();

    // The opt-in deadline only gates cell *starts* — it never reaches inside
    // a search, so completed cells stay bit-identical.
    // lint:allow(wall-clock, deadline gates cell starts only, never results)
    let started = std::time::Instant::now();
    let evaluate = |point: &(usize, usize, usize)| -> ScheduleResult {
        let &(ai, wi, pi) = point;
        failpoint!("matrix.cell");
        if let Some(deadline) = config.deadline {
            // A panic here is caught by the engine's per-point isolation and
            // becomes this cell's `Failed` record — never a lost run.
            // lint:allow(wall-clock, same opt-in deadline gate as above)
            if started.elapsed() >= deadline {
                panic!(
                    "matrix deadline of {:.3}s exceeded before the cell started",
                    deadline.as_secs_f64()
                );
            }
        }
        // Each cell runs its inner schedule search sequentially: the outer
        // engine already keeps every core busy with one cell per worker.
        Explorer::new(&models[ai])
            .with_engine_config(EngineConfig::sequential())
            .with_run_label(cell_label(point))
            .best_schedule(&workloads[wi], &grids[wi], modes, target, &policies[pi])
            .expect("matrix cells are validated before the engine run")
    };
    let objective = |&(ai, _, _): &(usize, usize, usize), schedule: &ScheduleResult| {
        schedule.value(target, &accelerators[ai])
    };

    let mut checkpoint_error: Option<MatrixError> = None;
    let stats = engine.run(
        &pending,
        &evaluate,
        &objective,
        None::<&fn(&(usize, usize, usize)) -> f64>,
        |record| {
            let (ai, wi, pi) = record.point;
            let label = cell_label(&record.point);
            let outcome = match record.outcome {
                defines_engine::Outcome::Evaluated {
                    cost: schedule,
                    value,
                } => {
                    let net = &workloads[wi];
                    // The inner run attached a cache delta measured over its
                    // own time window — but the cache is shared by
                    // concurrently running cells, so that window also counts
                    // *their* traffic. Only the whole-matrix snapshot on the
                    // outer stats is meaningful; drop the per-cell one
                    // rather than report non-deterministic numbers. The
                    // per-cell wall time is zeroed for the same reason: cell
                    // records (and checkpoint lines) must be exactly
                    // reproducible across runs and thread counts.
                    let mut inner = schedule.stats;
                    inner.cache = None;
                    inner.elapsed = Duration::ZERO;
                    let stacks = schedule
                        .choices
                        .iter()
                        .map(|choice| CellStack {
                            layers: choice
                                .stack
                                .layers
                                .iter()
                                .map(|&l| net.layer(l).name.clone())
                                .collect(),
                            tile: choice.tile.to_string(),
                            mode: choice.mode.to_string(),
                            value: choice.value,
                        })
                        .collect();
                    CellOutcome {
                        accelerator: acc_names[ai].clone(),
                        fingerprint: accelerators[ai].fingerprint(),
                        workload: wl_names[wi].clone(),
                        policy: policies[pi].clone(),
                        fuse: policy_names[pi].clone(),
                        label,
                        value,
                        energy_pj: schedule.cost.energy_pj,
                        latency_cycles: schedule.cost.latency_cycles,
                        edp: schedule.cost.edp(),
                        candidates: schedule.candidates,
                        degraded: schedule.degraded,
                        error: None,
                        stacks,
                        stats: inner,
                    }
                }
                defines_engine::Outcome::Pruned { .. } => {
                    unreachable!("matrix runs never prune")
                }
                // The cell's evaluation panicked (caught by the engine's
                // per-point isolation): record a failed cell with NaN
                // values. Siblings are unaffected and bit-identical to a
                // run without the failure.
                defines_engine::Outcome::Failed { error } => {
                    CELLS_FAILED.incr();
                    CellOutcome {
                        accelerator: acc_names[ai].clone(),
                        fingerprint: accelerators[ai].fingerprint(),
                        workload: wl_names[wi].clone(),
                        policy: policies[pi].clone(),
                        fuse: policy_names[pi].clone(),
                        label: label.clone(),
                        value: f64::NAN,
                        energy_pj: f64::NAN,
                        latency_cycles: f64::NAN,
                        edp: f64::NAN,
                        candidates: 0,
                        degraded: false,
                        error: Some(error),
                        stacks: Vec::new(),
                        stats: SweepStats {
                            label,
                            points: 0,
                            evaluated: 0,
                            pruned: 0,
                            failed: 0,
                            threads: 0,
                            elapsed: Duration::ZERO,
                            cache: None,
                        },
                    }
                }
            };
            // Failed cells are never checkpointed: resuming retries them.
            if outcome.error.is_none() {
                if let Some(w) = writer.as_mut() {
                    if let Err(e) = w.line(&outcome.to_value()) {
                        // Keep computing (the work is not lost for this
                        // process), but surface the first append failure
                        // after the run instead of silently dropping cells
                        // from the checkpoint.
                        checkpoint_error.get_or_insert(e);
                        writer = None;
                    }
                }
            }
            on_cell(&outcome);
            slots[cell_index(ai, wi, pi)] = Some(outcome);
        },
    );
    let stats = stats.with_cache(config.cache.stats().since(&cache_before));
    let metrics = defines_telemetry::snapshot().since(&metrics_before);
    if let Some(e) = checkpoint_error {
        return Err(e);
    }

    let cells: Vec<CellOutcome> = slots
        .into_iter()
        .map(|slot| slot.expect("every cell is either resumed or evaluated exactly once"))
        .collect();
    let inner_stats = SweepStats::merged("matrix cells", cells.iter().map(|c| &c.stats));

    // Fig.-13-style ranking: per accelerator, the best *successful* policy
    // per workload; accelerators ordered by the sum of those best values. An
    // accelerator with a workload whose cells all failed has no defensible
    // total — it ranks last (`f64::MAX`) with the starved workload omitted
    // from `best_cells`.
    let mut totals: Vec<(usize, f64, Vec<usize>)> = (0..accelerators.len())
        .map(|ai| {
            let mut total = 0.0;
            let mut starved = false;
            let mut best_cells = Vec::with_capacity(workloads.len());
            for wi in 0..workloads.len() {
                let best = (0..policies.len())
                    .map(|pi| cell_index(ai, wi, pi))
                    .filter(|&idx| cells[idx].error.is_none())
                    .min_by(|&a, &b| cells[a].value.total_cmp(&cells[b].value));
                match best {
                    Some(best) => {
                        total += cells[best].value;
                        best_cells.push(best);
                    }
                    None => starved = true,
                }
            }
            let total = if starved { f64::MAX } else { total };
            (ai, total, best_cells)
        })
        .collect();
    totals.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    let best_total = totals.first().map(|t| t.1).unwrap_or(0.0);
    let ranking = totals
        .into_iter()
        .enumerate()
        .map(|(i, (ai, total, best_cells))| RankingEntry {
            rank: i + 1,
            accelerator: acc_names[ai].clone(),
            total_value: total,
            ratio_to_best: if best_total > 0.0 {
                total / best_total
            } else {
                1.0
            },
            best_cells,
        })
        .collect();

    Ok(MatrixReport {
        target,
        accelerators: acc_names,
        workloads: wl_names,
        policies: policy_names,
        cells,
        ranking,
        stats,
        inner_stats,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use defines_arch::zoo;
    use defines_workload::{Layer, LayerDims, OpType};

    fn tiny_net(name: &str) -> Network {
        let mut net = Network::new(name);
        let a = net
            .add_layer(
                Layer::new("a", OpType::Conv, LayerDims::conv(8, 3, 32, 32, 3, 3)),
                &[],
            )
            .unwrap();
        net.add_layer(
            Layer::new("b", OpType::Conv, LayerDims::conv(8, 8, 30, 30, 3, 3)),
            &[a],
        )
        .unwrap();
        net
    }

    #[test]
    fn matrix_names_every_cell_in_one_run() {
        let accelerators = [zoo::meta_proto_like_df(), zoo::tpu_like_df()];
        let workloads = [tiny_net("tiny")];
        let policies = [FusePolicy::Auto, FusePolicy::SingleLayerStacks];
        let mut streamed = 0;
        let report = run_matrix(
            &accelerators,
            &workloads,
            &policies,
            Some(&[(8, 8), (30, 30)]),
            &OverlapMode::ALL,
            OptimizeTarget::Energy,
            &MatrixConfig::default(),
            |_| streamed += 1,
        )
        .unwrap();
        assert_eq!(report.cells.len(), 4);
        assert_eq!(streamed, 4);
        // The outer run is one flattened engine run: one point per cell.
        assert_eq!(report.stats.points, 4);
        assert_eq!(report.stats.evaluated, 4);
        assert!(
            report.stats.label.starts_with("matrix"),
            "{}",
            report.stats.label
        );
        // Every cell is named and retrievable by its axis names.
        for acc in ["Meta-proto-like DF", "TPU-like DF"] {
            for policy in ["auto", "single"] {
                let cell = report.cell(acc, "tiny", policy).unwrap();
                assert!(cell.energy_pj > 0.0);
                assert!(cell.latency_cycles > 0.0);
                assert!((cell.edp - cell.energy_pj * cell.latency_cycles).abs() < 1e-3);
                assert!(!cell.stacks.is_empty());
                assert_eq!(cell.label, format!("tiny @ {acc} [{policy}]"));
                // The inner engine run carries the cell label (plus the
                // schedule search's own candidate-count detail).
                assert!(
                    cell.stats.label.starts_with(&cell.label),
                    "{}",
                    cell.stats.label
                );
            }
        }
        // Submission order is accelerator-major.
        assert_eq!(report.cells[0].accelerator, "Meta-proto-like DF");
        assert_eq!(report.cells[0].policy.keyword(), "auto");
        assert_eq!(report.cells[1].policy.keyword(), "single");
        assert_eq!(report.cells[2].accelerator, "TPU-like DF");
        // The shared cache served the run.
        let cache = report.stats.cache.as_ref().unwrap();
        assert!(cache.hits > 0, "cells must share the mapping cache");
        // Inner stats aggregate the per-cell runs.
        assert_eq!(
            report.inner_stats.points,
            report.cells.iter().map(|c| c.stats.points).sum::<usize>()
        );
    }

    #[test]
    fn ranking_orders_accelerators_by_best_policy_total() {
        let accelerators = [zoo::meta_proto_like_df(), zoo::tpu_like()];
        let workloads = [tiny_net("tiny")];
        let policies = [FusePolicy::Auto];
        let report = run_matrix(
            &accelerators,
            &workloads,
            &policies,
            Some(&[(8, 8)]),
            &[OverlapMode::FullyCached],
            OptimizeTarget::Energy,
            &MatrixConfig::default(),
            |_| {},
        )
        .unwrap();
        assert_eq!(report.ranking.len(), 2);
        assert_eq!(report.ranking[0].rank, 1);
        assert!((report.ranking[0].ratio_to_best - 1.0).abs() < 1e-12);
        assert!(report.ranking[1].total_value >= report.ranking[0].total_value);
        assert!(report.ranking[1].ratio_to_best >= 1.0);
        // Each ranking row points at one best cell per workload, and that
        // cell belongs to the ranked accelerator.
        for entry in &report.ranking {
            assert_eq!(entry.best_cells.len(), 1);
            assert_eq!(
                report.cells[entry.best_cells[0]].accelerator,
                entry.accelerator
            );
        }
    }

    #[test]
    fn markdown_has_a_ranking_row_per_accelerator_and_json_names_cells() {
        let accelerators = [zoo::meta_proto_like_df(), zoo::edge_tpu_like_df()];
        let workloads = [tiny_net("tiny")];
        let report = run_matrix(
            &accelerators,
            &workloads,
            &[FusePolicy::Auto],
            Some(&[(8, 8)]),
            &[OverlapMode::FullyCached],
            OptimizeTarget::Energy,
            &MatrixConfig::default(),
            |_| {},
        )
        .unwrap();
        let md = report.to_markdown();
        assert!(md.contains("| 1 | "), "{md}");
        assert!(md.contains("| 2 | "), "{md}");
        assert!(md.contains("Meta-proto-like DF"), "{md}");
        assert!(md.contains("Edge-TPU-like DF"), "{md}");
        assert!(md.contains("## Ranking"), "{md}");
        assert!(md.contains("## Cells"), "{md}");

        let json = report.to_value().to_json();
        assert!(
            json.contains("\"accelerator\":\"Meta-proto-like DF\""),
            "{json}"
        );
        assert!(json.contains("\"workload\":\"tiny\""), "{json}");
        assert!(json.contains("\"fuse\":\"auto\""), "{json}");
        assert!(json.contains("\"ranking\""), "{json}");
    }

    #[test]
    fn matrix_result_is_thread_count_independent() {
        let accelerators = [zoo::meta_proto_like_df(), zoo::ascend_like_df()];
        let workloads = [tiny_net("tiny")];
        let policies = [FusePolicy::Auto, FusePolicy::FullNetwork];
        let run = |threads: usize| {
            let config = MatrixConfig {
                engine: EngineConfig::parallel().with_threads(threads),
                ..MatrixConfig::default()
            };
            run_matrix(
                &accelerators,
                &workloads,
                &policies,
                Some(&[(8, 8), (15, 15)]),
                &OverlapMode::ALL,
                OptimizeTarget::Energy,
                &config,
                |_| {},
            )
            .unwrap()
        };
        let sequential = run(1);
        let parallel = run(4);
        let values = |r: &MatrixReport| -> Vec<f64> { r.cells.iter().map(|c| c.value).collect() };
        assert_eq!(values(&sequential), values(&parallel));
        assert_eq!(
            sequential
                .ranking
                .iter()
                .map(|e| e.accelerator.clone())
                .collect::<Vec<_>>(),
            parallel
                .ranking
                .iter()
                .map(|e| e.accelerator.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn distinct_search_configurations_get_unique_axis_labels() {
        // Two different Search setups share the "search" keyword; the axis
        // labels disambiguate them so every cell stays addressable.
        let accelerators = [zoo::meta_proto_like_df()];
        let workloads = [tiny_net("tiny")];
        let policies = [
            FusePolicy::search(),
            FusePolicy::Search {
                max_span: 1,
                weight_budget_factor: 0.5,
            },
        ];
        let report = run_matrix(
            &accelerators,
            &workloads,
            &policies,
            Some(&[(8, 8)]),
            &[OverlapMode::FullyCached],
            OptimizeTarget::Energy,
            &MatrixConfig::default(),
            |_| {},
        )
        .unwrap();
        assert_eq!(report.policies, vec!["search", "search#2"]);
        assert!(report
            .cell("Meta-proto-like DF", "tiny", "search")
            .is_some());
        assert!(report
            .cell("Meta-proto-like DF", "tiny", "search#2")
            .is_some());
        let json = report.to_value().to_json();
        assert!(json.contains("\"fuse\":\"search#2\""), "{json}");
    }

    #[test]
    fn empty_or_duplicate_axes_are_rejected() {
        let acc = [zoo::meta_proto_like_df()];
        let wl = [tiny_net("tiny")];
        let err = run_matrix(
            &[],
            &wl,
            &[FusePolicy::Auto],
            None,
            &OverlapMode::ALL,
            OptimizeTarget::Energy,
            &MatrixConfig::default(),
            |_| {},
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("accelerator axis is empty"),
            "{err}"
        );
        let err = run_matrix(
            &[zoo::meta_proto_like_df(), zoo::meta_proto_like_df()],
            &wl,
            &[FusePolicy::Auto],
            None,
            &OverlapMode::ALL,
            OptimizeTarget::Energy,
            &MatrixConfig::default(),
            |_| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate accelerator"), "{err}");
        let err = run_matrix(
            &acc,
            &wl,
            &[FusePolicy::Auto, FusePolicy::Auto],
            None,
            &OverlapMode::ALL,
            OptimizeTarget::Energy,
            &MatrixConfig::default(),
            |_| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate fuse policy"), "{err}");
        let err = run_matrix(
            &acc,
            &wl,
            &[FusePolicy::Auto],
            None,
            &[],
            OptimizeTarget::Energy,
            &MatrixConfig::default(),
            |_| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("modes"), "{err}");
    }

    /// A scratch checkpoint path unique to this process and test.
    fn scratch_checkpoint(test: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "defines-matrix-{}-{test}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    /// The deterministic slice of a report: everything except the outer
    /// engine stats and metrics delta, whose wall-clock / cross-run counters
    /// legitimately differ between an uninterrupted and a resumed run.
    fn deterministic_json(report: &MatrixReport) -> String {
        Value::Object(vec![
            ("cells".into(), report.cells.to_value()),
            ("ranking".into(), report.ranking.to_value()),
            ("inner_stats".into(), report.inner_stats.to_value()),
        ])
        .to_json()
    }

    #[test]
    fn checkpoint_resume_reproduces_the_uninterrupted_report_byte_for_byte() {
        let accelerators = [zoo::meta_proto_like_df(), zoo::tpu_like_df()];
        let workloads = [tiny_net("tiny")];
        let policies = [FusePolicy::Auto, FusePolicy::SingleLayerStacks];
        let run = |checkpoint: Option<std::path::PathBuf>| {
            let config = MatrixConfig {
                checkpoint,
                ..MatrixConfig::default()
            };
            run_matrix(
                &accelerators,
                &workloads,
                &policies,
                Some(&[(8, 8), (30, 30)]),
                &OverlapMode::ALL,
                OptimizeTarget::Energy,
                &config,
                |_| {},
            )
            .unwrap()
        };
        let uninterrupted = run(None);

        // Record a full run, then simulate a kill: keep the header and the
        // first two cell lines, with a torn (partially written) third.
        let path = scratch_checkpoint("resume");
        let recorded = run(Some(path.clone()));
        assert_eq!(
            deterministic_json(&recorded),
            deterministic_json(&uninterrupted),
            "recording a checkpoint must not change the report"
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 4, "header + one line per cell");
        let truncated = format!(
            "{}\n{}\n{}\n{}",
            lines[0],
            lines[1],
            lines[2],
            &lines[3][..lines[3].len() / 2]
        );
        std::fs::write(&path, truncated).unwrap();
        let ckpt = checkpoint::load(&path).unwrap();
        assert_eq!(ckpt.cells.len(), 2);
        assert!(ckpt.torn_tail, "the half line must be recognized as torn");

        // Resume: the two recorded cells are spliced in, the torn one and
        // the never-started one re-run, and the report is byte-identical.
        let resumed = run(Some(path.clone()));
        assert_eq!(
            deterministic_json(&resumed),
            deterministic_json(&uninterrupted)
        );
        // The resumed run only evaluated the two missing cells...
        assert_eq!(resumed.stats.points, 2);
        // ...and re-completed the checkpoint for the next resume.
        let ckpt = checkpoint::load(&path).unwrap();
        assert_eq!(ckpt.cells.len(), 4);
        assert!(!ckpt.torn_tail);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_from_a_different_grid_is_rejected() {
        let accelerators = [zoo::meta_proto_like_df()];
        let workloads = [tiny_net("tiny")];
        let path = scratch_checkpoint("mismatch");
        let run = |tile: u64, checkpoint: &std::path::Path| {
            let config = MatrixConfig {
                checkpoint: Some(checkpoint.to_path_buf()),
                ..MatrixConfig::default()
            };
            run_matrix(
                &accelerators,
                &workloads,
                &[FusePolicy::Auto],
                Some(&[(tile, tile)]),
                &[OverlapMode::FullyCached],
                OptimizeTarget::Energy,
                &config,
                |_| {},
            )
        };
        run(8, &path).unwrap();
        // Same axes, different tile grid: the grid fingerprint must refuse.
        let err = run(30, &path).unwrap_err();
        assert!(
            matches!(err, MatrixError::Checkpoint(_)),
            "expected a checkpoint error, got: {err}"
        );
        assert!(err.to_string().contains("grid configuration"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn expired_deadline_fails_cells_without_losing_the_run() {
        let accelerators = [zoo::meta_proto_like_df()];
        let workloads = [tiny_net("tiny")];
        let policies = [FusePolicy::Auto, FusePolicy::SingleLayerStacks];
        let config = MatrixConfig {
            // Already expired when the first cell starts: every cell fails,
            // but the run itself completes with structured errors.
            deadline: Some(Duration::ZERO),
            ..MatrixConfig::default()
        };
        let mut streamed = 0;
        let report = run_matrix(
            &accelerators,
            &workloads,
            &policies,
            Some(&[(8, 8)]),
            &[OverlapMode::FullyCached],
            OptimizeTarget::Energy,
            &config,
            |cell| {
                streamed += 1;
                assert!(cell.error.is_some());
            },
        )
        .unwrap();
        assert_eq!(streamed, 2);
        for cell in &report.cells {
            let error = cell
                .error
                .as_deref()
                .expect("every cell missed the deadline");
            assert!(error.contains("deadline"), "{error}");
            assert!(cell.value.is_nan());
            assert!(cell.stacks.is_empty());
        }
        assert_eq!(report.stats.failed, 2);
        // No successful cell anywhere: the accelerator ranks with MAX total
        // and no representative cells.
        assert_eq!(report.ranking.len(), 1);
        assert_eq!(report.ranking[0].total_value, f64::MAX);
        assert!(report.ranking[0].best_cells.is_empty());
        // The markdown renders the failures instead of numbers.
        let md = report.to_markdown();
        assert!(
            md.contains("- faults: 2 cells failed, 0 budget-degraded"),
            "{md}"
        );
        assert!(md.contains("## Failed cells"), "{md}");
        assert!(md.contains("| — | — | — | — |"), "{md}");
    }

    #[test]
    fn budgeted_matrix_flags_degraded_cells_and_stays_deterministic() {
        let accelerators = [zoo::meta_proto_like_df()];
        let workloads = [tiny_net("tiny")];
        let policies = [FusePolicy::Auto];
        let run = |budget: defines_mapping::Budget, threads: usize| {
            let config = MatrixConfig {
                budget,
                search_threads: threads,
                ..MatrixConfig::default()
            };
            run_matrix(
                &accelerators,
                &workloads,
                &policies,
                Some(&[(8, 8)]),
                &[OverlapMode::FullyCached],
                OptimizeTarget::Energy,
                &config,
                |_| {},
            )
            .unwrap()
        };
        let unlimited = run(defines_mapping::Budget::default(), 1);
        assert!(!unlimited.cells[0].degraded);
        // A one-ordering window degrades the search but never fails it.
        let starved = run(defines_mapping::Budget::orderings(1), 1);
        assert!(starved.cells[0].degraded);
        assert!(starved.cells[0].error.is_none());
        assert!(starved.cells[0].value >= unlimited.cells[0].value);
        // Degraded results are still bit-identical at any thread count.
        let starved4 = run(defines_mapping::Budget::orderings(1), 4);
        assert_eq!(deterministic_json(&starved), deterministic_json(&starved4));
        let md = starved.to_markdown();
        assert!(md.contains("budget-degraded"), "{md}");
    }

    #[test]
    fn file_loaded_accelerators_share_the_cache_with_builtins() {
        // Two matrix runs against one shared cache: the first evaluates the
        // builtin accelerator (populating the cache), the second its
        // JSON-round-tripped twin. The twin has the same fingerprint, so
        // its run must be answered entirely from the cache — zero new
        // misses — and produce the identical cell value.
        let builtin = zoo::meta_proto_like_df();
        let json = defines_arch::schema::to_json_pretty(&builtin).unwrap();
        let loaded = defines_arch::loader::from_json_str(&json).unwrap();
        assert_eq!(loaded.fingerprint(), builtin.fingerprint());

        let config = MatrixConfig::default();
        let workloads = [tiny_net("tiny")];
        let report = run_matrix(
            &[builtin],
            &workloads,
            &[FusePolicy::Auto],
            Some(&[(8, 8)]),
            &[OverlapMode::FullyCached],
            OptimizeTarget::Energy,
            &config,
            |_| {},
        )
        .unwrap();
        let misses_first = config.cache.stats().misses;
        assert!(misses_first > 0);

        // Evaluate the file-loaded twin against the same cache: everything
        // is answered from the shared cache (fingerprint-correct sharing).
        let report2 = run_matrix(
            &[loaded],
            &workloads,
            &[FusePolicy::Auto],
            Some(&[(8, 8)]),
            &[OverlapMode::FullyCached],
            OptimizeTarget::Energy,
            &config,
            |_| {},
        )
        .unwrap();
        assert_eq!(
            config.cache.stats().misses,
            misses_first,
            "the file-loaded twin must be answered entirely from the shared cache"
        );
        assert_eq!(report.cells[0].value, report2.cells[0].value);
    }
}
