//! DeFiNES: a unified analytical cost model for layer-by-layer and depth-first
//! (layer-fused / cascaded) scheduling of DNN workloads on accelerators.
//!
//! This crate implements the paper's primary contribution — the six-step
//! depth-first cost model of Section III — on top of the substrates provided
//! by the sibling crates:
//!
//! * `defines-workload` — DNN workloads (layers, DAG, model zoo),
//! * `defines-arch` — accelerators (PE array, memory hierarchy, energy model),
//! * `defines-mapping` — single-layer mapper (LOMA-lite) and cost model
//!   (ZigZag-like).
//!
//! # The depth-first design space
//!
//! A depth-first schedule ([`DfStrategy`]) is a point on three axes:
//!
//! 1. [`TileSize`] — the portion of the stack's final output feature map that
//!    is computed atomically,
//! 2. [`OverlapMode`] — whether the overlapping halo between neighbouring
//!    tiles is recomputed, cached horizontally, or cached in both directions,
//! 3. [`FuseDepth`] — which consecutive layers are fused into each stack.
//!
//! Single-layer and layer-by-layer scheduling are the two extreme points of
//! the space ([`DfStrategy::single_layer`], [`DfStrategy::layer_by_layer`]).
//!
//! `docs/paper-map.md` at the repository root maps every section, equation
//! and figure of the paper to the module and function implementing it.
//!
//! # Example
//!
//! ```
//! use defines_arch::zoo;
//! use defines_core::{DfCostModel, DfStrategy, OverlapMode, TileSize};
//! use defines_workload::models;
//!
//! let net = models::fsrcnn();
//! let acc = zoo::meta_proto_like_df();
//! let model = DfCostModel::new(&acc).with_fast_mapper();
//!
//! let df = DfStrategy::depth_first(TileSize::new(60, 72), OverlapMode::FullyCached);
//! let sl = DfStrategy::single_layer();
//! let df_cost = model.evaluate_network(&net, &df).unwrap();
//! let sl_cost = model.evaluate_network(&net, &sl).unwrap();
//! // Depth-first scheduling crushes single-layer scheduling on FSRCNN.
//! assert!(df_cost.energy_pj < sl_cost.energy_pj);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backcalc;
pub mod baselines;
pub mod batch;
pub mod bounds;
pub mod checkpoint;
pub mod datacopy;
pub mod evaluate;
pub mod explore;
pub mod fuse;
pub mod geometry;
pub mod matrix;
pub mod memlevel;
pub mod result;
pub mod stack;
pub mod strategy;
pub mod tiling;

pub use batch::{run_batch, BatchConfig, BatchItem, BatchOutcome};
pub use bounds::StrategyBounds;
pub use checkpoint::{Checkpoint, CheckpointHeader};
pub use evaluate::{DfCostModel, EvaluationError, PreparedNetwork};
pub use explore::{
    CombinationResult, DfSweepRecord, ExplorationResult, Explorer, OptimizeTarget, ScheduleResult,
    StackChoice,
};
pub use fuse::FusePolicy;
pub use matrix::{run_matrix, CellOutcome, MatrixConfig, MatrixError, MatrixReport, RankingEntry};
pub use result::{DataClass, NetworkCost, StackCost, TileTypeCost};
pub use stack::{FuseDepth, Stack};
pub use strategy::{BetweenStackMemory, DfStrategy, OverlapMode, TileSize};
