//! Step 2 of the depth-first cost model: back-calculating, for every tile and
//! every layer of a stack, the region that must be computed, the input data it
//! needs, and how much of that input comes from the horizontal / vertical
//! overlap caches.

use crate::geometry::{project_to_input, Rect};
use crate::stack::Stack;
use crate::strategy::OverlapMode;
use crate::tiling::TileGrid;
use defines_workload::{LayerId, Network};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a feature map relative to a stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FmId {
    /// The output feature map of a layer inside the stack.
    Internal(LayerId),
    /// A feature map entering the stack from outside: the output of an
    /// earlier layer (`Some`) or the network input (`None`).
    External(Option<LayerId>),
}

/// Static shape information of a feature map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FmDims {
    /// Width in pixels.
    pub width: u64,
    /// Height in pixels.
    pub height: u64,
    /// Number of channels.
    pub channels: u64,
    /// Bytes per element.
    pub bytes_per_element: u64,
}

impl FmDims {
    /// Total size of the feature map in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.width * self.height * self.channels * self.bytes_per_element
    }
}

/// Data volumes handled by one layer for one tile.
///
/// All quantities are in bytes except `to_compute_w/h` (pixels) and `macs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerTileInfo {
    /// The layer.
    pub layer: LayerId,
    /// Width of the output region this layer must compute for the tile.
    pub to_compute_w: u64,
    /// Height of the output region this layer must compute for the tile.
    pub to_compute_h: u64,
    /// Total input bytes the layer reads for this tile (all sources).
    pub input_bytes: u64,
    /// Input bytes freshly produced by the previous layer of the same tile
    /// (or freshly fetched for the stack's first layer).
    pub fresh_input_bytes: u64,
    /// Portion of the fresh input that comes from outside the stack (the
    /// between-stack memory, typically DRAM).
    pub external_input_bytes: u64,
    /// Input bytes served by the horizontal overlap cache.
    pub cached_h_input_bytes: u64,
    /// Input bytes served by the vertical overlap cache.
    pub cached_v_input_bytes: u64,
    /// Output bytes produced (the to-compute region).
    pub output_bytes: u64,
    /// MAC operations needed for the to-compute region.
    pub macs: u64,
}

/// The complete back-calculation result for one tile: one record per layer of
/// the stack (in topological order) plus stack-wide cache requirements.
///
/// Two tiles with equal `TileAnalysis` values are the same *tile type* (step 1
/// of the model) and need to be evaluated only once.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileAnalysis {
    /// Per-layer data volumes, in stack order.
    pub layers: Vec<LayerTileInfo>,
    /// Whether this is the first tile processed in the stack (its weights must
    /// come from DRAM).
    pub is_first_tile: bool,
    /// Bytes of horizontal-overlap cache the stack must keep live while this
    /// tile is processed.
    pub cache_h_bytes: u64,
    /// Bytes of vertical-overlap cache (line buffers) the stack must keep
    /// live.
    pub cache_v_bytes: u64,
}

impl TileAnalysis {
    /// Total MAC operations of the tile across all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }
}

/// Pre-computed structural information of a stack used to analyze its tiles.
///
/// All per-layer back-calculation invariants — resolved layer references,
/// every feature map's shape, and each layer's input feature maps as dense
/// indices — are derived once here, so the per-tile analysis
/// ([`StackGeometry::analyze_tile`], the hottest function of the depth-first
/// model after the mapper) works on flat arrays instead of rebuilding keyed
/// maps for every tile type.
#[derive(Debug, Clone)]
pub struct StackGeometry<'a> {
    net: &'a Network,
    stack: &'a Stack,
    /// Every feature map touched by the stack with its shape, sorted by
    /// [`FmId`] (the iteration order all per-feature-map accumulations use).
    fms: Vec<(FmId, FmDims)>,
    /// Per stack layer (in stack order): the resolved layer, the dense index
    /// of its own output feature map, and the dense indices of its inputs.
    layers: Vec<StackLayer<'a>>,
}

/// Per-layer invariants of a stack, resolved once at geometry construction.
#[derive(Debug, Clone)]
struct StackLayer<'a> {
    layer: &'a defines_workload::Layer,
    /// Dense index (into [`StackGeometry::fms`]) of the layer's own output.
    own_fm: usize,
    /// Dense indices of the layer's input feature maps, in predecessor order.
    inputs: Vec<usize>,
}

impl<'a> StackGeometry<'a> {
    /// The network this geometry was built for.
    pub fn net(&self) -> &'a Network {
        self.net
    }

    /// The stack this geometry was built for.
    pub fn stack(&self) -> &'a Stack {
        self.stack
    }

    /// Builds the geometry helper for one stack of a network.
    pub fn new(net: &'a Network, stack: &'a Stack) -> Self {
        let mut inputs_of: BTreeMap<LayerId, Vec<FmId>> = BTreeMap::new();
        let mut fm_dims: BTreeMap<FmId, FmDims> = BTreeMap::new();
        for &lid in &stack.layers {
            let layer = net.layer(lid);
            let preds = net.predecessors(lid);
            let fms: Vec<FmId> = if preds.is_empty() {
                vec![FmId::External(None)]
            } else {
                preds
                    .iter()
                    .map(|&p| {
                        if stack.contains(p) {
                            FmId::Internal(p)
                        } else {
                            FmId::External(Some(p))
                        }
                    })
                    .collect()
            };
            for &fm in &fms {
                fm_dims.entry(fm).or_insert_with(|| match fm {
                    FmId::Internal(p) | FmId::External(Some(p)) => {
                        let pl = net.layer(p);
                        FmDims {
                            width: pl.dims.ox,
                            height: pl.dims.oy,
                            channels: pl.dims.k,
                            bytes_per_element: u64::from(pl.act_bits.div_ceil(8)),
                        }
                    }
                    FmId::External(None) => FmDims {
                        width: layer.dims.input_width(),
                        height: layer.dims.input_height(),
                        channels: layer.input_channels(),
                        bytes_per_element: u64::from(layer.act_bits.div_ceil(8)),
                    },
                });
            }
            inputs_of.insert(lid, fms);
            // The layer's own output feature map.
            fm_dims.entry(FmId::Internal(lid)).or_insert(FmDims {
                width: layer.dims.ox,
                height: layer.dims.oy,
                channels: layer.dims.k,
                bytes_per_element: u64::from(layer.act_bits.div_ceil(8)),
            });
        }
        // Flatten into dense, FmId-sorted arrays (BTreeMap iteration is
        // sorted, which fixes the accumulation order every tile analysis
        // inherits).
        let fms: Vec<(FmId, FmDims)> = fm_dims.into_iter().collect();
        let index = |fm: FmId| -> usize {
            fms.binary_search_by_key(&fm, |&(id, _)| id)
                .expect("every referenced feature map was collected")
        };
        let layers = stack
            .layers
            .iter()
            .map(|&lid| StackLayer {
                layer: net.layer(lid),
                own_fm: index(FmId::Internal(lid)),
                inputs: inputs_of[&lid].iter().map(|&fm| index(fm)).collect(),
            })
            .collect();
        Self {
            net,
            stack,
            fms,
            layers,
        }
    }

    /// The shape of a feature map.
    pub fn fm_dims(&self, fm: FmId) -> FmDims {
        self.fms[self
            .fms
            .binary_search_by_key(&fm, |&(id, _)| id)
            .expect("unknown feature map")]
        .1
    }

    /// The external feature maps feeding the stack.
    pub fn external_inputs(&self) -> Vec<FmId> {
        self.fms
            .iter()
            .map(|&(id, _)| id)
            .filter(|fm| matches!(fm, FmId::External(_)))
            .collect()
    }

    /// The cumulative halo of the stack: how far (in pixels of the earliest
    /// feature map) the needed region of a tile extends beyond the tile's own
    /// footprint. Used to bound how many tile columns / rows near a feature-map
    /// edge can behave differently from interior tiles.
    pub fn max_halo(&self) -> (u64, u64) {
        let mut hx = 0u64;
        let mut hy = 0u64;
        for &lid in self.stack.layers.iter().rev() {
            let d = &self.net.layer(lid).dims;
            hx = hx * d.stride_x + (d.fx - 1) + d.pad_x;
            hy = hy * d.stride_y + (d.fy - 1) + d.pad_y;
        }
        (hx, hy)
    }

    /// Analyzes one tile of the stack under the given overlap-storing mode.
    ///
    /// This is steps 1–2 of the model for one tile: the to-compute region of
    /// every layer is back-calculated from the tile, trimmed by the data that
    /// the left neighbour (H-cached modes) and the row above (fully-cached
    /// mode) have already produced, and the sizes of fresh / cached input data
    /// are accounted.
    pub fn analyze_tile(
        &self,
        mode: OverlapMode,
        grid: &TileGrid,
        col: u64,
        row: u64,
    ) -> TileAnalysis {
        let n_fms = self.fms.len();
        let tile_rect = grid.tile_rect(col, row);
        let left_edges = if mode.caches_horizontal() && col > 0 {
            Some(self.edge_projection(grid.tile_rect(col - 1, row)))
        } else {
            None
        };
        let above_edges = if mode.caches_vertical() && row > 0 {
            Some(self.edge_projection(grid.tile_rect(col, row - 1)))
        } else {
            None
        };

        // Needed region of every feature map (union over consumers) and its
        // "core" (stride-only) size used for cache-capacity estimation, as
        // dense per-feature-map slots.
        let mut needed: Vec<Option<Rect>> = vec![None; n_fms];
        let mut core: Vec<Option<(u64, u64)>> = vec![None; n_fms];
        let sink_pos = self.layers.len() - 1;
        let mut records_rev: Vec<LayerTileInfo> = Vec::with_capacity(self.stack.len());

        for (pos, sl) in self.layers.iter().enumerate().rev() {
            let layer = sl.layer;
            let lid = self.stack.layers[pos];
            let mut tc = if pos == sink_pos {
                tile_rect
            } else {
                needed[sl.own_fm].unwrap_or_else(Rect::empty)
            };
            let mut tc_core = if pos == sink_pos {
                (tile_rect.width(), tile_rect.height())
            } else {
                core[sl.own_fm].unwrap_or((0, 0))
            };
            // Trim the to-compute region by what neighbouring tiles already
            // produced (and cached) of this layer's output feature map.
            if let Some(le) = &left_edges {
                if let Some((x1, _)) = le[sl.own_fm] {
                    tc = tc.trim_left_through(x1);
                }
            }
            if let Some(ae) = &above_edges {
                if let Some((_, y1)) = ae[sl.own_fm] {
                    tc = tc.trim_top_through(y1);
                }
            }
            if tc.is_empty() {
                records_rev.push(LayerTileInfo {
                    layer: lid,
                    to_compute_w: 0,
                    to_compute_h: 0,
                    input_bytes: 0,
                    fresh_input_bytes: 0,
                    external_input_bytes: 0,
                    cached_h_input_bytes: 0,
                    cached_v_input_bytes: 0,
                    output_bytes: 0,
                    macs: 0,
                });
                continue;
            }
            tc_core = (tc_core.0.min(tc.width()), tc_core.1.min(tc.height()));

            let d = &layer.dims;
            let mut input_bytes = 0u64;
            let mut fresh = 0u64;
            let mut external = 0u64;
            let mut cached_h = 0u64;
            let mut cached_v = 0u64;

            for &fi in &sl.inputs {
                let (fm, fd) = self.fms[fi];
                let in_rect = project_to_input(
                    &tc,
                    (d.stride_x, d.stride_y),
                    (d.fx, d.fy),
                    (d.pad_x, d.pad_y),
                )
                .clamp_to(fd.width, fd.height);
                if in_rect.is_empty() {
                    continue;
                }
                // Accumulate the needed region of the producer (union of the
                // outermost edges across branches, Fig. 8).
                needed[fi] = Some(match needed[fi] {
                    Some(r) => r.union_bbox(&in_rect),
                    None => in_rect,
                });
                let in_core = (
                    (tc_core.0 * d.stride_x).min(fd.width),
                    (tc_core.1 * d.stride_y).min(fd.height),
                );
                core[fi] = Some(match core[fi] {
                    Some(c) => (c.0.max(in_core.0), c.1.max(in_core.1)),
                    None => in_core,
                });

                let per_pixel = fd.channels * fd.bytes_per_element;
                let area = in_rect.area();
                // Split the needed input into vertically cached rows, then
                // horizontally cached columns, then fresh data.
                let va = left_above_split(
                    &in_rect,
                    above_edges.as_ref().and_then(|m| m[fi].map(|(_, y1)| y1)),
                );
                let ha = left_above_split_h(
                    &in_rect,
                    left_edges.as_ref().and_then(|m| m[fi].map(|(x1, _)| x1)),
                    va.0,
                );
                let v_area = va.1;
                let h_area = ha;
                let fresh_area = area - v_area - h_area;
                input_bytes += area * per_pixel;
                cached_v += v_area * per_pixel;
                cached_h += h_area * per_pixel;
                fresh += fresh_area * per_pixel;
                if matches!(fm, FmId::External(_)) {
                    external += fresh_area * per_pixel;
                }
            }

            let output_bytes = tc.area() * d.k * u64::from(layer.act_bits.div_ceil(8));
            let macs = layer.macs_for_output_region(tc.width(), tc.height());
            records_rev.push(LayerTileInfo {
                layer: lid,
                to_compute_w: tc.width(),
                to_compute_h: tc.height(),
                input_bytes,
                fresh_input_bytes: fresh,
                external_input_bytes: external,
                cached_h_input_bytes: cached_h,
                cached_v_input_bytes: cached_v,
                output_bytes,
                macs,
            });
        }

        records_rev.reverse();

        // Stack-wide cache capacity requirements (Fig. 7): the horizontal
        // cache keeps the kernel-growth halo of every consumed feature map for
        // the tiles of the current row; the vertical cache keeps full-width
        // line buffers of the vertical halo. `fms` is FmId-sorted, preserving
        // the accumulation order of the map-based implementation.
        let mut cache_h_bytes = 0u64;
        let mut cache_v_bytes = 0u64;
        for (fi, &(_, fd)) in self.fms.iter().enumerate() {
            let Some(rect) = needed[fi] else { continue };
            let (cw, ch) = core[fi].unwrap_or((rect.width(), rect.height()));
            let per_pixel = fd.channels * fd.bytes_per_element;
            if mode.caches_horizontal() {
                let halo_w = rect.width().saturating_sub(cw);
                cache_h_bytes += halo_w * rect.height() * per_pixel;
            }
            if mode.caches_vertical() {
                let halo_h = rect.height().saturating_sub(ch);
                cache_v_bytes += halo_h * fd.width * per_pixel;
            }
        }

        TileAnalysis {
            layers: records_rev,
            is_first_tile: col == 0 && row == 0,
            cache_h_bytes,
            cache_v_bytes,
        }
    }

    /// Computes, for every feature map of the stack, the rightmost column and
    /// bottommost row of the region needed to produce the given output tile.
    /// These edges are independent of the overlap-storing mode (caching only
    /// trims regions on the left / top), which is what makes per-tile analysis
    /// independent of the processing history.
    fn edge_projection(&self, tile_rect: Rect) -> Vec<Option<(i64, i64)>> {
        let mut edges: Vec<Option<(i64, i64)>> = vec![None; self.fms.len()];
        let sink_pos = self.layers.len() - 1;
        for (pos, sl) in self.layers.iter().enumerate().rev() {
            let (tx1, ty1) = if pos == sink_pos {
                (tile_rect.x1, tile_rect.y1)
            } else {
                match edges[sl.own_fm] {
                    Some(e) => e,
                    None => continue,
                }
            };
            let d = &sl.layer.dims;
            for &fi in &sl.inputs {
                let fd = self.fms[fi].1;
                let ix1 = (tx1 * d.stride_x as i64 - d.pad_x as i64 + d.fx as i64 - 1)
                    .min(fd.width as i64 - 1);
                let iy1 = (ty1 * d.stride_y as i64 - d.pad_y as i64 + d.fy as i64 - 1)
                    .min(fd.height as i64 - 1);
                edges[fi] = Some(match edges[fi] {
                    Some(e) => (e.0.max(ix1), e.1.max(iy1)),
                    None => (ix1, iy1),
                });
            }
        }
        edges
    }
}

/// Returns `(v_rows, v_area)`: the number of rows of `rect` at or above the
/// vertically-cached edge `y1` and their area.
fn left_above_split(rect: &Rect, cached_y1: Option<i64>) -> (u64, u64) {
    match cached_y1 {
        None => (0, 0),
        Some(y1) => {
            let rows = (y1.min(rect.y1) - rect.y0 + 1).max(0) as u64;
            (rows, rows * rect.width())
        }
    }
}

/// Area of the horizontally-cached part of `rect`: columns at or left of the
/// cached edge `x1`, excluding the `v_rows` rows already counted as vertically
/// cached.
fn left_above_split_h(rect: &Rect, cached_x1: Option<i64>, v_rows: u64) -> u64 {
    match cached_x1 {
        None => 0,
        Some(x1) => {
            let cols = (x1.min(rect.x1) - rect.x0 + 1).max(0) as u64;
            cols * (rect.height() - v_rows)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::TileSize;
    use defines_workload::{models, Layer, LayerDims, OpType};

    fn three_layer_net() -> Network {
        // The workload of Fig. 2(a): three 3x3 convolutions, output 4x4.
        let mut net = Network::new("fig2");
        let l1 = net
            .add_layer(
                Layer::new("l1", OpType::Conv, LayerDims::conv(3, 1, 8, 8, 3, 3)),
                &[],
            )
            .unwrap();
        let l2 = net
            .add_layer(
                Layer::new("l2", OpType::Conv, LayerDims::conv(6, 3, 6, 6, 3, 3)),
                &[l1],
            )
            .unwrap();
        let _l3 = net
            .add_layer(
                Layer::new("l3", OpType::Conv, LayerDims::conv(9, 6, 4, 4, 3, 3)),
                &[l2],
            )
            .unwrap();
        net
    }

    fn full_stack(net: &Network) -> Stack {
        Stack::new(net.layer_ids().collect())
    }

    #[test]
    fn lbl_tile_computes_full_layers() {
        let net = three_layer_net();
        let stack = full_stack(&net);
        let geo = StackGeometry::new(&net, &stack);
        let grid = TileGrid::new(4, 4, TileSize::full());
        let a = geo.analyze_tile(OverlapMode::FullyRecompute, &grid, 0, 0);
        assert!(a.is_first_tile);
        assert_eq!(a.layers.len(), 3);
        // Every layer computes its complete output feature map.
        assert_eq!((a.layers[0].to_compute_w, a.layers[0].to_compute_h), (8, 8));
        assert_eq!((a.layers[1].to_compute_w, a.layers[1].to_compute_h), (6, 6));
        assert_eq!((a.layers[2].to_compute_w, a.layers[2].to_compute_h), (4, 4));
        // No caches are involved for a single tile.
        assert_eq!(a.layers[0].cached_h_input_bytes, 0);
        assert_eq!(a.cache_v_bytes, 0);
        // The first layer's input is external (the 10x10 network input).
        assert_eq!(
            a.layers[0].external_input_bytes,
            a.layers[0].fresh_input_bytes
        );
        assert_eq!(a.layers[0].input_bytes, 10 * 10);
    }

    #[test]
    fn recompute_grows_tiles_backwards() {
        // Fig. 2(c): a 2x2 output tile needs 4x4 of layer-2 output and 6x6 of
        // layer-1 output when recomputing overlaps.
        let net = three_layer_net();
        let stack = full_stack(&net);
        let geo = StackGeometry::new(&net, &stack);
        let grid = TileGrid::new(4, 4, TileSize::new(2, 2));
        let a = geo.analyze_tile(OverlapMode::FullyRecompute, &grid, 0, 0);
        assert_eq!((a.layers[2].to_compute_w, a.layers[2].to_compute_h), (2, 2));
        assert_eq!((a.layers[1].to_compute_w, a.layers[1].to_compute_h), (4, 4));
        assert_eq!((a.layers[0].to_compute_w, a.layers[0].to_compute_h), (6, 6));
    }

    #[test]
    fn fully_cached_regime_tile_computes_only_new_data() {
        // Fig. 3(c): in fully-cached mode a regime tile (not in the first row
        // or column) computes a region of the tile's own size in every layer.
        let net = three_layer_net();
        let stack = full_stack(&net);
        let geo = StackGeometry::new(&net, &stack);
        let grid = TileGrid::new(4, 4, TileSize::new(2, 2));
        let a = geo.analyze_tile(OverlapMode::FullyCached, &grid, 1, 1);
        for rec in &a.layers {
            assert_eq!((rec.to_compute_w, rec.to_compute_h), (2, 2), "{rec:?}");
        }
        assert!(!a.is_first_tile);
        // It reads from both caches.
        assert!(a.layers[0].cached_h_input_bytes > 0);
        assert!(a.layers[0].cached_v_input_bytes > 0);
    }

    #[test]
    fn h_cached_regime_tile_recomputes_vertically() {
        let net = three_layer_net();
        let stack = full_stack(&net);
        let geo = StackGeometry::new(&net, &stack);
        let grid = TileGrid::new(4, 4, TileSize::new(2, 2));
        // Second tile of the first row: horizontal cache available, nothing
        // vertical to reuse.
        let a = geo.analyze_tile(OverlapMode::HCachedVRecompute, &grid, 1, 0);
        // Width stays at the tile width, height grows backwards.
        assert_eq!((a.layers[2].to_compute_w, a.layers[2].to_compute_h), (2, 2));
        assert_eq!((a.layers[1].to_compute_w, a.layers[1].to_compute_h), (2, 4));
        assert_eq!((a.layers[0].to_compute_w, a.layers[0].to_compute_h), (2, 6));
        assert!(a.layers[0].cached_h_input_bytes > 0);
        assert_eq!(a.layers[0].cached_v_input_bytes, 0);
    }

    #[test]
    fn mac_count_ordering_between_modes() {
        // Recompute performs at least as many MACs as H-cached, which performs
        // at least as many as fully-cached (Fig. 13).
        let net = models::fsrcnn();
        let stack = full_stack(&net);
        let geo = StackGeometry::new(&net, &stack);
        let grid = TileGrid::new(960, 540, TileSize::new(60, 72));
        let mut totals = Vec::new();
        for mode in OverlapMode::ALL {
            let mut total = 0u64;
            for (c, r, _) in grid.iter() {
                total += geo.analyze_tile(mode, &grid, c, r).total_macs();
            }
            totals.push(total);
        }
        assert!(
            totals[0] >= totals[1],
            "recompute {} >= h-cached {}",
            totals[0],
            totals[1]
        );
        assert!(
            totals[1] >= totals[2],
            "h-cached {} >= fully-cached {}",
            totals[1],
            totals[2]
        );
        // Fully cached does not recompute anything: its MAC count equals the
        // layer-by-layer MAC count.
        let lbl: u64 = net.layers().iter().map(|l| l.macs()).sum();
        assert_eq!(totals[2], lbl);
    }

    #[test]
    fn computed_plus_cached_covers_needed_input() {
        let net = three_layer_net();
        let stack = full_stack(&net);
        let geo = StackGeometry::new(&net, &stack);
        let grid = TileGrid::new(4, 4, TileSize::new(2, 2));
        for mode in OverlapMode::ALL {
            for (c, r, _) in grid.iter() {
                let a = geo.analyze_tile(mode, &grid, c, r);
                for rec in &a.layers {
                    assert_eq!(
                        rec.input_bytes,
                        rec.fresh_input_bytes + rec.cached_h_input_bytes + rec.cached_v_input_bytes,
                        "{mode} tile ({c},{r}) {rec:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn tile_type_count_stays_small() {
        // Fig. 6: only a handful of unique tile types exist for FSRCNN with a
        // (60, 72) tile, so evaluating one representative per type keeps the
        // model fast. Fully-recompute yields exactly the paper's 9 types
        // (3 horizontal × 3 vertical edge classes); the cached modes stay in
        // the same ballpark (our type descriptor is finer-grained than the
        // paper's, see EXPERIMENTS.md).
        let net = models::fsrcnn();
        let stack = full_stack(&net);
        let geo = StackGeometry::new(&net, &stack);
        let grid = TileGrid::new(960, 540, TileSize::new(60, 72));
        let mut counts = Vec::new();
        for mode in OverlapMode::ALL {
            let mut set = std::collections::HashSet::new();
            for (c, r, _) in grid.iter() {
                set.insert(geo.analyze_tile(mode, &grid, c, r));
            }
            counts.push(set.len());
        }
        assert_eq!(counts[0], 9, "fully-recompute tile types");
        for (i, &c) in counts.iter().enumerate() {
            assert!((3..=12).contains(&c), "mode {i}: {c} types");
        }
    }

    #[test]
    fn external_inputs_and_halo() {
        let net = three_layer_net();
        let stack = full_stack(&net);
        let geo = StackGeometry::new(&net, &stack);
        assert_eq!(geo.external_inputs(), vec![FmId::External(None)]);
        // Three 3x3 stride-1 layers: halo of 6 pixels in each direction.
        assert_eq!(geo.max_halo(), (6, 6));
        let fd = geo.fm_dims(FmId::External(None));
        assert_eq!((fd.width, fd.height, fd.channels), (10, 10, 1));
    }

    #[test]
    fn fully_cached_caches_require_line_buffers() {
        let net = models::fsrcnn();
        let stack = full_stack(&net);
        let geo = StackGeometry::new(&net, &stack);
        let grid = TileGrid::new(960, 540, TileSize::new(60, 72));
        let fc = geo.analyze_tile(OverlapMode::FullyCached, &grid, 1, 1);
        let hc = geo.analyze_tile(OverlapMode::HCachedVRecompute, &grid, 1, 1);
        // The vertical cache spans the full feature-map width, so it dwarfs
        // the horizontal cache.
        assert!(fc.cache_v_bytes > fc.cache_h_bytes);
        assert_eq!(hc.cache_v_bytes, 0);
        assert!(hc.cache_h_bytes > 0);
    }
}
