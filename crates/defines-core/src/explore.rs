//! Design-space exploration: sweeps over tile sizes and overlap modes, best
//! single strategy, and per-stack best combinations.

use crate::evaluate::{DfCostModel, EvaluationError};
use crate::result::{NetworkCost, StackCost};
use crate::stack::{partition_into_stacks, FuseDepth};
use crate::strategy::{DfStrategy, OverlapMode, TileSize};
use defines_arch::Accelerator;
use defines_workload::Network;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What the exploration should minimize. Users of DeFiNES can pick their own
/// optimization target (Section V-A); these are the targets used throughout
/// the paper's case studies and SotA comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OptimizeTarget {
    /// Total energy (the default for the case studies).
    #[default]
    Energy,
    /// Total latency.
    Latency,
    /// Energy-delay product.
    Edp,
    /// DRAM traffic only (the target of several SotA frameworks, Fig. 18(a)).
    DramAccess,
    /// Memory energy caused by activations only, ignoring weight traffic
    /// (Fig. 18(c)).
    ActivationEnergy,
}

impl OptimizeTarget {
    /// The scalar value of this target for a network cost.
    pub fn value(&self, cost: &NetworkCost, acc: &Accelerator) -> f64 {
        match self {
            OptimizeTarget::Energy => cost.energy_pj,
            OptimizeTarget::Latency => cost.latency_cycles,
            OptimizeTarget::Edp => cost.edp(),
            OptimizeTarget::DramAccess => cost.dram_traffic_bytes(acc),
            OptimizeTarget::ActivationEnergy => cost.activation_energy_pj(),
        }
    }

    /// The scalar value of this target for a single stack cost.
    pub fn stack_value(&self, cost: &StackCost, acc: &Accelerator) -> f64 {
        match self {
            OptimizeTarget::Energy => cost.energy_pj,
            OptimizeTarget::Latency => cost.latency_cycles,
            OptimizeTarget::Edp => cost.energy_pj * cost.latency_cycles,
            OptimizeTarget::DramAccess => {
                let dram = acc.hierarchy().dram_id();
                cost.activation_access.level_total(dram).total_bytes()
                    + cost.weight_access.level_total(dram).total_bytes()
                    + cost.copy_access.level_total(dram).total_bytes()
            }
            OptimizeTarget::ActivationEnergy => cost.energy_summary.activation_memory_pj,
        }
    }
}

impl fmt::Display for OptimizeTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OptimizeTarget::Energy => "energy",
            OptimizeTarget::Latency => "latency",
            OptimizeTarget::Edp => "EDP",
            OptimizeTarget::DramAccess => "DRAM access",
            OptimizeTarget::ActivationEnergy => "activation energy",
        };
        f.write_str(s)
    }
}

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplorationResult {
    /// The strategy evaluated.
    pub strategy: DfStrategy,
    /// Its cost.
    pub cost: NetworkCost,
}

/// The result of a per-stack ("best combination") exploration: each stack may
/// use a different depth-first strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombinationResult {
    /// The chosen (tile size, overlap mode) per stack, in stack order.
    pub per_stack: Vec<(TileSize, OverlapMode)>,
    /// The combined network cost.
    pub cost: NetworkCost,
}

/// Design-space explorer over depth-first strategies for one network and one
/// accelerator.
#[derive(Debug)]
pub struct Explorer<'a> {
    model: &'a DfCostModel<'a>,
}

impl<'a> Explorer<'a> {
    /// Creates an explorer driving the given cost model.
    pub fn new(model: &'a DfCostModel<'a>) -> Self {
        Self { model }
    }

    /// The default tile-size grid used by case study 1 (Fig. 12): powers of
    /// roughly 4 along each axis, capped at the feature-map size.
    pub fn default_tile_grid(net: &Network) -> Vec<(u64, u64)> {
        let last = net.layers().last().expect("non-empty network");
        let (w, h) = (last.dims.ox, last.dims.oy);
        let xs = axis_points(w);
        let ys = axis_points(h);
        let mut grid = Vec::new();
        for &ty in &ys {
            for &tx in &xs {
                grid.push((tx, ty));
            }
        }
        grid
    }

    /// Evaluates every (tile size × overlap mode) combination.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors (empty network, invalid stacks).
    pub fn sweep(
        &self,
        net: &Network,
        tile_sizes: &[(u64, u64)],
        modes: &[OverlapMode],
    ) -> Result<Vec<ExplorationResult>, EvaluationError> {
        let mut out = Vec::with_capacity(tile_sizes.len() * modes.len());
        for &mode in modes {
            for &(tx, ty) in tile_sizes {
                let strategy = DfStrategy::depth_first(TileSize::new(tx, ty), mode);
                let cost = self.model.evaluate_network(net, &strategy)?;
                out.push(ExplorationResult { strategy, cost });
            }
        }
        Ok(out)
    }

    /// Finds the best single strategy over a sweep, according to the target.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn best_single_strategy(
        &self,
        net: &Network,
        tile_sizes: &[(u64, u64)],
        modes: &[OverlapMode],
        target: OptimizeTarget,
    ) -> Result<ExplorationResult, EvaluationError> {
        let acc = self.model.accelerator();
        let results = self.sweep(net, tile_sizes, modes)?;
        Ok(results
            .into_iter()
            .min_by(|a, b| {
                target
                    .value(&a.cost, acc)
                    .total_cmp(&target.value(&b.cost, acc))
            })
            .expect("sweep always evaluates at least one point"))
    }

    /// Finds the best *combination*: the fused-layer stacks are fixed (by the
    /// automatic fuse-depth heuristic) but each stack independently picks the
    /// (tile size, overlap mode) that minimizes the target — including the
    /// full-feature-map tile, i.e. falling back to layer-by-layer processing
    /// for weight-dominant stacks (case study 2).
    ///
    /// # Errors
    ///
    /// Returns [`EvaluationError::EmptyNetwork`] for an empty workload.
    pub fn best_combination(
        &self,
        net: &Network,
        tile_sizes: &[(u64, u64)],
        modes: &[OverlapMode],
        target: OptimizeTarget,
    ) -> Result<CombinationResult, EvaluationError> {
        if net.is_empty() {
            return Err(EvaluationError::EmptyNetwork);
        }
        let acc = self.model.accelerator();
        let stacks = partition_into_stacks(net, acc, &FuseDepth::Auto);
        let dram = acc.hierarchy().dram_id();
        let mut per_stack = Vec::with_capacity(stacks.len());
        let mut stack_costs = Vec::with_capacity(stacks.len());
        for stack in &stacks {
            let mut best: Option<(TileSize, OverlapMode, StackCost)> = None;
            let mut candidates: Vec<TileSize> = tile_sizes
                .iter()
                .map(|&(tx, ty)| TileSize::new(tx, ty))
                .collect();
            candidates.push(TileSize::full());
            for &tile in &candidates {
                for &mode in modes {
                    let cost = self.model.evaluate_stack(net, stack, tile, mode, dram, dram);
                    let better = match &best {
                        None => true,
                        Some((_, _, b)) => {
                            target.stack_value(&cost, acc) < target.stack_value(b, acc)
                        }
                    };
                    if better {
                        best = Some((tile, mode, cost));
                    }
                }
            }
            let (tile, mode, cost) = best.expect("at least one candidate evaluated");
            per_stack.push((tile, mode));
            stack_costs.push(cost);
        }
        Ok(CombinationResult {
            per_stack,
            cost: NetworkCost::from_stacks(stack_costs),
        })
    }

    /// Evaluates the canonical single-layer and layer-by-layer baselines.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn baselines(&self, net: &Network) -> Result<(NetworkCost, NetworkCost), EvaluationError> {
        let sl = self.model.evaluate_network(net, &DfStrategy::single_layer())?;
        let lbl = self.model.evaluate_network(net, &DfStrategy::layer_by_layer())?;
        Ok((sl, lbl))
    }
}

/// The tile-size sampling points along one axis used by the default grid:
/// 1, 4, then roughly quarter / half / full of the feature-map extent.
fn axis_points(extent: u64) -> Vec<u64> {
    let mut points = vec![1u64, 4];
    for divisor in [16, 8, 2, 1] {
        let p = (extent / divisor).max(1);
        points.push(p);
    }
    points.sort_unstable();
    points.dedup();
    points.retain(|&p| p <= extent);
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use defines_arch::zoo;
    use defines_workload::{Layer, LayerDims, OpType};

    fn tiny_net() -> Network {
        let mut net = Network::new("tiny");
        let a = net
            .add_layer(
                Layer::new("a", OpType::Conv, LayerDims::conv(8, 3, 48, 48, 3, 3)),
                &[],
            )
            .unwrap();
        let _ = net
            .add_layer(
                Layer::new("b", OpType::Conv, LayerDims::conv(8, 8, 46, 46, 3, 3)),
                &[a],
            )
            .unwrap();
        net
    }

    #[test]
    fn axis_points_are_sorted_unique_and_bounded() {
        let p = axis_points(960);
        assert!(p.windows(2).all(|w| w[0] < w[1]));
        assert!(p.iter().all(|&x| x <= 960));
        assert!(p.contains(&1) && p.contains(&960));
        assert_eq!(axis_points(3), vec![1, 3]);
    }

    #[test]
    fn sweep_covers_all_points() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let explorer = Explorer::new(&model);
        let net = tiny_net();
        let results = explorer
            .sweep(&net, &[(8, 8), (16, 16)], &OverlapMode::ALL)
            .unwrap();
        assert_eq!(results.len(), 6);
        assert!(results.iter().all(|r| r.cost.energy_pj > 0.0));
    }

    #[test]
    fn best_single_strategy_minimizes_target() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let explorer = Explorer::new(&model);
        let net = tiny_net();
        let tiles = [(8, 8), (16, 16), (46, 46)];
        let best = explorer
            .best_single_strategy(&net, &tiles, &OverlapMode::ALL, OptimizeTarget::Energy)
            .unwrap();
        let all = explorer.sweep(&net, &tiles, &OverlapMode::ALL).unwrap();
        for r in &all {
            assert!(best.cost.energy_pj <= r.cost.energy_pj + 1e-6);
        }
    }

    #[test]
    fn latency_and_energy_targets_can_differ() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let explorer = Explorer::new(&model);
        let net = tiny_net();
        let tiles = [(8, 8), (46, 46)];
        let e = explorer
            .best_single_strategy(&net, &tiles, &OverlapMode::ALL, OptimizeTarget::Energy)
            .unwrap();
        let l = explorer
            .best_single_strategy(&net, &tiles, &OverlapMode::ALL, OptimizeTarget::Latency)
            .unwrap();
        assert!(l.cost.latency_cycles <= e.cost.latency_cycles + 1e-6);
        assert!(e.cost.energy_pj <= l.cost.energy_pj + 1e-6);
    }

    #[test]
    fn best_combination_is_not_worse_than_best_single() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let explorer = Explorer::new(&model);
        let net = tiny_net();
        let tiles = [(8, 8), (16, 16)];
        let single = explorer
            .best_single_strategy(&net, &tiles, &OverlapMode::ALL, OptimizeTarget::Energy)
            .unwrap();
        let combo = explorer
            .best_combination(&net, &tiles, &OverlapMode::ALL, OptimizeTarget::Energy)
            .unwrap();
        // The combination search has at least the single strategies available
        // per stack, so it can only match or improve.
        assert!(combo.cost.energy_pj <= single.cost.energy_pj * 1.01);
        assert_eq!(combo.per_stack.len(), combo.cost.stacks.len());
    }

    #[test]
    fn default_tile_grid_is_6_by_6_for_fsrcnn_like_outputs() {
        let net = defines_workload::models::fsrcnn();
        let grid = Explorer::default_tile_grid(&net);
        assert_eq!(grid.len(), 36);
        assert!(grid.contains(&(960, 540)));
        assert!(grid.contains(&(1, 1)));
    }
}
