//! Design-space exploration: sweeps over tile sizes and overlap modes, best
//! single strategy, and per-stack best combinations.
//!
//! Since the `defines-engine` subsystem landed, the [`Explorer`] is a thin
//! definition of the DeFiNES design space on top of the generic
//! [`SweepEngine`]: design points fan out over a parallel work queue, the
//! LOMA mapping sub-problems are memoized through the model's
//! [`MappingCache`](defines_mapping::MappingCache), and dominated points are
//! skipped using the cheap lower bounds of [`crate::bounds`]. Results are
//! bit-identical to a sequential scan (see [`Explorer::sweep_sequential`]),
//! regardless of thread count.

use crate::bounds::StrategyBounds;
use crate::evaluate::{DfCostModel, EvaluationError};
use crate::fuse::{enumerate_candidates, optimal_partition_budgeted, stack_span, FusePolicy};
use crate::result::{NetworkCost, StackCost};
use crate::stack::{partition_into_stacks, FuseDepth, Stack};
use crate::strategy::{DfStrategy, OverlapMode, TileSize};
use defines_arch::Accelerator;
use defines_engine::{EngineConfig, SweepEngine, SweepRecord, SweepStats};
use defines_telemetry::span;
use defines_workload::Network;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A streamed record of the DeFiNES design space: one depth-first strategy
/// and its (possibly pruned) evaluation.
pub type DfSweepRecord = SweepRecord<DfStrategy, NetworkCost>;

/// What the exploration should minimize. Users of DeFiNES can pick their own
/// optimization target (Section V-A); these are the targets used throughout
/// the paper's case studies and SotA comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OptimizeTarget {
    /// Total energy (the default for the case studies).
    #[default]
    Energy,
    /// Total latency.
    Latency,
    /// Energy-delay product.
    Edp,
    /// DRAM traffic only (the target of several SotA frameworks, Fig. 18(a)).
    DramAccess,
    /// Memory energy caused by activations only, ignoring weight traffic
    /// (Fig. 18(c)).
    ActivationEnergy,
}

impl OptimizeTarget {
    /// The scalar value of this target for a network cost.
    pub fn value(&self, cost: &NetworkCost, acc: &Accelerator) -> f64 {
        match self {
            OptimizeTarget::Energy => cost.energy_pj,
            OptimizeTarget::Latency => cost.latency_cycles,
            OptimizeTarget::Edp => cost.edp(),
            OptimizeTarget::DramAccess => cost.dram_traffic_bytes(acc),
            OptimizeTarget::ActivationEnergy => cost.activation_energy_pj(),
        }
    }

    /// The scalar value of this target for a single stack cost.
    pub fn stack_value(&self, cost: &StackCost, acc: &Accelerator) -> f64 {
        match self {
            OptimizeTarget::Energy => cost.energy_pj,
            OptimizeTarget::Latency => cost.latency_cycles,
            OptimizeTarget::Edp => cost.energy_pj * cost.latency_cycles,
            OptimizeTarget::DramAccess => {
                let dram = acc.hierarchy().dram_id();
                cost.activation_access.level_total(dram).total_bytes()
                    + cost.weight_access.level_total(dram).total_bytes()
                    + cost.copy_access.level_total(dram).total_bytes()
            }
            OptimizeTarget::ActivationEnergy => cost.energy_summary.activation_memory_pj,
        }
    }
}

impl fmt::Display for OptimizeTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OptimizeTarget::Energy => "energy",
            OptimizeTarget::Latency => "latency",
            OptimizeTarget::Edp => "EDP",
            OptimizeTarget::DramAccess => "DRAM access",
            OptimizeTarget::ActivationEnergy => "activation energy",
        };
        f.write_str(s)
    }
}

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplorationResult {
    /// The strategy evaluated.
    pub strategy: DfStrategy,
    /// Its cost.
    pub cost: NetworkCost,
}

/// The result of a per-stack ("best combination") exploration: each stack may
/// use a different depth-first strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombinationResult {
    /// The chosen (tile size, overlap mode) per stack, in stack order.
    pub per_stack: Vec<(TileSize, OverlapMode)>,
    /// The combined network cost.
    pub cost: NetworkCost,
}

/// One stack of a searched schedule, with the (tile size, overlap mode)
/// chosen for it and its contribution to the optimization target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackChoice {
    /// The stack (layer ids in topological order).
    pub stack: Stack,
    /// The tile size chosen for the stack.
    pub tile: TileSize,
    /// The overlap storing mode chosen for the stack.
    pub mode: OverlapMode,
    /// The stack's value under the optimization target.
    pub value: f64,
}

/// The result of a full schedule search over all three axes
/// ([`Explorer::best_schedule`]): a stack partition together with the best
/// (tile size, overlap mode) per stack.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScheduleResult {
    /// The fuse policy the schedule was searched under.
    pub policy: FusePolicy,
    /// The chosen partition with its per-stack strategy choices, in stack
    /// (topological) order.
    pub choices: Vec<StackChoice>,
    /// The combined network cost of the schedule.
    pub cost: NetworkCost,
    /// Number of candidate stacks that entered the search (equals the number
    /// of partition stacks for the fixed-partition policies).
    pub candidates: usize,
    /// Statistics of the flattened engine run that evaluated the candidates.
    pub stats: SweepStats,
    /// Whether any part of the search ran out of its deterministic work
    /// budget ([`defines_mapping::Budget`]): a chosen stack's mapping search
    /// ([`NetworkCost::degraded`]) or the fuse-partition DP. The schedule is
    /// then the exact optimum of the searched subset only.
    pub degraded: bool,
}

impl ScheduleResult {
    /// The chosen stack partition, in topological order.
    pub fn partition(&self) -> Vec<&Stack> {
        self.choices.iter().map(|c| &c.stack).collect()
    }

    /// The chosen (tile size, overlap mode) per stack, in stack order.
    pub fn per_stack(&self) -> Vec<(TileSize, OverlapMode)> {
        self.choices.iter().map(|c| (c.tile, c.mode)).collect()
    }

    /// The schedule's value under an optimization target.
    pub fn value(&self, target: OptimizeTarget, acc: &Accelerator) -> f64 {
        target.value(&self.cost, acc)
    }
}

/// Design-space explorer over depth-first strategies for one network and one
/// accelerator, running on the parallel exploration engine.
#[derive(Debug)]
pub struct Explorer<'a> {
    model: &'a DfCostModel<'a>,
    engine: SweepEngine,
    fuse: FuseDepth,
    run_label: Option<String>,
}

impl<'a> Explorer<'a> {
    /// Creates an explorer driving the given cost model, with one engine
    /// worker per available core, lower-bound pruning enabled for the
    /// best-strategy searches, and the automatic fuse-depth heuristic.
    pub fn new(model: &'a DfCostModel<'a>) -> Self {
        Self {
            model,
            engine: SweepEngine::new(EngineConfig::parallel()),
            fuse: FuseDepth::Auto,
            run_label: None,
        }
    }

    /// Returns a copy whose engine runs are labelled with the given string
    /// instead of the workload name. Multi-run drivers — the matrix runner's
    /// per-cell schedule searches — use this so each run's [`SweepStats`]
    /// names its (workload, accelerator, policy) cell rather than just the
    /// workload.
    pub fn with_run_label(mut self, label: impl Into<String>) -> Self {
        self.run_label = Some(label.into());
        self
    }

    /// The label applied to this explorer's engine runs: the explicit run
    /// label when one was set ([`Explorer::with_run_label`]), otherwise the
    /// workload name.
    fn engine_label(&self, net: &Network) -> String {
        self.run_label
            .clone()
            .unwrap_or_else(|| net.name().to_string())
    }

    /// Returns a copy whose sweep entry points ([`Explorer::sweep`],
    /// [`Explorer::sweep_streaming`], [`Explorer::best_single_strategy`],
    /// [`Explorer::sweep_sequential`]) evaluate design points under the given
    /// fuse depth instead of [`FuseDepth::Auto`] — axis 3 of the design
    /// space. For *searching* that axis rather than fixing it, use
    /// [`Explorer::best_schedule`] with [`FusePolicy::Search`].
    pub fn with_fuse_depth(mut self, fuse: FuseDepth) -> Self {
        self.fuse = fuse;
        self
    }

    /// The fuse depth applied to this explorer's sweep design points.
    pub fn fuse_depth(&self) -> &FuseDepth {
        &self.fuse
    }

    /// Returns a copy using an explicit engine configuration.
    pub fn with_engine_config(mut self, config: EngineConfig) -> Self {
        self.engine = SweepEngine::new(config);
        self
    }

    /// Returns a copy using a fixed number of engine worker threads.
    pub fn with_threads(self, threads: usize) -> Self {
        let config = self.engine.config().with_threads(threads);
        self.with_engine_config(config)
    }

    /// Returns a copy with lower-bound pruning switched on or off. Pruning
    /// applies to [`Explorer::best_single_strategy`] and
    /// [`Explorer::sweep_streaming`]; the exhaustive [`Explorer::sweep`] and
    /// the per-stack [`Explorer::best_combination`] always evaluate every
    /// point.
    pub fn with_pruning(self, prune: bool) -> Self {
        let config = self.engine.config().with_pruning(prune);
        self.with_engine_config(config)
    }

    /// The engine configuration this explorer runs with.
    pub fn engine_config(&self) -> &EngineConfig {
        self.engine.config()
    }

    /// The design points of a (tile sizes × overlap modes) sweep, in the
    /// canonical submission order (modes outer, tiles inner), under the
    /// explorer's fuse depth.
    fn design_points(&self, tile_sizes: &[(u64, u64)], modes: &[OverlapMode]) -> Vec<DfStrategy> {
        let mut points = Vec::with_capacity(tile_sizes.len() * modes.len());
        for &mode in modes {
            for &(tx, ty) in tile_sizes {
                points.push(
                    DfStrategy::depth_first(TileSize::new(tx, ty), mode)
                        .with_fuse(self.fuse.clone()),
                );
            }
        }
        points
    }

    /// Validates the sweep upfront: every design point shares the explorer's
    /// fuse partition, so checking it once surfaces the same
    /// [`EvaluationError`]s a per-point evaluation would — and guarantees
    /// the engine's evaluate closures cannot fail mid-sweep.
    fn validate_sweep(&self, net: &Network) -> Result<(), EvaluationError> {
        let _span = span!("explore.validate");
        net.validate()?;
        let stacks = partition_into_stacks(net, self.model.accelerator(), &self.fuse);
        crate::evaluate::validate_stacks(net, &stacks)
    }

    /// The stack partition every design point of this explorer's sweeps
    /// shares (the explorer's fuse depth is fixed per sweep), computed once
    /// so the engine's evaluate closures run on pre-built geometries
    /// ([`DfCostModel::prepare_stacks`] / [`DfCostModel::evaluate_prepared`])
    /// instead of re-deriving the partition per point.
    fn sweep_partition(&self, net: &Network) -> Vec<Stack> {
        partition_into_stacks(net, self.model.accelerator(), &self.fuse)
    }

    /// Unwraps the cost of a record from an unpruned engine run. A `Failed`
    /// record (the engine caught a panic while evaluating the point)
    /// re-raises the structured error: explorer entry points promise
    /// complete result sets, so the failure propagates to the caller's
    /// isolation boundary — the matrix runner's per-cell catch — instead of
    /// being silently dropped.
    fn evaluated_cost<C>(outcome: defines_engine::Outcome<C>) -> C {
        match outcome {
            defines_engine::Outcome::Evaluated { cost, .. } => cost,
            defines_engine::Outcome::Pruned { .. } => {
                unreachable!("record carries no cost: the point was pruned")
            }
            defines_engine::Outcome::Failed { error } => {
                panic!("design point evaluation failed: {error}")
            }
        }
    }

    /// The default tile-size grid used by case study 1 (Fig. 12): powers of
    /// roughly 4 along each axis, capped at the feature-map size.
    ///
    /// The grid is derived from the network's *sink* layer — the layer whose
    /// output nothing consumes — not from whichever layer happens to be last
    /// in insertion order: a JSON-loaded DAG may list an auxiliary head after
    /// the main output. With several sinks, the one with the largest output
    /// feature map wins (ties break to the earliest layer), since the grid
    /// must offer meaningful tile sizes for the dominant output.
    pub fn default_tile_grid(net: &Network) -> Vec<(u64, u64)> {
        let sink = net
            .sink_layers()
            .into_iter()
            .map(|id| {
                let d = &net.layer(id).dims;
                (d.ox * d.oy, id)
            })
            .reduce(|best, cur| if cur.0 > best.0 { cur } else { best })
            .map(|(_, id)| id)
            .expect("non-empty network");
        let sink = net.layer(sink);
        let (w, h) = (sink.dims.ox, sink.dims.oy);
        let xs = axis_points(w);
        let ys = axis_points(h);
        let mut grid = Vec::new();
        for &ty in &ys {
            for &tx in &xs {
                grid.push((tx, ty));
            }
        }
        grid
    }

    /// Evaluates every (tile size × overlap mode) combination on the engine.
    ///
    /// All points are fully evaluated (no pruning) and the results come back
    /// in the canonical submission order, bit-identical to
    /// [`Explorer::sweep_sequential`] regardless of thread count.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors (empty network, invalid stacks).
    pub fn sweep(
        &self,
        net: &Network,
        tile_sizes: &[(u64, u64)],
        modes: &[OverlapMode],
    ) -> Result<Vec<ExplorationResult>, EvaluationError> {
        self.validate_sweep(net)?;
        let _span = span!("explore.sweep");
        let points = self.design_points(tile_sizes, modes);
        let stacks = self.sweep_partition(net);
        let prepared = self.model.prepare_stacks(net, &stacks);
        let engine = SweepEngine::new(self.engine.config().with_pruning(false))
            .with_label(self.engine_label(net));
        let (records, _) = engine.run_collect(
            &points,
            &|s: &DfStrategy| self.model.evaluate_prepared(&prepared, s),
            &|_, c: &NetworkCost| c.energy_pj,
            None::<&fn(&DfStrategy) -> f64>,
        );
        Ok(records
            .into_iter()
            .map(|r| ExplorationResult {
                strategy: r.point,
                cost: Self::evaluated_cost(r.outcome),
            })
            .collect())
    }

    /// The seed's sequential sweep, kept as the engine's reference
    /// implementation: one thread, no engine, no pruning. Exploration
    /// results must be bit-identical between the two paths.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors (empty network, invalid stacks).
    pub fn sweep_sequential(
        &self,
        net: &Network,
        tile_sizes: &[(u64, u64)],
        modes: &[OverlapMode],
    ) -> Result<Vec<ExplorationResult>, EvaluationError> {
        let mut out = Vec::with_capacity(tile_sizes.len() * modes.len());
        for &mode in modes {
            for &(tx, ty) in tile_sizes {
                let strategy = DfStrategy::depth_first(TileSize::new(tx, ty), mode)
                    .with_fuse(self.fuse.clone());
                let cost = self.model.evaluate_network(net, &strategy)?;
                out.push(ExplorationResult { strategy, cost });
            }
        }
        Ok(out)
    }

    /// Streams the sweep as it executes: one [`DfSweepRecord`] per design
    /// point in completion order, with best-so-far flags relative to the
    /// optimization target. Pruning follows the explorer's engine
    /// configuration. Returns the sweep statistics.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors (empty network, invalid stacks).
    pub fn sweep_streaming(
        &self,
        net: &Network,
        tile_sizes: &[(u64, u64)],
        modes: &[OverlapMode],
        target: OptimizeTarget,
        on_record: impl FnMut(DfSweepRecord),
    ) -> Result<SweepStats, EvaluationError> {
        self.validate_sweep(net)?;
        let _span = span!("explore.sweep");
        let acc = self.model.accelerator();
        let points = self.design_points(tile_sizes, modes);
        let stacks = self.sweep_partition(net);
        let prepared = self.model.prepare_stacks(net, &stacks);
        let bounds = StrategyBounds::new(net, acc, target);
        let engine = self.engine.clone().with_label(self.engine_label(net));
        // Snapshot so the attached cache statistics describe this run, not
        // the cache's lifetime (the model may have served earlier sweeps).
        let cache_before = self.model.mapping_cache().stats();
        let stats = engine.run(
            &points,
            &|s: &DfStrategy| self.model.evaluate_prepared(&prepared, s),
            &|_, c: &NetworkCost| target.value(c, acc),
            Some(&|s: &DfStrategy| bounds.lower_bound(s)),
            on_record,
        );
        Ok(stats.with_cache(self.model.mapping_cache().stats().since(&cache_before)))
    }

    /// Finds the best single strategy over a sweep, according to the target.
    ///
    /// Runs on the engine with lower-bound pruning (when enabled in the
    /// configuration): dominated points are skipped, but the result —
    /// including tie-breaking by submission order — is guaranteed identical
    /// to an exhaustive sequential scan, because pruning only drops points
    /// whose bound strictly exceeds an evaluated value.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn best_single_strategy(
        &self,
        net: &Network,
        tile_sizes: &[(u64, u64)],
        modes: &[OverlapMode],
        target: OptimizeTarget,
    ) -> Result<ExplorationResult, EvaluationError> {
        self.validate_sweep(net)?;
        let acc = self.model.accelerator();
        let points = self.design_points(tile_sizes, modes);
        let stacks = self.sweep_partition(net);
        let prepared = self.model.prepare_stacks(net, &stacks);
        let bounds = StrategyBounds::new(net, acc, target);
        let engine = self.engine.clone().with_label(self.engine_label(net));
        let (records, _) = engine.run_collect(
            &points,
            &|s: &DfStrategy| self.model.evaluate_prepared(&prepared, s),
            &|_, c: &NetworkCost| target.value(c, acc),
            Some(&|s: &DfStrategy| bounds.lower_bound(s)),
        );
        let best =
            SweepEngine::best_record(records).expect("sweep always evaluates at least one point");
        Ok(ExplorationResult {
            strategy: best.point,
            cost: Self::evaluated_cost(best.outcome),
        })
    }

    /// Finds the best *combination*: the fused-layer stacks are fixed (by the
    /// automatic fuse-depth heuristic) but each stack independently picks the
    /// (tile size, overlap mode) that minimizes the target — including the
    /// full-feature-map tile, i.e. falling back to layer-by-layer processing
    /// for weight-dominant stacks (case study 2).
    ///
    /// This is a thin wrapper over [`Explorer::best_schedule`] with
    /// [`FusePolicy::Auto`].
    ///
    /// # Errors
    ///
    /// Returns [`EvaluationError::EmptyNetwork`] for an empty workload.
    pub fn best_combination(
        &self,
        net: &Network,
        tile_sizes: &[(u64, u64)],
        modes: &[OverlapMode],
        target: OptimizeTarget,
    ) -> Result<CombinationResult, EvaluationError> {
        let schedule = self.best_schedule(net, tile_sizes, modes, target, &FusePolicy::Auto)?;
        Ok(CombinationResult {
            per_stack: schedule.per_stack(),
            cost: schedule.cost,
        })
    }

    /// Searches the full three-axis design space for one schedule: the stack
    /// partition (axis 3, governed by the [`FusePolicy`]), and per stack the
    /// (tile size, overlap mode) pair (axes 1 and 2) minimizing the target.
    ///
    /// All `(candidate stack × tile size × overlap mode)` triples are
    /// flattened into a single engine run sharing the work queue and the
    /// model's mapping cache. For the fixed-partition policies the candidate
    /// stacks *are* the partition; for [`FusePolicy::Search`] the candidates
    /// are spans of branch-free segments (plus single layers and the
    /// automatic partition's stacks, see
    /// [`enumerate_candidates`]) and the
    /// globally optimal partition is selected by shortest-path dynamic
    /// programming over the layer cut boundaries
    /// ([`crate::fuse::optimal_partition`], budgeted by the model's
    /// [`Budget::max_dp_nodes`](defines_mapping::Budget::max_dp_nodes)) —
    /// exact for the additive targets because
    /// [`NetworkCost::from_stacks`](crate::NetworkCost::from_stacks) sums per
    /// stack, and therefore never worse than the [`FusePolicy::Auto`]
    /// combination on the same grid.
    ///
    /// Stacks exchange feature maps through DRAM, like
    /// [`Explorer::best_combination`] (the partitions under comparison are
    /// then costed identically).
    ///
    /// # Errors
    ///
    /// Returns [`EvaluationError::EmptyNetwork`] for an empty workload and
    /// propagates DAG validation errors.
    pub fn best_schedule(
        &self,
        net: &Network,
        tile_sizes: &[(u64, u64)],
        modes: &[OverlapMode],
        target: OptimizeTarget,
        policy: &FusePolicy,
    ) -> Result<ScheduleResult, EvaluationError> {
        let _span = span!("explore.schedule");
        net.validate()?;
        let acc = self.model.accelerator();
        match policy.fixed_fuse_depth() {
            Some(fuse) => {
                let stacks = partition_into_stacks(net, acc, &fuse);
                crate::evaluate::validate_stacks(net, &stacks)?;
                let (best, stats) =
                    self.best_choice_per_stack(net, &stacks, tile_sizes, modes, target);
                let mut choices = Vec::with_capacity(stacks.len());
                let mut stack_costs = Vec::with_capacity(stacks.len());
                for (stack, (tile, mode, value, cost)) in stacks.into_iter().zip(best) {
                    choices.push(StackChoice {
                        stack,
                        tile,
                        mode,
                        value,
                    });
                    stack_costs.push(cost);
                }
                let cost = NetworkCost::from_stacks(stack_costs);
                Ok(ScheduleResult {
                    policy: policy.clone(),
                    candidates: choices.len(),
                    choices,
                    degraded: cost.degraded,
                    cost,
                    stats,
                })
            }
            None => {
                let (max_span, factor) = match policy {
                    FusePolicy::Search {
                        max_span,
                        weight_budget_factor,
                    } => (*max_span, *weight_budget_factor),
                    _ => unreachable!("only Search has no fixed fuse depth"),
                };
                let candidates = enumerate_candidates(net, acc, max_span, factor);
                let (best, stats) =
                    self.best_choice_per_stack(net, &candidates, tile_sizes, modes, target);
                let spans: Vec<(usize, usize)> = candidates.iter().map(stack_span).collect();
                let values: Vec<f64> = best.iter().map(|b| b.2).collect();
                let dp_budget = self.model.mapper_config().budget.max_dp_nodes;
                let (chosen, _, dp_degraded) =
                    optimal_partition_budgeted(net.len(), &spans, &values, dp_budget)
                        .expect("single-layer candidates make every partition boundary reachable");
                // The chosen candidate indices are distinct (they tile the
                // network), so their choices and stacks can be moved out
                // instead of cloned.
                let mut best: Vec<Option<_>> = best.into_iter().map(Some).collect();
                let mut candidates: Vec<Option<Stack>> = candidates.into_iter().map(Some).collect();
                let mut choices = Vec::with_capacity(chosen.len());
                let mut stack_costs = Vec::with_capacity(chosen.len());
                for idx in chosen {
                    let (tile, mode, value, cost) =
                        best[idx].take().expect("partition indices are distinct");
                    choices.push(StackChoice {
                        stack: candidates[idx]
                            .take()
                            .expect("partition indices are distinct"),
                        tile,
                        mode,
                        value,
                    });
                    stack_costs.push(cost);
                }
                let cost = NetworkCost::from_stacks(stack_costs);
                Ok(ScheduleResult {
                    policy: policy.clone(),
                    candidates: candidates.len(),
                    choices,
                    degraded: dp_degraded || cost.degraded,
                    cost,
                    stats,
                })
            }
        }
    }

    /// The tile-size candidates submitted for one stack: the caller's grid
    /// plus the full-feature-map tile, deduplicated by their effective
    /// (clamped) extent on the stack's output — a grid already containing the
    /// full tile would otherwise evaluate it twice and shift the documented
    /// tie-break order away from "earliest candidate".
    fn stack_tile_candidates(
        net: &Network,
        stack: &Stack,
        tile_sizes: &[(u64, u64)],
    ) -> Vec<TileSize> {
        let sink = net.layer(stack.last_layer());
        let (w, h) = (sink.dims.ox, sink.dims.oy);
        let mut seen = std::collections::HashSet::with_capacity(tile_sizes.len() + 1);
        tile_sizes
            .iter()
            .map(|&(tx, ty)| TileSize::new(tx, ty))
            .chain(std::iter::once(TileSize::full()))
            .filter(|tile| seen.insert(tile.clamped(w, h)))
            .collect()
    }

    /// Evaluates every `(stack, tile, mode)` triple in one engine run and
    /// returns, per stack, the choice minimizing the target (ties resolve to
    /// the earliest candidate, matching a sequential scan) along with the run
    /// statistics. The stacks need not form a partition — the fuse-depth
    /// search passes overlapping candidates.
    fn best_choice_per_stack(
        &self,
        net: &Network,
        stacks: &[Stack],
        tile_sizes: &[(u64, u64)],
        modes: &[OverlapMode],
        target: OptimizeTarget,
    ) -> (Vec<(TileSize, OverlapMode, f64, StackCost)>, SweepStats) {
        let _span = span!("explore.stack_search");
        let acc = self.model.accelerator();
        let dram = acc.hierarchy().dram_id();

        // Flatten every (stack, tile, mode) candidate into one engine run so
        // all stacks' candidates share the work queue and the mapping cache.
        let mut points: Vec<(usize, TileSize, OverlapMode)> = Vec::new();
        for (stack_idx, stack) in stacks.iter().enumerate() {
            for tile in Self::stack_tile_candidates(net, stack, tile_sizes) {
                for &mode in modes {
                    points.push((stack_idx, tile, mode));
                }
            }
        }

        // One geometry per candidate stack, shared by all its (tile, mode)
        // evaluations instead of being re-derived per design point.
        let geometries: Vec<crate::backcalc::StackGeometry<'_>> = stacks
            .iter()
            .map(|stack| crate::backcalc::StackGeometry::new(net, stack))
            .collect();

        let engine = SweepEngine::new(self.engine.config().with_pruning(false))
            .with_label(self.engine_label(net))
            .with_label_detail(format!("{} stack candidates", stacks.len()));
        // Snapshot so the attached cache statistics describe this run alone.
        let cache_before = self.model.mapping_cache().stats();
        let (records, stats) = engine.run_collect(
            &points,
            &|&(stack_idx, tile, mode): &(usize, TileSize, OverlapMode)| {
                self.model.evaluate_stack_with_geometry(
                    &geometries[stack_idx],
                    tile,
                    mode,
                    dram,
                    dram,
                )
            },
            &|_, c: &StackCost| target.stack_value(c, acc),
            None::<&fn(&(usize, TileSize, OverlapMode)) -> f64>,
        );
        let stats = stats.with_cache(self.model.mapping_cache().stats().since(&cache_before));

        // Per stack, pick the candidate with the minimal target value; ties
        // resolve to the earliest candidate, matching a sequential scan.
        let mut best: Vec<Option<(TileSize, OverlapMode, f64, StackCost)>> =
            (0..stacks.len()).map(|_| None).collect();
        for record in records {
            let (stack_idx, tile, mode) = record.point;
            let (value, cost) = match record.outcome {
                defines_engine::Outcome::Evaluated { cost, value } => (value, cost),
                defines_engine::Outcome::Pruned { .. } => {
                    unreachable!("combination search never prunes")
                }
                defines_engine::Outcome::Failed { error } => {
                    panic!("design point evaluation failed: {error}")
                }
            };
            let slot = &mut best[stack_idx];
            let better = match slot {
                None => true,
                Some((_, _, best_value, _)) => value < *best_value,
            };
            if better {
                *slot = Some((tile, mode, value, cost));
            }
        }
        let best = best
            .into_iter()
            .map(|slot| slot.expect("at least one candidate evaluated per stack"))
            .collect();
        (best, stats)
    }

    /// Evaluates the canonical single-layer and layer-by-layer baselines.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn baselines(&self, net: &Network) -> Result<(NetworkCost, NetworkCost), EvaluationError> {
        let sl = self
            .model
            .evaluate_network(net, &DfStrategy::single_layer())?;
        let lbl = self
            .model
            .evaluate_network(net, &DfStrategy::layer_by_layer())?;
        Ok((sl, lbl))
    }
}

/// The tile-size sampling points along one axis used by the default grid:
/// 1, 4, then roughly quarter / half / full of the feature-map extent.
fn axis_points(extent: u64) -> Vec<u64> {
    let mut points = vec![1u64, 4];
    for divisor in [16, 8, 2, 1] {
        let p = (extent / divisor).max(1);
        points.push(p);
    }
    points.sort_unstable();
    points.dedup();
    points.retain(|&p| p <= extent);
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use defines_arch::zoo;
    use defines_workload::{Layer, LayerDims, OpType};

    fn tiny_net() -> Network {
        let mut net = Network::new("tiny");
        let a = net
            .add_layer(
                Layer::new("a", OpType::Conv, LayerDims::conv(8, 3, 48, 48, 3, 3)),
                &[],
            )
            .unwrap();
        let _ = net
            .add_layer(
                Layer::new("b", OpType::Conv, LayerDims::conv(8, 8, 46, 46, 3, 3)),
                &[a],
            )
            .unwrap();
        net
    }

    #[test]
    fn axis_points_are_sorted_unique_and_bounded() {
        let p = axis_points(960);
        assert!(p.windows(2).all(|w| w[0] < w[1]));
        assert!(p.iter().all(|&x| x <= 960));
        assert!(p.contains(&1) && p.contains(&960));
        assert_eq!(axis_points(3), vec![1, 3]);
    }

    #[test]
    fn sweep_covers_all_points() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let explorer = Explorer::new(&model);
        let net = tiny_net();
        let results = explorer
            .sweep(&net, &[(8, 8), (16, 16)], &OverlapMode::ALL)
            .unwrap();
        assert_eq!(results.len(), 6);
        assert!(results.iter().all(|r| r.cost.energy_pj > 0.0));
    }

    #[test]
    fn best_single_strategy_minimizes_target() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let explorer = Explorer::new(&model);
        let net = tiny_net();
        let tiles = [(8, 8), (16, 16), (46, 46)];
        let best = explorer
            .best_single_strategy(&net, &tiles, &OverlapMode::ALL, OptimizeTarget::Energy)
            .unwrap();
        let all = explorer.sweep(&net, &tiles, &OverlapMode::ALL).unwrap();
        for r in &all {
            assert!(best.cost.energy_pj <= r.cost.energy_pj + 1e-6);
        }
    }

    #[test]
    fn latency_and_energy_targets_can_differ() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let explorer = Explorer::new(&model);
        let net = tiny_net();
        let tiles = [(8, 8), (46, 46)];
        let e = explorer
            .best_single_strategy(&net, &tiles, &OverlapMode::ALL, OptimizeTarget::Energy)
            .unwrap();
        let l = explorer
            .best_single_strategy(&net, &tiles, &OverlapMode::ALL, OptimizeTarget::Latency)
            .unwrap();
        assert!(l.cost.latency_cycles <= e.cost.latency_cycles + 1e-6);
        assert!(e.cost.energy_pj <= l.cost.energy_pj + 1e-6);
    }

    #[test]
    fn best_combination_is_not_worse_than_best_single() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let explorer = Explorer::new(&model);
        let net = tiny_net();
        let tiles = [(8, 8), (16, 16)];
        let single = explorer
            .best_single_strategy(&net, &tiles, &OverlapMode::ALL, OptimizeTarget::Energy)
            .unwrap();
        let combo = explorer
            .best_combination(&net, &tiles, &OverlapMode::ALL, OptimizeTarget::Energy)
            .unwrap();
        // The combination search has at least the single strategies available
        // per stack, so it can only match or improve.
        assert!(combo.cost.energy_pj <= single.cost.energy_pj * 1.01);
        assert_eq!(combo.per_stack.len(), combo.cost.stacks.len());
    }

    #[test]
    fn engine_sweep_matches_sequential_bit_for_bit() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let net = tiny_net();
        let tiles = [(8, 8), (16, 16), (46, 46)];
        for threads in [1, 4] {
            let explorer = Explorer::new(&model).with_threads(threads);
            let parallel = explorer.sweep(&net, &tiles, &OverlapMode::ALL).unwrap();
            let sequential = explorer
                .sweep_sequential(&net, &tiles, &OverlapMode::ALL)
                .unwrap();
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn pruned_best_matches_unpruned_best() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let net = tiny_net();
        let tiles = [(1, 1), (4, 4), (8, 8), (46, 46)];
        for target in [
            OptimizeTarget::Energy,
            OptimizeTarget::Latency,
            OptimizeTarget::Edp,
        ] {
            let pruned = Explorer::new(&model)
                .with_pruning(true)
                .best_single_strategy(&net, &tiles, &OverlapMode::ALL, target)
                .unwrap();
            let exhaustive = Explorer::new(&model)
                .with_pruning(false)
                .best_single_strategy(&net, &tiles, &OverlapMode::ALL, target)
                .unwrap();
            assert_eq!(pruned, exhaustive, "target {target}");
        }
    }

    #[test]
    fn streaming_sweep_reports_every_point() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let net = tiny_net();
        let tiles = [(8, 8), (16, 16)];
        let explorer = Explorer::new(&model).with_pruning(false);
        let mut seen = Vec::new();
        let stats = explorer
            .sweep_streaming(
                &net,
                &tiles,
                &OverlapMode::ALL,
                OptimizeTarget::Energy,
                |r| {
                    seen.push(r.index);
                },
            )
            .unwrap();
        assert_eq!(stats.points, 6);
        assert_eq!(stats.evaluated, 6);
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn default_tile_grid_is_6_by_6_for_fsrcnn_like_outputs() {
        let net = defines_workload::models::fsrcnn();
        let grid = Explorer::default_tile_grid(&net);
        assert_eq!(grid.len(), 36);
        assert!(grid.contains(&(960, 540)));
        assert!(grid.contains(&(1, 1)));
    }

    /// The default grid must follow the network's real sink, not the
    /// insertion order: here a tiny auxiliary head is added *after* the large
    /// main output, so `layers().last()` points at the wrong feature map.
    #[test]
    fn default_tile_grid_follows_largest_sink_not_insertion_order() {
        let mut net = Network::new("aux-head-last");
        let trunk = net
            .add_layer(
                Layer::new("trunk", OpType::Conv, LayerDims::conv(8, 3, 128, 128, 3, 3)),
                &[],
            )
            .unwrap();
        let _main = net
            .add_layer(
                Layer::new("main", OpType::Conv, LayerDims::conv(8, 8, 128, 128, 3, 3)),
                &[trunk],
            )
            .unwrap();
        let _aux = net
            .add_layer(
                Layer::new("aux", OpType::Conv, LayerDims::conv(4, 8, 4, 4, 1, 1)),
                &[trunk],
            )
            .unwrap();
        let grid = Explorer::default_tile_grid(&net);
        // Derived from the 128x128 main output, not the 4x4 aux head.
        assert!(grid.contains(&(128, 128)), "grid: {grid:?}");
        assert!(grid.iter().any(|&(tx, ty)| tx > 4 && ty > 4));
    }

    /// A grid that already contains the stack's full-feature-map tile must
    /// not evaluate the appended `TileSize::full()` a second time.
    #[test]
    fn stack_tile_candidates_dedup_by_clamped_extent() {
        let net = tiny_net();
        let stack = Stack::new(net.layer_ids().collect());
        // The sink is 46x46: (46, 46), (64, 64) and full() all clamp to the
        // same extent, so only the first survives.
        let tiles = [(8, 8), (46, 46), (64, 64)];
        let candidates = Explorer::stack_tile_candidates(&net, &stack, &tiles);
        assert_eq!(candidates, vec![TileSize::new(8, 8), TileSize::new(46, 46)]);
        // Without a full-covering grid entry, full() is appended.
        let candidates = Explorer::stack_tile_candidates(&net, &stack, &[(8, 8)]);
        assert_eq!(candidates, vec![TileSize::new(8, 8), TileSize::full()]);
    }

    #[test]
    fn best_combination_unaffected_by_duplicate_full_tile_in_grid() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let explorer = Explorer::new(&model);
        let net = tiny_net();
        let without = explorer
            .best_combination(&net, &[(8, 8)], &OverlapMode::ALL, OptimizeTarget::Energy)
            .unwrap();
        let with_dup = explorer
            .best_combination(
                &net,
                &[(8, 8), (46, 46)],
                &OverlapMode::ALL,
                OptimizeTarget::Energy,
            )
            .unwrap();
        // (46, 46) covers the whole 46x46 output, i.e. it *is* the full tile:
        // the two grids span the same design space and must agree on cost.
        assert_eq!(without.cost.energy_pj, with_dup.cost.energy_pj);
    }

    #[test]
    fn best_schedule_search_is_never_worse_than_auto_combination() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let explorer = Explorer::new(&model);
        let net = tiny_net();
        let tiles = [(8, 8), (16, 16)];
        let auto = explorer
            .best_combination(&net, &tiles, &OverlapMode::ALL, OptimizeTarget::Energy)
            .unwrap();
        let searched = explorer
            .best_schedule(
                &net,
                &tiles,
                &OverlapMode::ALL,
                OptimizeTarget::Energy,
                &FusePolicy::search(),
            )
            .unwrap();
        assert!(searched.cost.energy_pj <= auto.cost.energy_pj * (1.0 + 1e-9));
        // The chosen partition covers every layer exactly once, in order.
        let covered: Vec<_> = searched
            .partition()
            .iter()
            .flat_map(|s| s.layers.clone())
            .collect();
        let expected: Vec<_> = net.layer_ids().collect();
        assert_eq!(covered, expected);
        assert_eq!(searched.choices.len(), searched.per_stack().len());
        assert!(searched.candidates >= searched.choices.len());
        assert!(searched.stats.evaluated > 0);
    }

    #[test]
    fn best_schedule_fixed_policies_use_their_partitions() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let explorer = Explorer::new(&model);
        let net = tiny_net();
        let tiles = [(8, 8)];
        let single = explorer
            .best_schedule(
                &net,
                &tiles,
                &OverlapMode::ALL,
                OptimizeTarget::Energy,
                &FusePolicy::SingleLayerStacks,
            )
            .unwrap();
        assert_eq!(single.choices.len(), net.len());
        assert!(single.partition().iter().all(|s| s.len() == 1));
        let full = explorer
            .best_schedule(
                &net,
                &tiles,
                &OverlapMode::ALL,
                OptimizeTarget::Energy,
                &FusePolicy::FullNetwork,
            )
            .unwrap();
        assert_eq!(full.choices.len(), 1);
        assert_eq!(full.partition()[0].len(), net.len());
        // The searched schedule can only match or beat both fixed policies.
        let searched = explorer
            .best_schedule(
                &net,
                &tiles,
                &OverlapMode::ALL,
                OptimizeTarget::Energy,
                &FusePolicy::search(),
            )
            .unwrap();
        assert!(searched.cost.energy_pj <= single.cost.energy_pj * (1.0 + 1e-9));
        assert!(searched.cost.energy_pj <= full.cost.energy_pj * (1.0 + 1e-9));
    }

    #[test]
    fn sweep_respects_explorer_fuse_depth() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let net = tiny_net();
        let tiles = [(16, 16)];
        let explorer = Explorer::new(&model).with_fuse_depth(FuseDepth::SingleLayerStacks);
        assert_eq!(explorer.fuse_depth(), &FuseDepth::SingleLayerStacks);
        let results = explorer
            .sweep(&net, &tiles, &[OverlapMode::FullyCached])
            .unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].strategy.fuse, FuseDepth::SingleLayerStacks);
        // Every layer became its own stack in the evaluated cost.
        assert_eq!(results[0].cost.stacks.len(), net.len());
        // And the sequential reference path agrees bit for bit.
        let sequential = explorer
            .sweep_sequential(&net, &tiles, &[OverlapMode::FullyCached])
            .unwrap();
        assert_eq!(results, sequential);
    }
}
