//! Fuse depth (axis 3): grouping layers into stacks of fused layers.

use defines_arch::{Accelerator, Operand};
use defines_workload::{LayerId, Network};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Axis 3 of the design space: how layers are grouped into fused-layer stacks.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuseDepth {
    /// Layers are added to a stack as long as the stack's total weights fit in
    /// the highest on-chip memory level that holds weights; branch-free
    /// segments are kept together (Section III, "Inputs").
    Auto,
    /// The whole network forms one stack.
    FullNetwork,
    /// Every layer is its own stack (single-layer style scheduling).
    SingleLayerStacks,
    /// Explicit stacks, each a list of layer ids in topological order.
    Manual(Vec<Vec<LayerId>>),
}

impl fmt::Display for FuseDepth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuseDepth::Auto => f.write_str("fuse: auto"),
            FuseDepth::FullNetwork => f.write_str("fuse: full network"),
            FuseDepth::SingleLayerStacks => f.write_str("fuse: single-layer stacks"),
            FuseDepth::Manual(stacks) => write!(f, "fuse: manual ({} stacks)", stacks.len()),
        }
    }
}

/// A stack of fused layers: a consecutive (in topological order) group of
/// layers that is processed depth-first, tile by tile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stack {
    /// The layers of the stack, in topological order.
    pub layers: Vec<LayerId>,
}

impl Stack {
    /// Creates a stack from layer ids.
    pub fn new(layers: Vec<LayerId>) -> Self {
        Self { layers }
    }

    /// The last (sink) layer of the stack — the one whose output is tiled.
    pub fn last_layer(&self) -> LayerId {
        *self.layers.last().expect("stacks are never empty")
    }

    /// The first layer of the stack.
    pub fn first_layer(&self) -> LayerId {
        *self.layers.first().expect("stacks are never empty")
    }

    /// Number of layers fused in the stack.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack has no layers (never true for produced stacks).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Whether a layer belongs to the stack.
    pub fn contains(&self, id: LayerId) -> bool {
        self.layers.contains(&id)
    }

    /// Total weight bytes of the stack's layers.
    pub fn weight_bytes(&self, net: &Network) -> u64 {
        self.layers
            .iter()
            .map(|&l| net.layer(l).weight_bytes())
            .sum()
    }
}

/// The capacity, in bytes, of the highest on-chip memory level that holds
/// weights, divided by the number of operands sharing it. This is the budget
/// the automatic fuse-depth heuristic uses.
///
/// Per-MAC register files (anything below 8 KB) do not count as a weight
/// buffer: they cannot keep a fused stack's weights resident, so an
/// architecture whose only on-chip weight storage is its registers (the
/// TPU-like baseline) gets a budget of zero and falls back to one-layer
/// stacks.
pub fn weight_fuse_budget_bytes(acc: &Accelerator) -> u64 {
    const MIN_WEIGHT_BUFFER_BYTES: u64 = 8 * 1024;
    acc.hierarchy()
        .levels_for(Operand::Weight)
        .filter(|(_, l)| !l.is_dram())
        .filter_map(|(_, l)| l.capacity_bytes().map(|c| c / l.shared_by() as u64))
        .filter(|&share| share >= MIN_WEIGHT_BUFFER_BYTES)
        .last()
        .unwrap_or(0)
}

/// Partitions a network into stacks according to the fuse-depth choice.
///
/// For [`FuseDepth::Auto`]:
///
/// * the network is first split into *segments* at its branch-free cut points
///   (all layers between two cut points go together or not at all),
/// * segments are greedily merged into stacks while the total weight size
///   stays within [`weight_fuse_budget_bytes`],
/// * a multi-layer segment that does not fit by itself degenerates into
///   one-layer stacks, exactly as described in Section III.
pub fn partition_into_stacks(net: &Network, acc: &Accelerator, fuse: &FuseDepth) -> Vec<Stack> {
    match fuse {
        FuseDepth::FullNetwork => vec![Stack::new(net.layer_ids().collect())],
        FuseDepth::SingleLayerStacks => net.layer_ids().map(|l| Stack::new(vec![l])).collect(),
        FuseDepth::Manual(stacks) => stacks.iter().map(|s| Stack::new(s.clone())).collect(),
        FuseDepth::Auto => auto_partition(net, acc),
    }
}

/// The automatic (greedy) partition used by [`FuseDepth::Auto`]. Exposed to
/// the fuse-depth search ([`crate::fuse`]) so its candidate set always
/// contains the heuristic's own stacks, guaranteeing the searched schedule is
/// never worse than the heuristic one.
pub(crate) fn auto_partition(net: &Network, acc: &Accelerator) -> Vec<Stack> {
    let budget = weight_fuse_budget_bytes(acc);
    let segments = segments(net);
    let mut stacks: Vec<Stack> = Vec::new();
    let mut current: Vec<LayerId> = Vec::new();
    let mut current_weight = 0u64;

    let close = |stacks: &mut Vec<Stack>, current: &mut Vec<LayerId>, current_weight: &mut u64| {
        if !current.is_empty() {
            stacks.push(Stack::new(std::mem::take(current)));
            *current_weight = 0;
        }
    };

    for seg in segments {
        let seg_weight: u64 = seg.iter().map(|&l| net.layer(l).weight_bytes()).sum();
        if seg_weight > budget {
            // The segment alone exceeds the budget.
            close(&mut stacks, &mut current, &mut current_weight);
            if seg.len() == 1 {
                stacks.push(Stack::new(seg));
            } else {
                // Branchy segment that does not fit: every layer becomes its
                // own stack.
                for l in seg {
                    stacks.push(Stack::new(vec![l]));
                }
            }
            continue;
        }
        if current_weight + seg_weight > budget {
            close(&mut stacks, &mut current, &mut current_weight);
        }
        current_weight += seg_weight;
        current.extend(seg);
    }
    close(&mut stacks, &mut current, &mut current_weight);
    stacks
}

/// Splits the network into branch-free segments: maximal runs of consecutive
/// layers ending at a cut point.
///
/// Segments are the atoms of the fuse-depth axis: "either all layers between
/// two points where there are no branches are added to a stack, or none of
/// them" (Section III). Every returned segment is a contiguous run of layer
/// ids, the segments are in topological order, and together they cover every
/// layer exactly once. The fuse-depth search ([`crate::fuse`]) enumerates its
/// stack candidates as spans of consecutive segments.
pub fn segments(net: &Network) -> Vec<Vec<LayerId>> {
    let cuts = net.cut_points();
    let mut segs = Vec::new();
    let mut start = 0usize;
    for cut in cuts {
        let seg: Vec<LayerId> = (start..=cut.0).map(LayerId).collect();
        if !seg.is_empty() {
            segs.push(seg);
        }
        start = cut.0 + 1;
    }
    if start < net.len() {
        segs.push((start..net.len()).map(LayerId).collect());
    }
    segs
}

#[cfg(test)]
mod tests {
    use super::*;
    use defines_arch::zoo;
    use defines_workload::models;

    #[test]
    fn full_network_and_single_layer_partitions() {
        let net = models::fsrcnn();
        let acc = zoo::meta_proto_like_df();
        let full = partition_into_stacks(&net, &acc, &FuseDepth::FullNetwork);
        assert_eq!(full.len(), 1);
        assert_eq!(full[0].len(), net.len());
        let single = partition_into_stacks(&net, &acc, &FuseDepth::SingleLayerStacks);
        assert_eq!(single.len(), net.len());
        assert!(single.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn auto_fuses_fsrcnn_into_one_stack() {
        // FSRCNN's 12-15 KB of weights fit in the Meta-proto-like DF 32 KB
        // weight LB, so the whole network fuses into a single stack
        // (case study 1 relies on this).
        let net = models::fsrcnn();
        let acc = zoo::meta_proto_like_df();
        let stacks = partition_into_stacks(&net, &acc, &FuseDepth::Auto);
        assert_eq!(stacks.len(), 1, "stacks: {stacks:?}");
        assert_eq!(stacks[0].len(), 8);
    }

    #[test]
    fn auto_splits_weight_dominant_networks() {
        // MobileNetV1 has ~4 MB of weights; no single stack can hold them in a
        // 1 MB weight GB, so auto fusing must produce several stacks.
        let net = models::mobilenet_v1();
        let acc = zoo::meta_proto_like_df();
        let stacks = partition_into_stacks(&net, &acc, &FuseDepth::Auto);
        assert!(stacks.len() > 1);
        // Every layer appears exactly once, in order.
        let all: Vec<LayerId> = stacks.iter().flat_map(|s| s.layers.clone()).collect();
        let expected: Vec<LayerId> = net.layer_ids().collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn auto_respects_branches() {
        // ResNet18 residual blocks may not be split in the middle of a branch:
        // every stack boundary must be a cut point of the DAG.
        let net = models::resnet18();
        let acc = zoo::meta_proto_like_df();
        let stacks = partition_into_stacks(&net, &acc, &FuseDepth::Auto);
        let cuts = net.cut_points();
        for stack in &stacks {
            let last = stack.last_layer();
            assert!(
                cuts.contains(&last) || stack.len() == 1,
                "stack ending at {last} splits a branch"
            );
        }
        let all: Vec<LayerId> = stacks.iter().flat_map(|s| s.layers.clone()).collect();
        let expected: Vec<LayerId> = net.layer_ids().collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn weight_budget_depends_on_architecture() {
        // The TPU-like baseline has no on-chip weight memory at all.
        assert_eq!(weight_fuse_budget_bytes(&zoo::tpu_like()), 0);
        // Its DF variant has a 1 MB weight GB.
        assert_eq!(weight_fuse_budget_bytes(&zoo::tpu_like_df()), 1024 * 1024);
        // Meta-proto-like DF: the weight GB (1 MB) is the top weight level.
        assert_eq!(
            weight_fuse_budget_bytes(&zoo::meta_proto_like_df()),
            1024 * 1024
        );
    }

    #[test]
    fn no_weight_buffer_means_single_layer_stacks() {
        let net = models::fsrcnn();
        let acc = zoo::tpu_like();
        let stacks = partition_into_stacks(&net, &acc, &FuseDepth::Auto);
        assert_eq!(stacks.len(), net.len());
    }

    #[test]
    fn manual_partition_is_respected() {
        let net = models::fsrcnn();
        let acc = zoo::meta_proto_like_df();
        let manual = FuseDepth::Manual(vec![
            (0..4).map(LayerId).collect(),
            (4..8).map(LayerId).collect(),
        ]);
        let stacks = partition_into_stacks(&net, &acc, &manual);
        assert_eq!(stacks.len(), 2);
        assert_eq!(stacks[0].last_layer(), LayerId(3));
        assert_eq!(stacks[1].first_layer(), LayerId(4));
    }

    #[test]
    fn stack_weight_bytes_sums_layers() {
        let net = models::fsrcnn();
        let stack = Stack::new(net.layer_ids().collect());
        let expected: u64 = net.layers().iter().map(|l| l.weight_bytes()).sum();
        assert_eq!(stack.weight_bytes(&net), expected);
    }
}
