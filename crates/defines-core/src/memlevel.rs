//! Step 3 of the depth-first cost model: determining the top memory level for
//! every kind of data handled by a layer-tile combination.
//!
//! Data is placed by priority (Fig. 5, step 3): weights, then the current
//! layer's inputs, then its outputs, then the horizontal-overlap cache, then
//! the vertical-overlap cache. Higher-priority data is assigned to lower,
//! cheaper memory levels; each placement reserves capacity that is no longer
//! available to lower-priority data.

use defines_arch::{Accelerator, MemoryLevelId, Operand};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The memory levels assigned to all data classes of one layer-tile
/// combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataPlacement {
    /// Top level for the layer's weights.
    pub weight: MemoryLevelId,
    /// Top level for the layer's input activations.
    pub input: MemoryLevelId,
    /// Top level for the layer's output activations.
    pub output: MemoryLevelId,
    /// Level holding the horizontal-overlap cache (if any is needed).
    pub cache_h: Option<MemoryLevelId>,
    /// Level holding the vertical-overlap cache (if any is needed).
    pub cache_v: Option<MemoryLevelId>,
}

/// The data sizes that drive a placement decision for one layer-tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PlacementRequest {
    /// Total weight bytes of the whole fused stack (weights stay resident for
    /// all tiles of the stack).
    pub stack_weight_bytes: u64,
    /// Whether the layer has weights at all.
    pub layer_has_weights: bool,
    /// Whether this is the first tile of the stack (weights still have to be
    /// fetched from DRAM).
    pub is_first_tile: bool,
    /// Input bytes of the current layer-tile.
    pub input_bytes: u64,
    /// Output bytes of the current layer-tile.
    pub output_bytes: u64,
    /// Horizontal-overlap cache bytes kept alive for the stack.
    pub cache_h_bytes: u64,
    /// Vertical-overlap cache bytes kept alive for the stack.
    pub cache_v_bytes: u64,
}

/// Placement policy knobs. The defaults model DeFiNES; turning off
/// `multi_level_skipping` reproduces the "DRAM-only skipping" baseline of
/// Fig. 18(b), where activations may skip DRAM but always live in the highest
/// on-chip memory rather than the lowest one they fit in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementPolicy {
    /// When true (DeFiNES), data is placed in the *lowest* level it fits in.
    /// When false, on-chip data is placed in the *highest* on-chip level.
    pub multi_level_skipping: bool,
}

impl Default for PlacementPolicy {
    fn default() -> Self {
        Self {
            multi_level_skipping: true,
        }
    }
}

/// Remaining capacity tracker over the memory hierarchy.
#[derive(Debug, Clone)]
struct CapacityTracker<'a> {
    acc: &'a Accelerator,
    remaining: BTreeMap<MemoryLevelId, u64>,
}

impl<'a> CapacityTracker<'a> {
    fn new(acc: &'a Accelerator) -> Self {
        let remaining = acc
            .hierarchy()
            .levels()
            .iter()
            .enumerate()
            .map(|(i, l)| (MemoryLevelId(i), l.capacity_bytes().unwrap_or(u64::MAX)))
            .collect();
        Self { acc, remaining }
    }

    /// The lowest level serving `operand` whose remaining capacity can hold
    /// `bytes`, reserving the space. Falls back to DRAM.
    fn place_lowest(&mut self, operand: Operand, bytes: u64) -> MemoryLevelId {
        let dram = self.acc.hierarchy().dram_id();
        let candidates: Vec<MemoryLevelId> = self
            .acc
            .hierarchy()
            .levels_for(operand)
            .map(|(id, _)| id)
            .collect();
        for id in candidates {
            if self.remaining[&id] >= bytes {
                self.reserve(id, bytes);
                return id;
            }
        }
        dram
    }

    /// The highest on-chip level serving `operand` that can hold `bytes`
    /// (DRAM-only-skipping baseline), or DRAM when nothing fits.
    fn place_highest_on_chip(&mut self, operand: Operand, bytes: u64) -> MemoryLevelId {
        let dram = self.acc.hierarchy().dram_id();
        let candidate = self
            .acc
            .hierarchy()
            .levels_for(operand)
            .filter(|(id, l)| !l.is_dram() && self.remaining[id] >= bytes)
            .map(|(id, _)| id)
            .last();
        match candidate {
            Some(id) => {
                self.reserve(id, bytes);
                id
            }
            None => dram,
        }
    }

    /// Reserves capacity at a level. Callers check the remaining capacity
    /// before placing ([`CapacityTracker::place_lowest`],
    /// [`CapacityTracker::place_highest_on_chip`]), so an over-reservation is
    /// a placement accounting bug — the debug assertion surfaces it instead
    /// of letting `saturating_sub` silently clamp the books to zero.
    fn reserve(&mut self, id: MemoryLevelId, bytes: u64) {
        if let Some(r) = self.remaining.get_mut(&id) {
            debug_assert!(
                bytes <= *r,
                "over-reservation at memory level {id:?}: {bytes} bytes requested, {r} remaining"
            );
            *r = r.saturating_sub(bytes);
        }
    }
}

/// Determines the top memory level for every data class of one layer-tile
/// combination (step 3 of the model).
pub fn determine_placement(
    acc: &Accelerator,
    request: &PlacementRequest,
    policy: &PlacementPolicy,
) -> DataPlacement {
    let dram = acc.hierarchy().dram_id();
    let mut tracker = CapacityTracker::new(acc);

    // 1. Weights (highest priority). The stack's full weight set stays
    //    resident across tiles; the first tile still has to stream it from
    //    DRAM.
    let weight_home = if request.stack_weight_bytes > 0 {
        tracker.place_lowest(Operand::Weight, request.stack_weight_bytes)
    } else {
        dram
    };
    let weight = if !request.layer_has_weights || request.is_first_tile {
        dram
    } else {
        weight_home
    };

    // 2. Current layer's inputs.
    let input = if policy.multi_level_skipping {
        tracker.place_lowest(Operand::Input, request.input_bytes)
    } else {
        tracker.place_highest_on_chip(Operand::Input, request.input_bytes)
    };

    // 3. Current layer's outputs.
    let output = if policy.multi_level_skipping {
        tracker.place_lowest(Operand::Output, request.output_bytes)
    } else {
        tracker.place_highest_on_chip(Operand::Output, request.output_bytes)
    };

    // 4./5. Overlap caches (activation data).
    let cache_h = if request.cache_h_bytes > 0 {
        Some(tracker.place_lowest(Operand::Input, request.cache_h_bytes))
    } else {
        None
    };
    let cache_v = if request.cache_v_bytes > 0 {
        Some(tracker.place_lowest(Operand::Input, request.cache_v_bytes))
    } else {
        None
    };

    DataPlacement {
        weight,
        input,
        output,
        cache_h,
        cache_v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defines_arch::zoo;

    fn meta_df() -> defines_arch::Accelerator {
        zoo::meta_proto_like_df()
    }

    fn lb_io(acc: &defines_arch::Accelerator) -> MemoryLevelId {
        acc.hierarchy().level_id_named("LB_IO").unwrap()
    }

    fn gb_io(acc: &defines_arch::Accelerator) -> MemoryLevelId {
        acc.hierarchy().level_id_named("GB_IO").unwrap()
    }

    #[test]
    fn small_activations_land_in_lb() {
        let acc = meta_df();
        let req = PlacementRequest {
            stack_weight_bytes: 12 * 1024,
            layer_has_weights: true,
            is_first_tile: false,
            input_bytes: 8 * 1024,
            output_bytes: 16 * 1024,
            ..Default::default()
        };
        let p = determine_placement(&acc, &req, &PlacementPolicy::default());
        assert_eq!(p.input, lb_io(&acc));
        assert_eq!(p.output, lb_io(&acc));
        // Non-first tile: weights served from the weight LB.
        assert_eq!(acc.hierarchy().level(p.weight).name(), "LB_W");
    }

    #[test]
    fn first_tile_weights_come_from_dram() {
        let acc = meta_df();
        let req = PlacementRequest {
            stack_weight_bytes: 12 * 1024,
            layer_has_weights: true,
            is_first_tile: true,
            input_bytes: 1024,
            output_bytes: 1024,
            ..Default::default()
        };
        let p = determine_placement(&acc, &req, &PlacementPolicy::default());
        assert!(acc.hierarchy().level(p.weight).is_dram());
    }

    #[test]
    fn input_prioritized_over_output_when_lb_is_tight() {
        // Fig. 10: when I+O no longer fit the LB but I alone does, I keeps the
        // LB and O is pushed to the GB.
        let acc = meta_df();
        let req = PlacementRequest {
            stack_weight_bytes: 12 * 1024,
            layer_has_weights: true,
            is_first_tile: false,
            input_bytes: 40 * 1024,
            output_bytes: 40 * 1024,
            ..Default::default()
        };
        let p = determine_placement(&acc, &req, &PlacementPolicy::default());
        assert_eq!(p.input, lb_io(&acc));
        assert_eq!(p.output, gb_io(&acc));
    }

    #[test]
    fn huge_activations_fall_back_to_dram() {
        let acc = meta_df();
        let req = PlacementRequest {
            input_bytes: 30 * 1024 * 1024,
            output_bytes: 30 * 1024 * 1024,
            ..Default::default()
        };
        let p = determine_placement(&acc, &req, &PlacementPolicy::default());
        assert!(acc.hierarchy().level(p.input).is_dram());
        assert!(acc.hierarchy().level(p.output).is_dram());
    }

    #[test]
    fn caches_are_placed_after_activations() {
        let acc = meta_df();
        let req = PlacementRequest {
            stack_weight_bytes: 12 * 1024,
            layer_has_weights: true,
            is_first_tile: false,
            input_bytes: 30 * 1024,
            output_bytes: 30 * 1024,
            cache_h_bytes: 20 * 1024,
            cache_v_bytes: 3 * 1024 * 1024,
        };
        let p = determine_placement(&acc, &req, &PlacementPolicy::default());
        // I and O fill the 64 KB LB, so the H cache is pushed to the GB and
        // the oversized V cache to DRAM.
        assert_eq!(p.cache_h, Some(gb_io(&acc)));
        assert_eq!(p.cache_v, Some(acc.hierarchy().dram_id()));
        assert_eq!(p.input, lb_io(&acc));
    }

    #[test]
    fn disabling_multi_level_skipping_uses_highest_on_chip_level() {
        let acc = meta_df();
        let req = PlacementRequest {
            input_bytes: 8 * 1024,
            output_bytes: 8 * 1024,
            ..Default::default()
        };
        let policy = PlacementPolicy {
            multi_level_skipping: false,
        };
        let p = determine_placement(&acc, &req, &policy);
        // Even though the data would fit the LB, it is kept in the GB.
        assert_eq!(p.input, gb_io(&acc));
        assert_eq!(p.output, gb_io(&acc));
    }

    #[test]
    fn weightless_layers_do_not_reserve_weight_space() {
        let acc = meta_df();
        let req = PlacementRequest {
            stack_weight_bytes: 0,
            layer_has_weights: false,
            input_bytes: 1024,
            output_bytes: 1024,
            ..Default::default()
        };
        let p = determine_placement(&acc, &req, &PlacementPolicy::default());
        assert!(acc.hierarchy().level(p.weight).is_dram());
        assert_eq!(p.cache_h, None);
        assert_eq!(p.cache_v, None);
    }

    /// The path the old `saturating_sub` silently masked: reserving more than
    /// a level's remaining capacity is an accounting bug and must be caught
    /// (in debug builds) rather than clamped to zero.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "over-reservation")]
    fn over_reservation_is_a_debug_assertion() {
        let acc = meta_df();
        let lb = lb_io(&acc);
        let capacity = acc.hierarchy().level(lb).capacity_bytes().unwrap();
        let mut tracker = CapacityTracker::new(&acc);
        // First reservation drains the level; the second would have been
        // silently saturated to zero before and now trips the assertion.
        tracker.reserve(lb, capacity);
        tracker.reserve(lb, 1);
    }

    /// The guarded placement entry points never over-reserve: draining a
    /// level through `place_lowest` pushes later data upward instead of
    /// tripping the reservation assertion.
    #[test]
    fn guarded_placement_never_over_reserves() {
        let acc = meta_df();
        let lb = lb_io(&acc);
        let capacity = acc.hierarchy().level(lb).capacity_bytes().unwrap();
        let mut tracker = CapacityTracker::new(&acc);
        assert_eq!(tracker.place_lowest(Operand::Input, capacity), lb);
        // The LB is now full: the same request lands one level higher
        // without touching the LB's (exhausted) books.
        let next = tracker.place_lowest(Operand::Input, capacity);
        assert_ne!(next, lb);
        assert_eq!(tracker.remaining[&lb], 0);
    }

    #[test]
    fn tpu_like_weights_always_stream_from_dram() {
        let acc = zoo::tpu_like();
        let req = PlacementRequest {
            stack_weight_bytes: 500 * 1024,
            layer_has_weights: true,
            is_first_tile: false,
            input_bytes: 10 * 1024,
            output_bytes: 10 * 1024,
            ..Default::default()
        };
        let p = determine_placement(&acc, &req, &PlacementPolicy::default());
        assert!(acc.hierarchy().level(p.weight).is_dram());
    }
}
