//! Baseline schedulers and restricted optimizers used by the SotA comparison
//! (Section VI, Fig. 18) and case study 2 (Fig. 16).
//!
//! Each baseline deliberately ignores part of the cost that DeFiNES models —
//! on-chip traffic, multi-level memory skipping, weight traffic, or energy —
//! and is *evaluated* with the full model afterwards, exposing how much the
//! missing factor costs.

use crate::evaluate::{DfCostModel, EvaluationError};
use crate::explore::{Explorer, OptimizeTarget};
use crate::result::NetworkCost;
use crate::strategy::{DfStrategy, OverlapMode, TileSize};
use defines_workload::Network;
use serde::{Deserialize, Serialize};

/// Which SotA limitation a baseline models (one row of Table II, roughly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaselineKind {
    /// Plain single-layer scheduling.
    SingleLayer,
    /// Layer-by-layer scheduling with feature maps passed in the lowest
    /// fitting memory level.
    LayerByLayer,
    /// Depth-first, but the schedule is chosen by minimizing DRAM traffic only
    /// (on-chip data movement is invisible to the optimizer) — Fig. 18(a).
    DramTrafficOnly,
    /// Depth-first with multi-level memory skipping disabled: activations may
    /// skip DRAM but always live in the highest on-chip memory — Fig. 18(b).
    DramOnlySkipping,
    /// Depth-first chosen by minimizing activation-caused memory energy while
    /// ignoring weight traffic — Fig. 18(c).
    ActivationsOnly,
    /// Depth-first chosen by minimizing latency instead of energy —
    /// Fig. 18(d).
    LatencyOptimized,
    /// DeFiNES: full model, optimizing total energy.
    FullModel,
}

/// A baseline evaluation: the strategy the restricted optimizer picked and its
/// cost under the *full* model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineResult {
    /// Which baseline this is.
    pub kind: BaselineKind,
    /// The strategy chosen by the (restricted) optimizer.
    pub strategy: DfStrategy,
    /// The cost of that strategy under the full DeFiNES model.
    pub cost: NetworkCost,
}

/// Runs one baseline on a network.
///
/// `tile_sizes` and `modes` define the candidate depth-first schedules the
/// restricted optimizers may choose from; the single-layer and layer-by-layer
/// baselines ignore them.
///
/// # Errors
///
/// Propagates evaluation errors from the cost model.
pub fn run_baseline(
    model: &DfCostModel<'_>,
    net: &Network,
    kind: BaselineKind,
    tile_sizes: &[(u64, u64)],
    modes: &[OverlapMode],
) -> Result<BaselineResult, EvaluationError> {
    let explorer = Explorer::new(model);
    let result = match kind {
        BaselineKind::SingleLayer => {
            let strategy = DfStrategy::single_layer();
            let cost = model.evaluate_network(net, &strategy)?;
            BaselineResult {
                kind,
                strategy,
                cost,
            }
        }
        BaselineKind::LayerByLayer => {
            let strategy = DfStrategy::layer_by_layer();
            let cost = model.evaluate_network(net, &strategy)?;
            BaselineResult {
                kind,
                strategy,
                cost,
            }
        }
        BaselineKind::DramTrafficOnly => {
            // Choose the schedule by DRAM traffic only. Ties (many schedules
            // reach the minimal DRAM traffic once everything fits on chip) are
            // broken toward the *largest* tile, mimicking a tool that stops
            // optimizing once DRAM traffic is minimal.
            let sweep = explorer.sweep(net, tile_sizes, modes)?;
            let acc = model.accelerator();
            let best = sweep
                .into_iter()
                .min_by(|a, b| {
                    let da = a.cost.dram_traffic_bytes(acc);
                    let db = b.cost.dram_traffic_bytes(acc);
                    da.total_cmp(&db).then_with(|| {
                        let ta = a.strategy.tile.tx * a.strategy.tile.ty;
                        let tb = b.strategy.tile.tx * b.strategy.tile.ty;
                        tb.cmp(&ta)
                    })
                })
                .expect("sweep is non-empty");
            BaselineResult {
                kind,
                strategy: best.strategy,
                cost: best.cost,
            }
        }
        BaselineKind::DramOnlySkipping => {
            // The optimizer sees a model without multi-level skipping; the
            // chosen schedule is then re-evaluated with that same restricted
            // placement (the hardware behaviour it models).
            let restricted = DfCostModel::new(model.accelerator())
                .with_mapper(*model_mapper_config(model))
                .without_multi_level_skipping();
            let restricted_explorer = Explorer::new(&restricted);
            let best = restricted_explorer.best_single_strategy(
                net,
                tile_sizes,
                modes,
                OptimizeTarget::Energy,
            )?;
            BaselineResult {
                kind,
                strategy: best.strategy,
                cost: best.cost,
            }
        }
        BaselineKind::ActivationsOnly => {
            let best = explorer.best_single_strategy(
                net,
                tile_sizes,
                modes,
                OptimizeTarget::ActivationEnergy,
            )?;
            BaselineResult {
                kind,
                strategy: best.strategy,
                cost: best.cost,
            }
        }
        BaselineKind::LatencyOptimized => {
            let best =
                explorer.best_single_strategy(net, tile_sizes, modes, OptimizeTarget::Latency)?;
            BaselineResult {
                kind,
                strategy: best.strategy,
                cost: best.cost,
            }
        }
        BaselineKind::FullModel => {
            let best =
                explorer.best_single_strategy(net, tile_sizes, modes, OptimizeTarget::Energy)?;
            BaselineResult {
                kind,
                strategy: best.strategy,
                cost: best.cost,
            }
        }
    };
    Ok(result)
}

/// Convenience accessor for the model's mapper configuration (used when
/// constructing a derived, restricted model).
fn model_mapper_config<'b>(model: &'b DfCostModel<'_>) -> &'b defines_mapping::MapperConfig {
    model.mapper_config()
}

/// A fully-cached candidate strategy with a fixed tile size, used by case
/// study 2 ("fully-cached DF with 4×72 tiles, the best found in case
/// study 1").
pub fn fixed_fully_cached(tx: u64, ty: u64) -> DfStrategy {
    DfStrategy::depth_first(TileSize::new(tx, ty), OverlapMode::FullyCached)
}

#[cfg(test)]
mod tests {
    use super::*;
    use defines_arch::zoo;
    use defines_workload::{Layer, LayerDims, OpType};

    fn small_net() -> Network {
        let mut net = Network::new("small");
        let a = net
            .add_layer(
                Layer::new("a", OpType::Conv, LayerDims::conv(16, 3, 64, 64, 3, 3)),
                &[],
            )
            .unwrap();
        let _ = net
            .add_layer(
                Layer::new("b", OpType::Conv, LayerDims::conv(16, 16, 62, 62, 3, 3)),
                &[a],
            )
            .unwrap();
        net
    }

    const TILES: [(u64, u64); 3] = [(8, 8), (16, 16), (62, 62)];

    #[test]
    fn full_model_beats_or_matches_restricted_optimizers_on_energy() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let net = small_net();
        let full = run_baseline(
            &model,
            &net,
            BaselineKind::FullModel,
            &TILES,
            &OverlapMode::ALL,
        )
        .unwrap();
        for kind in [
            BaselineKind::SingleLayer,
            BaselineKind::DramTrafficOnly,
            BaselineKind::ActivationsOnly,
            BaselineKind::LatencyOptimized,
        ] {
            let b = run_baseline(&model, &net, kind, &TILES, &OverlapMode::ALL).unwrap();
            assert!(
                full.cost.energy_pj <= b.cost.energy_pj + 1e-6,
                "{kind:?}: full {} vs baseline {}",
                full.cost.energy_pj,
                b.cost.energy_pj
            );
        }
    }

    #[test]
    fn dram_only_optimizer_minimizes_dram_but_not_energy() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let net = small_net();
        let dram_only = run_baseline(
            &model,
            &net,
            BaselineKind::DramTrafficOnly,
            &TILES,
            &OverlapMode::ALL,
        )
        .unwrap();
        let sl = run_baseline(
            &model,
            &net,
            BaselineKind::SingleLayer,
            &TILES,
            &OverlapMode::ALL,
        )
        .unwrap();
        assert!(
            dram_only.cost.dram_traffic_bytes(&acc) <= sl.cost.dram_traffic_bytes(&acc),
            "DRAM-only optimization must reduce DRAM traffic vs single-layer"
        );
    }

    #[test]
    fn latency_optimized_is_fastest() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let net = small_net();
        let lat = run_baseline(
            &model,
            &net,
            BaselineKind::LatencyOptimized,
            &TILES,
            &OverlapMode::ALL,
        )
        .unwrap();
        let full = run_baseline(
            &model,
            &net,
            BaselineKind::FullModel,
            &TILES,
            &OverlapMode::ALL,
        )
        .unwrap();
        assert!(lat.cost.latency_cycles <= full.cost.latency_cycles + 1e-6);
    }

    #[test]
    fn fixed_strategy_helper() {
        let s = fixed_fully_cached(4, 72);
        assert_eq!(s.tile, TileSize::new(4, 72));
        assert_eq!(s.mode, OverlapMode::FullyCached);
    }
}
