//! Request batching over the engine: arbitrary schedule requests, one
//! flattened run.
//!
//! This is the matrix runner's one-engine-many-cells shape
//! ([`crate::run_matrix`]) generalized from a fixed `{accelerator} ×
//! {workload} × {policy}` grid to an ad-hoc list of requests, as a serving
//! layer needs: the `defines-serve` daemon coalesces whatever requests
//! arrived while the previous batch ran into one [`run_batch`] call, so N
//! concurrent clients cost one engine spin-up and share one
//! [`MappingCache`] warm-up instead of N.
//!
//! Determinism contract: each item's inner schedule search runs under
//! [`EngineConfig::sequential`], exactly like a matrix cell, so the result
//! for a request is bit-identical to a standalone
//! [`Explorer::best_schedule`] run with the same inputs — regardless of
//! which other requests shared the batch, the outer thread count, or the
//! warmth of the shared cache (the cache contract guarantees hits return
//! exactly what the search would recompute).

use crate::evaluate::DfCostModel;
use crate::explore::{Explorer, OptimizeTarget, ScheduleResult};
use crate::fuse::FusePolicy;
use crate::stack::partition_into_stacks;
use crate::strategy::OverlapMode;
use defines_arch::Accelerator;
use defines_engine::{EngineConfig, SweepEngine};
use defines_mapping::{Budget, MappingCache};
use defines_workload::Network;
use std::time::Duration;

/// One schedule request: everything [`Explorer::best_schedule`] needs.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// A short human-readable label for telemetry (engine progress lines).
    pub label: String,
    /// The accelerator to schedule for.
    pub accelerator: Accelerator,
    /// The workload to schedule.
    pub network: Network,
    /// The tile grid to search, or `None` for
    /// [`Explorer::default_tile_grid`].
    pub tile_grid: Option<Vec<(u64, u64)>>,
    /// The overlap modes to search.
    pub modes: Vec<OverlapMode>,
    /// The optimization target.
    pub target: OptimizeTarget,
    /// The fuse policy.
    pub policy: FusePolicy,
}

/// How a batch executes (the serving-relevant subset of
/// [`crate::MatrixConfig`]).
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// The outer engine configuration: items fan out over this work queue
    /// (each item's inner schedule search is forced sequential).
    pub engine: EngineConfig,
    /// The mapping cache shared by every item's cost model — the warm asset
    /// a serving deployment persists across batches and restarts.
    pub cache: MappingCache,
    /// Use the fast mapper preset instead of the full search.
    pub fast_mapper: bool,
    /// Worker threads for each item's temporal-mapping searches.
    pub search_threads: usize,
    /// The mapper's search budget.
    pub budget: Budget,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            engine: EngineConfig::parallel(),
            cache: MappingCache::new(),
            fast_mapper: false,
            search_threads: 1,
            budget: Budget::default(),
        }
    }
}

/// The result of one batch item: either a schedule with its objective
/// value, or the error that stopped it. Errors are isolated per item — a
/// failing request never affects its batch siblings' results.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// The best schedule, when the item succeeded.
    pub schedule: Option<ScheduleResult>,
    /// The schedule's objective value under the item's target (`NaN` on
    /// error).
    pub value: f64,
    /// Why the item failed (validation error or a panic caught by the
    /// engine's per-point isolation).
    pub error: Option<String>,
}

impl BatchOutcome {
    fn failed(error: String) -> Self {
        Self {
            schedule: None,
            value: f64::NAN,
            error: Some(error),
        }
    }
}

/// Runs every item in one flattened engine run sharing `config.cache`, and
/// returns one outcome per item, in item order.
///
/// Items that fail upfront validation produce an error outcome without
/// entering the engine; a panic inside an item's search (injected fault,
/// resource exhaustion) is caught by the engine's per-point isolation and
/// becomes that item's error. Result values and schedules are bit-identical
/// to standalone [`Explorer::best_schedule`] runs of the same requests (see
/// the module docs).
pub fn run_batch(items: &[BatchItem], config: &BatchConfig) -> Vec<BatchOutcome> {
    let mut slots: Vec<Option<BatchOutcome>> = (0..items.len()).map(|_| None).collect();

    // Upfront validation, so the engine's evaluate closure is infallible for
    // the items it sees. Invalid items fail here, in item order, without
    // costing a cell.
    let mut pending: Vec<usize> = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let validity = item
            .network
            .validate()
            .map_err(|e| e.to_string())
            .and_then(|()| {
                if let Some(fuse) = item.policy.fixed_fuse_depth() {
                    let stacks = partition_into_stacks(&item.network, &item.accelerator, &fuse);
                    crate::evaluate::validate_stacks(&item.network, &stacks)
                        .map_err(|e| e.to_string())?;
                }
                Ok(())
            });
        match validity {
            Ok(()) => pending.push(i),
            Err(why) => slots[i] = Some(BatchOutcome::failed(why)),
        }
    }

    // One cost model per item, all sharing the batch cache. The cache key
    // includes the accelerator fingerprint, so items against different
    // hardware coexist; items against the *same* hardware share warm
    // entries.
    let models: Vec<DfCostModel<'_>> = items
        .iter()
        .map(|item| {
            let model = DfCostModel::new(&item.accelerator).with_shared_cache(config.cache.clone());
            let model = if config.fast_mapper {
                model.with_fast_mapper()
            } else {
                model
            };
            // After the mapper choice: `with_fast_mapper` replaces the whole
            // mapper configuration, thread count included.
            model
                .with_search_threads(config.search_threads)
                .with_search_budget(config.budget)
        })
        .collect();

    let grids: Vec<Vec<(u64, u64)>> = items
        .iter()
        .map(|item| match &item.tile_grid {
            Some(grid) => grid.clone(),
            None => Explorer::default_tile_grid(&item.network),
        })
        .collect();

    let engine = SweepEngine::new(config.engine.with_pruning(false))
        .with_label("batch")
        .with_label_detail(format!("{} requests", pending.len()));

    let evaluate = |&i: &usize| -> ScheduleResult {
        let item = &items[i];
        // Each item's inner schedule search runs sequentially: the outer
        // engine already keeps every core busy with one item per worker.
        Explorer::new(&models[i])
            .with_engine_config(EngineConfig::sequential())
            .with_run_label(item.label.clone())
            .best_schedule(
                &item.network,
                &grids[i],
                &item.modes,
                item.target,
                &item.policy,
            )
            .expect("batch items are validated before the engine run")
    };
    let objective = |&i: &usize, schedule: &ScheduleResult| {
        schedule.value(items[i].target, &items[i].accelerator)
    };

    engine.run(
        &pending,
        &evaluate,
        &objective,
        None::<&fn(&usize) -> f64>,
        |record| {
            let i = record.point;
            let outcome = match record.outcome {
                defines_engine::Outcome::Evaluated {
                    cost: mut schedule,
                    value,
                } => {
                    // Scrub the run-relative stats, exactly like a matrix
                    // cell: the shared cache's delta also counts sibling
                    // traffic and the wall time varies run to run, but a
                    // served response must be exactly reproducible.
                    schedule.stats.cache = None;
                    schedule.stats.elapsed = Duration::ZERO;
                    BatchOutcome {
                        schedule: Some(schedule),
                        value,
                        error: None,
                    }
                }
                defines_engine::Outcome::Pruned { .. } => {
                    unreachable!("batch runs never prune")
                }
                defines_engine::Outcome::Failed { error } => BatchOutcome::failed(error),
            };
            slots[i] = Some(outcome);
        },
    );

    slots
        .into_iter()
        .map(|slot| slot.expect("every batch item is either validated out or evaluated"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use defines_arch::zoo;
    use defines_workload::models;
    use serde::Serialize;

    fn item(label: &str, tile: (u64, u64)) -> BatchItem {
        BatchItem {
            label: label.to_string(),
            accelerator: zoo::meta_proto_like_df(),
            network: models::fsrcnn(),
            tile_grid: Some(vec![tile]),
            modes: vec![OverlapMode::FullyCached],
            target: OptimizeTarget::Energy,
            policy: FusePolicy::FullNetwork,
        }
    }

    #[test]
    fn batch_matches_standalone_runs() {
        let config = BatchConfig {
            fast_mapper: true,
            ..BatchConfig::default()
        };
        let items = vec![item("a", (32, 32)), item("b", (48, 48))];
        let outcomes = run_batch(&items, &config);
        assert_eq!(outcomes.len(), 2);
        for (it, outcome) in items.iter().zip(&outcomes) {
            assert!(outcome.error.is_none());
            let model = DfCostModel::new(&it.accelerator)
                .with_shared_cache(MappingCache::new())
                .with_fast_mapper()
                .with_search_threads(1)
                .with_search_budget(config.budget);
            let mut standalone = Explorer::new(&model)
                .with_engine_config(EngineConfig::sequential())
                .with_run_label(it.label.clone())
                .best_schedule(
                    &it.network,
                    it.tile_grid.as_ref().unwrap(),
                    &it.modes,
                    it.target,
                    &it.policy,
                )
                .unwrap();
            standalone.stats.cache = None;
            standalone.stats.elapsed = Duration::ZERO;
            let batched = outcome.schedule.as_ref().unwrap();
            assert_eq!(
                batched.to_value().to_json(),
                standalone.to_value().to_json(),
                "batched result must be bit-identical to the standalone run"
            );
            assert_eq!(outcome.value, standalone.value(it.target, &it.accelerator));
        }
    }

    #[test]
    fn invalid_items_fail_without_poisoning_siblings() {
        let config = BatchConfig {
            fast_mapper: true,
            ..BatchConfig::default()
        };
        let mut bad = item("bad", (32, 32));
        // An empty network fails upfront validation before the engine run.
        bad.network = defines_workload::Network::new("empty");
        let items = vec![bad, item("good", (32, 32))];
        let outcomes = run_batch(&items, &config);
        assert!(outcomes[0].error.is_some());
        assert!(outcomes[0].schedule.is_none());
        assert!(outcomes[1].error.is_none());
        assert!(outcomes[1].schedule.is_some());
    }
}
