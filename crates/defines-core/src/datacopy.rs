//! Step 4 of the depth-first cost model: data copy actions and their cost.
//!
//! A *data copy action* moves a given number of bytes from one memory level to
//! another — for instance collecting cached overlap data from the global
//! buffer into the local buffer that was chosen as the input's top memory
//! level, or pushing a freshly computed tile output into the overlap cache.
//! The cost model accounts the read at the source, the write at the
//! destination, and the cycles the transfers occupy on each memory port
//! (concurrent copies that hit the same port serialize).

use defines_arch::{Accelerator, MemoryLevelId, Operand};
use defines_mapping::AccessBreakdown;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One data copy action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataCopyAction {
    /// Number of bytes to move.
    pub bytes: u64,
    /// Source memory level.
    pub from: MemoryLevelId,
    /// Destination memory level.
    pub to: MemoryLevelId,
    /// The operand class the moved data belongs to (used for reporting).
    pub operand: Operand,
}

impl DataCopyAction {
    /// Creates a copy action. Actions with `from == to` or zero bytes are
    /// meaningful no-ops; [`copy_cost`] skips them.
    pub fn new(bytes: u64, from: MemoryLevelId, to: MemoryLevelId, operand: Operand) -> Self {
        Self {
            bytes,
            from,
            to,
            operand,
        }
    }

    /// Whether the action actually moves data.
    pub fn is_noop(&self) -> bool {
        self.bytes == 0 || self.from == self.to
    }
}

/// The evaluated cost of a bundle of data copy actions.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DataCopyCost {
    /// Total energy in pJ.
    pub energy_pj: f64,
    /// Cycles the copies occupy, assuming copies run in parallel but serialize
    /// on shared memory ports.
    pub latency_cycles: f64,
    /// Per-level, per-operand traffic caused by the copies.
    pub accesses: AccessBreakdown,
}

/// Evaluates the cost of a bundle of data copy actions that can conceptually
/// run in parallel (step 4's "data copy action cost model").
pub fn copy_cost(acc: &Accelerator, actions: &[DataCopyAction]) -> DataCopyCost {
    let hierarchy = acc.hierarchy();
    let mut energy = 0.0;
    let mut accesses = AccessBreakdown::new();
    // Bytes read / written per level, to model port contention.
    let mut read_bytes: BTreeMap<MemoryLevelId, f64> = BTreeMap::new();
    let mut write_bytes: BTreeMap<MemoryLevelId, f64> = BTreeMap::new();

    for action in actions {
        if action.is_noop() {
            continue;
        }
        let bytes = action.bytes as f64;
        let from = hierarchy.level(action.from);
        let to = hierarchy.level(action.to);
        energy += bytes * (from.read_energy_pj_per_byte() + to.write_energy_pj_per_byte());
        accesses.add_reads(action.from, action.operand, bytes);
        accesses.add_writes(action.to, action.operand, bytes);
        *read_bytes.entry(action.from).or_default() += bytes;
        *write_bytes.entry(action.to).or_default() += bytes;
    }

    let mut latency: f64 = 0.0;
    for (level, bytes) in &read_bytes {
        let bw = hierarchy.level(*level).read_bw_bytes_per_cycle();
        if bw.is_finite() && bw > 0.0 {
            latency = latency.max(bytes / bw);
        }
    }
    for (level, bytes) in &write_bytes {
        let bw = hierarchy.level(*level).write_bw_bytes_per_cycle();
        if bw.is_finite() && bw > 0.0 {
            latency = latency.max(bytes / bw);
        }
    }

    DataCopyCost {
        energy_pj: energy,
        latency_cycles: latency,
        accesses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defines_arch::zoo;

    #[test]
    fn noop_actions_cost_nothing() {
        let acc = zoo::meta_proto_like_df();
        let lb = acc.hierarchy().level_id_named("LB_IO").unwrap();
        let cost = copy_cost(
            &acc,
            &[
                DataCopyAction::new(0, lb, acc.hierarchy().dram_id(), Operand::Input),
                DataCopyAction::new(1024, lb, lb, Operand::Input),
            ],
        );
        assert_eq!(cost.energy_pj, 0.0);
        assert_eq!(cost.latency_cycles, 0.0);
    }

    #[test]
    fn copy_energy_is_read_plus_write() {
        let acc = zoo::meta_proto_like_df();
        let h = acc.hierarchy();
        let gb = h.level_id_named("GB_IO").unwrap();
        let lb = h.level_id_named("LB_IO").unwrap();
        let cost = copy_cost(&acc, &[DataCopyAction::new(1000, gb, lb, Operand::Input)]);
        let expected = 1000.0
            * (h.level(gb).read_energy_pj_per_byte() + h.level(lb).write_energy_pj_per_byte());
        assert!((cost.energy_pj - expected).abs() < 1e-9);
        assert!(cost.latency_cycles > 0.0);
        assert_eq!(cost.accesses.get(gb, Operand::Input).reads_bytes, 1000.0);
        assert_eq!(cost.accesses.get(lb, Operand::Input).writes_bytes, 1000.0);
    }

    #[test]
    fn parallel_copies_serialize_on_shared_ports() {
        let acc = zoo::meta_proto_like_df();
        let h = acc.hierarchy();
        let gb = h.level_id_named("GB_IO").unwrap();
        let lb = h.level_id_named("LB_IO").unwrap();
        let dram = h.dram_id();
        // Two copies read from the GB: they contend for the GB read port.
        let two = copy_cost(
            &acc,
            &[
                DataCopyAction::new(4096, gb, lb, Operand::Input),
                DataCopyAction::new(4096, gb, dram, Operand::Output),
            ],
        );
        let one = copy_cost(&acc, &[DataCopyAction::new(4096, gb, lb, Operand::Input)]);
        assert!(two.latency_cycles >= 2.0 * one.latency_cycles - 1e-9);
    }

    #[test]
    fn dram_bandwidth_dominates_latency() {
        let acc = zoo::meta_proto_like_df();
        let h = acc.hierarchy();
        let lb = h.level_id_named("LB_IO").unwrap();
        let dram = h.dram_id();
        let cost = copy_cost(&acc, &[DataCopyAction::new(8000, dram, lb, Operand::Input)]);
        // DRAM provides 8 B/cycle, so 8000 bytes take 1000 cycles.
        assert!((cost.latency_cycles - 1000.0).abs() < 1e-9);
    }
}
