//! Append-only JSONL checkpoints for matrix runs: kill a long
//! `{accelerator} × {workload} × {fuse policy}` grid at any point and resume
//! it without re-evaluating the finished cells.
//!
//! # File format
//!
//! Line 1 is a header object binding the checkpoint to one exact run
//! configuration: the format version, the optimization target, every axis
//! (accelerator names *and* structural fingerprints, workload names, fuse
//! labels), and a `grid_fingerprint` hashing everything else that shapes
//! cell results (tile grids, overlap modes, mapper configuration — which
//! itself covers the search budget). Every further line is one completed
//! [`CellOutcome`], appended and flushed the moment the cell finishes, in
//! completion order.
//!
//! # Resume semantics
//!
//! Cells are keyed by `(accelerator fingerprint, workload, fuse label)` —
//! *not* by grid position, so completion order and thread count never
//! matter. [`run_matrix`](crate::matrix::run_matrix) skips every keyed cell
//! found in the checkpoint and splices the recorded outcomes into the
//! report; because per-cell statistics carry no wall-clock time (the runner
//! zeroes it — see `run_matrix`), the resumed report's cells, ranking and
//! inner statistics are **byte-identical** to the uninterrupted run's.
//!
//! Two kinds of damage are tolerated by design:
//!
//! * a **torn tail** — the process died mid-append, leaving a partial last
//!   line. The loader drops it (flagged in [`Checkpoint::torn_tail`]) and
//!   the cell simply re-runs;
//! * **failed cells are never recorded** — a cell marked
//!   [`CellOutcome::error`] (panic, injected fault, missed deadline) is not
//!   appended, so resuming retries it instead of pinning the failure.
//!
//! Any other mismatch — a different grid, target, or a corrupt interior
//! line — is a hard [`MatrixError::Checkpoint`]: silently mixing two
//! configurations in one report would be worse than re-running.

use crate::explore::OptimizeTarget;
use crate::matrix::{CellOutcome, CellStack, MatrixError};
use defines_engine::SweepStats;
use serde::{Serialize, Value};
use std::io::Write as _;
use std::path::Path;
use std::time::Duration;

/// Format version written to (and required of) the header line.
const VERSION: u64 = 1;

/// The header line binding a checkpoint to one run configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointHeader {
    /// The optimization target (display form, e.g. `"energy"`).
    pub target: String,
    /// The accelerator axis: `(name, structural fingerprint)` per entry, in
    /// submission order.
    pub accelerators: Vec<(String, u64)>,
    /// The workload axis, in submission order.
    pub workloads: Vec<String>,
    /// The fuse-policy axis labels, in submission order.
    pub policies: Vec<String>,
    /// FNV-1a hash over everything else that shapes cell results: tile
    /// grids, overlap modes, policy parameters, and each accelerator's
    /// mapper configuration fingerprint (which covers the search budget).
    pub grid_fingerprint: u64,
}

/// A loaded checkpoint: the validated header plus the raw cell values
/// (converted to [`CellOutcome`]s by the matrix runner, which owns the axis
/// context needed to reconstruct the fuse policies).
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The header line.
    pub header: CheckpointHeader,
    /// One raw JSON value per recorded cell line, in file (completion)
    /// order.
    pub cells: Vec<Value>,
    /// Whether the file ended in a partial line (the recording process died
    /// mid-append). The partial line is dropped; its cell re-runs.
    pub torn_tail: bool,
}

// Deterministic FNV-1a over a byte stream — used instead of
// `DefaultHasher` because checkpoints outlive the process and
// `DefaultHasher`'s algorithm is not guaranteed stable across Rust
// releases. The implementation lives in `defines-engine` so the
// mapping-cache store shares the exact same fingerprint algorithm.
pub(crate) use defines_engine::Fnv;

impl CheckpointHeader {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("defines_matrix_checkpoint".into(), Value::U64(VERSION)),
            ("target".into(), Value::Str(self.target.clone())),
            (
                "accelerators".into(),
                Value::Array(
                    self.accelerators
                        .iter()
                        .map(|(name, fp)| {
                            Value::Array(vec![Value::Str(name.clone()), Value::U64(*fp)])
                        })
                        .collect(),
                ),
            ),
            ("workloads".into(), self.workloads.to_value()),
            ("policies".into(), self.policies.to_value()),
            ("grid_fingerprint".into(), Value::U64(self.grid_fingerprint)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let version = field(v, "defines_matrix_checkpoint")?
            .as_u64()
            .ok_or("header version is not an integer")?;
        if version != VERSION {
            return Err(format!(
                "unsupported checkpoint version {version} (this build writes {VERSION})"
            ));
        }
        let accelerators = field(v, "accelerators")?
            .as_array()
            .ok_or("'accelerators' is not an array")?
            .iter()
            .map(|entry| {
                let pair = entry.as_array().filter(|p| p.len() == 2);
                match pair {
                    Some([name, fp]) => match (name.as_str(), fp.as_u64()) {
                        (Some(name), Some(fp)) => Ok((name.to_string(), fp)),
                        _ => Err("accelerator entry is not [name, fingerprint]".to_string()),
                    },
                    _ => Err("accelerator entry is not [name, fingerprint]".to_string()),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CheckpointHeader {
            target: string_field(v, "target")?,
            accelerators,
            workloads: string_array(field(v, "workloads")?, "workloads")?,
            policies: string_array(field(v, "policies")?, "policies")?,
            grid_fingerprint: field(v, "grid_fingerprint")?
                .as_u64()
                .ok_or("'grid_fingerprint' is not an integer")?,
        })
    }

    /// Checks that `self` (loaded from a file) describes the same run as
    /// `current` (built from the live arguments), field by field so the
    /// error names what drifted.
    pub fn validate_against(&self, current: &CheckpointHeader) -> Result<(), MatrixError> {
        let mismatch = |what: &str| {
            Err(MatrixError::Checkpoint(format!(
                "checkpoint does not match this run: {what} differs \
                 (delete the file or rerun with the original arguments)"
            )))
        };
        if self.target != current.target {
            return mismatch("the optimization target");
        }
        if self.accelerators != current.accelerators {
            return mismatch("the accelerator axis");
        }
        if self.workloads != current.workloads {
            return mismatch("the workload axis");
        }
        if self.policies != current.policies {
            return mismatch("the fuse-policy axis");
        }
        if self.grid_fingerprint != current.grid_fingerprint {
            return mismatch("the grid configuration (tile grid, modes, or mapper settings)");
        }
        Ok(())
    }
}

/// Looks a required key up in a JSON object.
fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, String> {
    v.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn string_field(v: &Value, key: &str) -> Result<String, String> {
    Ok(field(v, key)?
        .as_str()
        .ok_or_else(|| format!("'{key}' is not a string"))?
        .to_string())
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("'{key}' is not an unsigned integer"))
}

fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| format!("'{key}' is not a number"))
}

fn string_array(v: &Value, what: &str) -> Result<Vec<String>, String> {
    v.as_array()
        .ok_or_else(|| format!("'{what}' is not an array"))?
        .iter()
        .map(|item| {
            item.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("'{what}' entry is not a string"))
        })
        .collect()
}

/// Reconstructs a recorded cell. The fuse *policy object* is not parseable
/// from its display form, so it is resolved from the current run's axis via
/// the cell's `fuse` label — the header validation already guaranteed the
/// axes match.
pub(crate) fn cell_from_value(
    v: &Value,
    policies: &[crate::fuse::FusePolicy],
    policy_names: &[String],
) -> Result<CellOutcome, String> {
    let fuse = string_field(v, "fuse")?;
    let pi = policy_names
        .iter()
        .position(|name| *name == fuse)
        .ok_or_else(|| format!("cell fuse label '{fuse}' is not on the policy axis"))?;
    let stacks = field(v, "stacks")?
        .as_array()
        .ok_or("'stacks' is not an array")?
        .iter()
        .map(|s| {
            Ok(CellStack {
                layers: string_array(field(s, "layers")?, "layers")?,
                tile: string_field(s, "tile")?,
                mode: string_field(s, "mode")?,
                value: f64_field(s, "value")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let stats = field(v, "stats")?;
    let stats = SweepStats {
        label: string_field(stats, "label")?,
        points: u64_field(stats, "points")? as usize,
        evaluated: u64_field(stats, "evaluated")? as usize,
        pruned: u64_field(stats, "pruned")? as usize,
        failed: u64_field(stats, "failed")? as usize,
        threads: u64_field(stats, "threads")? as usize,
        // Recorded cells always carry zero elapsed time (the runner zeroes
        // it for reproducibility); parse it anyway so the round-trip stays
        // honest if that ever changes.
        elapsed: Duration::from_secs_f64(f64_field(stats, "elapsed_ms")? / 1e3),
        cache: None,
    };
    if !field(v, "error")?.is_null() {
        return Err("checkpoint contains a failed cell (failed cells are never recorded)".into());
    }
    Ok(CellOutcome {
        accelerator: string_field(v, "accelerator")?,
        fingerprint: u64_field(v, "fingerprint")?,
        workload: string_field(v, "workload")?,
        policy: policies[pi].clone(),
        fuse,
        label: string_field(v, "label")?,
        value: f64_field(v, "value")?,
        energy_pj: f64_field(v, "energy_pj")?,
        latency_cycles: f64_field(v, "latency_cycles")?,
        edp: f64_field(v, "edp")?,
        candidates: u64_field(v, "candidates")? as usize,
        degraded: field(v, "degraded")?
            .as_bool()
            .ok_or("'degraded' is not a boolean")?,
        error: None,
        stacks,
        stats,
    })
}

/// Loads and parses a checkpoint file. The header is validated structurally
/// here; matching it against the live run is the caller's
/// [`CheckpointHeader::validate_against`]. A partial *last* line (torn
/// write) is dropped; a malformed line anywhere else is an error.
pub fn load(path: &Path) -> Result<Checkpoint, MatrixError> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        MatrixError::Checkpoint(format!("cannot read checkpoint '{}': {e}", path.display()))
    })?;
    let bad = |line_no: usize, why: String| {
        MatrixError::Checkpoint(format!(
            "checkpoint '{}' line {line_no}: {why}",
            path.display()
        ))
    };
    // Indices of non-empty lines, so a torn final line is recognizable even
    // when the file happens to end in a newline.
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .collect();
    let Some(&(header_line, header_text)) = lines.first() else {
        return Err(MatrixError::Checkpoint(format!(
            "checkpoint '{}' is empty",
            path.display()
        )));
    };
    let header = serde_json::from_str(header_text)
        .map_err(|e| bad(header_line + 1, format!("invalid JSON: {e}")))
        .and_then(|v| CheckpointHeader::from_value(&v).map_err(|why| bad(header_line + 1, why)))?;
    let mut cells = Vec::with_capacity(lines.len() - 1);
    let mut torn_tail = false;
    for (i, &(line_no, line)) in lines.iter().enumerate().skip(1) {
        match serde_json::from_str(line) {
            Ok(v) => cells.push(v),
            Err(_) if i == lines.len() - 1 => torn_tail = true,
            Err(e) => return Err(bad(line_no + 1, format!("invalid JSON: {e}"))),
        }
    }
    Ok(Checkpoint {
        header,
        cells,
        torn_tail,
    })
}

/// An open checkpoint file, appending one line per finished cell.
pub(crate) struct Writer {
    file: std::fs::File,
    path: std::path::PathBuf,
}

impl Writer {
    /// Creates the file (truncating any previous content — the caller
    /// decides between create and resume *before* constructing a writer)
    /// and writes the header line.
    pub(crate) fn create(path: &Path, header: &CheckpointHeader) -> Result<Self, MatrixError> {
        let mut writer = Self::open(path, std::fs::File::create(path))?;
        writer.line(&header.to_value())?;
        Ok(writer)
    }

    /// Re-creates the file from its loaded content for a resume: the header
    /// and every *valid* cell line are rewritten to a sibling temp file
    /// which then atomically replaces the original. This drops a torn tail
    /// (appending after one would corrupt the next line) without ever
    /// leaving the path without a usable checkpoint, and the returned
    /// writer keeps appending to the renamed file.
    pub(crate) fn resume(
        path: &Path,
        header: &CheckpointHeader,
        cells: &[Value],
    ) -> Result<Self, MatrixError> {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("checkpoint");
        let tmp = path.with_file_name(format!("{name}.tmp"));
        let mut writer = Self::create(&tmp, header)?;
        for cell in cells {
            writer.line(cell)?;
        }
        std::fs::rename(&tmp, path).map_err(|e| {
            MatrixError::Checkpoint(format!(
                "cannot replace checkpoint '{}': {e}",
                path.display()
            ))
        })?;
        // The open handle followed the rename (same inode); only the
        // reported path changes.
        writer.path = path.to_path_buf();
        Ok(writer)
    }

    fn open(path: &Path, file: std::io::Result<std::fs::File>) -> Result<Self, MatrixError> {
        let file = file.map_err(|e| {
            MatrixError::Checkpoint(format!("cannot open checkpoint '{}': {e}", path.display()))
        })?;
        Ok(Writer {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Appends one JSON line and flushes, so a kill right after loses at
    /// most the line it interrupted.
    pub(crate) fn line(&mut self, value: &Value) -> Result<(), MatrixError> {
        let mut line = value.to_json();
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| {
                MatrixError::Checkpoint(format!(
                    "cannot append to checkpoint '{}': {e}",
                    self.path.display()
                ))
            })
    }
}

/// Builds the header for a live run (also the fingerprint the loaded header
/// is validated against).
#[allow(clippy::too_many_arguments)]
pub(crate) fn live_header(
    target: OptimizeTarget,
    accelerators: &[(String, u64)],
    workloads: &[String],
    policies: &[crate::fuse::FusePolicy],
    policy_names: &[String],
    grids: &[Vec<(u64, u64)>],
    modes: &[crate::strategy::OverlapMode],
    mapper_fingerprint: u64,
) -> CheckpointHeader {
    let mut h = Fnv::new();
    for grid in grids {
        h.write_u64(grid.len() as u64);
        for &(w, hh) in grid {
            h.write_u64(w);
            h.write_u64(hh);
        }
    }
    h.write_u64(modes.len() as u64);
    for mode in modes {
        h.write(mode.to_string().as_bytes());
    }
    // Policy *parameters* (two Search policies may share an axis label
    // prefix yet differ in span/budget — the display form carries both).
    for policy in policies {
        h.write(policy.to_string().as_bytes());
    }
    h.write_u64(mapper_fingerprint);
    CheckpointHeader {
        target: target.to_string(),
        accelerators: accelerators.to_vec(),
        workloads: workloads.to_vec(),
        policies: policy_names.to_vec(),
        grid_fingerprint: h.finish(),
    }
}
