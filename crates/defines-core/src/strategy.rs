//! Depth-first scheduling strategies: the three axes of the design space.

use crate::stack::FuseDepth;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Axis 2 of the design space: what to do with the data overlap between
/// neighbouring tiles (Fig. 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OverlapMode {
    /// Recompute the overlapping features for every tile.
    FullyRecompute,
    /// Cache the horizontal overlap (columns needed by the tile to the right),
    /// recompute the vertical overlap.
    HCachedVRecompute,
    /// Cache both the horizontal and the vertical overlap.
    FullyCached,
}

impl OverlapMode {
    /// All three overlap storing modes, in the paper's order.
    pub const ALL: [OverlapMode; 3] = [
        OverlapMode::FullyRecompute,
        OverlapMode::HCachedVRecompute,
        OverlapMode::FullyCached,
    ];

    /// Whether the horizontal overlap is cached.
    pub fn caches_horizontal(&self) -> bool {
        matches!(
            self,
            OverlapMode::HCachedVRecompute | OverlapMode::FullyCached
        )
    }

    /// Whether the vertical overlap is cached.
    pub fn caches_vertical(&self) -> bool {
        matches!(self, OverlapMode::FullyCached)
    }
}

impl fmt::Display for OverlapMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OverlapMode::FullyRecompute => "fully-recompute",
            OverlapMode::HCachedVRecompute => "H-cached V-recompute",
            OverlapMode::FullyCached => "fully-cached",
        };
        f.write_str(s)
    }
}

/// Axis 1 of the design space: the tile size of the stack's final output
/// feature map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileSize {
    /// Tile width (along OX). `u64::MAX` means "the whole feature map".
    pub tx: u64,
    /// Tile height (along OY). `u64::MAX` means "the whole feature map".
    pub ty: u64,
}

impl TileSize {
    /// Creates a tile size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(tx: u64, ty: u64) -> Self {
        assert!(tx > 0 && ty > 0, "tile dimensions must be positive");
        Self { tx, ty }
    }

    /// The tile that covers the entire output feature map (turning the
    /// schedule into layer-by-layer processing, Section II).
    pub fn full() -> Self {
        Self {
            tx: u64::MAX,
            ty: u64::MAX,
        }
    }

    /// Whether this tile covers the whole feature map regardless of its size.
    pub fn is_full(&self) -> bool {
        self.tx == u64::MAX && self.ty == u64::MAX
    }

    /// The effective tile size for a feature map of `w`×`h` pixels.
    pub fn clamped(&self, w: u64, h: u64) -> (u64, u64) {
        (self.tx.min(w), self.ty.min(h))
    }
}

impl fmt::Display for TileSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_full() {
            f.write_str("(full)")
        } else {
            write!(f, "({}, {})", self.tx, self.ty)
        }
    }
}

/// Where feature maps are passed between consecutive stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BetweenStackMemory {
    /// The lowest memory level in which the full feature map fits (the
    /// layer-by-layer behaviour of Fig. 1(b)).
    #[default]
    LowestFitting,
    /// Always through DRAM (the single-layer behaviour of Fig. 1(a)).
    Dram,
}

/// A complete depth-first scheduling strategy: one point in the design space
/// of Section II.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DfStrategy {
    /// Axis 1: tile size of the stack's final output.
    pub tile: TileSize,
    /// Axis 2: overlap storing mode.
    pub mode: OverlapMode,
    /// Axis 3: fuse depth (how layers are grouped into stacks).
    pub fuse: FuseDepth,
    /// How feature maps travel between stacks.
    pub between_stacks: BetweenStackMemory,
}

impl DfStrategy {
    /// A depth-first strategy with the given tile size and overlap mode; the
    /// fuse depth is determined automatically (layers are added to a stack
    /// while the stack's weights fit the top on-chip weight memory).
    pub fn depth_first(tile: TileSize, mode: OverlapMode) -> Self {
        Self {
            tile,
            mode,
            fuse: FuseDepth::Auto,
            between_stacks: BetweenStackMemory::LowestFitting,
        }
    }

    /// The single-layer (SL) extreme point: every layer is its own stack and
    /// all feature maps travel through DRAM.
    pub fn single_layer() -> Self {
        Self {
            tile: TileSize::full(),
            mode: OverlapMode::FullyRecompute,
            fuse: FuseDepth::SingleLayerStacks,
            between_stacks: BetweenStackMemory::Dram,
        }
    }

    /// The layer-by-layer (LBL) extreme point: one tile covering the whole
    /// feature map, intermediate feature maps passed in the lowest memory
    /// level they fit in.
    pub fn layer_by_layer() -> Self {
        Self {
            tile: TileSize::full(),
            mode: OverlapMode::FullyRecompute,
            fuse: FuseDepth::FullNetwork,
            between_stacks: BetweenStackMemory::LowestFitting,
        }
    }

    /// Returns a copy with a manually specified fuse depth.
    pub fn with_fuse(mut self, fuse: FuseDepth) -> Self {
        self.fuse = fuse;
        self
    }

    /// Returns a copy with a different between-stack memory policy.
    pub fn with_between_stacks(mut self, policy: BetweenStackMemory) -> Self {
        self.between_stacks = policy;
        self
    }

    /// Whether this strategy is (an encoding of) plain single-layer
    /// scheduling.
    pub fn is_single_layer(&self) -> bool {
        self.tile.is_full()
            && self.fuse == FuseDepth::SingleLayerStacks
            && self.between_stacks == BetweenStackMemory::Dram
    }
}

impl fmt::Display for DfStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tile {} | {} | {}", self.tile, self.mode, self.fuse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_mode_capabilities() {
        assert!(!OverlapMode::FullyRecompute.caches_horizontal());
        assert!(OverlapMode::HCachedVRecompute.caches_horizontal());
        assert!(!OverlapMode::HCachedVRecompute.caches_vertical());
        assert!(OverlapMode::FullyCached.caches_vertical());
        assert_eq!(OverlapMode::ALL.len(), 3);
    }

    #[test]
    fn tile_size_clamping() {
        let t = TileSize::new(60, 72);
        assert_eq!(t.clamped(960, 540), (60, 72));
        assert_eq!(t.clamped(32, 32), (32, 32));
        assert!(TileSize::full().is_full());
        assert_eq!(TileSize::full().clamped(960, 540), (960, 540));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tile_rejected() {
        let _ = TileSize::new(0, 4);
    }

    #[test]
    fn canonical_strategies() {
        let sl = DfStrategy::single_layer();
        assert!(sl.is_single_layer());
        let lbl = DfStrategy::layer_by_layer();
        assert!(!lbl.is_single_layer());
        assert_eq!(lbl.between_stacks, BetweenStackMemory::LowestFitting);
        let df = DfStrategy::depth_first(TileSize::new(4, 72), OverlapMode::FullyCached);
        assert_eq!(df.fuse, FuseDepth::Auto);
        assert!(df.to_string().contains("fully-cached"));
    }
}
