//! The depth-first cost model: steps 1–6 of Section III, orchestrated per
//! stack, per tile type and per layer.

use crate::backcalc::{FmId, StackGeometry, TileAnalysis};
use crate::datacopy::{copy_cost, DataCopyAction};
use crate::memlevel::{determine_placement, PlacementPolicy, PlacementRequest};
use crate::result::{energy_summary, EnergySummary, NetworkCost, StackCost, TileTypeCost};
use crate::stack::{partition_into_stacks, Stack};
use crate::strategy::{BetweenStackMemory, DfStrategy, OverlapMode, TileSize};
use crate::tiling::TileGrid;
use defines_arch::{Accelerator, MemoryLevelId, Operand};
use defines_mapping::{
    AccessBreakdown, LayerCost, LomaMapper, MapperConfig, MappingCache, Objective,
    OperandTopLevels, SingleLayerProblem,
};
use defines_telemetry::{span, Counter};
use defines_workload::{Layer, LayerDims, Network};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Errors produced while evaluating a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvaluationError {
    /// The workload has no layers.
    EmptyNetwork,
    /// A manual stack partition referenced layers outside the network or was
    /// empty.
    InvalidStacks(String),
    /// The workload DAG itself is invalid (dangling edges, self loops).
    ///
    /// [`Network::add_layer`](defines_workload::Network::add_layer) enforces
    /// these invariants for programmatically built networks; the variant
    /// exists so externally produced networks (e.g. from the JSON workload
    /// frontend) surface a structured error instead of a panic if the
    /// invariants are ever violated.
    Network(defines_workload::NetworkError),
}

impl fmt::Display for EvaluationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvaluationError::EmptyNetwork => write!(f, "the workload contains no layers"),
            EvaluationError::InvalidStacks(msg) => write!(f, "invalid stack partition: {msg}"),
            EvaluationError::Network(err) => write!(f, "invalid workload: {err}"),
        }
    }
}

impl std::error::Error for EvaluationError {}

impl From<defines_workload::NetworkError> for EvaluationError {
    fn from(err: defines_workload::NetworkError) -> Self {
        match err {
            defines_workload::NetworkError::Empty => EvaluationError::EmptyNetwork,
            other => EvaluationError::Network(other),
        }
    }
}

/// The DeFiNES unified analytical cost model for one accelerator.
///
/// The model is deterministic: evaluating the same workload and strategy twice
/// yields identical results. Single-layer evaluations are memoized through a
/// [`MappingCache`], which is what makes sweeps over many tile sizes fast
/// (identical layer-tile problems re-use their mapping and cost). By default
/// each model owns a private cache; [`DfCostModel::with_shared_cache`] plugs
/// in a shared one so sweeps, explorers and even models for *different*
/// accelerators reuse each other's mapping work (the cache key includes the
/// accelerator fingerprint).
pub struct DfCostModel<'a> {
    acc: &'a Accelerator,
    mapper: LomaMapper,
    policy: PlacementPolicy,
    cache: MappingCache,
    /// [`Accelerator::fingerprint`] of `acc`, computed once — every mapping
    /// cache lookup needs it and hashing the full architecture per lookup is
    /// measurable on the hot path.
    acc_fingerprint: u64,
    /// Reusable per-evaluation scratch buffers (one per concurrently running
    /// stack evaluation), so the hot path allocates nothing per tile type.
    scratch: Mutex<Vec<EvalScratch>>,
}

/// Reusable buffers for one stack evaluation. Taken from (and returned to)
/// the model's scratch pool so concurrent engine workers each reuse their own
/// buffers instead of allocating per tile type.
#[derive(Default)]
struct EvalScratch {
    /// Data-copy actions of the layer currently being evaluated.
    actions: Vec<DataCopyAction>,
    /// Memory level holding each stack layer's freshly produced output,
    /// indexed by the layer's position in the stack.
    output_levels: Vec<MemoryLevelId>,
}

/// The sweep-invariant half of a network evaluation: the stack partition's
/// back-calculated geometries, built once by [`DfCostModel::prepare_stacks`]
/// and shared by every design point of a sweep (the engine's evaluate
/// closures). Borrows the network and the caller-owned stack partition.
pub struct PreparedNetwork<'n> {
    net: &'n Network,
    geometries: Vec<StackGeometry<'n>>,
}

/// Per-layer facts of a stack that every tile type re-uses: resolved layer
/// reference, whether the layer carries weights, and the stack positions of
/// its in-stack predecessors. Computed once per stack instead of once per
/// tile type.
struct LayerInvariant<'n> {
    layer: &'n Layer,
    has_weights: bool,
    pred_positions: Vec<usize>,
}

fn layer_invariants<'n>(net: &'n Network, stack: &Stack) -> Vec<LayerInvariant<'n>> {
    stack
        .layers
        .iter()
        .map(|&lid| {
            let layer = net.layer(lid);
            let pred_positions = net
                .predecessors(lid)
                .iter()
                .filter_map(|p| stack.layers.iter().position(|&s| s == *p))
                .collect();
            LayerInvariant {
                layer,
                has_weights: layer.op.has_weights() && layer.weight_bytes() > 0,
                pred_positions,
            }
        })
        .collect()
}

/// The per-tile cost components produced by the tile-type evaluation, before
/// the caller attaches the analysis and tile count.
struct TileEval {
    energy_pj: f64,
    latency_cycles: f64,
    macs: u64,
    activation_access: AccessBreakdown,
    weight_access: AccessBreakdown,
    copy_access: AccessBreakdown,
    energy_summary: EnergySummary,
    /// Whether any single-layer search in this tile exhausted its budget.
    degraded: bool,
}

impl<'a> fmt::Debug for DfCostModel<'a> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DfCostModel")
            .field("accelerator", &self.acc.name())
            .field("mapper", &self.mapper)
            .field("policy", &self.policy)
            .finish()
    }
}

impl<'a> DfCostModel<'a> {
    /// Creates a cost model for an accelerator with the default (exhaustive)
    /// mapper configuration.
    pub fn new(acc: &'a Accelerator) -> Self {
        Self {
            acc,
            mapper: LomaMapper::default(),
            policy: PlacementPolicy::default(),
            cache: MappingCache::new(),
            acc_fingerprint: acc.fingerprint(),
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// Locks the scratch pool, recovering from poisoning. Sound: the guard
    /// only ever covers a single `pop` or `push` of an owned buffer — neither
    /// can be observed half-done, and a buffer abandoned by a panicking
    /// evaluation is simply re-cleared on reuse — so the poison flag carries
    /// no information and recovery keeps later evaluations working after an
    /// engine worker caught a panic.
    fn lock_scratch(&self) -> MutexGuard<'_, Vec<EvalScratch>> {
        self.scratch.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn take_scratch(&self) -> EvalScratch {
        self.lock_scratch().pop().unwrap_or_default()
    }

    fn put_scratch(&self, scratch: EvalScratch) {
        self.lock_scratch().push(scratch);
    }

    /// The accelerator under evaluation.
    pub fn accelerator(&self) -> &Accelerator {
        self.acc
    }

    /// Uses a shared mapping-memoization cache instead of the model's private
    /// one. All models holding a clone of the same [`MappingCache`] reuse each
    /// other's single-layer mapping results.
    pub fn with_shared_cache(mut self, cache: MappingCache) -> Self {
        self.cache = cache;
        self
    }

    /// The mapping cache this model memoizes single-layer evaluations in.
    pub fn mapping_cache(&self) -> &MappingCache {
        &self.cache
    }

    /// Uses a reduced mapper search (the `loma_lpf_limit`-style speed knob).
    pub fn with_fast_mapper(mut self) -> Self {
        self.mapper = LomaMapper::new(MapperConfig::fast());
        self
    }

    /// Uses a custom mapper configuration.
    pub fn with_mapper(mut self, config: MapperConfig) -> Self {
        self.mapper = LomaMapper::new(config);
        self
    }

    /// Sets the number of worker threads the branch-and-bound mapping search
    /// may fan out to per problem (`1` keeps it sequential; results are
    /// bit-identical at any thread count). Does not affect the mapper's
    /// cache fingerprint — cache entries are shared across thread counts.
    pub fn with_search_threads(mut self, threads: usize) -> Self {
        self.mapper = LomaMapper::new(self.mapper.config().with_search_threads(threads));
        self
    }

    /// Sets the deterministic work budget of the single-layer mapping search
    /// (and, through [`crate::Explorer`], of the fused-partition DP). The
    /// budget is counted in deterministic work units — never wall-clock — so
    /// budgeted results stay bit-identical at any thread count; exhausting it
    /// flags the affected costs [`degraded`](crate::StackCost::degraded)
    /// instead of failing. Budgets participate in the mapper's cache
    /// fingerprint, so differently budgeted runs never share cache entries.
    pub fn with_search_budget(mut self, budget: defines_mapping::Budget) -> Self {
        self.mapper = LomaMapper::new(self.mapper.config().with_budget(budget));
        self
    }

    /// Sets the single-layer mapper's optimization objective (energy by
    /// default; latency reproduces the latency-optimized schedules of
    /// Fig. 18(d)).
    pub fn with_mapper_objective(mut self, objective: Objective) -> Self {
        self.mapper = LomaMapper::new(self.mapper.config().with_objective(objective));
        self
    }

    /// The single-layer mapper configuration used by this model.
    pub fn mapper_config(&self) -> &MapperConfig {
        self.mapper.config()
    }

    /// Disables multi-level memory skipping (activations are kept in the
    /// highest on-chip memory instead of the lowest level they fit in),
    /// reproducing the "only DRAM skipping" baseline of Fig. 18(b).
    pub fn without_multi_level_skipping(mut self) -> Self {
        self.policy.multi_level_skipping = false;
        self
    }

    /// Evaluates a network under a scheduling strategy.
    ///
    /// # Errors
    ///
    /// Returns [`EvaluationError::EmptyNetwork`] for an empty workload,
    /// [`EvaluationError::Network`] for an invalid DAG and
    /// [`EvaluationError::InvalidStacks`] when a manual fuse-depth partition
    /// is inconsistent with the network.
    pub fn evaluate_network(
        &self,
        net: &Network,
        strategy: &DfStrategy,
    ) -> Result<NetworkCost, EvaluationError> {
        net.validate()?;
        let stacks = partition_into_stacks(net, self.acc, &strategy.fuse);
        validate_stacks(net, &stacks)?;
        let prepared = self.prepare_stacks(net, &stacks);
        Ok(self.evaluate_prepared(&prepared, strategy))
    }

    /// Builds the per-stack geometry state every design point of a sweep
    /// shares, so the per-point evaluation ([`DfCostModel::evaluate_prepared`])
    /// skips the validation / partitioning / back-calculation setup that is
    /// identical across points. `stacks` must be the partition of `net` under
    /// the fuse depth the evaluated strategies will carry
    /// ([`partition_into_stacks`], already validated).
    pub fn prepare_stacks<'n>(&self, net: &'n Network, stacks: &'n [Stack]) -> PreparedNetwork<'n> {
        PreparedNetwork {
            net,
            geometries: stacks
                .iter()
                .map(|stack| StackGeometry::new(net, stack))
                .collect(),
        }
    }

    /// [`DfCostModel::evaluate_network`] on pre-built stack geometries: the
    /// per-point remainder of a sweep evaluation. Only the components that
    /// actually vary across a sweep's design points (tile size, overlap mode,
    /// between-stack memory policy) are read from `strategy`; the fuse
    /// partition is the prepared one. Bit-identical to
    /// [`DfCostModel::evaluate_network`] by construction — it runs the same
    /// per-stack sequence on the same geometry.
    pub fn evaluate_prepared(
        &self,
        prepared: &PreparedNetwork<'_>,
        strategy: &DfStrategy,
    ) -> NetworkCost {
        debug_assert_eq!(
            partition_into_stacks(prepared.net, self.acc, &strategy.fuse),
            prepared
                .geometries
                .iter()
                .map(|g| g.stack().clone())
                .collect::<Vec<_>>(),
            "strategy fuse depth diverges from the prepared partition"
        );
        let mut stack_costs = Vec::with_capacity(prepared.geometries.len());
        for geometry in &prepared.geometries {
            let in_level = self.stack_input_level(geometry, strategy.between_stacks);
            let out_level =
                self.stack_output_level(prepared.net, geometry.stack(), strategy.between_stacks);
            stack_costs.push(self.evaluate_stack_with_geometry(
                geometry,
                strategy.tile,
                strategy.mode,
                in_level,
                out_level,
            ));
        }
        NetworkCost::from_stacks(stack_costs)
    }

    /// Evaluates a single stack of fused layers with explicit between-stack
    /// memory levels. Exposed so explorers can pick a different depth-first
    /// strategy per stack ("best combination" in case study 2).
    pub fn evaluate_stack(
        &self,
        net: &Network,
        stack: &Stack,
        tile: TileSize,
        mode: OverlapMode,
        stack_input_level: MemoryLevelId,
        stack_output_level: MemoryLevelId,
    ) -> StackCost {
        let geometry = StackGeometry::new(net, stack);
        self.evaluate_stack_with_geometry(
            &geometry,
            tile,
            mode,
            stack_input_level,
            stack_output_level,
        )
    }

    /// [`DfCostModel::evaluate_stack`] on a pre-built stack geometry, so
    /// callers evaluating many (tile, mode) candidates for the same stack —
    /// the combination and fuse-depth searches — pay the geometry
    /// back-calculation setup once.
    pub(crate) fn evaluate_stack_with_geometry(
        &self,
        geometry: &StackGeometry<'_>,
        tile: TileSize,
        mode: OverlapMode,
        stack_input_level: MemoryLevelId,
        stack_output_level: MemoryLevelId,
    ) -> StackCost {
        let _span = span!("evaluate.stack");
        let net = geometry.net();
        let stack = geometry.stack();
        let sink = net.layer(stack.last_layer());
        let grid = TileGrid::new(sink.dims.ox, sink.dims.oy, tile);
        let stack_weight_bytes = stack.weight_bytes(net);
        let invariants = layer_invariants(net, stack);
        let mut scratch = self.take_scratch();

        // Steps 2–5 per unique tile type (step 1 identifies the types).
        // Signature groups are deduplicated by hash bucket (full equality
        // only within a bucket), without cloning any analysis: small tiles on
        // deep stacks can produce thousands of signature groups that collapse
        // to a handful of tile types.
        let mut type_costs: Vec<TileTypeCost> = Vec::new();
        let mut index: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for (analysis, count) in tile_type_analyses(geometry, tile, mode) {
            use std::hash::{Hash, Hasher};
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            analysis.hash(&mut hasher);
            let bucket = index.entry(hasher.finish()).or_default();
            if let Some(&i) = bucket.iter().find(|&&i| type_costs[i].analysis == analysis) {
                type_costs[i].count += count;
                continue;
            }
            bucket.push(type_costs.len());
            let eval = self.evaluate_tile_type(
                &invariants,
                &analysis,
                stack_weight_bytes,
                stack_input_level,
                stack_output_level,
                &mut scratch,
            );
            type_costs.push(TileTypeCost {
                analysis,
                count,
                energy_pj: eval.energy_pj,
                latency_cycles: eval.latency_cycles,
                macs: eval.macs,
                activation_access: eval.activation_access,
                weight_access: eval.weight_access,
                copy_access: eval.copy_access,
                energy_summary: eval.energy_summary,
                degraded: eval.degraded,
            });
        }
        self.put_scratch(scratch);

        // Step 6: accumulate.
        let mut energy = 0.0;
        let mut latency = 0.0;
        let mut macs = 0u64;
        let mut activation = AccessBreakdown::new();
        let mut weight = AccessBreakdown::new();
        let mut copy = AccessBreakdown::new();
        let mut summary = EnergySummary::default();
        let mut degraded = false;
        for t in &type_costs {
            let f = t.count as f64;
            energy += t.energy_pj * f;
            latency += t.latency_cycles * f;
            macs += t.macs * t.count;
            activation.merge_scaled(&t.activation_access, f);
            weight.merge_scaled(&t.weight_access, f);
            copy.merge_scaled(&t.copy_access, f);
            summary.accumulate(&t.energy_summary.scaled(f));
            degraded |= t.degraded;
        }

        StackCost {
            stack: stack.clone(),
            num_tiles: grid.num_tiles(),
            tile_types: type_costs,
            energy_pj: energy,
            latency_cycles: latency,
            macs,
            activation_access: activation,
            weight_access: weight,
            copy_access: copy,
            energy_summary: summary,
            degraded,
        }
    }

    /// Evaluates one tile type: placement, data copies and single-layer costs
    /// for every layer of the stack (steps 3–5), for a single tile.
    fn evaluate_tile_type(
        &self,
        invariants: &[LayerInvariant<'_>],
        analysis: &TileAnalysis,
        stack_weight_bytes: u64,
        stack_input_level: MemoryLevelId,
        stack_output_level: MemoryLevelId,
        scratch: &mut EvalScratch,
    ) -> TileEval {
        /// Distinct tile types priced across every stack evaluation.
        static TILE_TYPES: Counter = Counter::new("evaluate.tile_types");
        let _span = span!("evaluate.tile_type");
        TILE_TYPES.incr();
        let dram = self.acc.hierarchy().dram_id();
        let mut energy = 0.0;
        let mut latency = 0.0;
        let mut macs = 0u64;
        let mut activation_access = AccessBreakdown::new();
        let mut weight_access = AccessBreakdown::new();
        let mut copy_access = AccessBreakdown::new();
        let mut mac_energy = 0.0;
        let mut degraded = false;
        // Where each stack layer's freshly produced output resides, by stack
        // position (`analysis.layers` is in stack order).
        let output_levels = &mut scratch.output_levels;
        output_levels.clear();
        let last = analysis.layers.len() - 1;

        for (pos, (rec, inv)) in analysis.layers.iter().zip(invariants).enumerate() {
            if rec.to_compute_w == 0 || rec.to_compute_h == 0 {
                output_levels.push(stack_input_level);
                continue;
            }
            let layer = inv.layer;

            // Step 3: determine the top memory level of every data class.
            let request = PlacementRequest {
                stack_weight_bytes,
                layer_has_weights: inv.has_weights,
                is_first_tile: analysis.is_first_tile,
                input_bytes: rec.input_bytes,
                output_bytes: rec.output_bytes,
                cache_h_bytes: analysis.cache_h_bytes,
                cache_v_bytes: analysis.cache_v_bytes,
            };
            let placement = determine_placement(self.acc, &request, &self.policy);
            let input_top = if rec.external_input_bytes > 0 {
                placement.input.max(stack_input_level)
            } else {
                placement.input
            };
            let output_top = if pos == last {
                placement.output.max(stack_output_level)
            } else {
                placement.output
            };
            let tops = OperandTopLevels {
                weight: placement.weight,
                input: input_top,
                output: output_top,
            };

            // Step 4: data copy actions that collect the inputs at the
            // determined level and maintain the overlap caches.
            let internal_fresh = rec.fresh_input_bytes - rec.external_input_bytes;
            let producer_level = inv
                .pred_positions
                .iter()
                .map(|&p| output_levels[p])
                .max()
                .unwrap_or(stack_input_level);
            let actions = &mut scratch.actions;
            actions.clear();
            if input_top != dram {
                actions.push(DataCopyAction::new(
                    rec.external_input_bytes,
                    stack_input_level,
                    input_top,
                    Operand::Input,
                ));
                actions.push(DataCopyAction::new(
                    internal_fresh,
                    producer_level,
                    input_top,
                    Operand::Input,
                ));
            }
            if let Some(cache_h) = placement.cache_h {
                if rec.cached_h_input_bytes > 0 {
                    // Store into the cache (when the neighbouring tile produced
                    // the data) and collect it back for the current tile.
                    actions.push(DataCopyAction::new(
                        rec.cached_h_input_bytes,
                        producer_level,
                        cache_h,
                        Operand::Output,
                    ));
                    if input_top != dram {
                        actions.push(DataCopyAction::new(
                            rec.cached_h_input_bytes,
                            cache_h,
                            input_top,
                            Operand::Input,
                        ));
                    }
                }
            }
            if let Some(cache_v) = placement.cache_v {
                if rec.cached_v_input_bytes > 0 {
                    actions.push(DataCopyAction::new(
                        rec.cached_v_input_bytes,
                        producer_level,
                        cache_v,
                        Operand::Output,
                    ));
                    if input_top != dram {
                        actions.push(DataCopyAction::new(
                            rec.cached_v_input_bytes,
                            cache_v,
                            input_top,
                            Operand::Input,
                        ));
                    }
                }
            }
            let copies = copy_cost(self.acc, actions);

            // Step 5: single-layer mapper + cost model on the adjusted
            // problem.
            let dims = LayerDims {
                b: layer.dims.b,
                k: layer.dims.k,
                c: layer.dims.c,
                ox: rec.to_compute_w,
                oy: rec.to_compute_h,
                fx: layer.dims.fx,
                fy: layer.dims.fy,
                stride_x: layer.dims.stride_x,
                stride_y: layer.dims.stride_y,
                pad_x: 0,
                pad_y: 0,
            };
            let layer_cost = self.evaluate_layer_tile(layer, dims, tops);

            energy += layer_cost.energy_pj + copies.energy_pj;
            latency += layer_cost.latency_cycles + copies.latency_cycles;
            macs += layer_cost.macs;
            mac_energy += layer_cost.mac_energy_pj;
            degraded |= layer_cost.degraded;
            copy_access.merge(&copies.accesses);
            for (level, operand, access) in layer_cost.accesses.iter() {
                let target = if operand == Operand::Weight {
                    &mut weight_access
                } else {
                    &mut activation_access
                };
                target.add_reads(level, operand, access.reads_bytes);
                target.add_writes(level, operand, access.writes_bytes);
            }
            output_levels.push(output_top);
        }

        let summary = energy_summary(
            self.acc,
            mac_energy,
            &activation_access,
            &weight_access,
            &copy_access,
        );

        TileEval {
            energy_pj: energy,
            latency_cycles: latency,
            macs,
            activation_access,
            weight_access,
            copy_access,
            energy_summary: summary,
            degraded,
        }
    }

    /// Memoized single-layer evaluation through the mapping cache. Returns a
    /// shared handle: a cache hit is a reference-count bump, not a deep copy
    /// of the access breakdown.
    fn evaluate_layer_tile(
        &self,
        layer: &Layer,
        dims: LayerDims,
        tops: OperandTopLevels,
    ) -> Arc<LayerCost> {
        let problem = SingleLayerProblem::for_tile(self.acc, layer, dims, tops);
        let (key, canonicalized) = defines_mapping::ProblemKey::canonical_with_fingerprints(
            &problem,
            self.acc_fingerprint,
            self.mapper.config_fingerprint(),
        );
        self.cache
            .optimize_shared_keyed(key, canonicalized, &self.mapper, &problem)
    }

    /// The memory level the stack's external inputs reside in.
    fn stack_input_level(
        &self,
        geometry: &StackGeometry<'_>,
        policy: BetweenStackMemory,
    ) -> MemoryLevelId {
        let dram = self.acc.hierarchy().dram_id();
        let mut level = MemoryLevelId(0);
        let externals = geometry.external_inputs();
        if externals.is_empty() {
            return dram;
        }
        for fm in externals {
            let l = match (fm, policy) {
                (FmId::External(None), _) => dram,
                (_, BetweenStackMemory::Dram) => dram,
                (FmId::External(Some(_)), BetweenStackMemory::LowestFitting) => {
                    let bytes = geometry.fm_dims(fm).total_bytes();
                    self.acc
                        .hierarchy()
                        .lowest_fitting(Operand::Input, bytes, MemoryLevelId(0))
                }
                (FmId::Internal(_), _) => unreachable!("external_inputs only yields external fms"),
            };
            level = level.max(l);
        }
        level
    }

    /// The memory level the stack's final output is written to.
    fn stack_output_level(
        &self,
        net: &Network,
        stack: &Stack,
        policy: BetweenStackMemory,
    ) -> MemoryLevelId {
        let dram = self.acc.hierarchy().dram_id();
        let sink = stack.last_layer();
        let consumed_outside = net.successors(sink).iter().any(|s| !stack.contains(*s));
        let is_network_sink = net.successors(sink).is_empty();
        if is_network_sink || policy == BetweenStackMemory::Dram {
            return dram;
        }
        if !consumed_outside {
            // No layer outside the stack reads this output; it is the network
            // output of a (sub)graph and leaves the chip.
            return dram;
        }
        let layer = net.layer(sink);
        let bytes = layer.output_bytes();
        self.acc
            .hierarchy()
            .lowest_fitting(Operand::Output, bytes, MemoryLevelId(0))
    }
}

/// Step 1 of the cost model: identify tile types.
///
/// Tiles are grouped by a conservative geometric signature (distance to the
/// feature-map edges in tile units, clamped at the stack's halo) so only one
/// representative per group needs the full back-calculation. Returns one
/// `(analysis, tile count)` pair per signature group, in deterministic
/// (signature) order; callers deduplicate exact analysis matches.
///
/// This is also the basis of the cheap MAC lower bounds used by the
/// exploration engine's pruning ([`crate::bounds`]): summing
/// `analysis.total_macs() × count` prices a design point's compute without
/// running placement, data-copy or mapping steps.
pub(crate) fn tile_type_analyses(
    geometry: &StackGeometry<'_>,
    tile: TileSize,
    mode: OverlapMode,
) -> Vec<(TileAnalysis, u64)> {
    let net = geometry.net();
    let stack = geometry.stack();
    let sink = net.layer(stack.last_layer());
    let grid = TileGrid::new(sink.dims.ox, sink.dims.oy, tile);
    let (halo_x, halo_y) = geometry.max_halo();
    let (tx, ty) = grid.tile_size();
    let class_x = halo_x / tx + 2;
    let class_y = halo_y / ty + 2;
    let cols = grid.cols();
    let rows = grid.rows();

    // The signature factorizes per axis: the x-part depends only on the
    // column, the y-part only on the row. Classifying each axis separately
    // and combining the counts is O(cols + rows) instead of the O(cols ×
    // rows) of scanning every tile — the difference between microseconds and
    // hundreds of milliseconds for single-pixel tiles on HD feature maps.
    // `(0, 0)` is the only tile whose axis classes both start at zero, so the
    // `is_first_tile` marker never splits a combined group.
    // One axis class: ((near-edge distance, far-edge distance), (first tile
    // index of the class, number of tiles in the class)).
    type AxisClass = ((u64, u64), (u64, u64));
    let classify_axis = |extent: u64, clamp: u64| -> Vec<AxisClass> {
        let mut classes: BTreeMap<(u64, u64), (u64, u64)> = BTreeMap::new();
        for i in 0..extent {
            let sig = (i.min(clamp), (extent - 1 - i).min(clamp));
            let entry = classes.entry(sig).or_insert((i, 0));
            entry.1 += 1;
        }
        classes.into_iter().collect()
    };
    let col_classes = classify_axis(cols, class_x);
    let row_classes = classify_axis(rows, class_y);

    // Signature key (x near, x far, y near, y far, is-first-tile) →
    // (representative col, representative row, tile count).
    type Signature = (u64, u64, u64, u64, bool);
    let mut signature_groups: BTreeMap<Signature, (u64, u64, u64)> = BTreeMap::new();
    for &((ry, rys), (row, row_count)) in &row_classes {
        for &((rx, rxs), (col, col_count)) in &col_classes {
            let count = col_count * row_count;
            let first = col == 0 && row == 0;
            signature_groups.insert((rx, rxs, ry, rys, first), (col, row, count));
        }
    }
    signature_groups
        .into_values()
        .map(|(col, row, count)| (geometry.analyze_tile(mode, &grid, col, row), count))
        .collect()
}

pub(crate) fn validate_stacks(net: &Network, stacks: &[Stack]) -> Result<(), EvaluationError> {
    if stacks.is_empty() {
        return Err(EvaluationError::InvalidStacks("no stacks produced".into()));
    }
    let mut seen = vec![false; net.len()];
    for stack in stacks {
        if stack.is_empty() {
            return Err(EvaluationError::InvalidStacks("empty stack".into()));
        }
        for l in &stack.layers {
            if l.0 >= net.len() {
                return Err(EvaluationError::InvalidStacks(format!(
                    "layer {l} does not exist in the network"
                )));
            }
            if seen[l.0] {
                return Err(EvaluationError::InvalidStacks(format!(
                    "layer {l} appears in more than one stack"
                )));
            }
            seen[l.0] = true;
        }
    }
    if !seen.iter().all(|&s| s) {
        return Err(EvaluationError::InvalidStacks(
            "some layers are not covered by any stack".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::FuseDepth;
    use defines_arch::zoo;
    use defines_workload::{models, LayerId, OpType};

    fn small_net() -> Network {
        let mut net = Network::new("small");
        let l1 = net
            .add_layer(
                Layer::new("l1", OpType::Conv, LayerDims::conv(16, 3, 64, 64, 3, 3)),
                &[],
            )
            .unwrap();
        let l2 = net
            .add_layer(
                Layer::new("l2", OpType::Conv, LayerDims::conv(16, 16, 62, 62, 3, 3)),
                &[l1],
            )
            .unwrap();
        let _ = net
            .add_layer(
                Layer::new("l3", OpType::Conv, LayerDims::conv(8, 16, 60, 60, 3, 3)),
                &[l2],
            )
            .unwrap();
        net
    }

    #[test]
    fn empty_network_is_rejected() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc);
        let err = model
            .evaluate_network(&Network::new("empty"), &DfStrategy::single_layer())
            .unwrap_err();
        assert_eq!(err, EvaluationError::EmptyNetwork);
    }

    #[test]
    fn invalid_manual_stacks_are_rejected() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc);
        let net = small_net();
        let strategy = DfStrategy::depth_first(TileSize::new(8, 8), OverlapMode::FullyCached)
            .with_fuse(FuseDepth::Manual(vec![vec![LayerId(0)]]));
        let err = model.evaluate_network(&net, &strategy).unwrap_err();
        assert!(matches!(err, EvaluationError::InvalidStacks(_)));
    }

    #[test]
    fn evaluation_is_deterministic() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let net = small_net();
        let strategy = DfStrategy::depth_first(TileSize::new(16, 16), OverlapMode::FullyCached);
        let a = model.evaluate_network(&net, &strategy).unwrap();
        let b = model.evaluate_network(&net, &strategy).unwrap();
        assert_eq!(a.energy_pj, b.energy_pj);
        assert_eq!(a.latency_cycles, b.latency_cycles);
    }

    #[test]
    fn depth_first_beats_single_layer_on_activation_dominant_net() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let net = small_net();
        let sl = model
            .evaluate_network(&net, &DfStrategy::single_layer())
            .unwrap();
        let df = model
            .evaluate_network(
                &net,
                &DfStrategy::depth_first(TileSize::new(16, 16), OverlapMode::FullyCached),
            )
            .unwrap();
        assert!(
            df.energy_pj < sl.energy_pj,
            "DF {} should beat SL {}",
            df.energy_pj,
            sl.energy_pj
        );
        // Single-layer moves every intermediate feature map through DRAM.
        assert!(df.dram_traffic_bytes(&acc) < sl.dram_traffic_bytes(&acc));
    }

    #[test]
    fn overlap_modes_are_identical_for_full_tiles() {
        // With a single tile there is no overlap, so all three modes coincide
        // (the LBL corner of Fig. 12).
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let net = small_net();
        let mut energies = Vec::new();
        for mode in OverlapMode::ALL {
            let s = DfStrategy {
                tile: TileSize::full(),
                mode,
                fuse: FuseDepth::FullNetwork,
                between_stacks: BetweenStackMemory::LowestFitting,
            };
            energies.push(model.evaluate_network(&net, &s).unwrap().energy_pj);
        }
        assert!((energies[0] - energies[1]).abs() < 1e-6);
        assert!((energies[1] - energies[2]).abs() < 1e-6);
    }

    #[test]
    fn tile_counts_and_types_are_reported() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let net = small_net();
        let strategy = DfStrategy::depth_first(TileSize::new(16, 16), OverlapMode::FullyCached);
        let cost = model.evaluate_network(&net, &strategy).unwrap();
        assert_eq!(cost.stacks.len(), 1);
        let stack = &cost.stacks[0];
        // 60x60 output with 16x16 tiles -> 4x4 grid.
        assert_eq!(stack.num_tiles, 16);
        let total: u64 = stack.tile_types.iter().map(|t| t.count).sum();
        assert_eq!(total, stack.num_tiles);
        assert!(stack.tile_type_count() >= 3);
        // Total MACs match the analytical sum over tile types.
        let expected: u64 = stack
            .tile_types
            .iter()
            .map(|t| t.analysis.total_macs() * t.count)
            .sum();
        assert_eq!(stack.macs, expected);
    }

    #[test]
    fn weight_traffic_reported_separately_from_activations() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let net = small_net();
        let cost = model
            .evaluate_network(
                &net,
                &DfStrategy::depth_first(TileSize::new(16, 16), OverlapMode::FullyCached),
            )
            .unwrap();
        assert!(cost.operand_traffic_bytes(Operand::Weight) > 0.0);
        assert!(
            cost.weight_access
                .operand_total(Operand::Input)
                .total_bytes()
                == 0.0
        );
        assert!(
            cost.activation_access
                .operand_total(Operand::Weight)
                .total_bytes()
                == 0.0
        );
        assert!(cost.energy_summary.total_pj() > 0.0);
        // The summary total approximates the reported energy (both are built
        // from the same breakdowns).
        assert!((cost.energy_summary.total_pj() - cost.energy_pj).abs() / cost.energy_pj < 0.05);
    }

    #[test]
    fn fsrcnn_fully_cached_prefers_mid_tiles_over_extremes() {
        // The qualitative shape of Fig. 12: a mid-sized tile beats both a tiny
        // tile and the full feature map on energy.
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let net = models::fsrcnn();
        let eval = |tx, ty| {
            model
                .evaluate_network(
                    &net,
                    &DfStrategy::depth_first(TileSize::new(tx, ty), OverlapMode::FullyCached),
                )
                .unwrap()
                .energy_pj
        };
        let tiny = eval(4, 4);
        let mid = eval(60, 72);
        let full = eval(960, 540);
        assert!(mid < full, "mid {mid} should beat full {full}");
        assert!(
            mid < tiny * 1.5,
            "mid {mid} should not be much worse than tiny {tiny}"
        );
    }
}
