//! Searching axis 3 of the design space: which stack partition (fuse depth)
//! is globally optimal.
//!
//! The automatic heuristic of [`crate::stack`] greedily packs branch-free
//! segments into stacks until a weight budget is exceeded — a policy, not a
//! search. This module turns the fuse-depth axis into a searched one:
//!
//! 1. **Candidate enumeration** ([`enumerate_candidates`]): every span of
//!    consecutive branch-free segments (weight-gated), every single layer,
//!    and — so the search can never lose to the heuristic — every stack the
//!    automatic partition would produce.
//! 2. **Flattened evaluation**: the explorer evaluates every
//!    `(candidate × tile size × overlap mode)` triple in one engine run
//!    sharing the mapping cache
//!    ([`Explorer::best_schedule`](crate::Explorer::best_schedule)).
//! 3. **Exact selection** ([`optimal_partition`]): because
//!    [`NetworkCost::from_stacks`](crate::NetworkCost::from_stacks) is
//!    additive per stack, the best partition is a shortest path over the
//!    layer cut boundaries, solved by dynamic programming in
//!    `O(boundaries + candidates)`.
//!
//! For additive targets (energy, latency, DRAM traffic, activation energy)
//! the DP is exact over the candidate set; for EDP the per-stack values are
//! summed as an additive surrogate, matching the convention of the per-stack
//! "best combination" search (case study 2).

use crate::stack::{auto_partition, segments, weight_fuse_budget_bytes, FuseDepth, Stack};
use defines_arch::Accelerator;
use defines_telemetry::{span, Counter};
use defines_workload::{LayerId, Network};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the fuse-depth axis is handled by a schedule search
/// ([`Explorer::best_schedule`](crate::Explorer::best_schedule)).
///
/// The first three variants fix the partition with the corresponding
/// [`FuseDepth`] policy and only search tile sizes and overlap modes per
/// stack; [`FusePolicy::Search`] additionally searches the partition itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FusePolicy {
    /// The automatic weight-budget heuristic ([`FuseDepth::Auto`]).
    Auto,
    /// One stack spanning the whole network ([`FuseDepth::FullNetwork`]).
    FullNetwork,
    /// Every layer its own stack ([`FuseDepth::SingleLayerStacks`]).
    SingleLayerStacks,
    /// Search the partition: enumerate candidate stacks as spans of
    /// branch-free segments (plus single layers), evaluate every candidate,
    /// and pick the optimal partition by shortest-path DP over cut points.
    Search {
        /// Maximum number of consecutive segments a candidate stack may span.
        /// Spans the automatic heuristic would form are always included, so
        /// a small `max_span` bounds work without losing to the heuristic.
        max_span: usize,
        /// Multiplier on the automatic weight budget
        /// ([`weight_fuse_budget_bytes`]) gating multi-segment spans: spans
        /// whose total weights exceed `factor × budget` are not enumerated.
        /// `1.0` explores the heuristic's own space; larger factors admit
        /// weight-spilling stacks the heuristic would never form.
        weight_budget_factor: f64,
    },
}

impl FusePolicy {
    /// The default search configuration: unlimited span length, spans gated
    /// at the heuristic's own weight budget (`factor = 1.0`). The candidate
    /// set then always contains the automatic partition's stacks, all single
    /// layers, and every budget-respecting segment span.
    pub fn search() -> Self {
        FusePolicy::Search {
            max_span: usize::MAX,
            weight_budget_factor: 1.0,
        }
    }

    /// The fixed [`FuseDepth`] this policy corresponds to, or `None` for
    /// [`FusePolicy::Search`] (whose partition is an output, not an input).
    pub fn fixed_fuse_depth(&self) -> Option<FuseDepth> {
        match self {
            FusePolicy::Auto => Some(FuseDepth::Auto),
            FusePolicy::FullNetwork => Some(FuseDepth::FullNetwork),
            FusePolicy::SingleLayerStacks => Some(FuseDepth::SingleLayerStacks),
            FusePolicy::Search { .. } => None,
        }
    }

    /// The policy's CLI keyword (`auto`, `full`, `single`, `search`).
    pub fn keyword(&self) -> &'static str {
        match self {
            FusePolicy::Auto => "auto",
            FusePolicy::FullNetwork => "full",
            FusePolicy::SingleLayerStacks => "single",
            FusePolicy::Search { .. } => "search",
        }
    }
}

impl fmt::Display for FusePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FusePolicy::Auto => f.write_str("fuse policy: auto"),
            FusePolicy::FullNetwork => f.write_str("fuse policy: full network"),
            FusePolicy::SingleLayerStacks => f.write_str("fuse policy: single-layer stacks"),
            FusePolicy::Search {
                max_span,
                weight_budget_factor,
            } => {
                if *max_span == usize::MAX {
                    write!(f, "fuse policy: search (budget x{weight_budget_factor})")
                } else {
                    write!(
                        f,
                        "fuse policy: search (max span {max_span}, budget x{weight_budget_factor})"
                    )
                }
            }
        }
    }
}

/// The contiguous layer range `[start, end)` a candidate stack covers. Every
/// candidate the search enumerates is a contiguous run of layer ids, which is
/// what makes the partition problem a shortest path over cut boundaries.
pub fn stack_span(stack: &Stack) -> (usize, usize) {
    (stack.first_layer().0, stack.last_layer().0 + 1)
}

/// Enumerates the candidate stacks of the fuse-depth search, in a
/// deterministic order (ties in the DP resolve to the earliest candidate):
///
/// 1. spans of consecutive branch-free segments, by start segment then span
///    length — multi-segment spans are skipped once their total weights
///    exceed `weight_budget_factor ×` [`weight_fuse_budget_bytes`] or their
///    length exceeds `max_span`;
/// 2. every single layer (the degenerate stacks the heuristic falls back to
///    inside over-budget segments, and the building blocks that keep every
///    cut boundary reachable);
/// 3. the stacks of the automatic partition itself, so the searched optimum
///    can never be worse than the heuristic's choice regardless of the gates.
///
/// Duplicate layer ranges keep their first occurrence.
pub fn enumerate_candidates(
    net: &Network,
    acc: &Accelerator,
    max_span: usize,
    weight_budget_factor: f64,
) -> Vec<Stack> {
    /// Fuse-stack candidates produced across every enumeration.
    static FUSE_CANDIDATES: Counter = Counter::new("fuse.candidates");
    let _span = span!("fuse.enumerate");
    let budget = weight_fuse_budget_bytes(acc) as f64 * weight_budget_factor.max(0.0);
    // `as` saturates: an infinite factor admits every span.
    let budget = budget as u64;
    let segs = segments(net);
    let seg_weight: Vec<u64> = segs
        .iter()
        .map(|s| s.iter().map(|&l| net.layer(l).weight_bytes()).sum())
        .collect();

    let mut seen = std::collections::HashSet::new();
    let mut candidates: Vec<Stack> = Vec::new();
    let mut push = |stack: Stack, candidates: &mut Vec<Stack>| {
        if seen.insert(stack_span(&stack)) {
            candidates.push(stack);
        }
    };

    // 1. Segment spans. Weights grow monotonically with the span, so the
    //    scan for each start breaks at the first over-budget extension.
    for i in 0..segs.len() {
        let mut layers: Vec<LayerId> = Vec::new();
        let mut weight = 0u64;
        for (span, seg) in segs.iter().enumerate().skip(i).map(|(j, s)| (j - i + 1, s)) {
            if span > max_span.max(1) {
                break;
            }
            weight = weight.saturating_add(seg_weight[i + span - 1]);
            if span >= 2 && weight > budget {
                break;
            }
            layers.extend(seg.iter().copied());
            push(Stack::new(layers.clone()), &mut candidates);
        }
    }

    // 2. Single layers.
    for l in net.layer_ids() {
        push(Stack::new(vec![l]), &mut candidates);
    }

    // 3. The automatic partition's own stacks.
    for stack in auto_partition(net, acc) {
        push(stack, &mut candidates);
    }

    FUSE_CANDIDATES.add(candidates.len() as u64);
    candidates
}

/// Picks the optimal partition of `num_layers` layers from candidate layer
/// spans by shortest-path dynamic programming over the cut boundaries
/// `0..=num_layers`.
///
/// `spans[i]` is candidate `i`'s layer range `[start, end)` and `values[i]`
/// its (additive) cost contribution. Returns the chosen candidate indices in
/// layer order together with the minimal total value, or `None` when the
/// candidates cannot tile `0..num_layers` (never the case for
/// [`enumerate_candidates`], which always contains every single layer).
///
/// Ties resolve to the earliest candidate index at each boundary, making the
/// result deterministic and independent of evaluation order.
pub fn optimal_partition(
    num_layers: usize,
    spans: &[(usize, usize)],
    values: &[f64],
) -> Option<(Vec<usize>, f64)> {
    optimal_partition_budgeted(num_layers, spans, values, 0)
        .map(|(chosen, total, _degraded)| (chosen, total))
}

/// [`optimal_partition`] under a deterministic work budget: at most
/// `max_dp_nodes` multi-layer candidate relaxations are performed (`0` means
/// unlimited), counted in the DP's fixed boundary-then-candidate order so the
/// cutoff is a pure function of the input, never of timing.
///
/// Single-layer spans are always relaxed for free: they are what keeps every
/// cut boundary reachable, so an exhausted budget degrades the search toward
/// the shallow (layer-by-layer) partition instead of failing. The returned
/// flag is `true` iff at least one candidate was skipped — the result is
/// then the exact optimum over the *relaxed* subset only, and a larger
/// budget might find a better partition.
pub fn optimal_partition_budgeted(
    num_layers: usize,
    spans: &[(usize, usize)],
    values: &[f64],
    max_dp_nodes: u64,
) -> Option<(Vec<usize>, f64, bool)> {
    /// Multi-layer DP relaxations skipped because the fuse-search budget ran
    /// out ([`defines_mapping::Budget::max_dp_nodes`]).
    static DP_SKIPPED: Counter = Counter::new("fuse.dp_skipped_budget");
    let _span = span!("fuse.partition_dp");
    assert_eq!(
        spans.len(),
        values.len(),
        "one value per candidate span required"
    );
    let cap = if max_dp_nodes == 0 {
        u64::MAX
    } else {
        max_dp_nodes
    };
    let mut by_end: Vec<Vec<usize>> = vec![Vec::new(); num_layers + 1];
    for (idx, &(start, end)) in spans.iter().enumerate() {
        assert!(
            start < end && end <= num_layers,
            "candidate span {start}..{end} out of bounds for {num_layers} layers"
        );
        by_end[end].push(idx);
    }
    let mut best = vec![f64::INFINITY; num_layers + 1];
    let mut parent: Vec<Option<usize>> = vec![None; num_layers + 1];
    best[0] = 0.0;
    let mut relaxed = 0u64;
    let mut skipped = 0u64;
    for end in 1..=num_layers {
        for &idx in &by_end[end] {
            let (start, _) = spans[idx];
            if end - start > 1 {
                if relaxed >= cap {
                    skipped += 1;
                    continue;
                }
                relaxed += 1;
            }
            if !best[start].is_finite() {
                continue;
            }
            let total = best[start] + values[idx];
            if total < best[end] {
                best[end] = total;
                parent[end] = Some(idx);
            }
        }
    }
    DP_SKIPPED.add(skipped);
    if !best[num_layers].is_finite() {
        return None;
    }
    let mut chosen = Vec::new();
    let mut boundary = num_layers;
    while boundary > 0 {
        let idx = parent[boundary].expect("finite DP value implies a recorded parent");
        chosen.push(idx);
        boundary = spans[idx].0;
    }
    chosen.reverse();
    Some((chosen, best[num_layers], skipped > 0))
}

/// Exhaustive reference for [`optimal_partition`]: enumerates every way of
/// tiling `0..num_layers` with candidate spans and returns the minimum-total
/// tiling (candidates tried in index order, so ties resolve to the
/// lexicographically earliest choice sequence). Exponential — test-sized
/// inputs only; the DP/brute-force parity tests rely on it.
pub fn brute_force_partition(
    num_layers: usize,
    spans: &[(usize, usize)],
    values: &[f64],
) -> Option<(Vec<usize>, f64)> {
    assert_eq!(spans.len(), values.len());
    fn recurse(
        boundary: usize,
        num_layers: usize,
        spans: &[(usize, usize)],
        values: &[f64],
        chosen: &mut Vec<usize>,
        best: &mut Option<(Vec<usize>, f64)>,
    ) {
        if boundary == num_layers {
            let total: f64 = chosen.iter().map(|&i| values[i]).sum();
            let better = match best {
                None => true,
                Some((_, b)) => total < *b,
            };
            if better {
                *best = Some((chosen.clone(), total));
            }
            return;
        }
        for (idx, &(start, end)) in spans.iter().enumerate() {
            if start == boundary {
                chosen.push(idx);
                recurse(end, num_layers, spans, values, chosen, best);
                chosen.pop();
            }
        }
    }
    let mut best = None;
    recurse(0, num_layers, spans, values, &mut Vec::new(), &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use defines_arch::zoo;
    use defines_workload::models;

    #[test]
    fn policy_keywords_and_fixed_depths() {
        assert_eq!(FusePolicy::Auto.fixed_fuse_depth(), Some(FuseDepth::Auto));
        assert_eq!(
            FusePolicy::FullNetwork.fixed_fuse_depth(),
            Some(FuseDepth::FullNetwork)
        );
        assert_eq!(
            FusePolicy::SingleLayerStacks.fixed_fuse_depth(),
            Some(FuseDepth::SingleLayerStacks)
        );
        assert_eq!(FusePolicy::search().fixed_fuse_depth(), None);
        assert_eq!(FusePolicy::search().keyword(), "search");
        assert_eq!(FusePolicy::Auto.keyword(), "auto");
        assert!(FusePolicy::search().to_string().contains("search"));
    }

    #[test]
    fn candidates_cover_singles_spans_and_auto_stacks() {
        let net = models::fsrcnn();
        let acc = zoo::meta_proto_like_df();
        let candidates = enumerate_candidates(&net, &acc, usize::MAX, 1.0);
        // Every single layer is a candidate.
        for l in net.layer_ids() {
            assert!(
                candidates.iter().any(|c| stack_span(c) == (l.0, l.0 + 1)),
                "missing single-layer candidate for {l}"
            );
        }
        // The full network fits the weight budget, so the full span is there.
        assert!(candidates.iter().any(|c| c.len() == net.len()));
        // Every auto stack is a candidate.
        for stack in crate::stack::partition_into_stacks(&net, &acc, &FuseDepth::Auto) {
            assert!(candidates.iter().any(|c| c == &stack));
        }
        // No duplicate spans.
        let mut spans: Vec<(usize, usize)> = candidates.iter().map(stack_span).collect();
        spans.sort_unstable();
        let before = spans.len();
        spans.dedup();
        assert_eq!(spans.len(), before);
    }

    #[test]
    fn max_span_and_budget_gate_multi_segment_spans() {
        let net = models::fsrcnn();
        let acc = zoo::meta_proto_like_df();
        // max_span = 1: only single segments (here: single layers; FSRCNN is
        // branch-free so every layer is its own segment) plus the auto stack.
        let gated = enumerate_candidates(&net, &acc, 1, 1.0);
        let auto = crate::stack::partition_into_stacks(&net, &acc, &FuseDepth::Auto);
        assert_eq!(gated.len(), net.len() + auto.len());
        // A zero budget factor also degenerates to singles + auto stacks.
        let zero = enumerate_candidates(&net, &acc, usize::MAX, 0.0);
        assert_eq!(zero.len(), net.len() + auto.len());
        // The unrestricted candidate set is the full triangular family.
        let all = enumerate_candidates(&net, &acc, usize::MAX, f64::INFINITY);
        assert_eq!(all.len(), net.len() * (net.len() + 1) / 2);
    }

    #[test]
    fn dp_picks_the_cheaper_partition() {
        // Layers 0..3; merging all three (value 5) loses to {0} + {1,2}
        // (1 + 3 = 4) but beats all singles (1 + 2 + 2 = 5, tie resolved to
        // the earlier candidate structure by value strictness).
        let spans = [(0, 3), (0, 1), (1, 3), (1, 2), (2, 3)];
        let values = [5.0, 1.0, 3.0, 2.0, 2.0];
        let (chosen, total) = optimal_partition(3, &spans, &values).unwrap();
        assert_eq!(chosen, vec![1, 2]);
        assert!((total - 4.0).abs() < 1e-12);
    }

    #[test]
    fn dp_ties_resolve_to_earliest_candidate() {
        // Two ways to cover 0..2 with the same total: the whole-span
        // candidate is listed first and must win the tie.
        let spans = [(0, 2), (0, 1), (1, 2)];
        let values = [2.0, 1.0, 1.0];
        let (chosen, total) = optimal_partition(2, &spans, &values).unwrap();
        assert_eq!(chosen, vec![0]);
        assert!((total - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dp_reports_untileable_candidate_sets() {
        // No candidate covers layer 1.
        assert!(optimal_partition(2, &[(0, 1)], &[1.0]).is_none());
        assert!(brute_force_partition(2, &[(0, 1)], &[1.0]).is_none());
    }

    #[test]
    fn budgeted_dp_degrades_gracefully_and_deterministically() {
        // Dense candidate set over 6 layers with pseudo-random values.
        let n = 6;
        let mut spans = Vec::new();
        let mut values = Vec::new();
        let mut state = 0xdeadbeefcafef00du64;
        for s in 0..n {
            for e in (s + 1)..=n {
                spans.push((s, e));
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                values.push((state % 1000) as f64 / 10.0);
            }
        }
        let (full_chosen, full_total, full_degraded) =
            optimal_partition_budgeted(n, &spans, &values, 0).unwrap();
        assert!(!full_degraded, "unlimited budget never degrades");
        assert_eq!(
            optimal_partition(n, &spans, &values).unwrap(),
            (full_chosen.clone(), full_total),
            "unlimited budgeted DP is the plain DP"
        );
        // A generous budget covering every multi-layer candidate is also
        // un-degraded and identical.
        let multi = spans.iter().filter(|(s, e)| e - s > 1).count() as u64;
        let (chosen, total, degraded) =
            optimal_partition_budgeted(n, &spans, &values, multi).unwrap();
        assert!(!degraded);
        assert_eq!((chosen, total), (full_chosen, full_total));
        // Tiny budgets always complete (single-layer spans are free), are
        // flagged degraded whenever a candidate was skipped, never beat the
        // optimum, and are reproducible.
        for budget in 1..multi {
            let (chosen, total, degraded) =
                optimal_partition_budgeted(n, &spans, &values, budget).unwrap();
            assert!(
                total >= full_total - 1e-9,
                "budget {budget} beat the optimum"
            );
            // The chosen spans tile 0..n.
            let mut boundary = 0;
            for &idx in &chosen {
                assert_eq!(spans[idx].0, boundary);
                boundary = spans[idx].1;
            }
            assert_eq!(boundary, n);
            let again = optimal_partition_budgeted(n, &spans, &values, budget).unwrap();
            assert_eq!(again.0, chosen, "budgeted DP must be reproducible");
            assert_eq!(again.2, degraded);
        }
        // A budget of 1 skips candidates on this dense set.
        let (_, _, degraded) = optimal_partition_budgeted(n, &spans, &values, 1).unwrap();
        assert!(degraded, "a budget of 1 must be flagged degraded here");
    }

    #[test]
    fn dp_matches_brute_force_on_dense_candidate_sets() {
        // All contiguous spans over 5 layers with deterministic pseudo-random
        // values: DP and exhaustive enumeration must agree exactly.
        let n = 5;
        let mut spans = Vec::new();
        let mut values = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        for s in 0..n {
            for e in (s + 1)..=n {
                spans.push((s, e));
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                values.push((state % 1000) as f64 / 10.0);
            }
        }
        let (dp_chosen, dp_total) = optimal_partition(n, &spans, &values).unwrap();
        let (bf_chosen, bf_total) = brute_force_partition(n, &spans, &values).unwrap();
        assert!((dp_total - bf_total).abs() < 1e-9);
        assert_eq!(dp_chosen, bf_chosen);
    }
}
