//! Step 1 of the depth-first cost model: tiling the stack's output feature
//! map into a grid of tiles.

use crate::strategy::TileSize;
use serde::{Deserialize, Serialize};

use crate::geometry::Rect;

/// The grid of tiles covering a stack's final output feature map.
///
/// The tile size does not need to divide the feature-map size: tiles in the
/// last column / row are smaller (Fig. 6 of the paper).
///
/// ```
/// use defines_core::{strategy::TileSize, tiling::TileGrid};
/// let grid = TileGrid::new(960, 540, TileSize::new(60, 72));
/// assert_eq!(grid.cols(), 16);
/// assert_eq!(grid.rows(), 8); // 540 / 72 = 7.5 -> 8 rows, last one partial
/// assert_eq!(grid.num_tiles(), 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileGrid {
    width: u64,
    height: u64,
    tx: u64,
    ty: u64,
}

impl TileGrid {
    /// Creates the tile grid for a `width`×`height` output feature map.
    pub fn new(width: u64, height: u64, tile: TileSize) -> Self {
        let (tx, ty) = tile.clamped(width, height);
        Self {
            width,
            height,
            tx: tx.max(1),
            ty: ty.max(1),
        }
    }

    /// Number of tile columns.
    pub fn cols(&self) -> u64 {
        self.width.div_ceil(self.tx)
    }

    /// Number of tile rows.
    pub fn rows(&self) -> u64 {
        self.height.div_ceil(self.ty)
    }

    /// Total number of tiles.
    pub fn num_tiles(&self) -> u64 {
        self.cols() * self.rows()
    }

    /// The effective (clamped) tile size.
    pub fn tile_size(&self) -> (u64, u64) {
        (self.tx, self.ty)
    }

    /// The output-feature-map region of the tile at (`col`, `row`).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the grid.
    pub fn tile_rect(&self, col: u64, row: u64) -> Rect {
        assert!(
            col < self.cols() && row < self.rows(),
            "tile index out of range"
        );
        let x0 = col * self.tx;
        let y0 = row * self.ty;
        let x1 = (x0 + self.tx - 1).min(self.width - 1);
        let y1 = (y0 + self.ty - 1).min(self.height - 1);
        Rect::new(x0 as i64, x1 as i64, y0 as i64, y1 as i64)
    }

    /// Iterates over all tiles in processing order: left-to-right, then
    /// top-to-bottom (the order assumed throughout the paper).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, Rect)> + '_ {
        (0..self.rows()).flat_map(move |row| {
            (0..self.cols()).map(move |col| (col, row, self.tile_rect(col, row)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let g = TileGrid::new(960, 540, TileSize::new(240, 270));
        assert_eq!((g.cols(), g.rows()), (4, 2));
        assert_eq!(g.tile_rect(0, 0), Rect::new(0, 239, 0, 269));
        assert_eq!(g.tile_rect(3, 1), Rect::new(720, 959, 270, 539));
    }

    #[test]
    fn partial_last_row() {
        let g = TileGrid::new(960, 540, TileSize::new(60, 72));
        assert_eq!(g.num_tiles(), 16 * 8);
        // Last row is 540 - 7*72 = 36 rows tall.
        let last = g.tile_rect(0, 7);
        assert_eq!(last.height(), 36);
        assert_eq!(last.width(), 60);
    }

    #[test]
    fn full_tile_is_single() {
        let g = TileGrid::new(960, 540, TileSize::full());
        assert_eq!(g.num_tiles(), 1);
        assert_eq!(g.tile_rect(0, 0).area(), 960 * 540);
    }

    #[test]
    fn grid_covers_feature_map_exactly() {
        let g = TileGrid::new(97, 41, TileSize::new(16, 18));
        let total: u64 = g.iter().map(|(_, _, r)| r.area()).sum();
        assert_eq!(total, 97 * 41);
        // Tiles are disjoint by construction (strided origin).
        assert_eq!(g.iter().count() as u64, g.num_tiles());
    }

    #[test]
    fn oversized_tile_clamps() {
        let g = TileGrid::new(20, 10, TileSize::new(1000, 1000));
        assert_eq!(g.num_tiles(), 1);
        assert_eq!(g.tile_size(), (20, 10));
    }

    #[test]
    fn processing_order_is_row_major() {
        let g = TileGrid::new(8, 8, TileSize::new(4, 4));
        let order: Vec<(u64, u64)> = g.iter().map(|(c, r, _)| (c, r)).collect();
        assert_eq!(order, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_tile_panics() {
        let g = TileGrid::new(8, 8, TileSize::new(4, 4));
        let _ = g.tile_rect(2, 0);
    }
}
