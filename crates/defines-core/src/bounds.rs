//! Cheap lower bounds on the cost of a depth-first design point, used by the
//! exploration engine to prune dominated points without paying for a full
//! evaluation.
//!
//! A bound must never exceed the true objective value of the point — the
//! engine prunes a point only when its bound *strictly* exceeds the best
//! evaluated value, so sound bounds guarantee the selected optimum (and its
//! tie-breaking by submission order) is identical with and without pruning.
//!
//! The bounds priced here:
//!
//! * **compute** — the point's exact MAC count, from the step-1 tile-type
//!   analysis alone (back-calculation, no placement / data-copy / mapping
//!   work). Recompute-heavy points (tiny tiles under
//!   [`OverlapMode::FullyRecompute`](crate::strategy::OverlapMode::FullyRecompute))
//!   multiply their MACs and are the main
//!   pruning victims;
//! * **DRAM floor** — any schedule must read the network's external input
//!   from DRAM and write the final output back: those bytes bound DRAM
//!   traffic and the associated energy from below.

use crate::evaluate::tile_type_analyses;
use crate::explore::OptimizeTarget;
use crate::stack::partition_into_stacks;
use crate::strategy::DfStrategy;
use defines_arch::Accelerator;
use defines_workload::Network;

/// Precomputed, strategy-independent floors for one (network, accelerator)
/// pair, plus the machinery to bound one design point.
#[derive(Debug, Clone)]
pub struct StrategyBounds<'a> {
    net: &'a Network,
    acc: &'a Accelerator,
    target: OptimizeTarget,
    /// Bytes of external network input any schedule reads from DRAM.
    dram_input_bytes: f64,
    /// Bytes of final network output any schedule writes to DRAM.
    dram_output_bytes: f64,
    /// Energy floor of the unavoidable DRAM traffic, in pJ.
    dram_floor_pj: f64,
}

impl<'a> StrategyBounds<'a> {
    /// Builds the bounds helper for a network / accelerator / target triple.
    pub fn new(net: &'a Network, acc: &'a Accelerator, target: OptimizeTarget) -> Self {
        // Sources with no predecessor read their input feature map from DRAM.
        // Branching sources may share one input, so take the maximum rather
        // than the sum (a conservative floor either way).
        let dram_input_bytes = net
            .layer_ids()
            .filter(|&l| net.predecessors(l).is_empty())
            .map(|l| net.layer(l).input_bytes())
            .max()
            .unwrap_or(0) as f64;
        // Every sink's output leaves the chip.
        let dram_output_bytes: u64 = net
            .layer_ids()
            .filter(|&l| net.successors(l).is_empty())
            .map(|l| net.layer(l).output_bytes())
            .sum();
        let dram = acc.hierarchy().level(acc.hierarchy().dram_id());
        let dram_floor_pj = dram_input_bytes * dram.read_energy_pj_per_byte()
            + dram_output_bytes as f64 * dram.write_energy_pj_per_byte();
        Self {
            net,
            acc,
            target,
            dram_input_bytes,
            dram_output_bytes: dram_output_bytes as f64,
            dram_floor_pj,
        }
    }

    /// The exact MAC count of a design point (recomputed halos included),
    /// from the step-1 back-calculation alone.
    pub fn point_macs(&self, strategy: &DfStrategy) -> u64 {
        partition_into_stacks(self.net, self.acc, &strategy.fuse)
            .iter()
            .map(|stack| {
                let geometry = crate::backcalc::StackGeometry::new(self.net, stack);
                tile_type_analyses(&geometry, strategy.tile, strategy.mode)
                    .iter()
                    .map(|(analysis, count)| analysis.total_macs() * count)
                    .sum::<u64>()
            })
            .sum()
    }

    /// A lower bound on the point's objective value.
    pub fn lower_bound(&self, strategy: &DfStrategy) -> f64 {
        match self.target {
            OptimizeTarget::Energy => self.energy_bound(strategy),
            OptimizeTarget::Latency => self.latency_bound(strategy),
            OptimizeTarget::Edp => self.energy_bound(strategy) * self.latency_bound(strategy),
            OptimizeTarget::DramAccess => self.dram_input_bytes + self.dram_output_bytes,
            OptimizeTarget::ActivationEnergy => self.dram_floor_pj,
        }
    }

    /// MAC energy of the point plus the unavoidable DRAM energy.
    fn energy_bound(&self, strategy: &DfStrategy) -> f64 {
        self.point_macs(strategy) as f64 * self.acc.pe_array().mac_energy_pj() + self.dram_floor_pj
    }

    /// Cycles at peak MAC throughput (actual compute cycles are divided by
    /// the spatial utilization, which never exceeds one).
    fn latency_bound(&self, strategy: &DfStrategy) -> f64 {
        self.point_macs(strategy) as f64 / self.acc.pe_array().total_macs() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::DfCostModel;
    use crate::strategy::{OverlapMode, TileSize};
    use defines_arch::zoo;
    use defines_workload::models;

    /// The defining soundness property: for every target and a spread of
    /// design points, the bound never exceeds the true objective value.
    #[test]
    fn bounds_never_exceed_true_values() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let net = models::fsrcnn();
        let targets = [
            OptimizeTarget::Energy,
            OptimizeTarget::Latency,
            OptimizeTarget::Edp,
            OptimizeTarget::DramAccess,
            OptimizeTarget::ActivationEnergy,
        ];
        let points = [
            DfStrategy::depth_first(TileSize::new(4, 4), OverlapMode::FullyRecompute),
            DfStrategy::depth_first(TileSize::new(60, 72), OverlapMode::FullyCached),
            DfStrategy::depth_first(TileSize::new(960, 540), OverlapMode::HCachedVRecompute),
            DfStrategy::single_layer(),
            DfStrategy::layer_by_layer(),
        ];
        for target in targets {
            let bounds = StrategyBounds::new(&net, &acc, target);
            for strategy in &points {
                let cost = model.evaluate_network(&net, strategy).unwrap();
                let truth = target.value(&cost, &acc);
                let bound = bounds.lower_bound(strategy);
                assert!(
                    bound <= truth * (1.0 + 1e-9),
                    "{target} bound {bound} exceeds true value {truth} for {strategy}"
                );
            }
        }
    }

    /// The MAC count from the bound machinery matches the fully evaluated
    /// model (it is the same step-1 analysis).
    #[test]
    fn point_macs_match_full_evaluation() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let net = models::fsrcnn();
        let bounds = StrategyBounds::new(&net, &acc, OptimizeTarget::Energy);
        for strategy in [
            DfStrategy::depth_first(TileSize::new(16, 18), OverlapMode::FullyRecompute),
            DfStrategy::depth_first(TileSize::new(60, 72), OverlapMode::FullyCached),
        ] {
            let cost = model.evaluate_network(&net, &strategy).unwrap();
            assert_eq!(bounds.point_macs(&strategy), cost.macs, "{strategy}");
        }
    }

    /// Tiny-tile fully-recompute points multiply their MACs: the energy bound
    /// must reflect that and eventually dominate good points' true cost —
    /// this is what makes pruning fire at all.
    #[test]
    fn recompute_bound_grows_above_good_point_cost() {
        let acc = zoo::meta_proto_like_df();
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let net = models::fsrcnn();
        let bounds = StrategyBounds::new(&net, &acc, OptimizeTarget::Energy);
        let good = DfStrategy::depth_first(TileSize::new(60, 72), OverlapMode::FullyCached);
        let bad = DfStrategy::depth_first(TileSize::new(1, 1), OverlapMode::FullyRecompute);
        let good_cost = model.evaluate_network(&net, &good).unwrap();
        assert!(
            bounds.lower_bound(&bad) > good_cost.energy_pj,
            "1x1 fully-recompute bound should exceed the good point's true energy"
        );
    }
}
