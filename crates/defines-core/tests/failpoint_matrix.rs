//! Fault-injection campaign against the matrix runner: an injected per-cell
//! panic must become exactly one failed cell — siblings bit-identical, the
//! checkpoint uncorrupted, and a clean resume completing the grid.
#![cfg(feature = "failpoints")]

use defines_core::explore::OptimizeTarget;
use defines_core::matrix::{run_matrix, MatrixConfig, MatrixReport};
use defines_core::FusePolicy;
use defines_core::OverlapMode;
use defines_engine::EngineConfig;
use defines_telemetry::fault;
use defines_workload::{Layer, LayerDims, Network, OpType};
use serde::Serialize;

fn tiny_net() -> Network {
    let mut net = Network::new("tiny");
    let a = net
        .add_layer(
            Layer::new("a", OpType::Conv, LayerDims::conv(8, 3, 32, 32, 3, 3)),
            &[],
        )
        .unwrap();
    net.add_layer(
        Layer::new("b", OpType::Conv, LayerDims::conv(8, 8, 30, 30, 3, 3)),
        &[a],
    )
    .unwrap();
    net
}

fn run(checkpoint: Option<std::path::PathBuf>) -> Result<MatrixReport, defines_core::MatrixError> {
    let accelerators = [
        defines_arch::zoo::meta_proto_like_df(),
        defines_arch::zoo::tpu_like_df(),
    ];
    let config = MatrixConfig {
        // Sequential outer engine: cells execute in submission order, so an
        // armed failpoint hits a *deterministic* cell.
        engine: EngineConfig::sequential(),
        checkpoint,
        ..MatrixConfig::default()
    };
    run_matrix(
        &accelerators,
        &[tiny_net()],
        &[FusePolicy::Auto, FusePolicy::SingleLayerStacks],
        Some(&[(8, 8), (30, 30)]),
        &OverlapMode::ALL,
        OptimizeTarget::Energy,
        &config,
        |_| {},
    )
}

/// One test function: the fault registry is process-global, so concurrent
/// test threads would race each other's armed sites.
#[test]
fn injected_cell_panic_fails_one_cell_and_resume_completes_the_grid() {
    let baseline = run(None).unwrap();
    assert_eq!(baseline.cells.len(), 4);
    assert!(baseline.cells.iter().all(|c| c.error.is_none()));

    let path = std::env::temp_dir().join(format!(
        "defines-failpoint-matrix-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    // Campaign: fire inside the second cell's evaluation.
    let guard = fault::arm("matrix.cell", 2);
    let report = run(Some(path.clone())).unwrap();
    drop(guard);
    assert_eq!(report.stats.failed, 1);
    let failed: Vec<usize> = (0..4)
        .filter(|&i| report.cells[i].error.is_some())
        .collect();
    assert_eq!(failed, vec![1], "exactly the second cell fails");
    assert_eq!(
        report.cells[1].error.as_deref(),
        Some("failpoint matrix.cell fired")
    );
    assert!(report.cells[1].value.is_nan());
    // Every sibling is bit-identical to the fault-free run.
    for i in [0, 2, 3] {
        assert_eq!(
            report.cells[i].to_value().to_json(),
            baseline.cells[i].to_value().to_json(),
            "sibling cell {i} must be unaffected by the injected panic"
        );
    }

    // The failed cell was not checkpointed; the three good ones were.
    let ckpt = defines_core::checkpoint::load(&path).unwrap();
    assert_eq!(ckpt.cells.len(), 3);
    assert!(!ckpt.torn_tail);

    // Resume with nothing armed: only the failed cell re-runs, and the
    // report's deterministic slice matches the fault-free baseline.
    let resumed = run(Some(path.clone())).unwrap();
    assert_eq!(resumed.stats.points, 1);
    let slice = |r: &MatrixReport| {
        serde::Value::Object(vec![
            ("cells".into(), r.cells.to_value()),
            ("ranking".into(), r.ranking.to_value()),
            ("inner_stats".into(), r.inner_stats.to_value()),
        ])
        .to_json()
    };
    assert_eq!(slice(&resumed), slice(&baseline));
    let _ = std::fs::remove_file(&path);
}
