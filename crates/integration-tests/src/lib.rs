//! Placeholder library target for the `integration-tests` package.
//!
//! The actual integration tests live in the repository-root `tests/`
//! directory and are wired in through `[[test]]` entries in this package's
//! `Cargo.toml` so that they can span all workspace crates.

#![forbid(unsafe_code)]
