//! Proves the disarmed failpoint hot path allocates nothing.
//!
//! Compiled with the `failpoints` feature (the worst case: the sites exist
//! and each hit pays the armed-count load); without the feature the macro
//! expands to an empty function and there is nothing to measure. Lives in its
//! own integration-test binary because it installs a counting
//! `#[global_allocator]` — see `disabled_overhead.rs` for the idiom.
#![cfg(feature = "failpoints")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the only extra work is a relaxed
// atomic increment, which cannot allocate or violate the GlobalAlloc contract.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards the caller's layout to `System.alloc` unchanged, so the
    // caller's obligations (non-zero size) transfer directly.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: forwards ptr/layout to `System.dealloc` unchanged; the caller
    // guarantees they match a prior `alloc` from this allocator.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

// One test function, deliberately: the allocation counter is process-global,
// so a sibling test thread spawned by the harness mid-window would count its
// startup allocations against the disarmed hot path.
#[test]
fn disarmed_failpoints_do_not_allocate() {
    defines_telemetry::fault::disarm_all();

    // Warm anything lazy outside the measured window.
    defines_telemetry::failpoint!("overhead.warmup");

    // One clean window proves the property (an allocating hot path would
    // allocate on every one of the 10k iterations); retry a few times to
    // ride out stray harness allocations — see disabled_overhead.rs.
    let mut cleanest = u64::MAX;
    for _attempt in 0..5 {
        let before = allocations();
        for _ in 0..10_000 {
            defines_telemetry::failpoint!("overhead.site_a");
            defines_telemetry::failpoint!("overhead.site_b");
        }
        let after = allocations();
        cleanest = cleanest.min(after - before);
        if cleanest == 0 {
            break;
        }
    }
    assert_eq!(cleanest, 0, "disarmed failpoint hot path must not allocate");

    // Sanity check in the same binary: the zero-allocation result above is
    // meaningful only if the same sites do fire once armed.
    let _guard = defines_telemetry::fault::arm("overhead.site_a", 1);
    let err = std::panic::catch_unwind(|| defines_telemetry::failpoint!("overhead.site_a"))
        .expect_err("armed site must fire");
    let msg = err.downcast_ref::<String>().expect("string payload");
    assert_eq!(msg, "failpoint overhead.site_a fired");
}
