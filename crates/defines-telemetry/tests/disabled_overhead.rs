//! Proves the disabled hot path allocates nothing.
//!
//! Lives in its own integration-test binary because it installs a counting
//! `#[global_allocator]`; keeping it isolated means the counter only sees
//! this file's allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The two tests toggle the same global switches; run them one at a time.
static TEST_LOCK: Mutex<()> = Mutex::new(());

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

static POINTS: defines_telemetry::Counter = defines_telemetry::Counter::new("overhead.points");
static LEVEL: defines_telemetry::Gauge = defines_telemetry::Gauge::new("overhead.level");

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn disabled_spans_and_metrics_do_not_allocate() {
    let _lock = TEST_LOCK.lock().unwrap();
    // Both switches default to off; make it explicit anyway.
    defines_telemetry::set_tracing(false);
    defines_telemetry::set_metrics(false);

    // Warm anything lazy outside the measured window.
    {
        let _s = defines_telemetry::span!("overhead.warmup");
        POINTS.incr();
    }

    let before = allocations();
    for _ in 0..10_000 {
        let _plain = defines_telemetry::span!("overhead.span");
        let _args = defines_telemetry::span!("overhead.span", worker = 1u64);
        POINTS.add(3);
        POINTS.incr();
        LEVEL.set(7);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "disabled telemetry hot path must not allocate"
    );
}

#[test]
fn enabled_spans_actually_record() {
    let _lock = TEST_LOCK.lock().unwrap();
    // Sanity check in the same binary: the zero-allocation result above is
    // meaningful only if the same call sites do record once enabled.
    defines_telemetry::set_tracing(true);
    defines_telemetry::set_metrics(true);
    {
        let _s = defines_telemetry::span!("overhead.enabled");
        POINTS.incr();
    }
    defines_telemetry::set_tracing(false);
    defines_telemetry::set_metrics(false);
    let events = defines_telemetry::drain_events();
    assert!(events.iter().any(|e| e.name == "overhead.enabled"));
    assert!(POINTS.value() >= 1);
}
