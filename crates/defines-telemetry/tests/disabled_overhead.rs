//! Proves the disabled hot path allocates nothing.
//!
//! Lives in its own integration-test binary because it installs a counting
//! `#[global_allocator]`; keeping it isolated means the counter only sees
//! this file's allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the only extra work is a relaxed
// atomic increment, which cannot allocate or violate the GlobalAlloc contract.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards the caller's layout to `System.alloc` unchanged, so the
    // caller's obligations (non-zero size) transfer directly.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: forwards ptr/layout to `System.dealloc` unchanged; the caller
    // guarantees they match a prior `alloc` from this allocator.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

static POINTS: defines_telemetry::Counter = defines_telemetry::Counter::new("overhead.points");
static LEVEL: defines_telemetry::Gauge = defines_telemetry::Gauge::new("overhead.level");

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

// One test function, deliberately: the allocation counter is process-global,
// so a sibling test thread spawned by the harness mid-window would count its
// startup allocations against the disabled hot path.
#[test]
fn disabled_spans_and_metrics_do_not_allocate() {
    // Both switches default to off; make it explicit anyway.
    defines_telemetry::set_tracing(false);
    defines_telemetry::set_metrics(false);

    // Warm anything lazy outside the measured window.
    {
        let _s = defines_telemetry::span!("overhead.warmup");
        POINTS.incr();
    }

    // The counter is process-global, so runtime machinery (test harness
    // wakeups, stdio capture) occasionally contributes a stray allocation
    // mid-window. One clean window proves the property — a hot path that
    // allocated would do so on every one of the 10k iterations, failing
    // every attempt — so retry a few times before declaring failure.
    let mut cleanest = u64::MAX;
    for _attempt in 0..5 {
        let before = allocations();
        for _ in 0..10_000 {
            let _plain = defines_telemetry::span!("overhead.span");
            let _args = defines_telemetry::span!("overhead.span", worker = 1u64);
            POINTS.add(3);
            POINTS.incr();
            LEVEL.set(7);
        }
        let after = allocations();
        cleanest = cleanest.min(after - before);
        if cleanest == 0 {
            break;
        }
    }
    assert_eq!(cleanest, 0, "disabled telemetry hot path must not allocate");

    // Sanity check in the same binary: the zero-allocation result above is
    // meaningful only if the same call sites do record once enabled.
    defines_telemetry::set_tracing(true);
    defines_telemetry::set_metrics(true);
    {
        let _s = defines_telemetry::span!("overhead.enabled");
        POINTS.incr();
    }
    defines_telemetry::set_tracing(false);
    defines_telemetry::set_metrics(false);
    let events = defines_telemetry::drain_events();
    assert!(events.iter().any(|e| e.name == "overhead.enabled"));
    assert!(POINTS.value() >= 1);
}
