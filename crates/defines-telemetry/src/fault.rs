//! Deterministic fault injection: named failpoints for robustness tests.
//!
//! A failpoint is a named site in production code — `failpoint!("pool.unit")`
//! — that normally does nothing, but can be *armed* by a test to panic on a
//! chosen hit. Arming is fully deterministic: a site fires on its `fire_at`-th
//! hit (1-based, counted process-wide since arming), so a seeded campaign
//! replays identically.
//!
//! The facility is gated behind the `failpoints` cargo feature:
//!
//! * **Feature off** (the default, and all release builds): [`check`] is an
//!   empty `#[inline(always)]` function — the call compiles away entirely.
//! * **Feature on, nothing armed**: one relaxed atomic load per hit, no
//!   allocation (pinned by the counting-allocator test
//!   `tests/failpoint_overhead.rs`).
//! * **Feature on, a site armed**: hits of armed sites take a mutex to count
//!   deterministically; the firing hit bumps the `fault.injected` counter and
//!   panics with a `failpoint <site> fired` payload *after* releasing the
//!   registry lock, so the facility never poisons itself.
//!
//! The `failpoint!` macro lives in the crate root and expands to
//! `$crate::fault::check(...)`, which means the `cfg` is evaluated *here*,
//! when `defines-telemetry` itself is compiled — downstream crates compile
//! identically whether or not they forward the feature.

#[cfg(feature = "failpoints")]
use crate::Counter;
#[cfg(feature = "failpoints")]
use std::sync::atomic::{AtomicUsize, Ordering};
#[cfg(feature = "failpoints")]
use std::sync::{Mutex, PoisonError};

/// Probes a named failpoint. Panics iff the site is armed and this is its
/// firing hit; otherwise returns normally. Compiles to nothing without the
/// `failpoints` feature.
#[inline(always)]
pub fn check(site: &'static str) {
    #[cfg(feature = "failpoints")]
    check_armed(site);
    #[cfg(not(feature = "failpoints"))]
    let _ = site;
}

#[cfg(feature = "failpoints")]
mod armed {
    use super::*;

    /// Injected panics actually fired, across all sites.
    static INJECTED: Counter = Counter::new("fault.injected");

    /// Number of currently armed sites. The fast path of [`check`] is a single
    /// relaxed load of this count: zero means no site anywhere is armed and
    /// the hit returns immediately, without touching the registry lock.
    static ARMED_COUNT: AtomicUsize = AtomicUsize::new(0);

    struct Site {
        name: &'static str,
        /// Hits observed since arming (the registry lock serializes these, so
        /// hit indices are deterministic under any thread interleaving as
        /// long as the workload itself reaches the site deterministically).
        hits: u64,
        /// 1-based hit index to fire on; 0 disables firing but keeps
        /// counting.
        fire_at: u64,
        fired: bool,
    }

    static SITES: Mutex<Vec<Site>> = Mutex::new(Vec::new());

    fn sites() -> std::sync::MutexGuard<'static, Vec<Site>> {
        // A firing site panics *outside* the lock, but a test harness
        // panicking elsewhere while armed must not wedge later campaigns.
        SITES.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Disarms every site on drop, so a campaign cannot leak armed state
    /// into the next test even when the test itself panics.
    pub struct ArmGuard(());

    impl Drop for ArmGuard {
        fn drop(&mut self) {
            disarm_all();
        }
    }

    /// Arms `site` to panic on its `fire_at`-th hit (1-based) from now on.
    /// Re-arming an already-armed site resets its hit count.
    pub fn arm(site: &'static str, fire_at: u64) -> ArmGuard {
        let mut sites = sites();
        if let Some(s) = sites.iter_mut().find(|s| s.name == site) {
            s.hits = 0;
            s.fire_at = fire_at;
            s.fired = false;
        } else {
            sites.push(Site {
                name: site,
                hits: 0,
                fire_at,
                fired: false,
            });
        }
        ARMED_COUNT.store(sites.len(), Ordering::Relaxed);
        ArmGuard(())
    }

    /// Disarms every site and clears all hit counts.
    pub fn disarm_all() {
        let mut sites = sites();
        sites.clear();
        ARMED_COUNT.store(0, Ordering::Relaxed);
    }

    /// Hits recorded for `site` since it was armed (0 when not armed).
    pub fn hits(site: &str) -> u64 {
        sites()
            .iter()
            .find(|s| s.name == site)
            .map_or(0, |s| s.hits)
    }

    /// Total injected panics fired since process start (reads the
    /// `fault.injected` counter directly, independent of the metrics flag
    /// snapshotting).
    pub fn injected_total() -> u64 {
        INJECTED.value()
    }

    #[inline]
    pub(super) fn check_armed(site: &'static str) {
        if ARMED_COUNT.load(Ordering::Relaxed) == 0 {
            return;
        }
        let fire = {
            let mut sites = sites();
            match sites.iter_mut().find(|s| s.name == site) {
                Some(s) => {
                    s.hits += 1;
                    if !s.fired && s.fire_at != 0 && s.hits == s.fire_at {
                        s.fired = true;
                        true
                    } else {
                        false
                    }
                }
                None => false,
            }
        };
        if fire {
            INJECTED.incr();
            panic!("failpoint {site} fired");
        }
    }
}

#[cfg(feature = "failpoints")]
pub use armed::{arm, disarm_all, hits, injected_total, ArmGuard};

#[cfg(feature = "failpoints")]
use armed::check_armed;

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that arm the global failpoint registry.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn unarmed_site_never_fires() {
        let _lock = TEST_LOCK.lock().unwrap();
        disarm_all();
        for _ in 0..100 {
            check("test.fault.unarmed");
        }
    }

    #[test]
    fn armed_site_fires_on_exact_hit() {
        let _lock = TEST_LOCK.lock().unwrap();
        let _guard = arm("test.fault.third", 3);
        check("test.fault.third");
        check("test.fault.third");
        assert_eq!(hits("test.fault.third"), 2);
        let err = std::panic::catch_unwind(|| check("test.fault.third")).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "failpoint test.fault.third fired");
        // Fires exactly once.
        check("test.fault.third");
        assert_eq!(hits("test.fault.third"), 4);
    }

    #[test]
    fn guard_disarms_on_drop() {
        let _lock = TEST_LOCK.lock().unwrap();
        {
            let _guard = arm("test.fault.guarded", 1);
        }
        check("test.fault.guarded");
        assert_eq!(hits("test.fault.guarded"), 0);
    }

    #[test]
    fn fire_at_zero_counts_without_firing() {
        let _lock = TEST_LOCK.lock().unwrap();
        let _guard = arm("test.fault.count", 0);
        for _ in 0..5 {
            check("test.fault.count");
        }
        assert_eq!(hits("test.fault.count"), 5);
    }
}
