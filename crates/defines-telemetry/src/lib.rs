//! Telemetry for the DeFiNES pipeline: span tracing, a metrics registry and
//! exporters (Chrome trace-event JSON, per-phase breakdown tables).
//!
//! The crate is a vendored-only stand-in in the spirit of `vendor/serde`: it
//! depends on nothing but the vendored `serde` and is a leaf of the crate
//! graph, so every other crate (`defines-engine`, `defines-mapping`,
//! `defines-core`, `defines-cli`, `defines-bench`) can instrument itself
//! without cycles.
//!
//! # Design
//!
//! Two independent, globally-visible switches gate everything:
//!
//! * [`set_tracing`] / [`tracing_enabled`] — span recording. When off, a
//!   [`span!`] expands to a guard whose construction is one relaxed atomic
//!   load and whose drop is a branch on a `None`; no clock is read and no
//!   allocation happens.
//! * [`set_metrics`] / [`metrics_enabled`] — counters and gauges. When off,
//!   [`Counter::add`] is a single relaxed atomic load.
//!
//! Spans are buffered per thread (a `thread_local` `Vec`, no lock on the hot
//! path) and flushed into a global sink when the thread exits or when
//! [`drain_events`] runs on that thread. The engine's worker threads are
//! scoped — they exit before the sweep returns — so a drain after a sweep
//! observes every worker's spans.
//!
//! Metrics are `static` [`Counter`] / [`Gauge`] items that lazily register
//! themselves on a lock-free global list the first time they are touched;
//! [`snapshot`] walks the list.
//!
//! # Example
//!
//! ```
//! use defines_telemetry as telemetry;
//! use defines_telemetry::span;
//!
//! static POINTS: telemetry::Counter = telemetry::Counter::new("example.points");
//!
//! telemetry::set_tracing(true);
//! telemetry::set_metrics(true);
//! {
//!     let _span = span!("example.work");
//!     POINTS.add(3);
//! }
//! let events = telemetry::drain_events();
//! assert!(events.iter().any(|e| e.name == "example.work"));
//! assert_eq!(telemetry::snapshot().get("example.points"), Some(3));
//! telemetry::set_tracing(false);
//! telemetry::set_metrics(false);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod export;
pub mod fault;
pub mod metrics;
pub mod shield;
pub mod span;

pub use export::{chrome_trace, PhaseBreakdown, PhaseRow};
pub use metrics::{snapshot, Counter, Gauge, MetricKind, MetricsSnapshot};
pub use shield::quiet_panics;
pub use span::{
    clear_events, drain_events, flush_on_exit, flush_thread_spans, SpanEvent, SpanFlushGuard,
    SpanGuard,
};

use std::sync::atomic::{AtomicBool, Ordering};

static TRACING: AtomicBool = AtomicBool::new(false);
static METRICS: AtomicBool = AtomicBool::new(false);

/// Whether span recording is on. One relaxed atomic load — this is the whole
/// cost a [`span!`] pays on the hot path while tracing is disabled.
#[inline(always)]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Switches span recording on or off. Enabling also pins the trace epoch
/// (the instant all span timestamps are relative to) if it is not set yet.
pub fn set_tracing(on: bool) {
    if on {
        span::pin_epoch();
    }
    TRACING.store(on, Ordering::Relaxed);
}

/// Whether the metrics registry is recording. One relaxed atomic load.
#[inline(always)]
pub fn metrics_enabled() -> bool {
    METRICS.load(Ordering::Relaxed)
}

/// Switches counter/gauge recording on or off.
pub fn set_metrics(on: bool) {
    METRICS.store(on, Ordering::Relaxed);
}

/// Probes a named fault-injection site (see [`fault`]).
///
/// Without the `failpoints` cargo feature this expands to an empty inline
/// function call and compiles away; with it, an armed site panics on its
/// configured hit. The `cfg` is evaluated inside *this* crate, so callers
/// compile identically whether or not they forward the feature:
///
/// ```
/// use defines_telemetry::failpoint;
/// failpoint!("example.site"); // no-op unless armed under `failpoints`
/// ```
#[macro_export]
macro_rules! failpoint {
    ($name:expr) => {
        $crate::fault::check($name)
    };
}

/// Opens a span: records wall time from here to the end of the enclosing
/// scope, attributed to the current thread.
///
/// The name must be a `&'static str` in `stage.phase` form (see the span
/// taxonomy in `docs/architecture.md`). Optional fields are `key = value`
/// pairs with `u64`-convertible values, carried into the Chrome trace as the
/// event's `args`:
///
/// ```
/// use defines_telemetry::span;
/// let _s = span!("engine.execute");
/// let _t = span!("engine.worker", worker = 3u64);
/// ```
///
/// With tracing disabled the guard is inert: no clock read, no allocation.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::span::SpanGuard::enter_with_args(
            $name,
            &[$((stringify!($key), $value as u64)),+],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_default_off_and_toggle() {
        // Default state: both off (other tests in this binary restore it).
        set_tracing(true);
        assert!(tracing_enabled());
        set_tracing(false);
        assert!(!tracing_enabled());
        set_metrics(true);
        assert!(metrics_enabled());
        set_metrics(false);
        assert!(!metrics_enabled());
    }

    #[test]
    fn disabled_span_records_nothing() {
        set_tracing(false);
        {
            let _s = span!("test.disabled");
        }
        let events = drain_events();
        assert!(events.iter().all(|e| e.name != "test.disabled"));
    }
}
