//! Quiet handling of panics that are about to be caught and reported.
//!
//! The engine and the mapping-search pool isolate panics with
//! `catch_unwind` and turn them into structured failure records — but the
//! process's default panic hook still prints `thread panicked at ...` plus a
//! backtrace pointer *before* the catch, so every isolated failure spams
//! stderr with noise that duplicates the structured report.
//!
//! [`quiet_panics`] runs a closure with that noise suppressed on the current
//! thread. The first use installs (once, process-wide) a wrapper around the
//! current hook; the wrapper delegates to the original hook unless the
//! panicking thread is inside a `quiet_panics` region, so genuinely
//! unexpected panics — other threads, code outside an isolation boundary —
//! keep their full default report. Regions nest, and the thread-local depth
//! is restored even when the closure unwinds (the whole point), so a caught
//! panic cannot leak suppression into later code.

use std::cell::Cell;
use std::sync::Once;

thread_local! {
    /// Nesting depth of [`quiet_panics`] regions on this thread.
    static QUIET_DEPTH: Cell<usize> = const { Cell::new(0) };
}

static INSTALL_HOOK: Once = Once::new();

/// Restores the depth on drop so an unwinding closure still leaves the
/// thread un-suppressed.
struct DepthGuard;

impl Drop for DepthGuard {
    fn drop(&mut self) {
        QUIET_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Runs `f` with the default panic hook silenced for panics raised on this
/// thread, for callers that catch the unwind and report the payload
/// themselves. Panics on other threads, or outside the region, print as
/// usual.
pub fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    INSTALL_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if QUIET_DEPTH.with(Cell::get) == 0 {
                previous(info);
            }
        }));
    });
    QUIET_DEPTH.with(|d| d.set(d.get() + 1));
    let _restore = DepthGuard;
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn quiet_region_suppresses_and_restores() {
        // The caught payload still comes through; only the hook is silent.
        let err = catch_unwind(AssertUnwindSafe(|| {
            quiet_panics(|| panic!("inside the region"))
        }))
        .unwrap_err();
        assert_eq!(err.downcast_ref::<&str>(), Some(&"inside the region"));
        // The unwind ran the depth guard: the thread is no longer quiet.
        QUIET_DEPTH.with(|d| assert_eq!(d.get(), 0));

        // Nesting: two regions, one unwind, depth back to the outer level.
        quiet_panics(|| {
            let _ = catch_unwind(AssertUnwindSafe(|| quiet_panics(|| panic!("nested"))));
            QUIET_DEPTH.with(|d| assert_eq!(d.get(), 1));
        });

        // A normal return pops the depth too.
        assert_eq!(quiet_panics(|| 7), 7);
        QUIET_DEPTH.with(|d| assert_eq!(d.get(), 0));
    }
}
