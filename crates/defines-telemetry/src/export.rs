//! Exporters: Chrome trace-event JSON and per-phase wall-time breakdowns.

use crate::span::SpanEvent;
use serde::{Serialize, Value};

/// Renders spans as a Chrome trace-event document (the JSON Object Format),
/// loadable in Perfetto / `chrome://tracing`: one complete (`"ph": "X"`)
/// event per span, one track per recorded thread, plus `thread_name`
/// metadata events naming the tracks.
pub fn chrome_trace(events: &[SpanEvent]) -> Value {
    let mut threads: Vec<u32> = events.iter().map(|e| e.thread).collect();
    threads.sort_unstable();
    threads.dedup();

    let mut trace: Vec<Value> = threads
        .iter()
        .map(|&tid| {
            Value::Object(vec![
                ("ph".to_string(), Value::Str("M".to_string())),
                ("name".to_string(), Value::Str("thread_name".to_string())),
                ("pid".to_string(), Value::U64(1)),
                ("tid".to_string(), Value::U64(tid as u64)),
                (
                    "args".to_string(),
                    Value::Object(vec![(
                        "name".to_string(),
                        Value::Str(format!("thread-{tid}")),
                    )]),
                ),
            ])
        })
        .collect();

    // Deterministic output order: by start time, then thread, then name.
    let mut ordered: Vec<&SpanEvent> = events.iter().collect();
    ordered.sort_by(|a, b| {
        a.start_us
            .total_cmp(&b.start_us)
            .then(a.thread.cmp(&b.thread))
            .then(a.name.cmp(b.name))
    });
    for event in ordered {
        let mut fields = vec![
            ("name".to_string(), Value::Str(event.name.to_string())),
            ("ph".to_string(), Value::Str("X".to_string())),
            ("ts".to_string(), Value::F64(event.start_us)),
            ("dur".to_string(), Value::F64(event.dur_us)),
            ("pid".to_string(), Value::U64(1)),
            ("tid".to_string(), Value::U64(event.thread as u64)),
        ];
        if !event.args.is_empty() {
            fields.push((
                "args".to_string(),
                Value::Object(
                    event
                        .args
                        .iter()
                        .map(|(k, v)| (k.to_string(), Value::U64(*v)))
                        .collect(),
                ),
            ));
        }
        trace.push(Value::Object(fields));
    }

    Value::Object(vec![("traceEvents".to_string(), Value::Array(trace))])
}

/// Aggregate statistics of one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    /// Span name.
    pub name: &'static str,
    /// Number of spans with this name.
    pub count: u64,
    /// Summed duration across those spans, milliseconds.
    pub total_ms: f64,
    /// Mean duration, microseconds (0 for an empty phase).
    pub mean_us: f64,
    /// `total_ms` as a fraction of the trace's wall-clock window (0 when the
    /// window is empty). Spans nest — e.g. `engine.execute` inside
    /// `engine.worker` — so shares do not sum to 1.
    pub share: f64,
}

/// A per-phase wall-time breakdown of a trace: one [`PhaseRow`] per span
/// name, sorted by total time descending.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Per-phase rows, heaviest first.
    pub phases: Vec<PhaseRow>,
    /// The trace's wall-clock window (earliest start to latest end),
    /// milliseconds. Zero for an empty trace.
    pub wall_ms: f64,
}

impl PhaseBreakdown {
    /// Aggregates spans by name. Every rate is zero-guarded: an empty event
    /// list yields an empty breakdown with `wall_ms == 0`, never a NaN.
    pub fn from_events(events: &[SpanEvent]) -> Self {
        if events.is_empty() {
            return Self::default();
        }
        let mut earliest = f64::INFINITY;
        let mut latest = f64::NEG_INFINITY;
        let mut totals: Vec<(&'static str, u64, f64)> = Vec::new();
        for event in events {
            earliest = earliest.min(event.start_us);
            latest = latest.max(event.start_us + event.dur_us);
            match totals.iter_mut().find(|(name, ..)| *name == event.name) {
                Some((_, count, total)) => {
                    *count += 1;
                    *total += event.dur_us;
                }
                None => totals.push((event.name, 1, event.dur_us)),
            }
        }
        let wall_us = (latest - earliest).max(0.0);
        let wall_ms = wall_us / 1e3;
        let mut phases: Vec<PhaseRow> = totals
            .into_iter()
            .map(|(name, count, total_us)| PhaseRow {
                name,
                count,
                total_ms: total_us / 1e3,
                mean_us: if count > 0 {
                    total_us / count as f64
                } else {
                    0.0
                },
                share: if wall_us > 0.0 {
                    total_us / wall_us
                } else {
                    0.0
                },
            })
            .collect();
        phases.sort_by(|a, b| b.total_ms.total_cmp(&a.total_ms).then(a.name.cmp(b.name)));
        Self { phases, wall_ms }
    }

    /// Summed duration of one phase, milliseconds (0 when absent).
    pub fn total_ms(&self, name: &str) -> f64 {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map_or(0.0, |p| p.total_ms)
    }

    /// The breakdown as a markdown table (phase, count, total, mean, share
    /// of wall clock).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| phase | count | total (ms) | mean (µs) | % of wall |\n");
        out.push_str("|---|---:|---:|---:|---:|\n");
        for row in &self.phases {
            out.push_str(&format!(
                "| `{}` | {} | {:.3} | {:.1} | {:.1}% |\n",
                row.name,
                row.count,
                row.total_ms,
                row.mean_us,
                row.share * 100.0
            ));
        }
        out.push_str(&format!(
            "\nwall clock: {:.3} ms ({} phases; spans nest, shares may exceed 100%)\n",
            self.wall_ms,
            self.phases.len()
        ));
        out
    }
}

impl Serialize for PhaseBreakdown {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("wall_ms".to_string(), Value::F64(self.wall_ms)),
            (
                "phases".to_string(),
                Value::Array(
                    self.phases
                        .iter()
                        .map(|p| {
                            Value::Object(vec![
                                ("name".to_string(), Value::Str(p.name.to_string())),
                                ("count".to_string(), Value::U64(p.count)),
                                ("total_ms".to_string(), Value::F64(p.total_ms)),
                                ("mean_us".to_string(), Value::F64(p.mean_us)),
                                ("share".to_string(), Value::F64(p.share)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &'static str, start_us: f64, dur_us: f64, thread: u32) -> SpanEvent {
        SpanEvent {
            name,
            start_us,
            dur_us,
            thread,
            args: Vec::new(),
        }
    }

    #[test]
    fn chrome_trace_has_one_track_per_thread() {
        let events = vec![
            event("a", 0.0, 10.0, 0),
            event("b", 2.0, 3.0, 1),
            event("a", 5.0, 1.0, 1),
        ];
        let trace = chrome_trace(&events);
        let items = trace.get("traceEvents").unwrap().as_array().unwrap();
        // 2 thread_name metadata events + 3 span events.
        assert_eq!(items.len(), 5);
        let metadata = items
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .count();
        assert_eq!(metadata, 2);
        for item in items {
            assert!(item.get("pid").is_some());
            assert!(item.get("tid").is_some());
        }
    }

    #[test]
    fn chrome_trace_carries_span_args() {
        let mut e = event("engine.worker", 0.0, 1.0, 0);
        e.args = vec![("worker", 3)];
        let trace = chrome_trace(&[e]);
        let items = trace.get("traceEvents").unwrap().as_array().unwrap();
        let span = items
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .unwrap();
        let worker = span.get("args").and_then(|a| a.get("worker"));
        assert_eq!(worker.and_then(|w| w.as_u64()), Some(3));
    }

    #[test]
    fn empty_breakdown_is_all_zeros() {
        let breakdown = PhaseBreakdown::from_events(&[]);
        assert!(breakdown.phases.is_empty());
        assert_eq!(breakdown.wall_ms, 0.0);
        assert_eq!(breakdown.total_ms("anything"), 0.0);
        // Rendering an empty breakdown must not divide by zero.
        assert!(breakdown.to_markdown().contains("wall clock: 0.000 ms"));
    }

    #[test]
    fn zero_duration_spans_produce_finite_shares() {
        // All spans instantaneous at the same timestamp: wall window is 0,
        // shares must be 0, not NaN.
        let events = vec![event("a", 5.0, 0.0, 0), event("b", 5.0, 0.0, 0)];
        let breakdown = PhaseBreakdown::from_events(&events);
        assert_eq!(breakdown.wall_ms, 0.0);
        for row in &breakdown.phases {
            assert!(row.share.is_finite());
            assert_eq!(row.share, 0.0);
            assert!(row.mean_us.is_finite());
        }
    }

    #[test]
    fn breakdown_aggregates_and_sorts_by_total() {
        let events = vec![
            event("small", 0.0, 10.0, 0),
            event("big", 0.0, 100.0, 0),
            event("small", 20.0, 30.0, 1),
        ];
        let breakdown = PhaseBreakdown::from_events(&events);
        assert_eq!(breakdown.phases[0].name, "big");
        assert_eq!(breakdown.phases[1].name, "small");
        assert_eq!(breakdown.phases[1].count, 2);
        assert!((breakdown.phases[1].total_ms - 0.04).abs() < 1e-12);
        assert!((breakdown.phases[1].mean_us - 20.0).abs() < 1e-12);
        assert!((breakdown.wall_ms - 0.1).abs() < 1e-12);
        let md = breakdown.to_markdown();
        assert!(md.contains("| `big` |"));
        assert!(md.contains("| `small` | 2 |"));
    }
}
