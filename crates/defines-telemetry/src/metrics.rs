//! The metrics registry: static counters and gauges with lock-free
//! registration, and point-in-time snapshots.
//!
//! Metrics are declared as `static` items next to the code they count:
//!
//! ```
//! use defines_telemetry::{Counter, Gauge};
//!
//! static CACHE_HITS: Counter = Counter::new("example.cache.hits");
//! static THREADS: Gauge = Gauge::new("example.threads");
//!
//! defines_telemetry::set_metrics(true);
//! CACHE_HITS.incr();
//! THREADS.set(4);
//! let snap = defines_telemetry::snapshot();
//! assert_eq!(snap.get("example.cache.hits"), Some(1));
//! assert_eq!(snap.get("example.threads"), Some(4));
//! defines_telemetry::set_metrics(false);
//! ```
//!
//! The first touch of a metric pushes it onto a global lock-free intrusive
//! list (a single CAS); subsequent updates are one relaxed atomic add/store.
//! With metrics disabled an update is a single relaxed load.

use serde::{Serialize, Value};
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};

/// What kind of time series a metric is — decides how
/// [`MetricsSnapshot::since`] differences two snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count; `since` subtracts.
    Counter,
    /// Last-written level; `since` keeps the later value.
    Gauge,
}

/// The shared guts of [`Counter`] and [`Gauge`]: a named atomic cell that is
/// an intrusive node of the global registry list.
struct Metric {
    name: &'static str,
    kind: MetricKind,
    value: AtomicU64,
    registered: AtomicBool,
    next: AtomicPtr<Metric>,
}

/// Head of the intrusive registry list. Nodes are `&'static`, so the raw
/// pointers stored here are always valid.
static REGISTRY: AtomicPtr<Metric> = AtomicPtr::new(ptr::null_mut());

impl Metric {
    const fn new(name: &'static str, kind: MetricKind) -> Self {
        Self {
            name,
            kind,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
            next: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Ensures the metric is on the registry list (exactly once).
    #[inline]
    fn ensure_registered(&'static self) {
        if self.registered.load(Ordering::Relaxed) {
            return;
        }
        if self.registered.swap(true, Ordering::AcqRel) {
            return; // another thread won the race and is registering
        }
        let me = self as *const Metric as *mut Metric;
        let mut head = REGISTRY.load(Ordering::Acquire);
        loop {
            self.next.store(head, Ordering::Relaxed);
            match REGISTRY.compare_exchange_weak(head, me, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return,
                Err(seen) => head = seen,
            }
        }
    }
}

/// A monotonically increasing counter. Declare as a `static` next to the
/// code it counts; updates are dropped while metrics are disabled.
pub struct Counter {
    inner: Metric,
}

impl Counter {
    /// Creates a counter. `name` should be `stage.metric` (e.g.
    /// `"mapping.cache.hits"`); it is the key in snapshots and reports.
    pub const fn new(name: &'static str) -> Self {
        Self {
            inner: Metric::new(name, MetricKind::Counter),
        }
    }

    /// Adds `n`. A single relaxed load when metrics are disabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !crate::metrics_enabled() {
            return;
        }
        self.inner.ensure_registered();
        self.inner.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Current value (0 until first registered update).
    pub fn value(&self) -> u64 {
        self.inner.value.load(Ordering::Relaxed)
    }
}

/// A last-written-value gauge. Declare as a `static`; writes are dropped
/// while metrics are disabled.
pub struct Gauge {
    inner: Metric,
}

impl Gauge {
    /// Creates a gauge (see [`Counter::new`] for naming).
    pub const fn new(name: &'static str) -> Self {
        Self {
            inner: Metric::new(name, MetricKind::Gauge),
        }
    }

    /// Sets the level. A single relaxed load when metrics are disabled.
    #[inline]
    pub fn set(&'static self, v: u64) {
        if !crate::metrics_enabled() {
            return;
        }
        self.inner.ensure_registered();
        self.inner.value.store(v, Ordering::Relaxed);
    }

    /// Current value (0 until first registered write).
    pub fn value(&self) -> u64 {
        self.inner.value.load(Ordering::Relaxed)
    }
}

/// One metric's name, kind and value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricValue {
    /// Metric name as declared.
    pub name: &'static str,
    /// Counter or gauge (drives [`MetricsSnapshot::since`]).
    pub kind: MetricKind,
    /// Value at snapshot time.
    pub value: u64,
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Per-metric values, sorted by name.
    pub values: Vec<MetricValue>,
}

/// Snapshots every metric registered so far (sorted by name). Metrics that
/// have never been touched while enabled are absent.
pub fn snapshot() -> MetricsSnapshot {
    let mut values = Vec::new();
    let mut node = REGISTRY.load(Ordering::Acquire);
    while !node.is_null() {
        // SAFETY: only `&'static Metric`s are ever pushed onto REGISTRY.
        let metric = unsafe { &*node };
        values.push(MetricValue {
            name: metric.name,
            kind: metric.kind,
            value: metric.value.load(Ordering::Relaxed),
        });
        node = metric.next.load(Ordering::Acquire);
    }
    values.sort_by(|a, b| a.name.cmp(b.name));
    MetricsSnapshot { values }
}

impl MetricsSnapshot {
    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.values.iter().find(|v| v.name == name).map(|v| v.value)
    }

    /// True when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The change from `before` to `self`: counters are differenced
    /// (saturating, in case `before` post-dates a reset), gauges keep their
    /// later value. Metrics first registered after `before` appear with
    /// their full value.
    pub fn since(&self, before: &MetricsSnapshot) -> MetricsSnapshot {
        let values = self
            .values
            .iter()
            .map(|now| {
                let value = match now.kind {
                    MetricKind::Counter => {
                        let prev = before.get(now.name).unwrap_or(0);
                        now.value.saturating_sub(prev)
                    }
                    MetricKind::Gauge => now.value,
                };
                MetricValue { value, ..*now }
            })
            .collect();
        MetricsSnapshot { values }
    }
}

impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> Value {
        Value::Object(
            self.values
                .iter()
                .map(|v| (v.name.to_string(), Value::U64(v.value)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that toggle the global metrics flag.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    static TEST_COUNTER: Counter = Counter::new("test.metrics.counter");
    static TEST_GAUGE: Gauge = Gauge::new("test.metrics.gauge");

    #[test]
    fn counter_and_gauge_record_when_enabled() {
        let _lock = TEST_LOCK.lock().unwrap();
        crate::set_metrics(true);
        let before = snapshot();
        TEST_COUNTER.add(5);
        TEST_COUNTER.incr();
        TEST_GAUGE.set(42);
        let delta = snapshot().since(&before);
        crate::set_metrics(false);
        assert_eq!(delta.get("test.metrics.counter"), Some(6));
        assert_eq!(delta.get("test.metrics.gauge"), Some(42));
    }

    #[test]
    fn disabled_metrics_drop_updates() {
        let _lock = TEST_LOCK.lock().unwrap();
        crate::set_metrics(false);
        let before = TEST_COUNTER.value();
        TEST_COUNTER.add(100);
        assert_eq!(TEST_COUNTER.value(), before);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let _lock = TEST_LOCK.lock().unwrap();
        static CONCURRENT: Counter = Counter::new("test.metrics.concurrent");
        crate::set_metrics(true);
        let before = CONCURRENT.value();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        CONCURRENT.incr();
                    }
                });
            }
        });
        crate::set_metrics(false);
        assert_eq!(CONCURRENT.value() - before, 8000);
    }

    #[test]
    fn snapshot_is_sorted_and_serializes_to_object() {
        let _lock = TEST_LOCK.lock().unwrap();
        crate::set_metrics(true);
        TEST_COUNTER.incr();
        TEST_GAUGE.set(1);
        let snap = snapshot();
        crate::set_metrics(false);
        let names: Vec<_> = snap.values.iter().map(|v| v.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        match snap.to_value() {
            Value::Object(fields) => assert_eq!(fields.len(), snap.values.len()),
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn since_differences_counters_and_keeps_gauges() {
        let a = MetricsSnapshot {
            values: vec![
                MetricValue {
                    name: "c",
                    kind: MetricKind::Counter,
                    value: 10,
                },
                MetricValue {
                    name: "g",
                    kind: MetricKind::Gauge,
                    value: 3,
                },
            ],
        };
        let b = MetricsSnapshot {
            values: vec![
                MetricValue {
                    name: "c",
                    kind: MetricKind::Counter,
                    value: 25,
                },
                MetricValue {
                    name: "g",
                    kind: MetricKind::Gauge,
                    value: 8,
                },
                MetricValue {
                    name: "new",
                    kind: MetricKind::Counter,
                    value: 4,
                },
            ],
        };
        let delta = b.since(&a);
        assert_eq!(delta.get("c"), Some(15));
        assert_eq!(delta.get("g"), Some(8));
        assert_eq!(delta.get("new"), Some(4));
        // Saturating difference, never a panic, when `before` is ahead.
        let reset = a.since(&b);
        assert_eq!(reset.get("c"), Some(0));
    }
}
