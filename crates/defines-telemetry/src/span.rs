//! The span tracer: scope guards, per-thread buffers and the global sink.
//!
//! A [`SpanGuard`] measures the wall time between its construction and its
//! drop and appends one [`SpanEvent`] to a `thread_local` buffer — no lock is
//! taken on the hot path. Buffers flush into a global sink when their thread
//! exits (a `Drop` impl on the thread-local slot) and when [`drain_events`]
//! runs on the owning thread, so after a sweep whose scoped worker threads
//! have joined, a single drain on the coordinating thread sees every span.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One closed span: a named interval on one thread's timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name (`stage.phase`, e.g. `"engine.execute"`).
    pub name: &'static str,
    /// Start time in microseconds since the trace epoch.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Telemetry thread id (dense, assigned in first-span order; *not* the
    /// OS thread id).
    pub thread: u32,
    /// Optional `key = value` fields attached at the call site.
    pub args: Vec<(&'static str, u64)>,
}

/// The instant all span timestamps are measured from. Pinned at most once
/// per process, by the first [`crate::set_tracing`]`(true)` (or lazily by
/// the first recorded span).
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Dense thread-id allocator for trace tracks.
static NEXT_THREAD_ID: AtomicU32 = AtomicU32::new(0);

/// Spans flushed from exited (or drained) threads, in flush order.
static SINK: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());

pub(crate) fn pin_epoch() {
    EPOCH.get_or_init(Instant::now);
}

fn micros_since_epoch(at: Instant) -> f64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    // saturating: a span opened on another thread in the same instant the
    // epoch was pinned can observe a start marginally before it.
    at.saturating_duration_since(epoch).as_secs_f64() * 1e6
}

/// Per-thread span buffer; flushes itself into [`SINK`] on thread exit.
struct ThreadBuffer {
    id: u32,
    events: Vec<SpanEvent>,
}

impl ThreadBuffer {
    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let mut sink = SINK.lock().expect("telemetry sink poisoned");
        sink.append(&mut self.events);
    }
}

impl Drop for ThreadBuffer {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static BUFFER: RefCell<ThreadBuffer> = RefCell::new(ThreadBuffer {
        id: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
        events: Vec::new(),
    });
}

/// The RAII guard behind [`crate::span!`]. Inert (no clock read, no
/// allocation, drop is a branch) when tracing is disabled at construction.
#[must_use = "a span measures the scope it is bound to; bind it to a `_guard` name"]
pub struct SpanGuard {
    name: &'static str,
    /// `None` when tracing was disabled at construction: the drop is a no-op.
    start: Option<Instant>,
    args: Vec<(&'static str, u64)>,
}

impl SpanGuard {
    /// Opens a span. Prefer the [`crate::span!`] macro.
    #[inline]
    pub fn enter(name: &'static str) -> Self {
        if !crate::tracing_enabled() {
            return Self {
                name,
                start: None,
                args: Vec::new(),
            };
        }
        Self {
            name,
            start: Some(Instant::now()),
            args: Vec::new(),
        }
    }

    /// Opens a span with `key = value` fields. Prefer the [`crate::span!`]
    /// macro. The fields are only copied out of `args` when tracing is
    /// enabled.
    #[inline]
    pub fn enter_with_args(name: &'static str, args: &[(&'static str, u64)]) -> Self {
        if !crate::tracing_enabled() {
            return Self {
                name,
                start: None,
                args: Vec::new(),
            };
        }
        Self {
            name,
            start: Some(Instant::now()),
            args: args.to_vec(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let end = Instant::now();
        let start_us = micros_since_epoch(start);
        let dur_us = end.saturating_duration_since(start).as_secs_f64() * 1e6;
        let args = std::mem::take(&mut self.args);
        BUFFER.with(|buffer| {
            let mut buffer = buffer.borrow_mut();
            let thread = buffer.id;
            buffer.events.push(SpanEvent {
                name: self.name,
                start_us,
                dur_us,
                thread,
                args,
            });
        });
    }
}

/// Flushes the calling thread's span buffer into the global sink.
///
/// Worker threads that record spans should flush before signalling
/// completion: relying on the thread-exit flush alone is racy under
/// [`std::thread::scope`], which unparks the scope owner when the closure
/// returns — *before* the thread-local destructors run — so a drain right
/// after the scope can miss a buffer still in flight. Prefer the RAII form
/// [`flush_on_exit`], which survives early `return`s.
pub fn flush_thread_spans() {
    BUFFER.with(|buffer| buffer.borrow_mut().flush());
}

/// RAII flush for worker closures: the returned guard flushes the calling
/// thread's span buffer when dropped. Bind it *first* in the closure so it
/// drops *last* — after every span guard in the body has recorded its event.
#[must_use = "bind the guard to a `_flush` name so it drops at scope exit"]
pub fn flush_on_exit() -> SpanFlushGuard {
    SpanFlushGuard
}

/// Guard returned by [`flush_on_exit`]; flushes the thread's spans on drop.
pub struct SpanFlushGuard;

impl Drop for SpanFlushGuard {
    fn drop(&mut self) {
        flush_thread_spans();
    }
}

/// Takes every span recorded so far: the calling thread's buffer plus
/// everything already flushed to the global sink (buffers of exited
/// threads and of threads that drained themselves).
///
/// Spans held in the live buffers of *other* still-running threads are not
/// visible; drain after joining worker threads. Scoped workers must flush
/// explicitly before returning (see [`flush_on_exit`]): the scope owner can
/// resume before a scoped thread's exit-time flush has run.
pub fn drain_events() -> Vec<SpanEvent> {
    BUFFER.with(|buffer| buffer.borrow_mut().flush());
    let mut sink = SINK.lock().expect("telemetry sink poisoned");
    std::mem::take(&mut *sink)
}

/// Discards every span recorded so far (same visibility as
/// [`drain_events`]). Benchmarks use this between scenarios.
pub fn clear_events() {
    drop(drain_events());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// Serializes tests that toggle the global tracing flag.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn span_records_name_duration_and_thread() {
        let _lock = TEST_LOCK.lock().unwrap();
        crate::set_tracing(true);
        clear_events();
        {
            let _s = crate::span!("test.unit");
            std::hint::black_box(());
        }
        crate::set_tracing(false);
        let events = drain_events();
        let span = events
            .iter()
            .find(|e| e.name == "test.unit")
            .expect("span recorded");
        assert!(span.dur_us >= 0.0);
        assert!(span.start_us >= 0.0);
        assert!(span.args.is_empty());
    }

    #[test]
    fn span_args_are_captured() {
        let _lock = TEST_LOCK.lock().unwrap();
        crate::set_tracing(true);
        clear_events();
        {
            let _s = crate::span!("test.args", worker = 7u64, batch = 2u64);
        }
        crate::set_tracing(false);
        let events = drain_events();
        let span = events.iter().find(|e| e.name == "test.args").unwrap();
        assert_eq!(span.args, vec![("worker", 7), ("batch", 2)]);
    }

    #[test]
    fn exited_threads_flush_into_the_sink() {
        let _lock = TEST_LOCK.lock().unwrap();
        crate::set_tracing(true);
        clear_events();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = crate::span!("test.thread");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        crate::set_tracing(false);
        let events = drain_events();
        let count = events.iter().filter(|e| e.name == "test.thread").count();
        assert_eq!(count, 4);
    }

    #[test]
    fn nested_spans_both_record() {
        let _lock = TEST_LOCK.lock().unwrap();
        crate::set_tracing(true);
        clear_events();
        {
            let _outer = crate::span!("test.outer");
            let _inner = crate::span!("test.inner");
        }
        crate::set_tracing(false);
        let events = drain_events();
        assert!(events.iter().any(|e| e.name == "test.outer"));
        assert!(events.iter().any(|e| e.name == "test.inner"));
    }
}
