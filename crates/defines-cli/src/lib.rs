//! Shared plumbing for the DeFiNES command-line tools: name → object lookup
//! for workloads and accelerators, and parsers for the sweep flags
//! (`--dfmode` digits, tile-size lists).
//!
//! The flag names mirror the upstream DeFiNES artifact's interface
//! (`--workload`, `--accelerator`, `--dfmode`, `--tilex`, `--tiley`).
//! `--workload` accepts either a built-in zoo name ([`WORKLOADS`]) or a path
//! to a workload JSON file (see `defines_workload::loader`); anything ending
//! in `.json` or containing a path separator is treated as a file, so
//! arbitrary networks can be swept without touching Rust code:
//!
//! ```text
//! cargo run --release --bin sweep -- --workload workloads/fsrcnn.json
//! cargo run --release --bin sweep -- --workload my-custom-net.json
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use defines_arch::{zoo, Accelerator};
use defines_core::{Explorer, FusePolicy, OptimizeTarget, OverlapMode};
use defines_mapping::Budget;
use defines_workload::{models, Network};
use std::time::Duration;

/// The workloads selectable by `--workload`.
pub const WORKLOADS: [&str; 6] = [
    "fsrcnn",
    "dmcnn-vd",
    "mccnn",
    "mobilenet-v1",
    "resnet18",
    "reference",
];

/// The accelerators selectable by `--accelerator`.
pub const ACCELERATORS: [&str; 11] = [
    "meta-proto",
    "meta-proto-df",
    "tpu",
    "tpu-df",
    "edge-tpu",
    "edge-tpu-df",
    "ascend",
    "ascend-df",
    "tesla-npu",
    "tesla-npu-df",
    "depfin",
];

/// Where a resolved workload came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadSource {
    /// One of the built-in zoo models ([`WORKLOADS`]).
    Builtin,
    /// A workload JSON file.
    File,
}

impl WorkloadSource {
    /// The source as a short machine-readable string (`"builtin"`/`"file"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            WorkloadSource::Builtin => "builtin",
            WorkloadSource::File => "file",
        }
    }
}

/// Where a resolved accelerator came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceleratorSource {
    /// One of the built-in zoo architectures ([`ACCELERATORS`]).
    Builtin,
    /// An accelerator JSON file.
    File,
}

impl AcceleratorSource {
    /// The source as a short machine-readable string (`"builtin"`/`"file"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            AcceleratorSource::Builtin => "builtin",
            AcceleratorSource::File => "file",
        }
    }
}

/// Whether a CLI spec looks like a file path rather than a zoo name: it ends
/// in `.json`, contains a path separator, or names an existing file.
fn looks_like_path(spec: &str) -> bool {
    spec.ends_with(".json")
        || spec.contains('/')
        || spec.contains(std::path::MAIN_SEPARATOR)
        || std::path::Path::new(spec).is_file()
}

/// Looks a workload up by its `--workload` name.
///
/// # Errors
///
/// Returns a message listing the valid names for an unknown workload.
pub fn workload_by_name(name: &str) -> Result<Network, String> {
    match name {
        "fsrcnn" => Ok(models::fsrcnn()),
        "dmcnn-vd" => Ok(models::dmcnn_vd()),
        "mccnn" => Ok(models::mccnn()),
        "mobilenet-v1" => Ok(models::mobilenet_v1()),
        "resnet18" => Ok(models::resnet18()),
        "reference" => Ok(models::reference_net()),
        other => Err(format!(
            "unknown workload '{other}' (expected one of: {}; or a path to a \
             workload JSON file)",
            WORKLOADS.join(", ")
        )),
    }
}

/// Resolves the `--workload` flag: a built-in zoo name, or a path to a
/// workload JSON file. A spec is treated as a file when it ends in `.json`,
/// contains a path separator, or names an existing file — so
/// `--workload workloads/fsrcnn.json` and `--workload resnet18` both work.
///
/// # Errors
///
/// Returns the loader's error (naming the offending layer where applicable)
/// for files, or the unknown-name message for zoo lookups.
pub fn resolve_workload(spec: &str) -> Result<(Network, WorkloadSource), String> {
    if looks_like_path(spec) {
        let net = defines_workload::loader::from_json_file(spec).map_err(|e| e.to_string())?;
        Ok((net, WorkloadSource::File))
    } else {
        workload_by_name(spec).map(|net| (net, WorkloadSource::Builtin))
    }
}

/// Looks an accelerator up by its `--accelerator` name.
///
/// # Errors
///
/// Returns a message listing the valid names for an unknown accelerator.
pub fn accelerator_by_name(name: &str) -> Result<Accelerator, String> {
    match name {
        "meta-proto" => Ok(zoo::meta_proto_like()),
        "meta-proto-df" => Ok(zoo::meta_proto_like_df()),
        "tpu" => Ok(zoo::tpu_like()),
        "tpu-df" => Ok(zoo::tpu_like_df()),
        "edge-tpu" => Ok(zoo::edge_tpu_like()),
        "edge-tpu-df" => Ok(zoo::edge_tpu_like_df()),
        "ascend" => Ok(zoo::ascend_like()),
        "ascend-df" => Ok(zoo::ascend_like_df()),
        "tesla-npu" => Ok(zoo::tesla_npu_like()),
        "tesla-npu-df" => Ok(zoo::tesla_npu_like_df()),
        "depfin" => Ok(zoo::depfin_like()),
        other => Err(format!(
            "unknown accelerator '{other}' (expected one of: {}; or a path to an \
             accelerator JSON file)",
            ACCELERATORS.join(", ")
        )),
    }
}

/// Resolves the `--accelerator` flag: a built-in zoo name, or a path to an
/// accelerator JSON file (see `defines_arch::loader`). A spec is treated as a
/// file when it ends in `.json`, contains a path separator, or names an
/// existing file — so `--accelerator accelerators/tpu-df.json` and
/// `--accelerator tpu-df` both work, and a file-loaded twin of a zoo
/// architecture shares its mapping-cache fingerprint.
///
/// # Errors
///
/// Returns the loader's error (naming the offending level where applicable)
/// for files, or the unknown-name message — listing the valid zoo names and
/// noting that `.json` paths are accepted — for zoo lookups.
pub fn resolve_accelerator(spec: &str) -> Result<(Accelerator, AcceleratorSource), String> {
    if looks_like_path(spec) {
        let acc = defines_arch::loader::from_json_file(spec).map_err(|e| e.to_string())?;
        Ok((acc, AcceleratorSource::File))
    } else {
        accelerator_by_name(spec).map(|acc| (acc, AcceleratorSource::Builtin))
    }
}

/// Parses the `--dfmode` digit string: each digit selects one overlap
/// storing mode (`1` fully-recompute, `2` H-cached V-recompute, `3`
/// fully-cached), in the paper's order. `123` selects all three.
///
/// # Errors
///
/// Returns a message for empty input or characters outside `1`-`3`.
pub fn parse_modes(dfmode: &str) -> Result<Vec<OverlapMode>, String> {
    if dfmode.is_empty() {
        return Err("--dfmode needs at least one digit out of 1, 2, 3".into());
    }
    let mut modes = Vec::new();
    for c in dfmode.chars() {
        let mode = match c {
            '1' => OverlapMode::FullyRecompute,
            '2' => OverlapMode::HCachedVRecompute,
            '3' => OverlapMode::FullyCached,
            other => {
                return Err(format!(
                    "invalid --dfmode digit '{other}' (1 = fully-recompute, 2 = H-cached \
                     V-recompute, 3 = fully-cached)"
                ))
            }
        };
        if !modes.contains(&mode) {
            modes.push(mode);
        }
    }
    Ok(modes)
}

/// Parses a comma-separated list of positive tile extents (`"60"` or
/// `"1,4,60"`).
///
/// # Errors
///
/// Returns a message for empty, zero or non-numeric entries.
pub fn parse_tile_axis(flag: &str, input: &str) -> Result<Vec<u64>, String> {
    let mut out = Vec::new();
    for part in input.split(',') {
        let v: u64 = part
            .trim()
            .parse()
            .map_err(|_| format!("invalid {flag} entry '{part}': expected a positive integer"))?;
        if v == 0 {
            return Err(format!("{flag} entries must be positive"));
        }
        out.push(v);
    }
    if out.is_empty() {
        return Err(format!("{flag} needs at least one entry"));
    }
    Ok(out)
}

/// The tile grid of a sweep: the cross product of the `--tilex` / `--tiley`
/// lists, or the explorer's default grid when both are omitted.
///
/// # Errors
///
/// Returns a parse error, or an error if only one axis is given.
pub fn tile_grid(
    net: &Network,
    tilex: Option<&str>,
    tiley: Option<&str>,
) -> Result<Vec<(u64, u64)>, String> {
    match (tilex, tiley) {
        (None, None) => Ok(Explorer::default_tile_grid(net)),
        (Some(xs), Some(ys)) => {
            let xs = parse_tile_axis("--tilex", xs)?;
            let ys = parse_tile_axis("--tiley", ys)?;
            let mut grid = Vec::with_capacity(xs.len() * ys.len());
            for &ty in &ys {
                for &tx in &xs {
                    grid.push((tx, ty));
                }
            }
            Ok(grid)
        }
        _ => Err(
            "--tilex and --tiley must be given together (or both omitted for the default grid)"
                .into(),
        ),
    }
}

/// Parses the `--fuse` keyword into a [`FusePolicy`] — axis 3 of the design
/// space:
///
/// * `auto` — the automatic weight-budget fuse heuristic (the default),
/// * `full` — the whole network as one stack,
/// * `single` — every layer its own stack,
/// * `search` — search the stack partition itself (segment-span candidates,
///   shortest-path DP over cut points).
///
/// # Errors
///
/// Returns a message listing the valid keywords for an unknown input.
pub fn parse_fuse_policy(name: &str) -> Result<FusePolicy, String> {
    match name {
        "auto" => Ok(FusePolicy::Auto),
        "full" => Ok(FusePolicy::FullNetwork),
        "single" => Ok(FusePolicy::SingleLayerStacks),
        "search" => Ok(FusePolicy::search()),
        other => Err(format!(
            "unknown fuse policy '{other}' (expected one of: auto, full, single, search)"
        )),
    }
}

/// Parses the `--budget` deterministic search budget: `ORDERINGS` or
/// `ORDERINGS,DP_NODES`. The first number caps candidate orderings per
/// temporal-mapping search, the second caps relaxation steps per
/// fusion-partition DP; `0` means unlimited for either. Budgets are counted
/// in deterministic work units, so a budgeted run is bit-identical at any
/// thread count; results that hit a cap are flagged `degraded`.
///
/// # Errors
///
/// Returns a message for non-numeric entries or more than two fields.
pub fn parse_budget(input: &str) -> Result<Budget, String> {
    let parts: Vec<&str> = input.split(',').collect();
    if parts.is_empty() || parts.len() > 2 {
        return Err("--budget expects ORDERINGS or ORDERINGS,DP_NODES (0 = unlimited)".into());
    }
    let parse = |part: &str| -> Result<u64, String> {
        part.trim().parse().map_err(|_| {
            format!("invalid --budget entry '{part}': expected a non-negative integer")
        })
    };
    Ok(Budget {
        max_orderings: parse(parts[0])?,
        max_dp_nodes: if parts.len() == 2 {
            parse(parts[1])?
        } else {
            0
        },
    })
}

/// Parses the `--deadline` wall-clock limit, in (possibly fractional)
/// seconds. The deadline is checked between cells, never inside a search:
/// cells that start after it expires are marked failed, completed cells stay
/// bit-identical.
///
/// # Errors
///
/// Returns a message for non-numeric, non-finite or non-positive input.
pub fn parse_deadline(input: &str) -> Result<Duration, String> {
    let secs: f64 = input
        .trim()
        .parse()
        .map_err(|_| format!("invalid --deadline '{input}': expected seconds (e.g. 30 or 0.5)"))?;
    if !secs.is_finite() || secs <= 0.0 {
        return Err("--deadline must be a positive number of seconds".into());
    }
    Ok(Duration::from_secs_f64(secs))
}

/// Parses the `--target` name.
///
/// # Errors
///
/// Returns a message listing the valid names for an unknown target.
pub fn parse_target(name: &str) -> Result<OptimizeTarget, String> {
    match name {
        "energy" => Ok(OptimizeTarget::Energy),
        "latency" => Ok(OptimizeTarget::Latency),
        "edp" => Ok(OptimizeTarget::Edp),
        "dram" => Ok(OptimizeTarget::DramAccess),
        "activation" => Ok(OptimizeTarget::ActivationEnergy),
        other => Err(format!(
            "unknown target '{other}' (expected one of: energy, latency, edp, dram, activation)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_workload_and_accelerator_resolves() {
        for w in WORKLOADS {
            assert!(workload_by_name(w).is_ok(), "{w}");
        }
        for a in ACCELERATORS {
            assert!(accelerator_by_name(a).is_ok(), "{a}");
        }
        assert!(workload_by_name("nope").is_err());
        assert!(accelerator_by_name("nope").is_err());
    }

    #[test]
    fn dfmode_digits_map_to_modes() {
        assert_eq!(parse_modes("123").unwrap(), OverlapMode::ALL.to_vec());
        assert_eq!(parse_modes("3").unwrap(), vec![OverlapMode::FullyCached]);
        assert_eq!(
            parse_modes("331").unwrap(),
            vec![OverlapMode::FullyCached, OverlapMode::FullyRecompute]
        );
        assert!(parse_modes("4").is_err());
        assert!(parse_modes("").is_err());
    }

    #[test]
    fn tile_grids_cross_lists() {
        let net = defines_workload::models::fsrcnn();
        let grid = tile_grid(&net, Some("1,60"), Some("72")).unwrap();
        assert_eq!(grid, vec![(1, 72), (60, 72)]);
        assert_eq!(tile_grid(&net, None, None).unwrap().len(), 36);
        assert!(tile_grid(&net, Some("60"), None).is_err());
        assert!(tile_grid(&net, Some("0"), Some("1")).is_err());
        assert!(tile_grid(&net, Some("x"), Some("1")).is_err());
    }

    #[test]
    fn resolve_workload_distinguishes_names_and_paths() {
        let (net, source) = resolve_workload("fsrcnn").unwrap();
        assert_eq!(net.name(), "FSRCNN");
        assert_eq!(source, WorkloadSource::Builtin);

        // A JSON file with the exported FSRCNN loads to the same network.
        let json = defines_workload::schema::to_json_pretty(&net).unwrap();
        let dir = std::env::temp_dir().join(format!("defines-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fsrcnn.json");
        std::fs::write(&path, json).unwrap();
        let (loaded, source) = resolve_workload(path.to_str().unwrap()).unwrap();
        assert_eq!(source, WorkloadSource::File);
        assert_eq!(loaded, net);

        // Missing files and bad zoo names both produce useful messages.
        let err = resolve_workload("missing-dir/nope.json").unwrap_err();
        assert!(err.contains("cannot read workload file"), "{err}");
        let err = resolve_workload("nope").unwrap_err();
        assert!(err.contains("unknown workload"), "{err}");
        assert_eq!(WorkloadSource::File.as_str(), "file");
    }

    #[test]
    fn resolve_accelerator_distinguishes_names_and_paths() {
        let (acc, source) = resolve_accelerator("meta-proto-df").unwrap();
        assert_eq!(acc.name(), "Meta-proto-like DF");
        assert_eq!(source, AcceleratorSource::Builtin);

        // A JSON file with the exported architecture loads to the same
        // accelerator, including its fingerprint. The path is per-process so
        // concurrent test runs never read each other's half-written files.
        let json = defines_arch::schema::to_json_pretty(&acc).unwrap();
        let dir = std::env::temp_dir().join(format!("defines-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("meta-proto-df.json");
        std::fs::write(&path, json).unwrap();
        let (loaded, source) = resolve_accelerator(path.to_str().unwrap()).unwrap();
        assert_eq!(source, AcceleratorSource::File);
        assert_eq!(loaded, acc);
        assert_eq!(loaded.fingerprint(), acc.fingerprint());
        assert_eq!(AcceleratorSource::File.as_str(), "file");

        // Missing files produce the loader's Io message.
        let err = resolve_accelerator("missing-dir/nope.json").unwrap_err();
        assert!(err.contains("cannot read accelerator file"), "{err}");
    }

    #[test]
    fn unknown_accelerator_error_lists_names_and_mentions_json() {
        let err = accelerator_by_name("nope").unwrap_err();
        for name in ACCELERATORS {
            assert!(err.contains(name), "error must list '{name}': {err}");
        }
        assert!(err.contains("JSON"), "{err}");
        let err = resolve_accelerator("nope").unwrap_err();
        assert!(err.contains("unknown accelerator"), "{err}");
        assert!(err.contains("JSON"), "{err}");
    }

    #[test]
    fn targets_parse() {
        assert_eq!(parse_target("energy").unwrap(), OptimizeTarget::Energy);
        assert_eq!(parse_target("edp").unwrap(), OptimizeTarget::Edp);
        assert!(parse_target("speed").is_err());
    }

    #[test]
    fn budgets_parse() {
        assert_eq!(parse_budget("5000").unwrap(), Budget::orderings(5000));
        assert_eq!(
            parse_budget("5000,200").unwrap(),
            Budget {
                max_orderings: 5000,
                max_dp_nodes: 200
            }
        );
        assert_eq!(parse_budget("0").unwrap(), Budget::unlimited());
        assert_eq!(parse_budget(" 10 , 20 ").unwrap().max_dp_nodes, 20);
        assert!(parse_budget("x").is_err());
        assert!(parse_budget("1,2,3").is_err());
        assert!(parse_budget("-1").is_err());
    }

    #[test]
    fn deadlines_parse() {
        assert_eq!(parse_deadline("30").unwrap(), Duration::from_secs(30));
        assert_eq!(parse_deadline("0.5").unwrap(), Duration::from_millis(500));
        assert!(parse_deadline("0").is_err());
        assert!(parse_deadline("-2").is_err());
        assert!(parse_deadline("inf").is_err());
        assert!(parse_deadline("soon").is_err());
    }

    #[test]
    fn fuse_policies_parse() {
        assert_eq!(parse_fuse_policy("auto").unwrap(), FusePolicy::Auto);
        assert_eq!(parse_fuse_policy("full").unwrap(), FusePolicy::FullNetwork);
        assert_eq!(
            parse_fuse_policy("single").unwrap(),
            FusePolicy::SingleLayerStacks
        );
        assert_eq!(parse_fuse_policy("search").unwrap(), FusePolicy::search());
        let err = parse_fuse_policy("deep").unwrap_err();
        assert!(err.contains("auto, full, single, search"), "{err}");
    }
}
