//! `export-accelerators` — write the built-in architecture zoo as reference
//! accelerator JSON files.
//!
//! ```text
//! cargo run --release --bin export-accelerators -- [DIR]
//! ```
//!
//! Writes one `<name>.json` per zoo architecture (the ten Table I(a)
//! case-study designs plus DepFiN-like) into `DIR` (default `accelerators/`).
//! The files are fully explicit — every energy and bandwidth is written, so
//! nothing is left to the loader's kind defaults — and loading one back
//! yields an accelerator identical to its zoo constructor, including its
//! mapping-cache fingerprint, which `tests/fig13_case_study2.rs` asserts.

use defines_arch::schema;
use defines_cli::{accelerator_by_name, ACCELERATORS};

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "accelerators".to_string());
    if let Err(message) = run(&dir) {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}

fn run(dir: &str) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    for name in ACCELERATORS {
        let acc = accelerator_by_name(name)?;
        let json = schema::to_json_pretty(&acc).map_err(|e| e.to_string())?;
        let path = format!("{dir}/{name}.json");
        std::fs::write(&path, json + "\n").map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "wrote {path} ({} levels, {} MACs)",
            acc.hierarchy().len(),
            acc.pe_array().total_macs()
        );
    }
    Ok(())
}
