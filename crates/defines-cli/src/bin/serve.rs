//! `serve` — the DeFiNES scheduling daemon: accepts line-delimited JSON
//! schedule requests over TCP, coalesces concurrent requests into one
//! flattened engine run, and answers from a warm (optionally disk-backed,
//! LRU-bounded) mapping cache.
//!
//! ```text
//! cargo run --release --bin serve -- --cache-file /tmp/defines-cache.jsonl
//! ```
//!
//! The daemon prints `listening on HOST:PORT` once ready (flushed, so
//! harnesses can scrape the port when binding to `:0`). Query it with
//! `defines-request`, or raw:
//!
//! ```text
//! printf '%s\n' '{"workload":"fsrcnn","accelerator":"meta-proto-df"}' | nc HOST PORT
//! ```
//!
//! Responses are bit-identical to standalone runs of the same request
//! (`defines-request --standalone`) — cold, warm, or after a restart from
//! the persisted cache.

use clap::{Arg, ArgAction, Command};
use defines_cli::{parse_budget, resolve_accelerator, resolve_workload};
use defines_serve::{Resolver, Server, ServerConfig};
use std::io::Write;

/// The daemon's resolver: builtin zoo names and JSON file paths, exactly
/// like the `sweep` and `matrix` flags.
struct CliResolver;

impl Resolver for CliResolver {
    fn workload(&self, spec: &str) -> Result<defines_workload::Network, String> {
        resolve_workload(spec).map(|(net, _)| net)
    }

    fn accelerator(&self, spec: &str) -> Result<defines_arch::Accelerator, String> {
        resolve_accelerator(spec).map(|(acc, _)| acc)
    }
}

fn main() {
    let matches = Command::new("serve")
        .about(
            "DeFiNES scheduling daemon: batches concurrent TCP schedule requests into \
             shared-cache engine runs; optionally persists the mapping cache to disk.",
        )
        .version(env!("CARGO_PKG_VERSION"))
        .arg(
            Arg::new("addr")
                .long("addr")
                .value_name("HOST:PORT")
                .default_value("127.0.0.1:7878")
                .help("Listen address (use port 0 to let the OS pick; the chosen port is printed)"),
        )
        .arg(
            Arg::new("workers")
                .long("workers")
                .value_name("N")
                .default_value("4")
                .help("Connection-handler threads"),
        )
        .arg(
            Arg::new("threads")
                .long("threads")
                .value_name("N")
                .default_value("0")
                .help("Outer engine worker threads per batch (0 = one per core)"),
        )
        .arg(
            Arg::new("search-threads")
                .long("search-threads")
                .value_name("N")
                .default_value("1")
                .help("Mapping-search worker threads (any value is bit-identical)"),
        )
        .arg(
            Arg::new("full-mapper")
                .long("full-mapper")
                .action(ArgAction::SetTrue)
                .help("Use the exhaustive temporal-mapping search instead of the fast one"),
        )
        .arg(
            Arg::new("budget")
                .long("budget")
                .value_name("ORD[,DP]")
                .help("Deterministic search budget per request (0 = unlimited)"),
        )
        .arg(
            Arg::new("cache-file")
                .long("cache-file")
                .value_name("PATH")
                .help(
                    "Persist the mapping cache to this JSONL file: entries are reloaded \
                     at startup and synced after every batch",
                ),
        )
        .arg(
            Arg::new("max-entries")
                .long("max-entries")
                .value_name("N")
                .default_value("0")
                .help(
                    "LRU bound on persisted cache entries (0 = unbounded); least recently \
                     used mappings are evicted deterministically",
                ),
        )
        .get_matches();

    if let Err(message) = run(&matches) {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}

fn run(matches: &clap::ArgMatches) -> Result<(), String> {
    let workers: usize = matches
        .value_of("workers")
        .unwrap()
        .parse()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| "--workers expects a positive integer".to_string())?;
    let engine_threads: usize = matches
        .value_of("threads")
        .unwrap()
        .parse()
        .map_err(|_| "--threads expects a non-negative integer".to_string())?;
    let search_threads: usize = matches
        .value_of("search-threads")
        .unwrap()
        .parse()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| "--search-threads expects a positive integer".to_string())?;
    let budget = match matches.value_of("budget") {
        Some(spec) => parse_budget(spec)?,
        None => defines_mapping::Budget::unlimited(),
    };
    let max_entries: usize = matches
        .value_of("max-entries")
        .unwrap()
        .parse()
        .map_err(|_| "--max-entries expects a non-negative integer".to_string())?;
    let config = ServerConfig {
        addr: matches.value_of("addr").unwrap().to_string(),
        workers,
        engine_threads,
        search_threads,
        fast_mapper: !matches.get_flag("full-mapper"),
        budget,
        cache_file: matches.value_of("cache-file").map(Into::into),
        max_entries,
    };
    let cache_note = match &config.cache_file {
        Some(path) => format!("cache file {}", path.display()),
        None => "in-memory cache".to_string(),
    };
    let server = Server::bind(config, Box::new(CliResolver)).map_err(|e| e.to_string())?;
    // Flushed so a spawning harness can scrape the port before any request.
    println!("listening on {}", server.local_addr());
    println!("{cache_note} | {workers} connection workers | send {{\"cmd\":\"shutdown\"}} to stop");
    std::io::stdout().flush().ok();
    server.run().map_err(|e| e.to_string())
}
