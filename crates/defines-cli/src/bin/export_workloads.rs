//! `export-workloads` — write the built-in model zoo as reference workload
//! JSON files.
//!
//! ```text
//! cargo run --release --bin export-workloads -- [DIR]
//! ```
//!
//! Writes one `<name>.json` per zoo model (FSRCNN, DMCNN-VD, MC-CNN,
//! MobileNetV1, ResNet18 and the validation reference network) into `DIR`
//! (default `workloads/`). The files are fully explicit — no field is left
//! to shape inference — and loading one back yields a network identical to
//! its zoo constructor, which `tests/workload_frontend.rs` asserts.

use defines_cli::{workload_by_name, WORKLOADS};
use defines_workload::schema;

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "workloads".to_string());
    if let Err(message) = run(&dir) {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}

fn run(dir: &str) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    for name in WORKLOADS {
        let net = workload_by_name(name)?;
        let json = schema::to_json_pretty(&net).map_err(|e| e.to_string())?;
        let path = format!("{dir}/{name}.json");
        std::fs::write(&path, json + "\n").map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path} ({} layers)", net.len());
    }
    Ok(())
}
