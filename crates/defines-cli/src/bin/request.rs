//! `defines-request` — client for the `serve` daemon, with a `--standalone`
//! mode that computes the same request locally (one single-item batch) so
//! harnesses can byte-compare daemon answers against ground truth.
//!
//! ```text
//! # Ask the daemon:
//! defines-request --addr 127.0.0.1:7878 --workload fsrcnn \
//!     --accelerator meta-proto-df --dfmode 3 --tilex 60 --tiley 72
//!
//! # Same request, no daemon (must print the same bytes):
//! defines-request --standalone --workload fsrcnn \
//!     --accelerator meta-proto-df --dfmode 3 --tilex 60 --tiley 72
//!
//! # Daemon management:
//! defines-request --addr 127.0.0.1:7878 --stats
//! defines-request --addr 127.0.0.1:7878 --shutdown
//! ```
//!
//! The response line is printed to stdout verbatim; the exit code is 0 only
//! for `"ok": true` responses.

use clap::{Arg, ArgAction, Command};
use defines_cli::{parse_budget, parse_tile_axis, resolve_accelerator, resolve_workload};
use defines_core::{run_batch, BatchConfig};
use defines_serve::{render_outcome, send_line, ScheduleRequest};
use serde::Value;

fn main() {
    let matches = Command::new("defines-request")
        .about(
            "Client for the DeFiNES scheduling daemon; --standalone computes the request \
             locally for byte-comparison against daemon answers.",
        )
        .version(env!("CARGO_PKG_VERSION"))
        .arg(
            Arg::new("addr")
                .long("addr")
                .value_name("HOST:PORT")
                .default_value("127.0.0.1:7878")
                .help("Daemon address (ignored with --standalone)"),
        )
        .arg(
            Arg::new("workload")
                .long("workload")
                .value_name("SPEC")
                .help("Workload: a zoo name or a workload JSON path"),
        )
        .arg(
            Arg::new("accelerator")
                .long("accelerator")
                .value_name("SPEC")
                .help("Accelerator: a zoo name or an accelerator JSON path"),
        )
        .arg(
            Arg::new("dfmode")
                .long("dfmode")
                .value_name("DIGITS")
                .default_value("123")
                .help("Overlap modes: 1 fully-recompute, 2 H-cached V-recompute, 3 fully-cached"),
        )
        .arg(
            Arg::new("target")
                .long("target")
                .value_name("NAME")
                .default_value("energy")
                .help("Optimization target: energy, latency, edp, dram, activation"),
        )
        .arg(
            Arg::new("fuse")
                .long("fuse")
                .value_name("NAME")
                .default_value("auto")
                .help("Fuse policy: auto, full, single, search"),
        )
        .arg(
            Arg::new("tilex")
                .long("tilex")
                .value_name("LIST")
                .help("Comma-separated tile widths (with --tiley; omit both for the default grid)"),
        )
        .arg(
            Arg::new("tiley")
                .long("tiley")
                .value_name("LIST")
                .help("Comma-separated tile heights"),
        )
        .arg(
            Arg::new("standalone")
                .long("standalone")
                .action(ArgAction::SetTrue)
                .help("Compute locally instead of asking a daemon (same response bytes)"),
        )
        .arg(
            Arg::new("search-threads")
                .long("search-threads")
                .value_name("N")
                .default_value("1")
                .help("Standalone mode: mapping-search worker threads"),
        )
        .arg(
            Arg::new("full-mapper")
                .long("full-mapper")
                .action(ArgAction::SetTrue)
                .help("Standalone mode: use the exhaustive temporal-mapping search"),
        )
        .arg(
            Arg::new("budget")
                .long("budget")
                .value_name("ORD[,DP]")
                .help("Standalone mode: deterministic search budget (0 = unlimited)"),
        )
        .arg(
            Arg::new("stats")
                .long("stats")
                .action(ArgAction::SetTrue)
                .help("Ask the daemon for its serve/cache/store statistics"),
        )
        .arg(
            Arg::new("ping")
                .long("ping")
                .action(ArgAction::SetTrue)
                .help("Check the daemon is alive"),
        )
        .arg(
            Arg::new("shutdown")
                .long("shutdown")
                .action(ArgAction::SetTrue)
                .help("Ask the daemon to persist its cache and exit"),
        )
        .get_matches();

    match run(&matches) {
        Ok(response) => {
            println!("{response}");
            let ok = serde_json::from_str(&response)
                .ok()
                .and_then(|v: Value| v.get("ok").and_then(Value::as_bool))
                .unwrap_or(false);
            if !ok {
                std::process::exit(1);
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    }
}

fn run(matches: &clap::ArgMatches) -> Result<String, String> {
    let addr = matches.value_of("addr").unwrap();
    for (flag, cmd) in [
        ("ping", "ping"),
        ("stats", "stats"),
        ("shutdown", "shutdown"),
    ] {
        if matches.get_flag(flag) {
            return send_line(addr, &format!(r#"{{"cmd":"{cmd}"}}"#));
        }
    }

    let workload = matches
        .value_of("workload")
        .ok_or("--workload is required for schedule requests")?;
    let accelerator = matches
        .value_of("accelerator")
        .ok_or("--accelerator is required for schedule requests")?;
    let tile_axis = |flag: &str| -> Result<Vec<u64>, String> {
        matches
            .value_of(flag)
            .map(|list| parse_tile_axis(&format!("--{flag}"), list))
            .transpose()
            .map(Option::unwrap_or_default)
    };
    // Round-trip through the protocol parser: the client validates and
    // canonicalizes exactly like the daemon, so both paths send/answer the
    // same canonical request. Omitted tile axes stay omitted (the protocol
    // reads an absent axis as "default grid", an empty array as an error).
    let mut fields = vec![
        ("workload".to_string(), Value::Str(workload.to_string())),
        ("accelerator".into(), Value::Str(accelerator.to_string())),
        (
            "dfmode".into(),
            Value::Str(matches.value_of("dfmode").unwrap().to_string()),
        ),
        (
            "target".into(),
            Value::Str(matches.value_of("target").unwrap().to_string()),
        ),
        (
            "fuse".into(),
            Value::Str(matches.value_of("fuse").unwrap().to_string()),
        ),
    ];
    for flag in ["tilex", "tiley"] {
        let axis = tile_axis(flag)?;
        if !axis.is_empty() {
            fields.push((
                flag.to_string(),
                Value::Array(axis.into_iter().map(Value::U64).collect()),
            ));
        }
    }
    let request = ScheduleRequest::from_value(&Value::Object(fields))?;

    if !matches.get_flag("standalone") {
        return send_line(addr, &request.canonical_key());
    }

    // Standalone ground truth: the same single-item batch shape the daemon
    // runs, over a cold cache.
    let (acc, _) = resolve_accelerator(&request.accelerator)?;
    let (net, _) = resolve_workload(&request.workload)?;
    let search_threads: usize = matches
        .value_of("search-threads")
        .unwrap()
        .parse()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| "--search-threads expects a positive integer".to_string())?;
    let budget = match matches.value_of("budget") {
        Some(spec) => parse_budget(spec)?,
        None => defines_mapping::Budget::unlimited(),
    };
    let config = BatchConfig {
        fast_mapper: !matches.get_flag("full-mapper"),
        search_threads,
        budget,
        ..BatchConfig::default()
    };
    let items = vec![request.to_batch_item(acc, net)];
    let outcomes = run_batch(&items, &config);
    Ok(render_outcome(&request, &outcomes[0]))
}
