//! `sweep` — explore the depth-first scheduling space from the command line.
//!
//! Mirrors the upstream DeFiNES artifact's interface and runs on the
//! parallel exploration engine with mapping memoization and lower-bound
//! pruning:
//!
//! ```text
//! cargo run --release --bin sweep -- \
//!     --workload fsrcnn --accelerator meta-proto-df --dfmode 123 --tilex 60 --tiley 72
//! ```
//!
//! Omitting `--tilex`/`--tiley` sweeps the default case-study tile grid.
//! Results stream as they complete; the best strategy, the single-layer /
//! layer-by-layer baselines and the engine statistics are printed at the
//! end, and `--json PATH` dumps everything machine-readable.

use clap::{Arg, ArgAction, Command};
use defines_cli::{
    parse_budget, parse_fuse_policy, parse_modes, parse_target, resolve_accelerator,
    resolve_workload, tile_grid, ACCELERATORS, WORKLOADS,
};
use defines_core::{DfCostModel, Explorer, FusePolicy, ScheduleResult};
use defines_engine::{EngineConfig, Outcome};
use defines_workload::Network;
use serde::Value;

fn main() {
    let matches = Command::new("sweep")
        .about(
            "DeFiNES depth-first scheduling sweep: evaluates (tile size x overlap mode) design \
             points on the parallel exploration engine and reports the best strategy.",
        )
        .version(env!("CARGO_PKG_VERSION"))
        .arg(
            Arg::new("workload")
                .long("workload")
                .value_name("NAME|FILE")
                .default_value("fsrcnn")
                .help(format!(
                    "Workload: {}; or a path to a workload JSON file",
                    WORKLOADS.join(", ")
                )),
        )
        .arg(
            Arg::new("accelerator")
                .long("accelerator")
                .value_name("NAME|FILE")
                .default_value("meta-proto-df")
                .help(format!(
                    "Accelerator: {}; or a path to an accelerator JSON file",
                    ACCELERATORS.join(", ")
                )),
        )
        .arg(
            Arg::new("dfmode")
                .long("dfmode")
                .value_name("DIGITS")
                .default_value("123")
                .help("Overlap modes: 1 fully-recompute, 2 H-cached V-recompute, 3 fully-cached"),
        )
        .arg(
            Arg::new("tilex")
                .long("tilex")
                .value_name("LIST")
                .help("Comma-separated tile widths (with --tiley; omit both for the default grid)"),
        )
        .arg(
            Arg::new("tiley")
                .long("tiley")
                .value_name("LIST")
                .help("Comma-separated tile heights"),
        )
        .arg(
            Arg::new("target")
                .long("target")
                .value_name("NAME")
                .default_value("energy")
                .help("Optimization target: energy, latency, edp, dram, activation"),
        )
        .arg(
            Arg::new("fuse")
                .long("fuse")
                .value_name("POLICY")
                .default_value("auto")
                .help(
                    "Fuse depth (axis 3): auto (weight-budget heuristic), full (one stack), \
                     single (one layer per stack), search (DP over stack partitions)",
                ),
        )
        .arg(
            Arg::new("threads")
                .long("threads")
                .value_name("N")
                .default_value("0")
                .help("Engine worker threads (0 = one per core)"),
        )
        .arg(
            Arg::new("search-threads")
                .long("search-threads")
                .value_name("N")
                .default_value("1")
                .help(
                    "Mapping-search worker threads per temporal-mapping search \
                     (1 = sequential; any value produces bit-identical results)",
                ),
        )
        .arg(
            Arg::new("budget")
                .long("budget")
                .value_name("ORD[,DP]")
                .help(
                    "Deterministic search budget: max candidate orderings per mapping \
                     search, optionally followed by max DP relaxation steps (0 = \
                     unlimited). Budget-capped results are flagged degraded",
                ),
        )
        .arg(
            Arg::new("no-prune")
                .long("no-prune")
                .action(ArgAction::SetTrue)
                .help("Disable lower-bound pruning (evaluate every design point)"),
        )
        .arg(
            Arg::new("full-mapper")
                .long("full-mapper")
                .action(ArgAction::SetTrue)
                .help("Use the exhaustive temporal-mapping search instead of the fast one"),
        )
        .arg(
            Arg::new("json")
                .long("json")
                .value_name("PATH")
                .help("Write the sweep records, best strategy and statistics as JSON"),
        )
        .arg(Arg::new("trace").long("trace").value_name("PATH").help(
            "Record pipeline spans and write a Chrome trace-event JSON file \
                     (open in Perfetto or chrome://tracing)",
        ))
        .arg(
            Arg::new("profile")
                .long("profile")
                .action(ArgAction::SetTrue)
                .help("Print a per-phase wall-time breakdown and a metrics snapshot"),
        )
        .arg(
            Arg::new("quiet")
                .long("quiet")
                .short('q')
                .action(ArgAction::SetTrue)
                .help("Suppress per-point streaming output"),
        )
        .get_matches();

    if let Err(message) = run(&matches) {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}

/// Renders the chosen partition and per-stack strategy choices as a JSON
/// object for the report's `schedule` section.
fn schedule_to_json(net: &Network, schedule: &ScheduleResult) -> Value {
    let stacks: Vec<Value> = schedule
        .choices
        .iter()
        .map(|choice| {
            let layers: Vec<Value> = choice
                .stack
                .layers
                .iter()
                .map(|&l| Value::Str(net.layer(l).name.clone()))
                .collect();
            Value::Object(vec![
                ("layers".into(), Value::Array(layers)),
                ("tile".into(), Value::Str(choice.tile.to_string())),
                ("mode".into(), Value::Str(choice.mode.to_string())),
                ("value".into(), Value::F64(choice.value)),
            ])
        })
        .collect();
    Value::Object(vec![
        (
            "policy".into(),
            Value::Str(schedule.policy.keyword().to_string()),
        ),
        ("candidates".into(), Value::U64(schedule.candidates as u64)),
        ("degraded".into(), Value::Bool(schedule.degraded)),
        ("partition".into(), Value::Array(stacks)),
        ("energy_pj".into(), Value::F64(schedule.cost.energy_pj)),
        (
            "latency_cycles".into(),
            Value::F64(schedule.cost.latency_cycles),
        ),
        ("stats".into(), serde::Serialize::to_value(&schedule.stats)),
    ])
}

/// Prints the chosen partition and per-stack choices, one line per stack.
fn print_schedule(net: &Network, schedule: &ScheduleResult, target: defines_core::OptimizeTarget) {
    println!(
        "fuse schedule   : {} | {} stacks from {} candidates",
        schedule.policy,
        schedule.choices.len(),
        schedule.candidates
    );
    for (i, choice) in schedule.choices.iter().enumerate() {
        let first = net.layer(choice.stack.first_layer()).name.as_str();
        let last = net.layer(choice.stack.last_layer()).name.as_str();
        let span = if choice.stack.len() == 1 {
            first.to_string()
        } else {
            format!("{first}..{last} ({} layers)", choice.stack.len())
        };
        println!(
            "  stack {:>2}: {span}  | tile {} | {} | {target} {:.4e}",
            i + 1,
            choice.tile,
            choice.mode,
            choice.value
        );
    }
}

fn run(matches: &clap::ArgMatches) -> Result<(), String> {
    let (net, workload_source) = resolve_workload(matches.value_of("workload").unwrap())?;
    let (acc, accelerator_source) = resolve_accelerator(matches.value_of("accelerator").unwrap())?;
    let modes = parse_modes(matches.value_of("dfmode").unwrap())?;
    let grid = tile_grid(&net, matches.value_of("tilex"), matches.value_of("tiley"))?;
    let target = parse_target(matches.value_of("target").unwrap())?;
    let policy = parse_fuse_policy(matches.value_of("fuse").unwrap())?;
    let threads: usize = matches
        .value_of("threads")
        .unwrap()
        .parse()
        .map_err(|_| "--threads expects a non-negative integer".to_string())?;
    let search_threads: usize = matches
        .value_of("search-threads")
        .unwrap()
        .parse()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| "--search-threads expects a positive integer".to_string())?;
    let quiet = matches.get_flag("quiet");
    let trace_path = matches.value_of("trace");
    let profile = matches.get_flag("profile");
    // Tracing and metrics stay off (one relaxed atomic load per probe)
    // unless asked for, so an un-flagged sweep is bit-identical to the
    // uninstrumented binary.
    if trace_path.is_some() || profile {
        defines_telemetry::set_tracing(true);
        defines_telemetry::set_metrics(true);
    }
    let metrics_before = defines_telemetry::snapshot();

    let mut model = DfCostModel::new(&acc);
    if !matches.get_flag("full-mapper") {
        model = model.with_fast_mapper();
    }
    // After the mapper choice: `with_fast_mapper` replaces the whole mapper
    // configuration, thread count included.
    model = model.with_search_threads(search_threads);
    if let Some(spec) = matches.value_of("budget") {
        model = model.with_search_budget(parse_budget(spec)?);
    }

    let mut config = EngineConfig::parallel().with_pruning(!matches.get_flag("no-prune"));
    if threads > 0 {
        config = config.with_threads(threads);
    }
    let mut explorer = Explorer::new(&model).with_engine_config(config);
    if let Some(fuse) = policy.fixed_fuse_depth() {
        explorer = explorer.with_fuse_depth(fuse);
    }

    // The per-point (tile x mode) sweep fixes the fuse partition per point,
    // so it only makes sense for the fixed-partition policies; `--fuse
    // search` replaces it with the partition search below.
    let run_sweep = !matches!(policy, FusePolicy::Search { .. });
    let total = grid.len() * modes.len();
    let mut record_rows: Vec<Value> = Vec::new();
    // The best evaluated record, tracked in-stream: minimal value, ties
    // broken by submission index — the same arg-min `best_single_strategy`
    // computes, without re-running the sweep (a pruned point can never beat
    // or tie an evaluated one).
    let mut best: Option<(f64, usize, defines_core::DfSweepRecord)> = None;
    let mut sweep_stats = None;
    if run_sweep {
        println!(
            "sweeping {total} design points ({} tiles x {} modes) of {} on {} | target: {target} \
             | {} | {} engine threads, pruning {}",
            grid.len(),
            modes.len(),
            net.name(),
            acc.name(),
            explorer.fuse_depth(),
            explorer.engine_config().threads,
            if explorer.engine_config().prune {
                "on"
            } else {
                "off"
            },
        );

        let width = total.to_string().len();
        let mut done = 0usize;
        let stats = explorer
            .sweep_streaming(&net, &grid, &modes, target, |record| {
                done += 1;
                let row = match &record.outcome {
                    Outcome::Evaluated { value, .. } => {
                        let better = match &best {
                            None => true,
                            Some((bv, bi, _)) => {
                                *value < *bv || (*value == *bv && record.index < *bi)
                            }
                        };
                        if better {
                            best = Some((*value, record.index, record.clone()));
                        }
                        if !quiet {
                            println!(
                                "[{done:>width$}/{total}] {}  {target} {value:.4e}{}",
                                record.point,
                                if record.is_best_so_far {
                                    "  <- best so far"
                                } else {
                                    ""
                                },
                            );
                        }
                        Value::Object(vec![
                            ("index".into(), Value::U64(record.index as u64)),
                            ("strategy".into(), Value::Str(record.point.to_string())),
                            ("value".into(), Value::F64(*value)),
                            ("pruned".into(), Value::Bool(false)),
                        ])
                    }
                    Outcome::Pruned { lower_bound } => {
                        if !quiet {
                            println!(
                                "[{done:>width$}/{total}] {}  pruned (lower bound \
                                 {lower_bound:.4e})",
                                record.point,
                            );
                        }
                        Value::Object(vec![
                            ("index".into(), Value::U64(record.index as u64)),
                            ("strategy".into(), Value::Str(record.point.to_string())),
                            ("lower_bound".into(), Value::F64(*lower_bound)),
                            ("pruned".into(), Value::Bool(true)),
                        ])
                    }
                    Outcome::Failed { error } => {
                        // Failures stream even under --quiet: a silently
                        // dropped point would misreport the sweep as complete.
                        eprintln!("[{done:>width$}/{total}] {}  FAILED: {error}", record.point,);
                        Value::Object(vec![
                            ("index".into(), Value::U64(record.index as u64)),
                            ("strategy".into(), Value::Str(record.point.to_string())),
                            ("error".into(), Value::Str(error.clone())),
                            ("pruned".into(), Value::Bool(false)),
                        ])
                    }
                };
                record_rows.push(row);
            })
            .map_err(|e| e.to_string())?;
        sweep_stats = Some(stats);
    } else {
        println!(
            "searching stack partitions of {} on {} | target: {target} | {} | {} engine threads",
            net.name(),
            acc.name(),
            policy,
            explorer.engine_config().threads,
        );
    }

    // The schedule search over the requested fuse policy: for the fixed
    // policies this picks the best (tile, mode) per stack of the fixed
    // partition; for `search` it additionally searches the partition itself.
    let schedule = explorer
        .best_schedule(&net, &grid, &modes, target, &policy)
        .map_err(|e| e.to_string())?;
    let schedule_value = schedule.value(target, &acc);

    let (sl, lbl) = explorer.baselines(&net).map_err(|e| e.to_string())?;
    let (sl_value, lbl_value) = (target.value(&sl, &acc), target.value(&lbl, &acc));

    println!();
    let mut best_json = None;
    if let Some((best_value, _, best)) = &best {
        let best_cost = best
            .cost()
            .expect("tracked best is always evaluated")
            .clone();
        println!("best strategy   : {}", best.point);
        println!(
            "  {target}: {best_value:.4e}  (energy {:.3} mJ, latency {:.3} Mcycles)",
            best_cost.energy_mj(),
            best_cost.latency_mcycles()
        );
        best_json = Some(Value::Object(vec![
            ("strategy".into(), Value::Str(best.point.to_string())),
            ("value".into(), Value::F64(*best_value)),
            ("energy_pj".into(), Value::F64(best_cost.energy_pj)),
            (
                "latency_cycles".into(),
                Value::F64(best_cost.latency_cycles),
            ),
        ]));
    }
    print_schedule(&net, &schedule, target);
    println!(
        "  {target}: {schedule_value:.4e}  (energy {:.3} mJ, latency {:.3} Mcycles)",
        schedule.cost.energy_mj(),
        schedule.cost.latency_mcycles()
    );
    if schedule.degraded {
        println!(
            "  note: search budget exhausted — this schedule is the best found \
             within --budget, not a proven optimum"
        );
    }
    // Ratios are reported against the best result on screen: the searched
    // schedule, or the best swept single strategy when that is stronger
    // (possible under the fixed policies, whose combination search routes
    // feature maps between stacks through DRAM).
    let reference = best
        .as_ref()
        .map_or(schedule_value, |(v, _, _)| v.min(schedule_value));
    println!(
        "single-layer    : {target} {sl_value:.4e}  ({:.2}x of best)",
        sl_value / reference
    );
    println!(
        "layer-by-layer  : {target} {lbl_value:.4e}  ({:.2}x of best)",
        lbl_value / reference
    );
    let engine_stats = sweep_stats.as_ref().unwrap_or(&schedule.stats);
    let cache = model.mapping_cache().stats();
    println!(
        "engine          : {} evaluated, {} pruned{} in {:.1} ms on {} threads ({:.0} points/s)",
        engine_stats.evaluated,
        engine_stats.pruned,
        if engine_stats.failed > 0 {
            format!(", {} failed", engine_stats.failed)
        } else {
            String::new()
        },
        engine_stats.elapsed.as_secs_f64() * 1e3,
        engine_stats.threads,
        engine_stats.points_per_second(),
    );
    println!(
        "mapping cache   : {} sub-problems, {} hits / {} misses ({:.1}% hit rate, {} canonical)",
        cache.entries,
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0,
        cache.canonical_hits,
    );

    // Export telemetry after every engine run has finished (the scoped
    // worker threads have exited, so the drain sees all their spans).
    let mut profile_json = None;
    if trace_path.is_some() || profile {
        let events = defines_telemetry::drain_events();
        let metrics = defines_telemetry::snapshot().since(&metrics_before);
        if let Some(path) = trace_path {
            let trace = defines_telemetry::chrome_trace(&events);
            std::fs::write(path, trace.to_json())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("trace           : {} spans written to {path}", events.len());
        }
        let breakdown = defines_telemetry::PhaseBreakdown::from_events(&events);
        if profile {
            println!("\n## Phase breakdown\n");
            print!("{}", breakdown.to_markdown());
            println!("\n## Metrics\n");
            for metric in &metrics.values {
                println!("| `{}` | {} |", metric.name, metric.value);
            }
        }
        profile_json = Some(Value::Object(vec![
            ("breakdown".into(), serde::Serialize::to_value(&breakdown)),
            ("metrics".into(), serde::Serialize::to_value(&metrics)),
        ]));
    }

    if let Some(path) = matches.value_of("json") {
        let mut fields = vec![
            ("workload".into(), Value::Str(net.name().to_string())),
            (
                "workload_source".into(),
                Value::Str(workload_source.as_str().to_string()),
            ),
            ("accelerator".into(), Value::Str(acc.name().to_string())),
            (
                "accelerator_source".into(),
                Value::Str(accelerator_source.as_str().to_string()),
            ),
            ("target".into(), Value::Str(target.to_string())),
            (
                "fuse".into(),
                Value::Str(schedule.policy.keyword().to_string()),
            ),
        ];
        if let Some(best) = best_json {
            fields.push(("best".into(), best));
        }
        fields.extend([
            ("schedule".into(), schedule_to_json(&net, &schedule)),
            ("single_layer_value".into(), Value::F64(sl_value)),
            ("layer_by_layer_value".into(), Value::F64(lbl_value)),
            ("stats".into(), serde::Serialize::to_value(engine_stats)),
            (
                "cache".into(),
                Value::Object(vec![
                    ("entries".into(), Value::U64(cache.entries as u64)),
                    ("hits".into(), Value::U64(cache.hits)),
                    ("misses".into(), Value::U64(cache.misses)),
                    ("canonical_hits".into(), Value::U64(cache.canonical_hits)),
                    ("hit_rate".into(), Value::F64(cache.hit_rate())),
                ]),
            ),
            ("records".into(), Value::Array(record_rows)),
        ]);
        if let Some(profile) = profile_json {
            fields.push(("profile".into(), profile));
        }
        let doc = Value::Object(fields);
        std::fs::write(path, doc.to_json_pretty())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote JSON report to {path}");
    }
    Ok(())
}
