//! `sweep` — explore the depth-first scheduling space from the command line.
//!
//! Mirrors the upstream DeFiNES artifact's interface and runs on the
//! parallel exploration engine with mapping memoization and lower-bound
//! pruning:
//!
//! ```text
//! cargo run --release --bin sweep -- \
//!     --workload fsrcnn --accelerator meta-proto-df --dfmode 123 --tilex 60 --tiley 72
//! ```
//!
//! Omitting `--tilex`/`--tiley` sweeps the default case-study tile grid.
//! Results stream as they complete; the best strategy, the single-layer /
//! layer-by-layer baselines and the engine statistics are printed at the
//! end, and `--json PATH` dumps everything machine-readable.

use clap::{Arg, ArgAction, Command};
use defines_cli::{
    accelerator_by_name, parse_modes, parse_target, resolve_workload, tile_grid, ACCELERATORS,
    WORKLOADS,
};
use defines_core::{DfCostModel, Explorer};
use defines_engine::{EngineConfig, Outcome};
use serde::Value;

fn main() {
    let matches = Command::new("sweep")
        .about(
            "DeFiNES depth-first scheduling sweep: evaluates (tile size x overlap mode) design \
             points on the parallel exploration engine and reports the best strategy.",
        )
        .version(env!("CARGO_PKG_VERSION"))
        .arg(
            Arg::new("workload")
                .long("workload")
                .value_name("NAME|FILE")
                .default_value("fsrcnn")
                .help(format!(
                    "Workload: {}; or a path to a workload JSON file",
                    WORKLOADS.join(", ")
                )),
        )
        .arg(
            Arg::new("accelerator")
                .long("accelerator")
                .value_name("NAME")
                .default_value("meta-proto-df")
                .help(format!("Accelerator: {}", ACCELERATORS.join(", "))),
        )
        .arg(
            Arg::new("dfmode")
                .long("dfmode")
                .value_name("DIGITS")
                .default_value("123")
                .help("Overlap modes: 1 fully-recompute, 2 H-cached V-recompute, 3 fully-cached"),
        )
        .arg(
            Arg::new("tilex")
                .long("tilex")
                .value_name("LIST")
                .help("Comma-separated tile widths (with --tiley; omit both for the default grid)"),
        )
        .arg(
            Arg::new("tiley")
                .long("tiley")
                .value_name("LIST")
                .help("Comma-separated tile heights"),
        )
        .arg(
            Arg::new("target")
                .long("target")
                .value_name("NAME")
                .default_value("energy")
                .help("Optimization target: energy, latency, edp, dram, activation"),
        )
        .arg(
            Arg::new("threads")
                .long("threads")
                .value_name("N")
                .default_value("0")
                .help("Engine worker threads (0 = one per core)"),
        )
        .arg(
            Arg::new("no-prune")
                .long("no-prune")
                .action(ArgAction::SetTrue)
                .help("Disable lower-bound pruning (evaluate every design point)"),
        )
        .arg(
            Arg::new("full-mapper")
                .long("full-mapper")
                .action(ArgAction::SetTrue)
                .help("Use the exhaustive temporal-mapping search instead of the fast one"),
        )
        .arg(
            Arg::new("json")
                .long("json")
                .value_name("PATH")
                .help("Write the sweep records, best strategy and statistics as JSON"),
        )
        .arg(
            Arg::new("quiet")
                .long("quiet")
                .short('q')
                .action(ArgAction::SetTrue)
                .help("Suppress per-point streaming output"),
        )
        .get_matches();

    if let Err(message) = run(&matches) {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}

fn run(matches: &clap::ArgMatches) -> Result<(), String> {
    let (net, workload_source) = resolve_workload(matches.value_of("workload").unwrap())?;
    let acc = accelerator_by_name(matches.value_of("accelerator").unwrap())?;
    let modes = parse_modes(matches.value_of("dfmode").unwrap())?;
    let grid = tile_grid(&net, matches.value_of("tilex"), matches.value_of("tiley"))?;
    let target = parse_target(matches.value_of("target").unwrap())?;
    let threads: usize = matches
        .value_of("threads")
        .unwrap()
        .parse()
        .map_err(|_| "--threads expects a non-negative integer".to_string())?;
    let quiet = matches.get_flag("quiet");

    let mut model = DfCostModel::new(&acc);
    if !matches.get_flag("full-mapper") {
        model = model.with_fast_mapper();
    }

    let mut config = EngineConfig::parallel().with_pruning(!matches.get_flag("no-prune"));
    if threads > 0 {
        config = config.with_threads(threads);
    }
    let explorer = Explorer::new(&model).with_engine_config(config);

    let total = grid.len() * modes.len();
    println!(
        "sweeping {total} design points ({} tiles x {} modes) of {} on {} | target: {target} | \
         {} engine threads, pruning {}",
        grid.len(),
        modes.len(),
        net.name(),
        acc.name(),
        explorer.engine_config().threads,
        if explorer.engine_config().prune {
            "on"
        } else {
            "off"
        },
    );

    let width = total.to_string().len();
    let mut done = 0usize;
    let mut record_rows: Vec<Value> = Vec::new();
    // The best evaluated record, tracked in-stream: minimal value, ties
    // broken by submission index — the same arg-min `best_single_strategy`
    // computes, without re-running the sweep (a pruned point can never beat
    // or tie an evaluated one).
    let mut best: Option<(f64, usize, defines_core::DfSweepRecord)> = None;
    let stats = explorer
        .sweep_streaming(&net, &grid, &modes, target, |record| {
            done += 1;
            let row = match &record.outcome {
                Outcome::Evaluated { value, .. } => {
                    let better = match &best {
                        None => true,
                        Some((bv, bi, _)) => *value < *bv || (*value == *bv && record.index < *bi),
                    };
                    if better {
                        best = Some((*value, record.index, record.clone()));
                    }
                    if !quiet {
                        println!(
                            "[{done:>width$}/{total}] {}  {target} {value:.4e}{}",
                            record.point,
                            if record.is_best_so_far {
                                "  <- best so far"
                            } else {
                                ""
                            },
                        );
                    }
                    Value::Object(vec![
                        ("index".into(), Value::U64(record.index as u64)),
                        ("strategy".into(), Value::Str(record.point.to_string())),
                        ("value".into(), Value::F64(*value)),
                        ("pruned".into(), Value::Bool(false)),
                    ])
                }
                Outcome::Pruned { lower_bound } => {
                    if !quiet {
                        println!(
                            "[{done:>width$}/{total}] {}  pruned (lower bound {lower_bound:.4e})",
                            record.point,
                        );
                    }
                    Value::Object(vec![
                        ("index".into(), Value::U64(record.index as u64)),
                        ("strategy".into(), Value::Str(record.point.to_string())),
                        ("lower_bound".into(), Value::F64(*lower_bound)),
                        ("pruned".into(), Value::Bool(true)),
                    ])
                }
            };
            record_rows.push(row);
        })
        .map_err(|e| e.to_string())?;

    let (best_value, _, best) = best.ok_or("the sweep evaluated no design points")?;
    let best_cost = best
        .cost()
        .expect("tracked best is always evaluated")
        .clone();
    let best_strategy = best.point;
    let (sl, lbl) = explorer.baselines(&net).map_err(|e| e.to_string())?;
    let (sl_value, lbl_value) = (target.value(&sl, &acc), target.value(&lbl, &acc));

    println!();
    println!("best strategy   : {best_strategy}");
    println!(
        "  {target}: {best_value:.4e}  (energy {:.3} mJ, latency {:.3} Mcycles)",
        best_cost.energy_mj(),
        best_cost.latency_mcycles()
    );
    println!(
        "single-layer    : {target} {sl_value:.4e}  ({:.2}x of best)",
        sl_value / best_value
    );
    println!(
        "layer-by-layer  : {target} {lbl_value:.4e}  ({:.2}x of best)",
        lbl_value / best_value
    );
    let cache = model.mapping_cache().stats();
    println!(
        "engine          : {} evaluated, {} pruned in {:.1} ms on {} threads",
        stats.evaluated,
        stats.pruned,
        stats.elapsed.as_secs_f64() * 1e3,
        stats.threads
    );
    println!(
        "mapping cache   : {} sub-problems, {} hits / {} misses ({:.1}% hit rate)",
        cache.entries,
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0
    );

    if let Some(path) = matches.value_of("json") {
        let doc = Value::Object(vec![
            ("workload".into(), Value::Str(net.name().to_string())),
            (
                "workload_source".into(),
                Value::Str(workload_source.as_str().to_string()),
            ),
            ("accelerator".into(), Value::Str(acc.name().to_string())),
            ("target".into(), Value::Str(target.to_string())),
            (
                "best".into(),
                Value::Object(vec![
                    ("strategy".into(), Value::Str(best_strategy.to_string())),
                    ("value".into(), Value::F64(best_value)),
                    ("energy_pj".into(), Value::F64(best_cost.energy_pj)),
                    (
                        "latency_cycles".into(),
                        Value::F64(best_cost.latency_cycles),
                    ),
                ]),
            ),
            ("single_layer_value".into(), Value::F64(sl_value)),
            ("layer_by_layer_value".into(), Value::F64(lbl_value)),
            ("stats".into(), serde::Serialize::to_value(&stats)),
            (
                "cache".into(),
                Value::Object(vec![
                    ("entries".into(), Value::U64(cache.entries as u64)),
                    ("hits".into(), Value::U64(cache.hits)),
                    ("misses".into(), Value::U64(cache.misses)),
                    ("hit_rate".into(), Value::F64(cache.hit_rate())),
                ]),
            ),
            ("records".into(), Value::Array(record_rows)),
        ]);
        std::fs::write(path, doc.to_json_pretty())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote JSON report to {path}");
    }
    Ok(())
}
