//! `matrix` — run the DeFiNES case-study grid: every `{accelerator} ×
//! {workload} × {fuse policy}` cell in one flattened engine run sharing one
//! mapping cache, with a Fig.-13-style accelerator ranking.
//!
//! ```text
//! cargo run --release --bin matrix -- \
//!     --accelerators meta-proto-df,tpu-df,edge-tpu-df,ascend-df,tesla-npu-df \
//!     --workloads fsrcnn,mobilenet-v1 --fuse auto,single \
//!     --json matrix.json --markdown matrix.md
//! ```
//!
//! Each axis entry is a zoo name or a path to a JSON file (workloads:
//! `defines_workload::loader`; accelerators: `defines_arch::loader`), so the
//! paper's five-architecture comparison extends to bring-your-own hardware
//! without touching Rust. Cells stream as they complete; the ranking table,
//! the per-cell grid and the engine/cache statistics are printed at the end,
//! and `--json` / `--markdown` dump the full report.

use clap::{Arg, ArgAction, Command};
use defines_cli::{
    parse_budget, parse_deadline, parse_fuse_policy, parse_modes, parse_target,
    resolve_accelerator, resolve_workload, tile_grid, ACCELERATORS, WORKLOADS,
};
use defines_core::matrix::{run_matrix, MatrixConfig};
use defines_core::FusePolicy;
use defines_engine::EngineConfig;
use serde::Serialize;

fn main() {
    let matches = Command::new("matrix")
        .about(
            "DeFiNES case-study matrix: evaluates every (accelerator x workload x fuse \
             policy) cell in one shared-cache engine run and ranks the accelerators.",
        )
        .version(env!("CARGO_PKG_VERSION"))
        .arg(
            Arg::new("accelerators")
                .long("accelerators")
                .value_name("LIST")
                .default_value("meta-proto-df,tpu-df,edge-tpu-df,ascend-df,tesla-npu-df")
                .help(format!(
                    "Comma-separated accelerators (zoo names or JSON paths). Zoo: {}",
                    ACCELERATORS.join(", ")
                )),
        )
        .arg(
            Arg::new("workloads")
                .long("workloads")
                .value_name("LIST")
                .default_value("fsrcnn,dmcnn-vd,mccnn,mobilenet-v1,resnet18")
                .help(format!(
                    "Comma-separated workloads (zoo names or JSON paths). Zoo: {}",
                    WORKLOADS.join(", ")
                )),
        )
        .arg(
            Arg::new("fuse")
                .long("fuse")
                .value_name("LIST")
                .default_value("auto")
                .help("Comma-separated fuse policies: auto, full, single, search"),
        )
        .arg(
            Arg::new("dfmode")
                .long("dfmode")
                .value_name("DIGITS")
                .default_value("123")
                .help("Overlap modes: 1 fully-recompute, 2 H-cached V-recompute, 3 fully-cached"),
        )
        .arg(Arg::new("tilex").long("tilex").value_name("LIST").help(
            "Comma-separated tile widths applied to every cell (with --tiley; omit \
                     both for each workload's default grid)",
        ))
        .arg(
            Arg::new("tiley")
                .long("tiley")
                .value_name("LIST")
                .help("Comma-separated tile heights"),
        )
        .arg(
            Arg::new("target")
                .long("target")
                .value_name("NAME")
                .default_value("energy")
                .help("Optimization target: energy, latency, edp, dram, activation"),
        )
        .arg(
            Arg::new("threads")
                .long("threads")
                .value_name("N")
                .default_value("0")
                .help("Outer engine worker threads, one cell per worker (0 = one per core)"),
        )
        .arg(
            Arg::new("search-threads")
                .long("search-threads")
                .value_name("N")
                .default_value("1")
                .help(
                    "Mapping-search worker threads per temporal-mapping search \
                     (1 = sequential; any value produces bit-identical results)",
                ),
        )
        .arg(
            Arg::new("full-mapper")
                .long("full-mapper")
                .action(ArgAction::SetTrue)
                .help("Use the exhaustive temporal-mapping search instead of the fast one"),
        )
        .arg(
            Arg::new("budget")
                .long("budget")
                .value_name("ORD[,DP]")
                .help(
                    "Deterministic search budget per cell: max candidate orderings per \
                     mapping search, optionally followed by max DP relaxation steps \
                     (0 = unlimited). Budget-capped cells are flagged degraded",
                ),
        )
        .arg(
            Arg::new("deadline")
                .long("deadline")
                .value_name("SECS")
                .help(
                    "Wall-clock limit in seconds, checked between cells: cells starting \
                     after it expires are marked failed; completed cells are unaffected \
                     (rerun with --resume to finish them)",
                ),
        )
        .arg(
            Arg::new("checkpoint")
                .long("checkpoint")
                .value_name("FILE")
                .help(
                    "Append each finished cell to a JSONL checkpoint; if FILE already \
                     has cells from the same grid, they are skipped and the run resumes",
                ),
        )
        .arg(Arg::new("resume").long("resume").value_name("FILE").help(
            "Resume from an existing checkpoint (like --checkpoint, but errors \
                     if FILE is missing or empty instead of starting fresh)",
        ))
        .arg(
            Arg::new("json")
                .long("json")
                .value_name("PATH")
                .help("Write the full matrix report (cells, ranking, stats) as JSON"),
        )
        .arg(
            Arg::new("markdown")
                .long("markdown")
                .value_name("PATH")
                .help("Write the report as a markdown document (ranking + cell tables)"),
        )
        .arg(Arg::new("trace").long("trace").value_name("PATH").help(
            "Record pipeline spans and write a Chrome trace-event JSON file \
                     (open in Perfetto or chrome://tracing)",
        ))
        .arg(
            Arg::new("quiet")
                .long("quiet")
                .short('q')
                .action(ArgAction::SetTrue)
                .help("Suppress per-cell streaming output"),
        )
        .get_matches();

    if let Err(message) = run(&matches) {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}

/// Splits a comma-separated axis list into trimmed, non-empty entries.
fn split_axis(flag: &str, input: &str) -> Result<Vec<String>, String> {
    let entries: Vec<String> = input
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if entries.is_empty() {
        return Err(format!("{flag} needs at least one entry"));
    }
    Ok(entries)
}

fn run(matches: &clap::ArgMatches) -> Result<(), String> {
    let mut accelerators = Vec::new();
    for spec in split_axis("--accelerators", matches.value_of("accelerators").unwrap())? {
        let (acc, _) = resolve_accelerator(&spec)?;
        accelerators.push(acc);
    }
    let mut workloads = Vec::new();
    for spec in split_axis("--workloads", matches.value_of("workloads").unwrap())? {
        let (net, _) = resolve_workload(&spec)?;
        workloads.push(net);
    }
    let mut policies: Vec<FusePolicy> = Vec::new();
    for spec in split_axis("--fuse", matches.value_of("fuse").unwrap())? {
        policies.push(parse_fuse_policy(&spec)?);
    }
    let modes = parse_modes(matches.value_of("dfmode").unwrap())?;
    let target = parse_target(matches.value_of("target").unwrap())?;
    let threads: usize = matches
        .value_of("threads")
        .unwrap()
        .parse()
        .map_err(|_| "--threads expects a non-negative integer".to_string())?;
    let search_threads: usize = matches
        .value_of("search-threads")
        .unwrap()
        .parse()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| "--search-threads expects a positive integer".to_string())?;
    let quiet = matches.get_flag("quiet");
    let trace_path = matches.value_of("trace");
    // The matrix report's metrics section is sourced from the telemetry
    // snapshot, so counters are always on here (their cost is a relaxed
    // atomic add); span tracing stays opt-in via --trace.
    defines_telemetry::set_metrics(true);
    if trace_path.is_some() {
        defines_telemetry::set_tracing(true);
    }

    // --tilex/--tiley apply the same explicit grid to every cell; omitted,
    // each workload gets its own default case-study grid inside the runner.
    let explicit_grid = match (matches.value_of("tilex"), matches.value_of("tiley")) {
        (None, None) => None,
        (tilex, tiley) => Some(tile_grid(&workloads[0], tilex, tiley)?),
    };

    let budget = match matches.value_of("budget") {
        Some(spec) => parse_budget(spec)?,
        None => defines_mapping::Budget::unlimited(),
    };
    let deadline = matches
        .value_of("deadline")
        .map(parse_deadline)
        .transpose()?;
    let checkpoint = match (matches.value_of("checkpoint"), matches.value_of("resume")) {
        (Some(_), Some(_)) => {
            return Err(
                "--checkpoint and --resume cannot be combined (both name the \
                        same file; --resume just insists it already exists)"
                    .into(),
            )
        }
        (Some(path), None) => Some(std::path::PathBuf::from(path)),
        (None, Some(path)) => {
            // --resume demands an existing, non-empty checkpoint: a typo'd
            // path silently starting a fresh run would be a footgun.
            let is_populated = std::fs::metadata(path)
                .map(|m| m.len() > 0)
                .unwrap_or(false);
            if !is_populated {
                return Err(format!(
                    "nothing to resume: '{path}' is missing or empty (use --checkpoint \
                     to start a new checkpointed run)"
                ));
            }
            Some(std::path::PathBuf::from(path))
        }
        (None, None) => None,
    };

    let mut engine = EngineConfig::parallel();
    if threads > 0 {
        engine = engine.with_threads(threads);
    }
    let config = MatrixConfig {
        engine,
        fast_mapper: !matches.get_flag("full-mapper"),
        search_threads,
        budget,
        deadline,
        checkpoint,
        ..MatrixConfig::default()
    };

    let total = accelerators.len() * workloads.len() * policies.len();
    println!(
        "matrix: {} accelerators x {} workloads x {} fuse policies = {total} cells | \
         target: {target} | {} outer threads, shared mapping cache",
        accelerators.len(),
        workloads.len(),
        policies.len(),
        config.engine.threads,
    );

    let width = total.to_string().len();
    let mut done = 0usize;
    let report = run_matrix(
        &accelerators,
        &workloads,
        &policies,
        explicit_grid.as_deref(),
        &modes,
        target,
        &config,
        |cell| {
            done += 1;
            if let Some(error) = &cell.error {
                // Failures stream even under --quiet: a silently dropped
                // cell would misreport the matrix as complete.
                eprintln!("[{done:>width$}/{total}] {}  FAILED: {error}", cell.label);
            } else if !quiet {
                println!(
                    "[{done:>width$}/{total}] {}  {target} {:.4e}  ({} stacks){}",
                    cell.label,
                    cell.value,
                    cell.stacks.len(),
                    if cell.degraded {
                        "  [budget-degraded]"
                    } else {
                        ""
                    },
                );
            }
        },
    )
    .map_err(|e| e.to_string())?;

    println!("\nranking ({target}, best strategy per workload):");
    for entry in &report.ranking {
        if entry.total_value == f64::MAX {
            println!(
                "  {:>2}. {:<22} starved (a workload had no successful cell)",
                entry.rank, entry.accelerator,
            );
        } else {
            println!(
                "  {:>2}. {:<22} total {:.4e}  ({:.3}x of best)",
                entry.rank, entry.accelerator, entry.total_value, entry.ratio_to_best,
            );
        }
    }
    println!(
        "\nengine          : {} cells in {:.1} ms on {} threads (inner searches: {} design \
         points)",
        report.stats.evaluated,
        report.stats.elapsed.as_secs_f64() * 1e3,
        report.stats.threads,
        report.inner_stats.evaluated,
    );
    if let Some(cache) = &report.stats.cache {
        println!(
            "mapping cache   : {} sub-problems, {} hits / {} misses ({:.1}% hit rate, {} \
             canonical)",
            cache.entries,
            cache.hits,
            cache.misses,
            cache.hit_rate() * 100.0,
            cache.canonical_hits,
        );
    }

    if let Some(metrics) = report
        .metrics
        .get("search.orderings_evaluated")
        .zip(report.metrics.get("search.pruned_bound"))
    {
        println!(
            "mapping search  : {} orderings evaluated, {} pruned by bound, {} by symmetry",
            metrics.0,
            metrics.1,
            report.metrics.get("search.pruned_symmetry").unwrap_or(0),
        );
        if search_threads > 1 {
            println!(
                "parallel search : {} subtrees, {} steals, {} bound broadcasts",
                report.metrics.get("search.subtrees").unwrap_or(0),
                report.metrics.get("search.steals").unwrap_or(0),
                report.metrics.get("search.bound_broadcasts").unwrap_or(0),
            );
        }
    }

    // Fault-tolerance counters, printed only when something actually
    // happened — a clean run stays visually identical to one without the
    // fault machinery.
    let fault = |name: &str| report.metrics.get(name).unwrap_or(0);
    let (failed, resumed, panics, budget_hits) = (
        fault("fault.cells_failed"),
        fault("fault.cells_resumed"),
        fault("fault.caught_panics"),
        fault("fault.budget_exhausted"),
    );
    if failed + resumed + panics + budget_hits > 0 {
        println!(
            "faults          : {failed} cells failed, {resumed} resumed from checkpoint, \
             {panics} panics caught, {budget_hits} budget exhaustions",
        );
    }

    if let Some(path) = trace_path {
        let events = defines_telemetry::drain_events();
        let trace = defines_telemetry::chrome_trace(&events);
        std::fs::write(path, trace.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("trace           : {} spans written to {path}", events.len());
    }

    if let Some(path) = matches.value_of("json") {
        std::fs::write(path, report.to_value().to_json_pretty())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote JSON report to {path}");
    }
    if let Some(path) = matches.value_of("markdown") {
        std::fs::write(path, report.to_markdown())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote markdown report to {path}");
    }

    // Partial failure must be visible to scripts: the reports above are
    // complete (failed cells carry their error), but the exit code says the
    // grid is not — completed cells are checkpointed, so a --resume rerun
    // only retries the failures.
    if report.stats.failed > 0 {
        eprintln!(
            "warning: {} of {} cells failed (see FAILED lines above); rerun with \
             --resume to retry them",
            report.stats.failed,
            report.cells.len(),
        );
        std::process::exit(2);
    }
    Ok(())
}
