//! Black-box tests of the binaries' error behaviour: malformed input must
//! print a named error on stderr and exit nonzero — never a panic backtrace
//! — and the matrix checkpoint flags must round-trip through the binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn sweep() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sweep"))
}

fn matrix() -> Command {
    Command::new(env!("CARGO_BIN_EXE_matrix"))
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// Asserts the command failed cleanly: nonzero exit, an `error:`-prefixed
/// message containing `needle`, and no panic machinery in sight.
fn assert_clean_failure(mut cmd: Command, needle: &str) {
    let output = cmd.output().expect("binary runs");
    let err = stderr(&output);
    assert!(
        !output.status.success(),
        "expected nonzero exit, got success; stderr: {err}"
    );
    assert!(
        err.contains("error:"),
        "stderr must carry the error: prefix: {err}"
    );
    assert!(
        err.contains(needle),
        "stderr must name the cause ({needle}): {err}"
    );
    for forbidden in ["panicked at", "RUST_BACKTRACE", "unwrap"] {
        assert!(
            !err.contains(forbidden),
            "stderr must not show panic machinery ({forbidden}): {err}"
        );
    }
}

#[test]
fn unknown_names_fail_cleanly() {
    assert_clean_failure(
        {
            let mut c = sweep();
            c.args(["--workload", "nope"]);
            c
        },
        "unknown workload",
    );
    assert_clean_failure(
        {
            let mut c = sweep();
            c.args(["--accelerator", "nope"]);
            c
        },
        "unknown accelerator",
    );
    assert_clean_failure(
        {
            let mut c = matrix();
            c.args(["--workloads", "fsrcnn,nope"]);
            c
        },
        "unknown workload",
    );
}

#[test]
fn malformed_flags_fail_cleanly() {
    assert_clean_failure(
        {
            let mut c = sweep();
            c.args(["--dfmode", "7"]);
            c
        },
        "--dfmode",
    );
    assert_clean_failure(
        {
            let mut c = sweep();
            c.args(["--budget", "lots"]);
            c
        },
        "--budget",
    );
    assert_clean_failure(
        {
            let mut c = matrix();
            c.args(["--deadline", "-3"]);
            c
        },
        "--deadline",
    );
    assert_clean_failure(
        {
            let mut c = sweep();
            c.args(["--tilex", "60"]);
            c
        },
        "--tiley",
    );
}

#[test]
fn malformed_workload_file_fails_cleanly() {
    let dir = std::env::temp_dir().join(format!("defines-cli-errors-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.json");
    std::fs::write(&path, "{\"layers\": [").unwrap();
    assert_clean_failure(
        {
            let mut c = sweep();
            c.args(["--workload", path.to_str().unwrap()]);
            c
        },
        "workload",
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_flag_misuse_fails_cleanly() {
    assert_clean_failure(
        {
            let mut c = matrix();
            c.args(["--checkpoint", "a.jsonl", "--resume", "a.jsonl"]);
            c
        },
        "cannot be combined",
    );
    assert_clean_failure(
        {
            let mut c = matrix();
            c.args(["--resume", "definitely-missing-dir/nothing.jsonl"]);
            c
        },
        "nothing to resume",
    );
}

/// End-to-end checkpoint round-trip through the binary: an interrupted-style
/// rerun with `--resume` skips every completed cell and still exits cleanly.
#[test]
fn matrix_checkpoint_resumes_through_the_binary() {
    let path: PathBuf = std::env::temp_dir().join(format!(
        "defines-cli-checkpoint-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let grid = [
        "--accelerators",
        "meta-proto-df",
        "--workloads",
        "fsrcnn",
        "--fuse",
        "single",
        "--dfmode",
        "1",
        "--tilex",
        "32",
        "--tiley",
        "32",
    ];

    let mut first = matrix();
    first
        .args(grid)
        .args(["--checkpoint", path.to_str().unwrap()]);
    let output = first.output().expect("binary runs");
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(path.is_file(), "checkpoint file written");

    let mut second = matrix();
    second.args(grid).args(["--resume", path.to_str().unwrap()]);
    let output = second.output().expect("binary runs");
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let out = stdout(&output);
    assert!(
        out.contains("1 resumed from checkpoint"),
        "resume must skip the completed cell: {out}"
    );

    // A different grid against the same file is refused, not clobbered.
    let mut clash = matrix();
    clash
        .args(grid)
        .args(["--target", "latency", "--resume", path.to_str().unwrap()]);
    let output = clash.output().expect("binary runs");
    assert!(!output.status.success());
    assert!(
        stderr(&output).contains("checkpoint does not match this run"),
        "stderr: {}",
        stderr(&output)
    );
    let _ = std::fs::remove_file(&path);
}
