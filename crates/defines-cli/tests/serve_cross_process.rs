//! Cross-process determinism harness for the scheduling daemon.
//!
//! Spawns the *real* `serve` binary (no in-process shortcuts) and drives it
//! with the real `defines-request` client, pinning the serving invariant:
//! the daemon's answer for a request is byte-identical to a standalone run —
//! cold, warm (memo hit), after a clean shutdown/restart, and after an
//! abrupt SIGKILL/restart, all through the persisted on-disk cache.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

/// A running `serve` child with its scraped address; killed on drop so a
/// failing assertion never leaks a daemon.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawns the daemon binary and scrapes `listening on HOST:PORT` from
    /// its stdout (the line is flushed before the accept loop starts).
    fn spawn(args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
            .args(["--addr", "127.0.0.1:0"])
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("cannot spawn the serve binary");
        let stdout = child.stdout.take().expect("serve stdout is piped");
        let mut lines = BufReader::new(stdout).lines();
        let first = lines
            .next()
            .expect("serve exited without output")
            .expect("cannot read serve stdout");
        let addr = first
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected serve banner: {first}"))
            .to_string();
        // Drain the rest of stdout on a detached thread so the daemon never
        // blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        Daemon { child, addr }
    }

    /// Clean shutdown through the protocol; waits for the process to exit.
    fn shutdown(mut self) {
        let out = request(&self.addr, &["--shutdown"]);
        assert!(out.contains("\"shutdown\":true"), "{out}");
        let status = self.child.wait().expect("cannot wait for serve");
        assert!(status.success(), "serve exited with {status}");
    }

    /// Abrupt kill (SIGKILL) — the crash-recovery path.
    fn kill(mut self) {
        self.child.kill().expect("cannot kill serve");
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Runs `defines-request` against a daemon and returns its stdout line.
fn request(addr: &str, args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_defines-request"))
        .args(["--addr", addr])
        .args(args)
        .output()
        .expect("cannot run defines-request");
    assert!(
        out.status.success(),
        "defines-request {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout)
        .expect("response is UTF-8")
        .trim_end()
        .to_string()
}

/// The cheap request the whole harness revolves around (FSRCNN is the
/// smallest zoo workload; one tile, one mode, fixed fuse keeps a debug-build
/// run in milliseconds).
const REQUEST_A: [&str; 12] = [
    "--workload",
    "fsrcnn",
    "--accelerator",
    "meta-proto-df",
    "--dfmode",
    "3",
    "--tilex",
    "60",
    "--tiley",
    "72",
    "--fuse",
    "full",
];

/// A second, distinct request sharing the accelerator (so it reuses warm
/// sub-problems without being the same response).
const REQUEST_B: [&str; 12] = [
    "--workload",
    "fsrcnn",
    "--accelerator",
    "meta-proto-df",
    "--dfmode",
    "1",
    "--tilex",
    "48",
    "--tiley",
    "48",
    "--fuse",
    "full",
];

/// Extracts `"name":<digits>` from a stats response (the vendored JSON
/// renderer emits no whitespace, so this is exact).
fn stat(stats: &str, name: &str) -> u64 {
    let pat = format!("\"{name}\":");
    let at = stats
        .find(&pat)
        .unwrap_or_else(|| panic!("no {name} in {stats}"));
    stats[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("stat value")
}

fn temp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("defines-serve-harness-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("cannot create temp dir");
    dir.join(format!("{tag}.jsonl"))
}

#[test]
fn daemon_matches_standalone_cold_warm_and_across_restarts() {
    let cache = temp_cache("lifecycle");
    let _ = std::fs::remove_file(&cache);
    let cache_str = cache.to_str().unwrap();

    // Ground truth: the standalone path, no daemon involved.
    let standalone_a = {
        let out = Command::new(env!("CARGO_BIN_EXE_defines-request"))
            .arg("--standalone")
            .args(REQUEST_A)
            .output()
            .expect("cannot run standalone request");
        assert!(out.status.success());
        String::from_utf8(out.stdout)
            .unwrap()
            .trim_end()
            .to_string()
    };
    assert!(standalone_a.starts_with("{\"ok\":true,"), "{standalone_a}");

    // Cold daemon: first answer is computed, second is a memo hit; both must
    // be the standalone bytes.
    let daemon = Daemon::spawn(&["--cache-file", cache_str]);
    let cold = request(&daemon.addr, &REQUEST_A);
    let warm = request(&daemon.addr, &REQUEST_A);
    assert_eq!(cold, standalone_a, "cold daemon answer != standalone");
    assert_eq!(warm, standalone_a, "warm daemon answer != standalone");
    let stats = request(&daemon.addr, &["--stats"]);
    assert_eq!(stat(&stats, "requests"), 2);
    assert_eq!(stat(&stats, "memo_hits"), 1);
    assert_eq!(stat(&stats, "computed"), 1);
    assert!(stat(&stats, "stored") > 0, "nothing persisted: {stats}");
    daemon.shutdown();

    // Clean restart: the answer must come from the persisted cache (zero
    // mapping-cache misses) and still be the same bytes.
    let daemon = Daemon::spawn(&["--cache-file", cache_str]);
    let after_restart = request(&daemon.addr, &REQUEST_A);
    assert_eq!(
        after_restart, standalone_a,
        "restarted answer != standalone"
    );
    let stats = request(&daemon.addr, &["--stats"]);
    assert!(stat(&stats, "cache_loads") > 0, "no preload: {stats}");
    assert_eq!(stat(&stats, "misses"), 0, "restart recomputed: {stats}");
    // Grow the cache with a second request, then crash without ceremony.
    let b_before_kill = request(&daemon.addr, &REQUEST_B);
    daemon.kill();

    // Kill/restart: per-batch syncing means the abrupt exit lost nothing.
    let daemon = Daemon::spawn(&["--cache-file", cache_str]);
    assert_eq!(request(&daemon.addr, &REQUEST_A), standalone_a);
    assert_eq!(request(&daemon.addr, &REQUEST_B), b_before_kill);
    let stats = request(&daemon.addr, &["--stats"]);
    assert_eq!(stat(&stats, "misses"), 0, "kill lost entries: {stats}");
    daemon.shutdown();
}

#[test]
fn daemon_rejects_malformed_requests_and_keeps_serving() {
    let daemon = Daemon::spawn(&[]);
    let out = Command::new(env!("CARGO_BIN_EXE_defines-request"))
        .args(["--addr", &daemon.addr])
        .args(["--workload", "fsrcnn", "--accelerator", "meta-proto-df"])
        .args(["--dfmode", "9"])
        .output()
        .expect("cannot run defines-request");
    // Keyword validation happens client-side, before any bytes hit the wire.
    assert!(!out.status.success(), "bad dfmode must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("dfmode"));

    // An unknown zoo name fails at resolution, inside the daemon.
    let out = Command::new(env!("CARGO_BIN_EXE_defines-request"))
        .args(["--addr", &daemon.addr])
        .args([
            "--workload",
            "no-such-net",
            "--accelerator",
            "meta-proto-df",
        ])
        .args(["--tilex", "60", "--tiley", "72"])
        .output()
        .expect("cannot run defines-request");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("unknown workload"));

    // The daemon is still healthy afterwards.
    let pong = request(&daemon.addr, &["--ping"]);
    assert!(pong.contains("\"pong\":true"), "{pong}");
    daemon.shutdown();
}
