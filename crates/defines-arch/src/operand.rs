//! The three memory operands of a convolution layer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A memory operand: weights, input activations or output activations.
///
/// ```
/// use defines_arch::Operand;
/// assert_eq!(Operand::ALL.len(), 3);
/// assert_eq!(Operand::Weight.to_string(), "W");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Operand {
    /// Layer weights.
    Weight,
    /// Input activations.
    Input,
    /// Output activations (including partial sums).
    Output,
}

impl Operand {
    /// All operands, in W / I / O order.
    pub const ALL: [Operand; 3] = [Operand::Weight, Operand::Input, Operand::Output];
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Operand::Weight => "W",
            Operand::Input => "I",
            Operand::Output => "O",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_single_letter() {
        assert_eq!(Operand::Weight.to_string(), "W");
        assert_eq!(Operand::Input.to_string(), "I");
        assert_eq!(Operand::Output.to_string(), "O");
    }

    #[test]
    fn operands_are_ordered() {
        assert!(Operand::Weight < Operand::Input);
        assert!(Operand::Input < Operand::Output);
    }
}
