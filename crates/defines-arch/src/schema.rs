//! Declarative JSON schema for accelerators: the document types that describe
//! a hardware platform as data instead of Rust code — the hardware twin of
//! the `defines-workload` workload schema.
//!
//! An accelerator document is a JSON object with a `name`, a `pe_array`
//! (spatial unrolling factors plus the per-MAC energy) and a `levels` array
//! describing the memory hierarchy innermost-first. Each level names the
//! operands it serves (`"W"`, `"I"`, `"O"`); energies and bandwidths may be
//! omitted and default to the CACTI-like fit of [`crate::energy`] (see
//! [`crate::loader`] for the exact rules):
//!
//! ```json
//! {
//!   "format": "defines-accelerator-v1",
//!   "name": "my-edge-npu",
//!   "pe_array": {"unroll": {"K": 16, "C": 8, "OX": 4}, "mac_energy_pj": 0.1},
//!   "levels": [
//!     {"name": "LB_W",  "kind": "sram", "capacity_bytes": 65536,  "operands": ["W"]},
//!     {"name": "LB_IO", "kind": "sram", "capacity_bytes": 65536,  "operands": ["I", "O"]},
//!     {"name": "GB",    "kind": "sram", "capacity_bytes": 2097152, "operands": ["W", "I", "O"]}
//!   ]
//! }
//! ```
//!
//! The schema is the bridge in both directions:
//! [`AcceleratorDoc::from_accelerator`] exports any in-memory [`Accelerator`]
//! (including the Table I(a) zoo) as a fully explicit document — the
//! reference files under `accelerators/` are produced this way — and the
//! [`loader`](crate::loader) turns documents back into validated
//! [`Accelerator`]s. Round-tripping an accelerator through JSON reproduces it
//! exactly, *including* its [`Accelerator::fingerprint`], so file-loaded
//! hardware shares mapping-cache entries with its built-in twin.

use crate::accelerator::Accelerator;
use crate::loader::AcceleratorDocError;
use crate::memory::MemoryLevel;
use crate::operand::Operand;
use defines_workload::Dim;
use serde::{Serialize, Value};

/// The format tag expected in an accelerator document's optional `format`
/// field.
pub const FORMAT: &str = "defines-accelerator-v1";

/// A whole accelerator document: the JSON-facing twin of [`Accelerator`].
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorDoc {
    /// Format tag ([`FORMAT`]); optional on input, always written on export.
    pub format: Option<String>,
    /// Accelerator name. Part of the [`Accelerator::fingerprint`], so two
    /// documents differing only in name key separate mapping-cache spaces.
    pub name: String,
    /// The PE array specification.
    pub pe_array: PeArraySpec,
    /// Memory levels, innermost first. The outermost DRAM level may be
    /// omitted; the loader appends the default DRAM automatically (mirroring
    /// [`crate::AcceleratorBuilder::build`]).
    pub levels: Vec<LevelSpec>,
}

/// The PE-array part of an accelerator document: the JSON-facing twin of
/// [`crate::PeArray`].
#[derive(Debug, Clone, PartialEq)]
pub struct PeArraySpec {
    /// Spatial unrolling factors as `(dimension name, factor)` pairs, in the
    /// order they should serialize (canonical B, K, C, OX, OY, FX, FY order
    /// on export). Factors must be ≥ 1; at least one factor > 1 is required
    /// (a factor-free array would be a zero-size PE array).
    pub unroll: Vec<(String, u64)>,
    /// Energy of one MAC operation in pJ. Defaults to
    /// [`crate::energy::MAC_ENERGY_PJ`] when omitted.
    pub mac_energy_pj: Option<f64>,
}

/// One memory level of an accelerator document: the JSON-facing twin of
/// [`MemoryLevel`].
///
/// Only `name` and `operands` are always required. `kind` selects the
/// defaults applied to omitted fields (`"sram"` — the default for
/// capacity-bounded levels, `"register"`, `"dram"`); explicit
/// energies/bandwidths always win over the defaults. In the `Option<f64>`
/// bandwidth fields, `None` means *use the kind's default* and
/// `Some(f64::INFINITY)` (JSON `null`) means *never a bottleneck* — the
/// convention register files use.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelSpec {
    /// Level name, unique within the document.
    pub name: String,
    /// Level kind: `"sram"`, `"register"` or `"dram"`. Defaults to `"sram"`
    /// when a capacity is given and `"dram"` when it is not.
    pub kind: Option<String>,
    /// Capacity in bytes. `None` means unbounded, which makes the level DRAM.
    pub capacity_bytes: Option<u64>,
    /// The operands the level serves: `"W"`, `"I"`, `"O"` (long names
    /// `weight` / `input` / `output` accepted on input).
    pub operands: Vec<String>,
    /// Read energy in pJ per byte; defaults from the kind when omitted.
    pub read_energy_pj_per_byte: Option<f64>,
    /// Write energy in pJ per byte; defaults from the kind when omitted.
    pub write_energy_pj_per_byte: Option<f64>,
    /// Read bandwidth in bytes per cycle; `Some(f64::INFINITY)` (JSON
    /// `null`) means unlimited, `None` defaults from the kind.
    pub read_bw_bytes_per_cycle: Option<f64>,
    /// Write bandwidth in bytes per cycle; same conventions as the read
    /// bandwidth.
    pub write_bw_bytes_per_cycle: Option<f64>,
}

/// The canonical document name of an operand (`"W"`, `"I"`, `"O"`).
pub fn operand_name(op: Operand) -> &'static str {
    match op {
        Operand::Weight => "W",
        Operand::Input => "I",
        Operand::Output => "O",
    }
}

/// Parses an operand name. Accepts the canonical single letters plus the
/// long lower-case names.
pub fn parse_operand(name: &str) -> Option<Operand> {
    match name {
        "W" | "w" | "weight" | "weights" | "Weight" => Some(Operand::Weight),
        "I" | "i" | "input" | "inputs" | "Input" => Some(Operand::Input),
        "O" | "o" | "output" | "outputs" | "Output" => Some(Operand::Output),
        _ => None,
    }
}

/// Parses a loop-dimension name (`"K"`, `"C"`, `"OX"`, …; lower case
/// accepted).
pub fn parse_dim(name: &str) -> Option<Dim> {
    match name {
        "B" | "b" => Some(Dim::B),
        "K" | "k" => Some(Dim::K),
        "C" | "c" => Some(Dim::C),
        "OX" | "ox" => Some(Dim::OX),
        "OY" | "oy" => Some(Dim::OY),
        "FX" | "fx" => Some(Dim::FX),
        "FY" | "fy" => Some(Dim::FY),
        _ => None,
    }
}

impl LevelSpec {
    /// A fully explicit spec of an existing memory level (no field left to
    /// the kind defaults, so the document reloads bit-identically even if
    /// the default energy fit evolves).
    fn from_level(level: &MemoryLevel) -> Self {
        Self {
            name: level.name().to_string(),
            kind: None,
            capacity_bytes: level.capacity_bytes(),
            operands: level.operands().map(|o| operand_name(o).into()).collect(),
            read_energy_pj_per_byte: Some(level.read_energy_pj_per_byte()),
            write_energy_pj_per_byte: Some(level.write_energy_pj_per_byte()),
            read_bw_bytes_per_cycle: Some(level.read_bw_bytes_per_cycle()),
            write_bw_bytes_per_cycle: Some(level.write_bw_bytes_per_cycle()),
        }
    }
}

impl AcceleratorDoc {
    /// Exports an accelerator as a fully explicit document.
    ///
    /// Every energy and bandwidth is written out (nothing is left to the
    /// kind defaults), so the document loads back into an identical
    /// [`Accelerator`] — same [`Accelerator::fingerprint`] — and remains
    /// valid even if the default energy fit evolves.
    ///
    /// # Errors
    ///
    /// Returns [`AcceleratorDocError::Level`] if two levels share a name:
    /// validation errors reference levels by name, so names must be unique
    /// to be exportable.
    pub fn from_accelerator(acc: &Accelerator) -> Result<Self, AcceleratorDocError> {
        let mut seen = std::collections::BTreeSet::new();
        for level in acc.hierarchy().levels() {
            if !seen.insert(level.name()) {
                return Err(AcceleratorDocError::Level {
                    level: level.name().to_string(),
                    message: "duplicate level name: documents reference levels by name, \
                              so level names must be unique to export"
                        .to_string(),
                });
            }
        }
        let unroll = Dim::ALL
            .iter()
            .filter_map(|&dim| {
                let factor = acc.pe_array().unrolling().factor(dim);
                (factor > 1).then(|| (dim.to_string(), factor))
            })
            .collect();
        Ok(Self {
            format: Some(FORMAT.to_string()),
            name: acc.name().to_string(),
            pe_array: PeArraySpec {
                unroll,
                mac_energy_pj: Some(acc.pe_array().mac_energy_pj()),
            },
            levels: acc
                .hierarchy()
                .levels()
                .iter()
                .map(LevelSpec::from_level)
                .collect(),
        })
    }

    /// Renders the document as pretty-printed JSON.
    pub fn to_json_pretty(&self) -> String {
        self.to_value().to_json_pretty()
    }

    /// Renders the document as compact JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }
}

/// A finite bandwidth serializes as a number; the non-finite "unlimited"
/// convention serializes as JSON `null` (and parses back to
/// `f64::INFINITY`), keeping register-file levels exactly round-trippable.
fn bw_value(bw: f64) -> Value {
    if bw.is_finite() {
        Value::F64(bw)
    } else {
        Value::Null
    }
}

impl Serialize for LevelSpec {
    fn to_value(&self) -> Value {
        let mut fields = vec![("name".to_string(), Value::Str(self.name.clone()))];
        if let Some(kind) = &self.kind {
            fields.push(("kind".to_string(), Value::Str(kind.clone())));
        }
        fields.push((
            "capacity_bytes".to_string(),
            match self.capacity_bytes {
                Some(c) => Value::U64(c),
                None => Value::Null,
            },
        ));
        fields.push((
            "operands".to_string(),
            Value::Array(
                self.operands
                    .iter()
                    .map(|o| Value::Str(o.clone()))
                    .collect(),
            ),
        ));
        for (key, value) in [
            ("read_energy_pj_per_byte", self.read_energy_pj_per_byte),
            ("write_energy_pj_per_byte", self.write_energy_pj_per_byte),
        ] {
            if let Some(e) = value {
                fields.push((key.to_string(), Value::F64(e)));
            }
        }
        // A `None` bandwidth means "use the kind's default": like the energy
        // fields, the key must be *omitted* — writing null would flip the
        // meaning to "unlimited" on reload.
        for (key, value) in [
            ("read_bw_bytes_per_cycle", self.read_bw_bytes_per_cycle),
            ("write_bw_bytes_per_cycle", self.write_bw_bytes_per_cycle),
        ] {
            if let Some(bw) = value {
                fields.push((key.to_string(), bw_value(bw)));
            }
        }
        Value::Object(fields)
    }
}

impl Serialize for PeArraySpec {
    fn to_value(&self) -> Value {
        let unroll = Value::Object(
            self.unroll
                .iter()
                .map(|(dim, factor)| (dim.clone(), Value::U64(*factor)))
                .collect(),
        );
        let mut fields = vec![("unroll".to_string(), unroll)];
        if let Some(e) = self.mac_energy_pj {
            fields.push(("mac_energy_pj".to_string(), Value::F64(e)));
        }
        Value::Object(fields)
    }
}

impl Serialize for AcceleratorDoc {
    fn to_value(&self) -> Value {
        let mut fields = Vec::with_capacity(4);
        if let Some(format) = &self.format {
            fields.push(("format".to_string(), Value::Str(format.clone())));
        }
        fields.push(("name".to_string(), Value::Str(self.name.clone())));
        fields.push(("pe_array".to_string(), self.pe_array.to_value()));
        fields.push((
            "levels".to_string(),
            Value::Array(self.levels.iter().map(Serialize::to_value).collect()),
        ));
        Value::Object(fields)
    }
}

/// Exports an accelerator as pretty-printed accelerator JSON (the format of
/// the reference files under `accelerators/`).
///
/// # Errors
///
/// Returns [`AcceleratorDocError::Level`] if two levels share a name.
///
/// ```
/// use defines_arch::{schema, zoo};
///
/// let json = schema::to_json_pretty(&zoo::meta_proto_like_df()).unwrap();
/// let reloaded = defines_arch::loader::from_json_str(&json).unwrap();
/// assert_eq!(reloaded, zoo::meta_proto_like_df());
/// assert_eq!(
///     reloaded.fingerprint(),
///     zoo::meta_proto_like_df().fingerprint()
/// );
/// ```
pub fn to_json_pretty(acc: &Accelerator) -> Result<String, AcceleratorDocError> {
    Ok(AcceleratorDoc::from_accelerator(acc)?.to_json_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn operand_names_round_trip() {
        for op in Operand::ALL {
            assert_eq!(parse_operand(operand_name(op)), Some(op));
        }
        assert_eq!(parse_operand("weight"), Some(Operand::Weight));
        assert_eq!(parse_operand("X"), None);
    }

    #[test]
    fn dim_names_round_trip() {
        for dim in Dim::ALL {
            assert_eq!(parse_dim(&dim.to_string()), Some(dim));
            assert_eq!(parse_dim(&dim.to_string().to_lowercase()), Some(dim));
        }
        assert_eq!(parse_dim("KK"), None);
    }

    #[test]
    fn export_is_fully_explicit() {
        let doc = AcceleratorDoc::from_accelerator(&zoo::meta_proto_like()).unwrap();
        assert_eq!(doc.format.as_deref(), Some(FORMAT));
        assert_eq!(doc.name, "Meta-proto-like");
        assert_eq!(
            doc.pe_array.unroll,
            vec![
                ("K".to_string(), 32),
                ("C".to_string(), 2),
                ("OX".to_string(), 4),
                ("OY".to_string(), 4)
            ]
        );
        assert!(doc.pe_array.mac_energy_pj.is_some());
        // Every level carries explicit energies and bandwidths; the last is
        // the DRAM level with unbounded capacity.
        for level in &doc.levels {
            assert!(level.read_energy_pj_per_byte.is_some(), "{}", level.name);
            assert!(level.write_energy_pj_per_byte.is_some(), "{}", level.name);
            assert!(level.read_bw_bytes_per_cycle.is_some(), "{}", level.name);
            assert!(!level.operands.is_empty(), "{}", level.name);
        }
        assert_eq!(doc.levels.last().unwrap().capacity_bytes, None);
    }

    #[test]
    fn infinite_bandwidth_serializes_as_null() {
        // Register files use f64::INFINITY bandwidth; JSON has no infinity,
        // so the writer emits null and the loader reads null back as
        // unlimited. The fingerprint hashes the f64 bits, so this mapping
        // must be exact.
        let doc = AcceleratorDoc::from_accelerator(&zoo::meta_proto_like()).unwrap();
        let json = doc.to_json_pretty();
        assert!(json.contains("\"read_bw_bytes_per_cycle\": null"), "{json}");
    }

    #[test]
    fn non_explicit_documents_round_trip_through_reserialization() {
        // A document relying on kind defaults (no energies/bandwidths) must
        // survive parse → to_json → parse unchanged: an omitted bandwidth
        // means "kind default" and must stay omitted, never become the
        // null that means "unlimited".
        let json = r#"{
          "name": "defaults",
          "pe_array": {"unroll": {"K": 8, "C": 8}},
          "levels": [
            {"name": "W_reg", "kind": "register", "capacity_bytes": 1024, "operands": ["W"]},
            {"name": "LB", "capacity_bytes": 65536, "operands": ["W", "I", "O"]}
          ]
        }"#;
        let value = serde_json::from_str(json).unwrap();
        let doc = crate::loader::document_from_value(&value).unwrap();
        let direct = crate::loader::accelerator_from_doc(&doc).unwrap();
        let reserialized = crate::loader::from_json_str(&doc.to_json_pretty()).unwrap();
        assert_eq!(reserialized, direct);
        assert_eq!(reserialized.fingerprint(), direct.fingerprint());
        // The SRAM level kept its finite default bandwidth.
        let lb = reserialized.hierarchy().level_named("LB").unwrap();
        assert!(lb.read_bw_bytes_per_cycle().is_finite());
        // Neither level stated a bandwidth, so no bandwidth key is written.
        assert!(!doc.to_json_pretty().contains("bw_bytes_per_cycle"));
    }

    #[test]
    fn duplicate_level_names_are_rejected_on_export() {
        use crate::accelerator::AcceleratorBuilder;
        use crate::pe_array::SpatialUnrolling;

        let acc = AcceleratorBuilder::new("dup")
            .pe_array(SpatialUnrolling::from_pairs([(Dim::K, 8)]), 0.5)
            .add_level(MemoryLevel::sram("LB", 1024, Operand::ALL))
            .add_level(MemoryLevel::sram("LB", 2048, Operand::ALL))
            .build()
            .unwrap();
        let err = AcceleratorDoc::from_accelerator(&acc).unwrap_err();
        assert!(err.to_string().contains("level 'LB'"), "{err}");
    }
}
