//! Accelerator architecture model for the DeFiNES depth-first scheduling
//! cost model.
//!
//! An [`Accelerator`] is a [`PeArray`] (a spatially-unrolled MAC array) plus a
//! [`MemoryHierarchy`]: an ordered list of [`MemoryLevel`]s from the innermost
//! registers up to DRAM, where each level serves a subset of the three
//! [`Operand`]s (weights, inputs, outputs), has a capacity, per-access
//! energies and read/write bandwidths.
//!
//! The [`zoo`] module provides the ten architectures of Table I(a) of the
//! paper (five baselines — Meta-prototype, TPU, Edge TPU, Ascend, Tesla NPU —
//! and their manually constructed DF-friendly variants), all normalized to
//! 1024 MACs and at most 2 MB of global buffer, plus a DepFiN-like
//! architecture used for the validation experiment.
//!
//! SRAM access energies are produced by an analytical CACTI-like fit
//! ([`energy`]); see `DESIGN.md` for the substitution rationale.
//!
//! Accelerators are also *data*: the [`schema`] module defines a declarative
//! JSON document format ([`AcceleratorDoc`]) mirroring the workload frontend,
//! and the [`loader`] turns such documents into validated [`Accelerator`]s.
//! Round trips are exact — a file-loaded accelerator has the same
//! [`Accelerator::fingerprint`] as its in-memory twin, so it shares
//! mapping-cache entries with it. Reference exports of the whole zoo live
//! under `accelerators/` at the repository root.
//!
//! # Example
//!
//! ```
//! use defines_arch::zoo;
//! use defines_arch::Operand;
//!
//! let acc = zoo::meta_proto_like_df();
//! assert_eq!(acc.pe_array().total_macs(), 1024);
//! // The DF variant shares a 64 KB local buffer between inputs and outputs.
//! let lb = acc.hierarchy().level_named("LB_IO").unwrap();
//! assert!(lb.serves(Operand::Input) && lb.serves(Operand::Output));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod accelerator;
pub mod energy;
pub mod loader;
pub mod memory;
pub mod operand;
pub mod pe_array;
pub mod schema;
pub mod zoo;

pub use accelerator::{Accelerator, AcceleratorBuilder, ArchError};
pub use loader::AcceleratorDocError;
pub use memory::{MemoryHierarchy, MemoryLevel, MemoryLevelId};
pub use operand::Operand;
pub use pe_array::{PeArray, SpatialUnrolling};
pub use schema::AcceleratorDoc;
