//! Memory levels and the memory hierarchy.

use crate::operand::Operand;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Index of a memory level inside a [`MemoryHierarchy`].
///
/// Level `0` is the innermost (cheapest) level; the highest index is DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MemoryLevelId(pub usize);

impl fmt::Display for MemoryLevelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// One memory level: a register file, scratchpad SRAM or DRAM.
///
/// ```
/// use defines_arch::{MemoryLevel, Operand};
///
/// let lb = MemoryLevel::sram("LB_W", 64 * 1024, [Operand::Weight]);
/// assert!(lb.serves(Operand::Weight));
/// assert!(!lb.serves(Operand::Input));
/// assert!(lb.capacity_bytes().is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryLevel {
    name: String,
    /// `None` means effectively unbounded (DRAM).
    capacity_bytes: Option<u64>,
    read_energy_pj_per_byte: f64,
    write_energy_pj_per_byte: f64,
    read_bw_bytes_per_cycle: f64,
    write_bw_bytes_per_cycle: f64,
    operands: BTreeSet<Operand>,
}

impl MemoryLevel {
    /// Creates a fully-specified memory level.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        capacity_bytes: Option<u64>,
        read_energy_pj_per_byte: f64,
        write_energy_pj_per_byte: f64,
        read_bw_bytes_per_cycle: f64,
        write_bw_bytes_per_cycle: f64,
        operands: impl IntoIterator<Item = Operand>,
    ) -> Self {
        Self {
            name: name.into(),
            capacity_bytes,
            read_energy_pj_per_byte,
            write_energy_pj_per_byte,
            read_bw_bytes_per_cycle,
            write_bw_bytes_per_cycle,
            operands: operands.into_iter().collect(),
        }
    }

    /// Creates an on-chip SRAM level with CACTI-like default energy and
    /// bandwidth derived from its capacity (see [`crate::energy`]).
    pub fn sram(
        name: impl Into<String>,
        capacity_bytes: u64,
        operands: impl IntoIterator<Item = Operand>,
    ) -> Self {
        let e = crate::energy::sram_energy_pj_per_byte(capacity_bytes);
        let bw = crate::energy::sram_bytes_per_cycle(capacity_bytes);
        Self::new(name, Some(capacity_bytes), e, e, bw, bw, operands)
    }

    /// Creates a register-file level with the given total capacity.
    pub fn register(
        name: impl Into<String>,
        capacity_bytes: u64,
        operands: impl IntoIterator<Item = Operand>,
    ) -> Self {
        let e = crate::energy::REGISTER_ENERGY_PJ_PER_BYTE;
        // Register files are wide enough never to bottleneck the PE array.
        Self::new(
            name,
            Some(capacity_bytes),
            e,
            e,
            f64::INFINITY,
            f64::INFINITY,
            operands,
        )
    }

    /// Creates the DRAM level (unbounded capacity, serves every operand).
    pub fn dram() -> Self {
        Self::new(
            "DRAM",
            None,
            crate::energy::DRAM_ENERGY_PJ_PER_BYTE,
            crate::energy::DRAM_ENERGY_PJ_PER_BYTE,
            crate::energy::DRAM_BYTES_PER_CYCLE,
            crate::energy::DRAM_BYTES_PER_CYCLE,
            Operand::ALL,
        )
    }

    /// The level's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in bytes, or `None` for unbounded (DRAM).
    pub fn capacity_bytes(&self) -> Option<u64> {
        self.capacity_bytes
    }

    /// Whether a data set of `bytes` fits in this level.
    pub fn fits(&self, bytes: u64) -> bool {
        match self.capacity_bytes {
            None => true,
            Some(c) => bytes <= c,
        }
    }

    /// Read energy in pJ per byte.
    pub fn read_energy_pj_per_byte(&self) -> f64 {
        self.read_energy_pj_per_byte
    }

    /// Write energy in pJ per byte.
    pub fn write_energy_pj_per_byte(&self) -> f64 {
        self.write_energy_pj_per_byte
    }

    /// Read bandwidth in bytes per cycle.
    pub fn read_bw_bytes_per_cycle(&self) -> f64 {
        self.read_bw_bytes_per_cycle
    }

    /// Write bandwidth in bytes per cycle.
    pub fn write_bw_bytes_per_cycle(&self) -> f64 {
        self.write_bw_bytes_per_cycle
    }

    /// Whether the level is DRAM (unbounded off-chip memory).
    pub fn is_dram(&self) -> bool {
        self.capacity_bytes.is_none()
    }

    /// Whether this level stores the given operand.
    pub fn serves(&self, operand: Operand) -> bool {
        self.operands.contains(&operand)
    }

    /// The operands served by this level.
    pub fn operands(&self) -> impl Iterator<Item = Operand> + '_ {
        self.operands.iter().copied()
    }

    /// Number of operands sharing this level.
    pub fn shared_by(&self) -> usize {
        self.operands.len()
    }
}

/// An ordered memory hierarchy, from innermost registers (index 0) to DRAM
/// (last index).
///
/// ```
/// use defines_arch::{MemoryHierarchy, MemoryLevel, Operand};
///
/// let h = MemoryHierarchy::new(vec![
///     MemoryLevel::register("W_reg", 1024, [Operand::Weight]),
///     MemoryLevel::sram("LB", 64 * 1024, Operand::ALL),
///     MemoryLevel::dram(),
/// ]).unwrap();
/// assert_eq!(h.len(), 3);
/// assert_eq!(h.levels_for(Operand::Input).count(), 2);
/// assert!(h.level(h.dram_id()).is_dram());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryHierarchy {
    levels: Vec<MemoryLevel>,
}

/// Errors produced while building a [`MemoryHierarchy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyError {
    /// The hierarchy has no levels.
    Empty,
    /// The outermost level must be DRAM (unbounded).
    MissingDram,
    /// An operand is not served by any level.
    OperandNotServed(Operand),
    /// A bounded level appears above DRAM.
    BoundedAboveDram(String),
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyError::Empty => write!(f, "memory hierarchy has no levels"),
            HierarchyError::MissingDram => write!(f, "outermost memory level must be DRAM"),
            HierarchyError::OperandNotServed(o) => {
                write!(f, "operand {o} is not served by any memory level")
            }
            HierarchyError::BoundedAboveDram(n) => {
                write!(f, "level {n} appears after DRAM in the hierarchy")
            }
        }
    }
}

impl std::error::Error for HierarchyError {}

impl MemoryHierarchy {
    /// Builds a hierarchy from levels ordered innermost → outermost.
    ///
    /// # Errors
    ///
    /// Returns an error if the hierarchy is empty, does not end with DRAM,
    /// contains a level after DRAM, or leaves some operand unserved.
    pub fn new(levels: Vec<MemoryLevel>) -> Result<Self, HierarchyError> {
        if levels.is_empty() {
            return Err(HierarchyError::Empty);
        }
        let last = levels.last().expect("non-empty");
        if !last.is_dram() {
            return Err(HierarchyError::MissingDram);
        }
        for level in &levels[..levels.len() - 1] {
            if level.is_dram() {
                return Err(HierarchyError::BoundedAboveDram(level.name().to_string()));
            }
        }
        for op in Operand::ALL {
            if !levels.iter().any(|l| l.serves(op)) {
                return Err(HierarchyError::OperandNotServed(op));
            }
        }
        Ok(Self { levels })
    }

    /// Number of levels (including DRAM).
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the hierarchy has no levels. Always `false` for a constructed
    /// hierarchy; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// All levels, innermost first.
    pub fn levels(&self) -> &[MemoryLevel] {
        &self.levels
    }

    /// Access a level by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn level(&self, id: MemoryLevelId) -> &MemoryLevel {
        &self.levels[id.0]
    }

    /// The id of the DRAM level.
    pub fn dram_id(&self) -> MemoryLevelId {
        MemoryLevelId(self.levels.len() - 1)
    }

    /// Finds a level by name.
    pub fn level_named(&self, name: &str) -> Option<&MemoryLevel> {
        self.levels.iter().find(|l| l.name() == name)
    }

    /// Finds a level id by name.
    pub fn level_id_named(&self, name: &str) -> Option<MemoryLevelId> {
        self.levels
            .iter()
            .position(|l| l.name() == name)
            .map(MemoryLevelId)
    }

    /// Iterates over the levels (with ids) that serve a given operand,
    /// innermost first.
    pub fn levels_for(
        &self,
        operand: Operand,
    ) -> impl Iterator<Item = (MemoryLevelId, &MemoryLevel)> {
        self.levels
            .iter()
            .enumerate()
            .filter(move |(_, l)| l.serves(operand))
            .map(|(i, l)| (MemoryLevelId(i), l))
    }

    /// The innermost level serving an operand.
    pub fn innermost_for(&self, operand: Operand) -> MemoryLevelId {
        self.levels_for(operand)
            .next()
            .map(|(id, _)| id)
            .expect("hierarchy validation guarantees every operand is served")
    }

    /// The highest *on-chip* level serving an operand, or `None` when the
    /// operand's only memory is DRAM (e.g. weights on the TPU-like baseline).
    pub fn top_on_chip_for(&self, operand: Operand) -> Option<MemoryLevelId> {
        self.levels_for(operand)
            .filter(|(_, l)| !l.is_dram())
            .last()
            .map(|(id, _)| id)
    }

    /// The lowest level serving `operand` whose capacity share can hold
    /// `bytes` bytes, searching from `floor` upward (inclusive). Falls back to
    /// DRAM, which always fits.
    ///
    /// The *capacity share* of a level divides its capacity by the number of
    /// operands it serves; this mirrors DeFiNES' conservative treatment of
    /// shared memories when deciding whether data "fits" a level.
    pub fn lowest_fitting(
        &self,
        operand: Operand,
        bytes: u64,
        floor: MemoryLevelId,
    ) -> MemoryLevelId {
        for (id, level) in self.levels_for(operand) {
            if id < floor {
                continue;
            }
            let share = match level.capacity_bytes() {
                None => return id,
                Some(c) => c / level.shared_by() as u64,
            };
            if bytes <= share {
                return id;
            }
        }
        self.dram_id()
    }

    /// Total on-chip capacity in bytes (all levels except DRAM).
    pub fn total_on_chip_bytes(&self) -> u64 {
        self.levels.iter().filter_map(|l| l.capacity_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> MemoryHierarchy {
        MemoryHierarchy::new(vec![
            MemoryLevel::register("reg_w", 1024, [Operand::Weight]),
            MemoryLevel::register("reg_o", 2048, [Operand::Output]),
            MemoryLevel::sram("LB_W", 64 * 1024, [Operand::Weight]),
            MemoryLevel::sram("LB_IO", 64 * 1024, [Operand::Input, Operand::Output]),
            MemoryLevel::sram("GB", 2 * 1024 * 1024, Operand::ALL),
            MemoryLevel::dram(),
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_lookup() {
        let h = simple();
        assert_eq!(h.len(), 6);
        assert_eq!(h.dram_id(), MemoryLevelId(5));
        assert!(h.level_named("LB_W").is_some());
        assert!(h.level_named("nope").is_none());
        assert_eq!(h.level_id_named("GB"), Some(MemoryLevelId(4)));
    }

    #[test]
    fn levels_for_operand_ordering() {
        let h = simple();
        let w: Vec<_> = h.levels_for(Operand::Weight).map(|(id, _)| id.0).collect();
        assert_eq!(w, vec![0, 2, 4, 5]);
        assert_eq!(h.innermost_for(Operand::Input).0, 3);
        assert_eq!(h.top_on_chip_for(Operand::Output), Some(MemoryLevelId(4)));
    }

    #[test]
    fn lowest_fitting_respects_share_and_floor() {
        let h = simple();
        // 40 KB of inputs: LB_IO is shared by I and O so its share is 32 KB;
        // the data lands in the GB instead.
        let id = h.lowest_fitting(Operand::Input, 40 * 1024, MemoryLevelId(0));
        assert_eq!(h.level(id).name(), "GB");
        // 16 KB fits the LB_IO share.
        let id = h.lowest_fitting(Operand::Input, 16 * 1024, MemoryLevelId(0));
        assert_eq!(h.level(id).name(), "LB_IO");
        // With a floor above LB_IO the same data is pushed to the GB.
        let id = h.lowest_fitting(Operand::Input, 16 * 1024, MemoryLevelId(4));
        assert_eq!(h.level(id).name(), "GB");
        // Huge data always ends up in DRAM.
        let id = h.lowest_fitting(Operand::Input, u64::MAX / 4, MemoryLevelId(0));
        assert!(h.level(id).is_dram());
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            MemoryHierarchy::new(vec![]).unwrap_err(),
            HierarchyError::Empty
        );
        let no_dram = MemoryHierarchy::new(vec![MemoryLevel::sram("LB", 1024, Operand::ALL)]);
        assert_eq!(no_dram.unwrap_err(), HierarchyError::MissingDram);
        let missing_op = MemoryHierarchy::new(vec![
            MemoryLevel::sram("LB", 1024, [Operand::Weight]),
            MemoryLevel::new(
                "DRAM",
                None,
                1.0,
                1.0,
                8.0,
                8.0,
                [Operand::Weight, Operand::Input],
            ),
        ]);
        assert_eq!(
            missing_op.unwrap_err(),
            HierarchyError::OperandNotServed(Operand::Output)
        );
        let dram_in_middle = MemoryHierarchy::new(vec![MemoryLevel::dram(), MemoryLevel::dram()]);
        assert!(matches!(
            dram_in_middle.unwrap_err(),
            HierarchyError::BoundedAboveDram(_)
        ));
    }

    #[test]
    fn fits_and_capacity() {
        let lb = MemoryLevel::sram("LB", 1000, [Operand::Input]);
        assert!(lb.fits(1000));
        assert!(!lb.fits(1001));
        assert!(MemoryLevel::dram().fits(u64::MAX));
        let h = simple();
        assert_eq!(
            h.total_on_chip_bytes(),
            1024 + 2048 + 64 * 1024 + 64 * 1024 + 2 * 1024 * 1024
        );
    }
}
