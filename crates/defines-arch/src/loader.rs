//! JSON accelerator loader: parses an [`AcceleratorDoc`] and turns it into a
//! validated [`Accelerator`], applying per-kind defaults to omitted fields.
//!
//! # Defaults
//!
//! Levels are processed in document order (innermost first). Each level's
//! `kind` — `"sram"`, `"register"` or `"dram"` — selects the defaults applied
//! to omitted energies and bandwidths:
//!
//! * `"sram"` (the default whenever a `capacity_bytes` is given) — the
//!   CACTI-like fit of [`crate::energy`]: energy from
//!   [`sram_energy_pj_per_byte`](crate::energy::sram_energy_pj_per_byte),
//!   bandwidth from
//!   [`sram_bytes_per_cycle`](crate::energy::sram_bytes_per_cycle).
//! * `"register"` — [`REGISTER_ENERGY_PJ_PER_BYTE`] and unlimited bandwidth
//!   (register files are wide enough never to bottleneck the PE array).
//! * `"dram"` (the default when `capacity_bytes` is absent or `null`) —
//!   [`DRAM_ENERGY_PJ_PER_BYTE`] and [`DRAM_BYTES_PER_CYCLE`], unbounded
//!   capacity.
//!
//! A bandwidth given as JSON `null` means *unlimited* (internally
//! `f64::INFINITY`); omitting the key means *use the kind's default*. The
//! outermost DRAM level may be omitted entirely — the default DRAM is
//! appended automatically, mirroring [`AcceleratorBuilder::build`]. The
//! per-MAC energy defaults to [`MAC_ENERGY_PJ`](crate::energy::MAC_ENERGY_PJ).
//!
//! # Validation
//!
//! Every error names the offending level or field: unknown operand links,
//! unknown unrolling dimensions, zero unrolling factors (a zero-size PE
//! array), zero capacities, negative energies, missing memory levels,
//! operands served by no level, and typo'd keys are all rejected.
//!
//! # Bring your own hardware
//!
//! ```
//! let json = r#"{
//!   "name": "my-edge-npu",
//!   "pe_array": {"unroll": {"K": 16, "C": 8, "OX": 4}},
//!   "levels": [
//!     {"name": "LB_W",  "capacity_bytes": 65536,   "operands": ["W"]},
//!     {"name": "LB_IO", "capacity_bytes": 65536,   "operands": ["I", "O"]},
//!     {"name": "GB",    "capacity_bytes": 2097152, "operands": ["W", "I", "O"]}
//!   ]
//! }"#;
//!
//! let acc = defines_arch::loader::from_json_str(json).unwrap();
//! assert_eq!(acc.pe_array().total_macs(), 512);
//! // The DRAM level was appended automatically; energies and bandwidths
//! // default to the CACTI-like fit.
//! assert_eq!(acc.hierarchy().len(), 4);
//! assert!(acc.hierarchy().levels().last().unwrap().is_dram());
//! ```

use crate::accelerator::{Accelerator, AcceleratorBuilder, ArchError};
use crate::energy::{DRAM_BYTES_PER_CYCLE, DRAM_ENERGY_PJ_PER_BYTE, REGISTER_ENERGY_PJ_PER_BYTE};
use crate::memory::MemoryLevel;
use crate::pe_array::SpatialUnrolling;
use crate::schema::{parse_dim, parse_operand, AcceleratorDoc, LevelSpec, PeArraySpec, FORMAT};
use serde::Value;
use std::fmt;
use std::path::Path;

/// Errors produced while loading an accelerator document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcceleratorDocError {
    /// The file could not be read.
    Io {
        /// The path that failed.
        path: String,
        /// The OS error message.
        message: String,
    },
    /// The text is not valid JSON.
    Json(String),
    /// The JSON is valid but the document structure is not (wrong top-level
    /// shape, missing `name`/`pe_array`/`levels`, invalid PE array,
    /// unsupported `format` tag, hierarchy-wide problems, …).
    Document(String),
    /// A specific memory level is invalid; the message explains why.
    Level {
        /// Name of the offending level.
        level: String,
        /// What is wrong with it.
        message: String,
    },
}

impl fmt::Display for AcceleratorDocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcceleratorDocError::Io { path, message } => {
                write!(f, "cannot read accelerator file '{path}': {message}")
            }
            AcceleratorDocError::Json(message) => {
                write!(f, "invalid accelerator JSON: {message}")
            }
            AcceleratorDocError::Document(message) => {
                write!(f, "invalid accelerator document: {message}")
            }
            AcceleratorDocError::Level { level, message } => {
                write!(f, "level '{level}': {message}")
            }
        }
    }
}

impl std::error::Error for AcceleratorDocError {}

impl AcceleratorDocError {
    fn level(level: &str, message: impl Into<String>) -> Self {
        AcceleratorDocError::Level {
            level: level.to_string(),
            message: message.into(),
        }
    }
}

/// Loads an accelerator from JSON text.
///
/// # Errors
///
/// Returns [`AcceleratorDocError::Json`] for malformed JSON,
/// [`AcceleratorDocError::Document`] for structural problems and
/// [`AcceleratorDocError::Level`] (naming the level) for per-level problems.
pub fn from_json_str(json: &str) -> Result<Accelerator, AcceleratorDocError> {
    let value = serde_json::from_str(json).map_err(|e| AcceleratorDocError::Json(e.to_string()))?;
    let doc = document_from_value(&value)?;
    accelerator_from_doc(&doc)
}

/// Loads an accelerator from a JSON file.
///
/// # Errors
///
/// Returns [`AcceleratorDocError::Io`] when the file cannot be read,
/// otherwise the same errors as [`from_json_str`].
pub fn from_json_file(path: impl AsRef<Path>) -> Result<Accelerator, AcceleratorDocError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| AcceleratorDocError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    from_json_str(&text)
}

// ---------------------------------------------------------------------------
// JSON value -> AcceleratorDoc
// ---------------------------------------------------------------------------

/// The keys a level object may carry; anything else is a typo worth
/// rejecting.
const LEVEL_KEYS: [&str; 8] = [
    "name",
    "kind",
    "capacity_bytes",
    "operands",
    "read_energy_pj_per_byte",
    "write_energy_pj_per_byte",
    "read_bw_bytes_per_cycle",
    "write_bw_bytes_per_cycle",
];

/// Extracts an [`AcceleratorDoc`] from a parsed JSON value.
///
/// # Errors
///
/// Returns [`AcceleratorDocError::Document`] or
/// [`AcceleratorDocError::Level`] with a message naming the offending field.
pub fn document_from_value(value: &Value) -> Result<AcceleratorDoc, AcceleratorDocError> {
    let entries = value.as_object().ok_or_else(|| {
        AcceleratorDocError::Document(format!(
            "expected a JSON object at the top level, found {}",
            value.type_name()
        ))
    })?;
    for (key, _) in entries {
        if !matches!(key.as_str(), "format" | "name" | "pe_array" | "levels") {
            return Err(AcceleratorDocError::Document(format!(
                "unknown top-level key '{key}' (expected format, name, pe_array, levels)"
            )));
        }
    }

    let format = match value.get("format") {
        None => None,
        Some(v) if v.is_null() => None,
        Some(v) => {
            let tag = v.as_str().ok_or_else(|| {
                AcceleratorDocError::Document("'format' must be a string".to_string())
            })?;
            if tag != FORMAT {
                return Err(AcceleratorDocError::Document(format!(
                    "unsupported format tag '{tag}' (this loader reads '{FORMAT}')"
                )));
            }
            Some(tag.to_string())
        }
    };

    let name = value
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| AcceleratorDocError::Document("missing or non-string 'name'".to_string()))?
        .to_string();

    let pe_value = value
        .get("pe_array")
        .ok_or_else(|| AcceleratorDocError::Document("missing 'pe_array' object".to_string()))?;
    let pe_array = pe_array_from_value(pe_value)?;

    let levels_value = value.get("levels").ok_or_else(|| {
        AcceleratorDocError::Document(
            "missing 'levels' array (an accelerator needs at least one memory level)".to_string(),
        )
    })?;
    let level_values = levels_value.as_array().ok_or_else(|| {
        AcceleratorDocError::Document(format!(
            "'levels' must be an array, found {}",
            levels_value.type_name()
        ))
    })?;
    let mut levels = Vec::with_capacity(level_values.len());
    for (index, lv) in level_values.iter().enumerate() {
        levels.push(level_spec_from_value(lv, index)?);
    }

    Ok(AcceleratorDoc {
        format,
        name,
        pe_array,
        levels,
    })
}

fn pe_array_from_value(value: &Value) -> Result<PeArraySpec, AcceleratorDocError> {
    let entries = value.as_object().ok_or_else(|| {
        AcceleratorDocError::Document(format!(
            "'pe_array' must be an object, found {}",
            value.type_name()
        ))
    })?;
    for (key, _) in entries {
        if !matches!(key.as_str(), "unroll" | "mac_energy_pj") {
            return Err(AcceleratorDocError::Document(format!(
                "pe_array: unknown key '{key}' (expected unroll, mac_energy_pj)"
            )));
        }
    }
    let unroll_value = value.get("unroll").ok_or_else(|| {
        AcceleratorDocError::Document("pe_array: missing 'unroll' object".to_string())
    })?;
    let unroll_entries = unroll_value.as_object().ok_or_else(|| {
        AcceleratorDocError::Document(format!(
            "pe_array: 'unroll' must be an object of dimension -> factor, found {}",
            unroll_value.type_name()
        ))
    })?;
    let mut unroll = Vec::with_capacity(unroll_entries.len());
    for (dim, factor) in unroll_entries {
        if parse_dim(dim).is_none() {
            return Err(AcceleratorDocError::Document(format!(
                "pe_array: unknown unrolling dimension '{dim}' \
                 (expected B, K, C, OX, OY, FX, FY)"
            )));
        }
        let factor = factor.as_u64().ok_or_else(|| {
            AcceleratorDocError::Document(format!(
                "pe_array: unrolling factor for '{dim}' must be a non-negative integer, \
                 found {}",
                factor.type_name()
            ))
        })?;
        unroll.push((dim.clone(), factor));
    }
    let mac_energy_pj = opt_f64(value, "mac_energy_pj")
        .map_err(|m| AcceleratorDocError::Document(format!("pe_array: {m}")))?;
    Ok(PeArraySpec {
        unroll,
        mac_energy_pj,
    })
}

fn level_spec_from_value(value: &Value, index: usize) -> Result<LevelSpec, AcceleratorDocError> {
    let anon = format!("#{index}");
    let entries = value.as_object().ok_or_else(|| {
        AcceleratorDocError::level(
            &anon,
            format!(
                "each level must be a JSON object, found {}",
                value.type_name()
            ),
        )
    })?;
    let name = value
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| AcceleratorDocError::level(&anon, "missing or non-string 'name'"))?
        .to_string();

    for (key, _) in entries {
        if !LEVEL_KEYS.contains(&key.as_str()) {
            return Err(AcceleratorDocError::level(
                &name,
                format!(
                    "unknown key '{key}' (expected one of: {})",
                    LEVEL_KEYS.join(", ")
                ),
            ));
        }
    }

    let kind = match value.get("kind") {
        None => None,
        Some(v) if v.is_null() => None,
        Some(v) => Some(
            v.as_str()
                .ok_or_else(|| AcceleratorDocError::level(&name, "'kind' must be a string"))?
                .to_string(),
        ),
    };

    let capacity_bytes = match value.get("capacity_bytes") {
        None => None,
        Some(v) if v.is_null() => None,
        Some(v) => Some(v.as_u64().ok_or_else(|| {
            AcceleratorDocError::level(
                &name,
                format!(
                    "'capacity_bytes' must be a non-negative integer or null for \
                     unbounded (DRAM), found {}",
                    v.type_name()
                ),
            )
        })?),
    };

    let operands_value = value.get("operands").ok_or_else(|| {
        AcceleratorDocError::level(&name, "missing 'operands' array (expected W, I, O entries)")
    })?;
    let operand_items = operands_value.as_array().ok_or_else(|| {
        AcceleratorDocError::level(&name, "'operands' must be an array of operand names")
    })?;
    let mut operands = Vec::with_capacity(operand_items.len());
    for item in operand_items {
        let op = item.as_str().ok_or_else(|| {
            AcceleratorDocError::level(&name, "'operands' entries must be strings")
        })?;
        operands.push(op.to_string());
    }

    let energy = |key: &str| -> Result<Option<f64>, AcceleratorDocError> {
        opt_f64(value, key).map_err(|m| AcceleratorDocError::level(&name, m))
    };
    let bandwidth = |key: &str| -> Result<Option<f64>, AcceleratorDocError> {
        // JSON null means unlimited; a missing key means the kind default.
        match value.get(key) {
            None => Ok(None),
            Some(v) if v.is_null() => Ok(Some(f64::INFINITY)),
            Some(v) => v.as_f64().map(Some).ok_or_else(|| {
                AcceleratorDocError::level(
                    &name,
                    format!(
                        "'{key}' must be a number or null for unlimited, found {}",
                        v.type_name()
                    ),
                )
            }),
        }
    };

    Ok(LevelSpec {
        read_energy_pj_per_byte: energy("read_energy_pj_per_byte")?,
        write_energy_pj_per_byte: energy("write_energy_pj_per_byte")?,
        read_bw_bytes_per_cycle: bandwidth("read_bw_bytes_per_cycle")?,
        write_bw_bytes_per_cycle: bandwidth("write_bw_bytes_per_cycle")?,
        name,
        kind,
        capacity_bytes,
        operands,
    })
}

fn opt_f64(value: &Value, key: &str) -> Result<Option<f64>, String> {
    match value.get(key) {
        None => Ok(None),
        Some(v) if v.is_null() => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("'{key}' must be a number, found {}", v.type_name())),
    }
}

// ---------------------------------------------------------------------------
// AcceleratorDoc -> Accelerator (defaults + validation)
// ---------------------------------------------------------------------------

/// The level kinds a document may name, selecting defaults for omitted
/// energies and bandwidths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LevelKind {
    Sram,
    Register,
    Dram,
}

/// Builds a validated [`Accelerator`] from a document, applying the
/// module-level defaults.
///
/// # Errors
///
/// Returns [`AcceleratorDocError::Document`] for PE-array and hierarchy-wide
/// problems and [`AcceleratorDocError::Level`] — naming the level — for
/// everything else.
pub fn accelerator_from_doc(doc: &AcceleratorDoc) -> Result<Accelerator, AcceleratorDocError> {
    let unrolling = unrolling_from_spec(&doc.pe_array)?;
    let mac_energy = match doc.pe_array.mac_energy_pj {
        None => crate::energy::MAC_ENERGY_PJ,
        Some(e) if e.is_finite() && e > 0.0 => e,
        Some(e) => {
            return Err(AcceleratorDocError::Document(format!(
                "pe_array: 'mac_energy_pj' must be a positive finite number, got {e}"
            )));
        }
    };

    if doc.levels.is_empty() {
        return Err(AcceleratorDocError::Document(format!(
            "accelerator '{}' has no memory levels (at least one on-chip level \
             is required; DRAM is appended automatically)",
            doc.name
        )));
    }

    let mut builder = AcceleratorBuilder::new(doc.name.clone()).pe_array(unrolling, mac_energy);
    let mut seen = std::collections::BTreeSet::new();
    for spec in &doc.levels {
        if !seen.insert(spec.name.as_str()) {
            return Err(AcceleratorDocError::level(
                &spec.name,
                "duplicate level name",
            ));
        }
        builder = builder.add_level(level_from_spec(spec)?);
    }

    builder.build().map_err(|e| match e {
        // Both cases name the structural problem; the PE array was set above,
        // so MissingPeArray is unreachable.
        ArchError::Hierarchy(h) => AcceleratorDocError::Document(h.to_string()),
        ArchError::MissingPeArray => AcceleratorDocError::Document(e.to_string()),
    })
}

fn unrolling_from_spec(spec: &PeArraySpec) -> Result<SpatialUnrolling, AcceleratorDocError> {
    if spec.unroll.is_empty() {
        return Err(AcceleratorDocError::Document(
            "pe_array: 'unroll' is empty — a zero-size PE array cannot compute anything \
             (give at least one dimension a factor > 1)"
                .to_string(),
        ));
    }
    let mut pairs = Vec::with_capacity(spec.unroll.len());
    let mut seen = std::collections::BTreeSet::new();
    for (dim_name, factor) in &spec.unroll {
        let dim = parse_dim(dim_name).ok_or_else(|| {
            AcceleratorDocError::Document(format!(
                "pe_array: unknown unrolling dimension '{dim_name}' \
                 (expected B, K, C, OX, OY, FX, FY)"
            ))
        })?;
        // JSON keys "K" and "k" are distinct, so duplicate-dimension entries
        // can reach here; silently letting the last one win would mis-size
        // the PE array.
        if !seen.insert(dim) {
            return Err(AcceleratorDocError::Document(format!(
                "pe_array: unrolling dimension '{dim_name}' is given more than once"
            )));
        }
        if *factor == 0 {
            return Err(AcceleratorDocError::Document(format!(
                "pe_array: unrolling factor for '{dim_name}' is 0 — a zero-size PE array \
                 cannot compute anything"
            )));
        }
        pairs.push((dim, *factor));
    }
    let unrolling = SpatialUnrolling::from_pairs(pairs);
    if unrolling.total() <= 1 {
        return Err(AcceleratorDocError::Document(
            "pe_array: all unrolling factors are 1 — a zero-size PE array cannot \
             compute anything (give at least one dimension a factor > 1)"
                .to_string(),
        ));
    }
    Ok(unrolling)
}

fn level_from_spec(spec: &LevelSpec) -> Result<MemoryLevel, AcceleratorDocError> {
    let name = spec.name.as_str();

    let kind = match spec.kind.as_deref() {
        None => {
            if spec.capacity_bytes.is_some() {
                LevelKind::Sram
            } else {
                LevelKind::Dram
            }
        }
        Some("sram") => LevelKind::Sram,
        Some("register") => LevelKind::Register,
        Some("dram") => LevelKind::Dram,
        Some(other) => {
            return Err(AcceleratorDocError::level(
                name,
                format!("unknown kind '{other}' (expected sram, register, dram)"),
            ));
        }
    };

    let capacity = match (kind, spec.capacity_bytes) {
        (LevelKind::Dram, None) => None,
        (LevelKind::Dram, Some(c)) => {
            return Err(AcceleratorDocError::level(
                name,
                format!(
                    "dram levels are unbounded: remove 'capacity_bytes' ({c}) or \
                     change the kind"
                ),
            ));
        }
        (LevelKind::Sram | LevelKind::Register, None) => {
            return Err(AcceleratorDocError::level(
                name,
                "missing 'capacity_bytes' (only dram levels are unbounded)",
            ));
        }
        (LevelKind::Sram | LevelKind::Register, Some(0)) => {
            return Err(AcceleratorDocError::level(
                name,
                "'capacity_bytes' must be positive",
            ));
        }
        (LevelKind::Sram | LevelKind::Register, Some(c)) => Some(c),
    };

    if spec.operands.is_empty() {
        return Err(AcceleratorDocError::level(
            name,
            "serves no operands (list at least one of W, I, O)",
        ));
    }
    let mut operands = Vec::with_capacity(spec.operands.len());
    for op_name in &spec.operands {
        let op = parse_operand(op_name).ok_or_else(|| {
            AcceleratorDocError::level(
                name,
                format!("unknown operand '{op_name}' (expected W, I, O)"),
            )
        })?;
        operands.push(op);
    }

    let (default_energy, default_bw) = match kind {
        LevelKind::Sram => {
            let c = capacity.expect("sram capacity checked above");
            (
                crate::energy::sram_energy_pj_per_byte(c),
                crate::energy::sram_bytes_per_cycle(c),
            )
        }
        LevelKind::Register => (REGISTER_ENERGY_PJ_PER_BYTE, f64::INFINITY),
        LevelKind::Dram => (DRAM_ENERGY_PJ_PER_BYTE, DRAM_BYTES_PER_CYCLE),
    };

    let energy = |explicit: Option<f64>, key: &str| -> Result<f64, AcceleratorDocError> {
        match explicit {
            None => Ok(default_energy),
            Some(e) if e.is_finite() && e >= 0.0 => Ok(e),
            Some(e) => Err(AcceleratorDocError::level(
                name,
                format!("'{key}' must be a non-negative finite number, got {e}"),
            )),
        }
    };
    let bandwidth = |explicit: Option<f64>, key: &str| -> Result<f64, AcceleratorDocError> {
        match explicit {
            None => Ok(default_bw),
            Some(bw) if bw > 0.0 => Ok(bw), // f64::INFINITY (JSON null) is legal
            Some(bw) => Err(AcceleratorDocError::level(
                name,
                format!("'{key}' must be positive (or null for unlimited), got {bw}"),
            )),
        }
    };

    Ok(MemoryLevel::new(
        name,
        capacity,
        energy(spec.read_energy_pj_per_byte, "read_energy_pj_per_byte")?,
        energy(spec.write_energy_pj_per_byte, "write_energy_pj_per_byte")?,
        bandwidth(spec.read_bw_bytes_per_cycle, "read_bw_bytes_per_cycle")?,
        bandwidth(spec.write_bw_bytes_per_cycle, "write_bw_bytes_per_cycle")?,
        operands,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema;
    use crate::zoo;

    /// All eleven zoo accelerators (Table I(a) plus DepFiN-like).
    fn zoo_accelerators() -> Vec<Accelerator> {
        let mut accs = zoo::all_case_study_architectures();
        accs.push(zoo::depfin_like());
        accs
    }

    #[test]
    fn zoo_accelerators_round_trip_through_json() {
        for acc in zoo_accelerators() {
            let json = schema::to_json_pretty(&acc).unwrap();
            let reloaded = from_json_str(&json).unwrap_or_else(|e| panic!("{}: {e}", acc.name()));
            assert_eq!(reloaded, acc, "{} must round-trip", acc.name());
            assert_eq!(
                reloaded.fingerprint(),
                acc.fingerprint(),
                "{} fingerprint must be bit-identical after the round trip",
                acc.name()
            );
        }
    }

    #[test]
    fn defaults_fill_energies_and_bandwidths() {
        let json = r#"{
          "name": "defaults",
          "pe_array": {"unroll": {"K": 8, "C": 8}},
          "levels": [
            {"name": "W_reg", "kind": "register", "capacity_bytes": 1024, "operands": ["W"]},
            {"name": "LB", "capacity_bytes": 65536, "operands": ["W", "I", "O"]}
          ]
        }"#;
        let acc = from_json_str(json).unwrap();
        assert_eq!(acc.pe_array().total_macs(), 64);
        assert!(
            (acc.pe_array().mac_energy_pj() - crate::energy::MAC_ENERGY_PJ).abs() < 1e-12,
            "MAC energy defaults"
        );
        let reg = acc.hierarchy().level_named("W_reg").unwrap();
        assert_eq!(reg.read_energy_pj_per_byte(), REGISTER_ENERGY_PJ_PER_BYTE);
        assert!(reg.read_bw_bytes_per_cycle().is_infinite());
        let lb = acc.hierarchy().level_named("LB").unwrap();
        assert_eq!(
            lb.read_energy_pj_per_byte(),
            crate::energy::sram_energy_pj_per_byte(65536)
        );
        assert_eq!(
            lb.read_bw_bytes_per_cycle(),
            crate::energy::sram_bytes_per_cycle(65536)
        );
        // The DRAM level was appended automatically with DRAM defaults.
        let dram = acc.hierarchy().levels().last().unwrap();
        assert!(dram.is_dram());
        assert_eq!(dram.read_energy_pj_per_byte(), DRAM_ENERGY_PJ_PER_BYTE);
    }

    #[test]
    fn explicit_null_bandwidth_means_unlimited() {
        let json = r#"{
          "name": "x",
          "pe_array": {"unroll": {"K": 8}},
          "levels": [
            {"name": "LB", "capacity_bytes": 1024, "operands": ["W", "I", "O"],
             "read_bw_bytes_per_cycle": null, "write_bw_bytes_per_cycle": 16.0}
          ]
        }"#;
        let acc = from_json_str(json).unwrap();
        let lb = acc.hierarchy().level_named("LB").unwrap();
        assert!(lb.read_bw_bytes_per_cycle().is_infinite());
        assert_eq!(lb.write_bw_bytes_per_cycle(), 16.0);
    }

    #[test]
    fn unknown_operand_names_the_level_and_operand() {
        let json = r#"{
          "name": "x",
          "pe_array": {"unroll": {"K": 8}},
          "levels": [
            {"name": "LB_W", "capacity_bytes": 1024, "operands": ["W", "X"]}
          ]
        }"#;
        let err = from_json_str(json).unwrap_err();
        assert_eq!(
            err.to_string(),
            "level 'LB_W': unknown operand 'X' (expected W, I, O)"
        );
    }

    #[test]
    fn missing_memory_levels_are_rejected() {
        // No 'levels' key at all.
        let err = from_json_str(r#"{"name": "x", "pe_array": {"unroll": {"K": 8}}}"#).unwrap_err();
        assert!(err.to_string().contains("missing 'levels'"), "{err}");
        // An empty 'levels' array.
        let err = from_json_str(r#"{"name": "x", "pe_array": {"unroll": {"K": 8}}, "levels": []}"#)
            .unwrap_err();
        assert!(err.to_string().contains("has no memory levels"), "{err}");
    }

    #[test]
    fn zero_size_pe_arrays_are_rejected() {
        // Explicit zero factor.
        let err = from_json_str(
            r#"{"name": "x", "pe_array": {"unroll": {"K": 0}}, "levels": [
                {"name": "LB", "capacity_bytes": 1024, "operands": ["W", "I", "O"]}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("factor for 'K' is 0"), "{err}");
        // Empty unroll object.
        let err = from_json_str(
            r#"{"name": "x", "pe_array": {"unroll": {}}, "levels": [
                {"name": "LB", "capacity_bytes": 1024, "operands": ["W", "I", "O"]}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("'unroll' is empty"), "{err}");
        // All factors 1 degenerate to a single MAC, which the document format
        // treats as a zero-size array too.
        let err = from_json_str(
            r#"{"name": "x", "pe_array": {"unroll": {"K": 1}}, "levels": [
                {"name": "LB", "capacity_bytes": 1024, "operands": ["W", "I", "O"]}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("factors are 1"), "{err}");
    }

    #[test]
    fn typod_keys_are_rejected() {
        // Top level.
        let err = from_json_str(r#"{"name": "x", "pe_arra": {"unroll": {"K": 8}}, "levels": []}"#)
            .unwrap_err();
        assert!(
            err.to_string().contains("unknown top-level key 'pe_arra'"),
            "{err}"
        );
        // Per level, naming the level.
        let err = from_json_str(
            r#"{"name": "x", "pe_array": {"unroll": {"K": 8}}, "levels": [
                {"name": "LB", "capacity": 1024, "operands": ["W", "I", "O"]}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("level 'LB'"), "{err}");
        assert!(err.to_string().contains("unknown key 'capacity'"), "{err}");
        // Inside pe_array.
        let err =
            from_json_str(r#"{"name": "x", "pe_array": {"unrolling": {"K": 8}}, "levels": []}"#)
                .unwrap_err();
        assert!(
            err.to_string()
                .contains("pe_array: unknown key 'unrolling'"),
            "{err}"
        );
    }

    #[test]
    fn unknown_unroll_dimension_is_rejected() {
        let err = from_json_str(
            r#"{"name": "x", "pe_array": {"unroll": {"KK": 8}}, "levels": [
                {"name": "LB", "capacity_bytes": 1024, "operands": ["W", "I", "O"]}]}"#,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("unknown unrolling dimension 'KK'"),
            "{err}"
        );
    }

    #[test]
    fn duplicate_unroll_dimensions_are_rejected() {
        // "K" and "k" are distinct JSON keys that alias to the same loop
        // dimension; letting the last one win would silently shrink the PE
        // array from 16 to 8 MACs.
        let err = from_json_str(
            r#"{"name": "x", "pe_array": {"unroll": {"K": 16, "k": 8}}, "levels": [
                {"name": "LB", "capacity_bytes": 1024, "operands": ["W", "I", "O"]}]}"#,
        )
        .unwrap_err();
        assert!(
            err.to_string()
                .contains("unrolling dimension 'k' is given more than once"),
            "{err}"
        );
    }

    #[test]
    fn capacity_and_kind_consistency() {
        // Zero capacity.
        let err = from_json_str(
            r#"{"name": "x", "pe_array": {"unroll": {"K": 8}}, "levels": [
                {"name": "LB", "capacity_bytes": 0, "operands": ["W", "I", "O"]}]}"#,
        )
        .unwrap_err();
        assert_eq!(
            err.to_string(),
            "level 'LB': 'capacity_bytes' must be positive"
        );
        // A bounded dram.
        let err = from_json_str(
            r#"{"name": "x", "pe_array": {"unroll": {"K": 8}}, "levels": [
                {"name": "D", "kind": "dram", "capacity_bytes": 64, "operands": ["W", "I", "O"]}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("level 'D'"), "{err}");
        assert!(err.to_string().contains("unbounded"), "{err}");
        // An sram without capacity.
        let err = from_json_str(
            r#"{"name": "x", "pe_array": {"unroll": {"K": 8}}, "levels": [
                {"name": "LB", "kind": "sram", "operands": ["W", "I", "O"]}]}"#,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("missing 'capacity_bytes'"),
            "{err}"
        );
        // An unknown kind.
        let err = from_json_str(
            r#"{"name": "x", "pe_array": {"unroll": {"K": 8}}, "levels": [
                {"name": "LB", "kind": "flash", "capacity_bytes": 64, "operands": ["W"]}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown kind 'flash'"), "{err}");
    }

    #[test]
    fn hierarchy_problems_surface_as_document_errors() {
        // Inputs are never served on chip and the auto-appended DRAM serves
        // everything, so this *is* valid; but a mid-hierarchy DRAM is not.
        let err = from_json_str(
            r#"{"name": "x", "pe_array": {"unroll": {"K": 8}}, "levels": [
                {"name": "D", "kind": "dram", "operands": ["W", "I", "O"]},
                {"name": "LB", "capacity_bytes": 1024, "operands": ["W", "I", "O"]}]}"#,
        )
        .unwrap_err();
        assert!(matches!(err, AcceleratorDocError::Document(_)), "{err}");
        assert!(err.to_string().contains("after DRAM"), "{err}");
    }

    #[test]
    fn duplicate_level_names_are_rejected() {
        let err = from_json_str(
            r#"{"name": "x", "pe_array": {"unroll": {"K": 8}}, "levels": [
                {"name": "LB", "capacity_bytes": 1024, "operands": ["W"]},
                {"name": "LB", "capacity_bytes": 2048, "operands": ["I", "O"]}]}"#,
        )
        .unwrap_err();
        assert_eq!(err.to_string(), "level 'LB': duplicate level name");
    }

    #[test]
    fn empty_operands_and_structural_problems_are_rejected() {
        let err = from_json_str(
            r#"{"name": "x", "pe_array": {"unroll": {"K": 8}}, "levels": [
                {"name": "LB", "capacity_bytes": 1024, "operands": []}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("serves no operands"), "{err}");
        assert!(matches!(
            from_json_str("[1, 2]").unwrap_err(),
            AcceleratorDocError::Document(_)
        ));
        assert!(matches!(
            from_json_str("{nope").unwrap_err(),
            AcceleratorDocError::Json(_)
        ));
        let err = from_json_str(
            r#"{"format": "v999", "name": "x", "pe_array": {"unroll": {"K": 8}}, "levels": []}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("unsupported format tag"), "{err}");
        let err = from_json_file("missing-dir/nope.json").unwrap_err();
        assert!(matches!(err, AcceleratorDocError::Io { .. }), "{err}");
    }

    #[test]
    fn negative_energy_and_bandwidth_are_rejected() {
        let err = from_json_str(
            r#"{"name": "x", "pe_array": {"unroll": {"K": 8}}, "levels": [
                {"name": "LB", "capacity_bytes": 1024, "operands": ["W", "I", "O"],
                 "read_energy_pj_per_byte": -1.0}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("level 'LB'"), "{err}");
        assert!(err.to_string().contains("non-negative"), "{err}");
        let err = from_json_str(
            r#"{"name": "x", "pe_array": {"unroll": {"K": 8}}, "levels": [
                {"name": "LB", "capacity_bytes": 1024, "operands": ["W", "I", "O"],
                 "write_bw_bytes_per_cycle": 0.0}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("must be positive"), "{err}");
        let err = accelerator_from_doc(&AcceleratorDoc {
            format: None,
            name: "x".into(),
            pe_array: PeArraySpec {
                unroll: vec![("K".into(), 8)],
                mac_energy_pj: Some(-0.5),
            },
            levels: vec![LevelSpec {
                name: "LB".into(),
                kind: None,
                capacity_bytes: Some(1024),
                operands: vec!["W".into(), "I".into(), "O".into()],
                read_energy_pj_per_byte: None,
                write_energy_pj_per_byte: None,
                read_bw_bytes_per_cycle: None,
                write_bw_bytes_per_cycle: None,
            }],
        })
        .unwrap_err();
        assert!(err.to_string().contains("mac_energy_pj"), "{err}");
    }
}
