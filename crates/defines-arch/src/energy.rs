//! Analytical energy model for memories and MACs.
//!
//! The paper extracts SRAM access costs with CACTI 7 and scales the MAC,
//! register and DRAM costs with the factors reported by Interstellar \[37\].
//! CACTI is not available here, so this module substitutes an analytical fit
//! with the same qualitative behaviour: access energy grows roughly with the
//! square root of the macro capacity, registers are far cheaper than SRAM, and
//! DRAM is one to two orders of magnitude more expensive than on-chip SRAM.
//! Only *relative* costs matter for schedule ranking (see `DESIGN.md`).
//!
//! All energies are in picojoules per byte transferred unless stated otherwise.

/// Energy of one 8-bit MAC operation, in pJ.
pub const MAC_ENERGY_PJ: f64 = 0.1;

/// Energy per byte of a register-file access, in pJ.
pub const REGISTER_ENERGY_PJ_PER_BYTE: f64 = 0.02;

/// Energy per byte of a DRAM access, in pJ (LPDDR-class interface).
pub const DRAM_ENERGY_PJ_PER_BYTE: f64 = 100.0;

/// DRAM bandwidth in bytes per cycle. The paper fixes the DRAM interface to
/// 64 bit/cycle for all case studies to mimic the on-/off-chip bottleneck.
pub const DRAM_BYTES_PER_CYCLE: f64 = 8.0;

/// CACTI-like SRAM read/write energy fit, in pJ per byte, as a function of the
/// macro capacity in bytes.
///
/// The fit `0.1 + 0.15·sqrt(KB)` reproduces the usual CACTI trend: a 32 KB
/// scratchpad costs slightly under 1 pJ/B while a 2 MB global buffer costs
/// several pJ/B, an order of magnitude below DRAM.
///
/// ```
/// use defines_arch::energy::sram_energy_pj_per_byte;
/// let lb = sram_energy_pj_per_byte(32 * 1024);
/// let gb = sram_energy_pj_per_byte(2 * 1024 * 1024);
/// assert!(lb < gb);
/// assert!(gb < defines_arch::energy::DRAM_ENERGY_PJ_PER_BYTE);
/// ```
pub fn sram_energy_pj_per_byte(capacity_bytes: u64) -> f64 {
    let kb = capacity_bytes as f64 / 1024.0;
    0.1 + 0.15 * kb.max(0.25).sqrt()
}

/// Default on-chip SRAM bandwidth in bytes per cycle for a macro of the given
/// capacity.
///
/// The paper sizes on-chip banking/bandwidth "such that the PE array can get
/// enough data to work at its full speed for ideal workloads"; we model that
/// as generous bandwidths that grow with the macro size class: local buffers
/// provide 32 B/cycle, global buffers 64 B/cycle.
pub fn sram_bytes_per_cycle(capacity_bytes: u64) -> f64 {
    if capacity_bytes <= 256 * 1024 {
        32.0
    } else {
        64.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_monotone_in_capacity() {
        let sizes = [
            1024u64,
            32 * 1024,
            64 * 1024,
            256 * 1024,
            1024 * 1024,
            2 * 1024 * 1024,
        ];
        for w in sizes.windows(2) {
            assert!(
                sram_energy_pj_per_byte(w[0]) < sram_energy_pj_per_byte(w[1]),
                "energy must grow with capacity ({} vs {})",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn ordering_register_sram_dram() {
        let lb = sram_energy_pj_per_byte(64 * 1024);
        let gb = sram_energy_pj_per_byte(2 * 1024 * 1024);
        assert!(REGISTER_ENERGY_PJ_PER_BYTE < lb);
        assert!(lb < gb);
        assert!(gb < DRAM_ENERGY_PJ_PER_BYTE);
        // DRAM at least 5x the biggest on-chip memory.
        assert!(DRAM_ENERGY_PJ_PER_BYTE / gb > 5.0);
    }

    #[test]
    fn bandwidth_classes() {
        assert_eq!(sram_bytes_per_cycle(32 * 1024), 32.0);
        assert_eq!(sram_bytes_per_cycle(1024 * 1024), 64.0);
        assert!(DRAM_BYTES_PER_CYCLE < sram_bytes_per_cycle(32 * 1024));
    }

    #[test]
    fn tiny_capacity_does_not_underflow() {
        assert!(sram_energy_pj_per_byte(0) > 0.0);
        assert!(sram_energy_pj_per_byte(16) > 0.0);
    }
}
